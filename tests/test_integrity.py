"""Tests for the kernel-text integrity scanner."""

from repro.core import KspliceCore, ksplice_create
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.patch import make_patch
from repro.tools.integrity import check_kernel_text

TREE = SourceTree(version="integ-test", files={
    "kernel/srv.c": """
int srv_state = 5;

int srv_get(void) { return srv_state; }

int srv_set(int v) {
    if (v < 0) { return -1; }
    srv_state = v;
    return 0;
}
""",
})


def make_pack(tree=TREE):
    files = dict(tree.files)
    files["kernel/srv.c"] = files["kernel/srv.c"].replace(
        "srv_state = v;", "srv_state = v & 0xffff;")
    return ksplice_create(tree, make_patch(tree.files, files))


def test_pristine_kernel_is_clean():
    machine = boot_kernel(TREE)
    report = check_kernel_text(machine)
    assert report.clean
    assert not report.compromised
    assert "pristine" in report.render()


def test_applied_update_is_explained():
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    pack = make_pack()
    core.apply(pack)

    report = check_kernel_text(machine, core)
    assert not report.clean
    assert not report.compromised
    assert len(report.modifications) == 1
    mod = report.modifications[0]
    assert mod.explained_by == pack.update_id
    assert mod.symbol == "srv_set"
    assert mod.size <= core.arch.jump_size
    assert "ok: %s" % pack.update_id in report.render()


def test_update_without_ledger_is_unexplained():
    """The same modification without the core's ledger looks exactly
    like a rootkit — which is the §7.2 point: the techniques are the
    same; the ledger is what distinguishes administration from attack."""
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    core.apply(make_pack())
    report = check_kernel_text(machine)  # no ledger passed
    assert report.compromised


def test_rootkit_style_poke_is_detected():
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    # An attacker patches srv_get's entry to return a constant:
    # movi r0, 0; ret
    target = machine.symbol("srv_get")
    from repro.arch import isa

    payload = isa.encode_instruction(isa.make("movi", 0, 0)) + \
        isa.encode_instruction(isa.make("ret"))
    machine.memory.write_bytes(target, payload)

    report = check_kernel_text(machine, core)
    assert report.compromised
    assert any(m.symbol == "srv_get" for m in report.unexplained())
    assert "UNEXPLAINED" in report.render()
    assert "WARNING" in report.render()


def test_legitimate_and_rogue_modifications_distinguished():
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    pack = make_pack()
    core.apply(pack)
    machine.memory.write_bytes(machine.symbol("srv_get"), b"\x42")  # ret

    report = check_kernel_text(machine, core)
    assert len(report.modifications) == 2
    assert len(report.unexplained()) == 1
    assert report.unexplained()[0].symbol == "srv_get"


def test_undo_returns_kernel_to_pristine():
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    pack = make_pack()
    core.apply(pack)
    core.undo(pack.update_id)
    assert check_kernel_text(machine, core).clean

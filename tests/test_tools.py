"""Tests for the objdump listing and the stack unwinder."""

from repro.compiler import CompilerOptions, compile_source
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.tools import backtrace_thread, dump_object_text
from repro.tools.unwind import render_oops

SOURCE = """
static int debug;
int counter = 5;

static int inner(int x) {
    debug = x;
    if (x > 100) { return -1; }
    return x * counter;
}

int middle(int x) {
    int r = inner(x) + 1;
    return r;
}

int outer(int x) {
    int spin = 0;
    while (spin < x) { spin++; __sched(); }
    return middle(x);
}
"""


def test_objdump_lists_sections_symbols_and_relocs():
    obj = compile_source(SOURCE, "kernel/demo.c",
                         CompilerOptions(opt_level=0).pre_post_flavor()
                         ).objfile
    text = dump_object_text(obj)
    assert "object kernel/demo.c" in text
    for section in (".text.inner", ".text.middle", ".text.outer",
                    ".data.counter", ".bss.debug"):
        assert "section %s" % section in text
    # Relocation annotations appear inline.
    assert "abs32  debug+0" in text
    assert "pc32  inner-4" in text
    # Symbols table includes bindings.
    assert "local" in text and "global" in text


def test_objdump_handles_data_sections_as_hex():
    obj = compile_source("int table[2] = { 0x11223344, 0x55667788 };",
                         "u.c", CompilerOptions()).objfile
    text = dump_object_text(obj)
    assert "44 33 22 11" in text


def test_backtrace_walks_frame_chain():
    tree = SourceTree(version="t", files={"kernel/demo.c": SOURCE})
    machine = boot_kernel(tree)
    thread = machine.create_thread("outer", args=[50], name="walker")
    machine.run(max_instructions=400)
    assert thread.alive

    trace = backtrace_thread(machine, thread)
    names = trace.symbols()
    assert "outer" in names  # ip or a frame
    rendered = trace.render()
    assert "Call trace (walker):" in rendered
    assert "outer+0x" in rendered


def test_backtrace_of_nested_calls_shows_callers():
    tree = SourceTree(version="t", files={"kernel/demo.c": SOURCE.replace(
        "    int r = inner(x) + 1;",
        "    int r = inner(x) + 1;\n"
        "    while (r > 0 && r < 9999) { r++; __sched(); }")})
    machine = boot_kernel(tree, options=CompilerOptions(opt_level=0))
    thread = machine.create_thread("outer", args=[0], name="deep")
    machine.run(max_instructions=2_000)
    assert thread.alive  # stuck inside middle()'s loop

    trace = backtrace_thread(machine, thread)
    names = trace.symbols()
    assert "middle" in names
    assert "outer" in names  # the caller's frame is on the chain


def test_render_oops_includes_registers_and_trace():
    tree = SourceTree(version="t", files={"kernel/demo.c": """
int crash(int x) {
    int z = 0;
    return x / z;
}
int entry(int x) { return crash(x) + 1; }
"""})
    machine = boot_kernel(tree, options=CompilerOptions(opt_level=0))
    thread = machine.create_thread("entry", args=[5], name="boomer")
    machine.run(max_instructions=10_000)
    assert thread.fault is not None

    report = render_oops(machine, thread, thread.fault)
    assert "kernel oops: divide by zero" in report
    assert "r0=" in report and "sp=" in report
    assert "crash+0x" in report
    assert "entry" in report  # caller visible (reliable or conservative)


def test_backtrace_handles_thread_without_frames():
    """A thread parked at the entry gadget (no frame set up yet) must
    not crash the unwinder."""
    tree = SourceTree(version="t", files={"kernel/demo.c": SOURCE})
    machine = boot_kernel(tree)
    thread = machine.create_thread("outer", args=[1], name="fresh")
    trace = backtrace_thread(machine, thread)  # before any execution
    assert trace.frames[0].symbol == "outer"
    assert trace.frames[0].offset == 0

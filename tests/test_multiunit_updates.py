"""Multi-unit updates: one patch touching several compilation units,
including cross-unit references to code the patch itself adds."""

import pytest

from repro.core import KspliceCore, ksplice_create
from repro.errors import KspliceCreateError
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.patch import make_patch

TREE = SourceTree(version="multi-test", files={
    "net/input.c": """
extern int audit_event(int kind);

int handle_input(int value) {
    if (value < 0) { return -22; }
    return value * 2;
}
""",
    "kernel/audit.c": """
int audit_log[8];
int audit_cursor;

int audit_event(int kind) {
    audit_log[audit_cursor & 7] = kind;
    audit_cursor++;
    return 0;
}
""",
})


def test_patch_spanning_two_units():
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)

    files = dict(TREE.files)
    files["net/input.c"] = TREE.files["net/input.c"].replace(
        "    if (value < 0) { return -22; }",
        "    if (value < 0) { audit_event(900); return -22; }")
    files["kernel/audit.c"] = TREE.files["kernel/audit.c"].replace(
        "    audit_cursor++;",
        "    if (kind > 899) { audit_cursor++; }\n    audit_cursor++;")
    pack = ksplice_create(TREE, make_patch(TREE.files, files))
    assert {uu.unit for uu in pack.units} == {"net/input.c",
                                              "kernel/audit.c"}
    core.apply(pack)

    neg = machine.call_function("handle_input", [(-3) & 0xFFFFFFFF])
    assert neg == (-22) & 0xFFFFFFFF
    # The rejected input was audited through the (also-patched) audit
    # path; kind > 899 double-increments the cursor.
    assert machine.read_u32(machine.symbol("audit_log")) == 900
    assert machine.read_u32(machine.symbol("audit_cursor")) == 2


def test_cross_unit_reference_to_new_function():
    """Unit A's patched code calls a function the patch ADDS to unit B:
    resolvable only through the update-wide exports."""
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)

    files = dict(TREE.files)
    files["kernel/audit.c"] = TREE.files["kernel/audit.c"] + """
int audit_rate_ok(int kind) {
    if (kind < 0) { return 0; }
    if (audit_cursor > 6) { return 0; }
    return 1;
}
"""
    files["net/input.c"] = TREE.files["net/input.c"].replace(
        "extern int audit_event(int kind);",
        "extern int audit_event(int kind);\n"
        "extern int audit_rate_ok(int kind);").replace(
        "    if (value < 0) { return -22; }",
        "    if (value < 0) { return -22; }\n"
        "    if (!audit_rate_ok(value)) { return -105; }\n"
        "    audit_event(value);")
    pack = ksplice_create(TREE, make_patch(TREE.files, files))
    by_unit = {uu.unit: uu for uu in pack.units}
    assert "audit_rate_ok" in by_unit["kernel/audit.c"].new_functions

    core.apply(pack)
    # The new cross-unit path works end to end.
    assert machine.call_function("handle_input", [5]) == 10
    assert machine.read_u32(machine.symbol("audit_cursor")) == 1
    # Saturate the audit log; the new rate limiter kicks in.
    for value in range(10):
        machine.call_function("handle_input", [value + 1])
    assert machine.call_function("handle_input", [3]) == \
        (-105) & 0xFFFFFFFF


def test_multiunit_undo_restores_both_units():
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    files = dict(TREE.files)
    files["net/input.c"] = TREE.files["net/input.c"].replace(
        "value * 2", "value * 3")
    files["kernel/audit.c"] = TREE.files["kernel/audit.c"].replace(
        "audit_log[audit_cursor & 7] = kind;",
        "audit_log[audit_cursor & 7] = kind + 1;")
    pack = ksplice_create(TREE, make_patch(TREE.files, files))
    core.apply(pack)
    assert machine.call_function("handle_input", [4]) == 12
    core.undo(pack.update_id)
    assert machine.call_function("handle_input", [4]) == 8
    machine.call_function("audit_event", [7])
    assert machine.read_u32(machine.symbol("audit_log")) == 7


def test_patch_deleting_a_unit_is_refused():
    files = dict(TREE.files)
    del files["kernel/audit.c"]
    files["net/input.c"] = TREE.files["net/input.c"].replace(
        "extern int audit_event(int kind);\n", "").replace(
        "value * 2", "value * 2 + 0")
    with pytest.raises(KspliceCreateError):
        ksplice_create(TREE, make_patch(TREE.files, files))


def test_patch_adding_whole_new_unit():
    """A patch may create an entirely new compilation unit whose code is
    pulled in by changes to an existing unit."""
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    files = dict(TREE.files)
    files["lib/clamp.c"] = """
int clamp_to_bound(int v, int bound) {
    if (v > bound) { return bound; }
    return v;
}
"""
    files["net/input.c"] = TREE.files["net/input.c"].replace(
        "extern int audit_event(int kind);",
        "extern int audit_event(int kind);\n"
        "extern int clamp_to_bound(int v, int bound);").replace(
        "return value * 2;", "return clamp_to_bound(value * 2, 100);")
    pack = ksplice_create(TREE, make_patch(TREE.files, files))
    units = {uu.unit for uu in pack.units}
    assert units == {"net/input.c", "lib/clamp.c"}
    new_unit = next(uu for uu in pack.units if uu.unit == "lib/clamp.c")
    assert new_unit.new_functions == ["clamp_to_bound"]
    assert new_unit.changed_functions == []

    core.apply(pack)
    assert machine.call_function("handle_input", [3]) == 6
    assert machine.call_function("handle_input", [600]) == 100

"""Tests for the ArchInfo abstraction: the §4.3 architecture-specific
information table and the paper's architecture-independence claim."""

import pytest

from repro.arch.info import DEFAULT_ARCH, K86, K86_WIDE
from repro.arch.disassembler import disassemble
from repro.core import KspliceCore, ksplice_create
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.patch import make_patch

TREE = SourceTree(version="arch-test", files={
    "kernel/calc.c": """
int factor = 3;

int calc(int x) {
    int total = 0;
    for (int i = 0; i < x; i++) { total += factor; }
    return total;
}

int twice_calc(int x) { return calc(x) + calc(x); }
""",
})


def patched_files():
    files = dict(TREE.files)
    files["kernel/calc.c"] = TREE.files["kernel/calc.c"].replace(
        "total += factor;", "total += factor + 1;")
    return files


def test_default_arch_is_k86():
    assert DEFAULT_ARCH is K86
    assert K86.jump_size == 5
    assert K86_WIDE.jump_size == 8


def test_k86_jump_encoding_round_trips():
    encoded = K86.encode_jump(0x1000, 0x2000)
    decoded = disassemble(encoded)
    assert len(decoded) == 1
    assert decoded[0].canonical == "jmp"
    # Target computes back to the requested address.
    assert 0x1000 + decoded[0].length + \
        decoded[0].instruction.operands[0] == 0x2000


def test_k86_wide_jump_is_jump_plus_nops():
    encoded = K86_WIDE.encode_jump(0x1000, 0x2000)
    assert len(encoded) == 8
    decoded = disassemble(encoded)
    assert decoded[0].canonical == "jmp"
    assert all(d.is_nop for d in decoded[1:])
    assert 0x1000 + decoded[0].length + \
        decoded[0].instruction.operands[0] == 0x2000


def test_nop_length_at_and_instruction_length_delegates():
    from repro.arch.nops import nop_sequence

    seq = nop_sequence(4)
    assert K86.nop_length_at(seq, 0) == 4
    assert K86.instruction_length(seq[0]) == 4


@pytest.mark.parametrize("arch", [K86, K86_WIDE],
                         ids=lambda a: a.name)
def test_full_update_cycle_on_both_architectures(arch):
    """The §5 claim: only the jump assembly is per-architecture; the
    whole create/match/apply/undo pipeline runs unchanged."""
    machine = boot_kernel(TREE)
    core = KspliceCore(machine, arch=arch)
    assert machine.call_function("calc", [4]) == 12

    pack = ksplice_create(TREE, make_patch(TREE.files, patched_files()))
    applied = core.apply(pack)
    assert machine.call_function("calc", [4]) == 16
    assert machine.call_function("twice_calc", [4]) == 32
    assert all(len(r.saved_bytes) == arch.jump_size
               for r in applied.replaced)

    core.undo(pack.update_id)
    assert machine.call_function("calc", [4]) == 12


def test_wide_arch_rejects_functions_too_small_for_its_jump():
    from repro.errors import KspliceError

    # tiny_fn is the *last* function in .text, so no alignment padding
    # follows it: its run extent is exactly 7 bytes.
    tree = SourceTree(version="tiny", files={
        "k.s": """
.global caller
caller:
    call tiny_fn
    ret
.align 16
.global tiny_fn
tiny_fn:
    movi r0, 7
    ret
""",
    })
    machine = boot_kernel(tree)
    core = KspliceCore(machine, arch=K86_WIDE)
    files = dict(tree.files)
    files["k.s"] = tree.files["k.s"].replace("movi r0, 7", "movi r0, 8")
    pack = ksplice_create(tree, make_patch(tree.files, files))
    # tiny_fn is 7 bytes: enough for the 5-byte k86 jump, not for the
    # 8-byte wide one.
    with pytest.raises(KspliceError):
        core.apply(pack)
    # The k86 core handles the same pack fine.
    machine2 = boot_kernel(tree)
    KspliceCore(machine2, arch=K86).apply(pack)
    assert machine2.call_function("caller") == 8

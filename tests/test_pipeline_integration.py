"""Integration tests: the staged lifecycle through create/apply/undo
and the evaluation harness."""

import pytest

from repro.core import KspliceCore, ksplice_create
from repro.errors import KspliceCreateError, StackCheckError
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.patch import make_patch
from repro.pipeline import SKIPPED, Trace

ENTRY_S = """
.global syscall_entry
syscall_entry:
    cmpi r0, 1
    jge bad_sys
    cmpi r0, 0
    jl bad_sys
    push r3
    push r2
    push r1
    movi r4, 4
    mul r0, r4
    lea r4, sys_call_table
    add r4, r0
    loadr r4, r4, 0
    callr r4
    addi sp, 12
    ret
bad_sys:
    movi r0, -38
    ret
.section .data
sys_call_table:
    .word sys_nanosleep
"""

SCHED_C = """
int jiffies;
int sched_drain;

int schedule(void) {
    jiffies++;
    __sched();
    return 0;
}

int sys_nanosleep(int ticks, int b, int c) {
    int i = 0;
    while (i < ticks) {
        if (sched_drain) { return -11; }
        i++;
        schedule();
    }
    return i;
}
"""

TREE = SourceTree(version="pipeline-test", files={
    "arch/entry.s": ENTRY_S,
    "kernel/sched.c": SCHED_C,
})

PATCHED_SCHED = SCHED_C.replace(
    "    jiffies++;\n    __sched();",
    "    jiffies++;\n    jiffies = jiffies + 0;\n    __sched();")


def _patch_text(new_sched):
    files = dict(TREE.files)
    files["kernel/sched.c"] = new_sched
    return make_patch(TREE.files, files)


def _sleeper(machine):
    thread = machine.load_user_program(
        "int main(void) { return __syscall(0, 100000000, 0, 0); }",
        name="sleeper")
    machine.run(max_instructions=2_000)
    assert thread.alive
    return thread


def test_create_emits_named_stages():
    trace = Trace(label="create")
    ksplice_create(TREE, _patch_text(PATCHED_SCHED), trace=trace)
    assert [r.name for r in trace.reports] == \
        ["patch", "build-pre", "build-post", "diff", "analyze"]
    assert trace.find("patch").counters["changed_units"] == 1
    assert trace.find("diff").counters["units_shipped"] == 1
    assert trace.find("diff").counters["changed_functions"] >= 1
    analyze = trace.find("analyze")
    assert analyze.artifacts["verdict"] == "quiesce-risk"
    assert analyze.counters["findings"] >= 1


def test_create_accepts_data_change_when_hooks_supplied():
    """A persistent-data change normally aborts create; supplying hook
    code takes the non-raising branch, and the analyzer still verdicts
    needs-hooks with the hooks noted."""
    from repro.core.create import CreateReport

    tree = SourceTree(version="hooked-test", files={
        "kernel/conf.c": "int limit = 10;\n"
                         "int get_limit(void) { return limit; }\n"})
    post = {"kernel/conf.c": tree.files["kernel/conf.c"].replace(
        "int limit = 10;", "int limit = 20;")
        + "int fix_limit(void) { return 0; }\n"
          "__ksplice_apply__(fix_limit);\n"}
    report = CreateReport()
    pack = ksplice_create(tree, make_patch(tree.files, post),
                          report=report)
    assert pack.units[0].hook_sections == [".ksplice_apply"]
    analysis = report.analysis
    assert analysis is not None
    assert analysis.verdict == "needs-hooks"
    assert analysis.hooks_present
    details = [f.detail for f in analysis.findings]
    assert any("transform hooks supplied" in d for d in details)


def test_create_abort_carries_patch_stage_context():
    with pytest.raises(KspliceCreateError) as excinfo:
        ksplice_create(TREE, _patch_text(SCHED_C))  # no-op patch
    context = excinfo.value.stage_context
    assert context is not None
    assert context.stage == "patch"


def test_apply_emits_named_stages_with_counters():
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    pack = ksplice_create(TREE, _patch_text(PATCHED_SCHED))
    applied = core.apply(pack)
    trace = applied.trace
    assert [r.name for r in trace.reports] == \
        ["load-helpers", "run-pre", "load-primaries", "plan",
         "pre-hooks", "stop_machine", "post-hooks"]
    assert trace.find("run-pre").counters["functions"] >= 1
    assert trace.find("plan").counters["replacements"] >= 1
    stop = trace.find("stop_machine")
    assert stop.counters["attempts"] == 1
    checks = [c for c in stop.children if c.name == "stack-check"]
    assert len(checks) == 1
    assert checks[0].counters["installed"] == len(applied.replaced)


def test_stack_check_exhaustion_attaches_stage_context():
    """Satellite: retry exhaustion must name the stage, the function
    that stayed on a stack, and the retry count on the raised error."""
    retries = 3
    machine = boot_kernel(TREE)
    core = KspliceCore(machine, stack_check_retries=retries,
                       retry_run_instructions=2_000)
    _sleeper(machine)
    pack = ksplice_create(TREE, _patch_text(PATCHED_SCHED))
    trace = Trace(label="doomed")
    with pytest.raises(StackCheckError) as excinfo:
        core.apply(pack, trace=trace)
    context = excinfo.value.stage_context
    assert context is not None
    assert context.stage == "stop_machine"
    assert context.retries == retries
    assert context.function == "schedule"

    stop = trace.find("stop_machine")
    assert stop.outcome == "failed"
    assert stop.counters["attempts"] == retries
    checks = [c for c in stop.children if c.name == "stack-check"]
    assert len(checks) == retries
    for check in checks:
        assert check.outcome == "failed"
        assert check.artifacts["function"] == "schedule"
        assert check.artifacts["thread"] == "sleeper"


def test_undo_emits_same_stage_reports_as_apply():
    """Satellite: ksplice-undo runs through the same staged
    stop_machine/stack-check machinery as apply."""
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    pack = ksplice_create(TREE, _patch_text(PATCHED_SCHED))
    applied = core.apply(pack)
    core.undo(pack.update_id)
    trace = applied.undo_trace
    assert trace is not None
    assert [r.name for r in trace.reports] == \
        ["plan", "pre-hooks", "stop_machine", "post-hooks", "unload"]
    stop = trace.find("stop_machine")
    assert stop.counters["attempts"] >= 1
    checks = [c for c in stop.children if c.name == "stack-check"]
    assert checks and checks[-1].counters["restored"] == \
        len(applied.replaced)
    assert trace.find("unload").counters["modules"] == len(pack.units)


def test_nested_traces_share_one_tree():
    """Core stages nest under the caller's open stage, so one trace
    tells the whole create+apply story."""
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    trace = Trace(label="combined")
    with trace.stage("create"):
        pack = ksplice_create(TREE, _patch_text(PATCHED_SCHED),
                              trace=trace)
    with trace.stage("apply"):
        core.apply(pack, trace=trace)
    assert trace.find("create/diff") is not None
    assert trace.find("apply/run-pre") is not None
    assert trace.find("apply/stop_machine/stack-check") is not None
    assert [r.name for r in trace.reports] == ["create", "apply"]


def test_evaluate_cve_records_full_stage_sequence():
    from repro.evaluation import CORPUS, clear_caches
    from repro.evaluation.harness import evaluate_cve

    clear_caches()
    result = evaluate_cve(CORPUS[0], run_stress=False)
    assert result.success
    trace = result.trace
    names = [r.name for r in trace.reports]
    for stage in ("generate", "build", "boot", "observe-pre", "create",
                  "apply", "stress"):
        assert stage in names, names
    assert trace.find("stress").outcome == SKIPPED  # run_stress=False
    assert trace.find("create/diff") is not None
    assert trace.find("apply/stop_machine") is not None
    assert result.failed_stage == ""


def test_engine_stats_aggregate_per_stage_timings():
    from repro.evaluation import clear_caches
    from repro.evaluation.corpus import CORPUS
    from repro.evaluation.engine import EngineStats, evaluate_corpus

    clear_caches()
    stats = EngineStats()
    report = evaluate_corpus(CORPUS[:2], run_stress=False, stats=stats)
    assert report.total() == 2
    for stage in ("generate", "build", "boot", "create", "apply"):
        assert stats.stages[stage].calls == 2
        assert stats.stages[stage].failures == 0
        assert stats.stages[stage].wall_ms >= 0.0
    # the skipped stress stages are visible too
    assert stats.stages["stress"].calls == 2


def test_parallel_traces_normalize_identically():
    from repro.evaluation import clear_caches, normalize_result
    from repro.evaluation.corpus import CORPUS
    from repro.evaluation.engine import EngineStats, evaluate_corpus

    specs = CORPUS[:4]
    clear_caches()
    sequential = evaluate_corpus(specs, run_stress=False)
    clear_caches()
    stats = EngineStats()
    parallel = evaluate_corpus(specs, run_stress=False, jobs=2,
                               stats=stats)
    assert [normalize_result(r) for r in parallel.results] == \
        [normalize_result(r) for r in sequential.results]
    for r in parallel.results:
        assert r.trace is not None  # traces survive pickling


def test_trace_cli_renders_saved_run(tmp_path, monkeypatch, capsys):
    from repro.cli import main
    from repro.pipeline import save_run
    from repro.pipeline.store import TRACE_FILE_ENV

    monkeypatch.setenv(TRACE_FILE_ENV, str(tmp_path / "trace.json"))
    trace = Trace(label="CVE-2008-0001")
    with trace.stage("apply"):
        with trace.stage("stop_machine"):
            pass
    save_run([trace], meta={"command": "evaluate"})

    assert main(["trace"]) == 0
    out = capsys.readouterr().out
    assert "apply" in out

    assert main(["trace", "--cve", "CVE-2008-0001"]) == 0
    out = capsys.readouterr().out
    assert "stop_machine" in out

    assert main(["trace", "--cve", "CVE-none"]) == 2


def test_evaluate_cli_prints_stage_table(tmp_path, monkeypatch, capsys):
    from repro.cli import main
    from repro.evaluation import clear_caches
    from repro.pipeline.store import TRACE_FILE_ENV

    monkeypatch.setenv(TRACE_FILE_ENV, str(tmp_path / "trace.json"))
    clear_caches()
    rc = main(["evaluate", "--quick", "--limit", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "per-stage wall time" in out
    for stage in ("generate", "build", "boot", "create", "apply",
                  "stress"):
        assert stage in out
    assert (tmp_path / "trace.json").exists()

    # and the saved run is viewable
    assert main(["trace"]) == 0
    assert "generate" in capsys.readouterr().out

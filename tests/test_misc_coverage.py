"""Unit tests for corners not covered by the subsystem suites:
disassembler formatting, scheduler control, memory mapping rules,
stop_machine reporting, thread stack scans, build-result queries."""

import pytest

from repro.arch import assemble, disassemble, format_instruction
from repro.arch.assembler import Insn, Label, LabelRef
from repro.arch.disassembler import disassemble_one, iter_instructions
from repro.compiler import CompilerOptions
from repro.errors import BuildError, MachineError
from repro.kbuild import KernelConfig, SourceTree, build_tree
from repro.kernel import boot_kernel
from repro.kernel.cpu import CPUState, step
from repro.kernel.memory import Memory
from repro.kernel.threads import Thread
from repro.linker import link_kernel


# ---------------------------------------------------------------------------
# Disassembler


def test_format_instruction_register_and_immediate():
    code = assemble([Insn("movi", (0, 42))]).code
    text = format_instruction(disassemble_one(code))
    assert "movi" in text and "r0" in text and "42" in text


def test_format_instruction_branch_target_absolute():
    code = assemble([Insn("jmp", (LabelRef("x"),)), Label("pad"),
                     Insn("ret", ()), Label("x"), Insn("hlt", ())]).code
    decoded = disassemble(code)
    text = format_instruction(decoded[0])
    # Target renders as the absolute offset of label x.
    assert hex(decoded[0].branch_target_offset()) in text


def test_format_instruction_memory_operand():
    code = assemble([Insn("load", (1, 0xC0100000))]).code
    text = format_instruction(disassemble_one(code))
    assert "[0xc0100000]" in text


def test_iter_instructions_with_bounds():
    code = assemble([Insn("nop", ()), Insn("ret", ()),
                     Insn("hlt", ())]).code
    middle = list(iter_instructions(code, start=1, end=2))
    assert [d.mnemonic for d in middle] == ["ret"]


# ---------------------------------------------------------------------------
# Memory


def test_overlapping_segments_rejected():
    memory = Memory()
    memory.map_segment("a", 0x1000, size=0x100)
    with pytest.raises(MachineError):
        memory.map_segment("b", 0x10FF, size=0x10)
    memory.map_segment("c", 0x1100, size=0x10)  # adjacent is fine


def test_segment_lookup_by_name_and_address():
    memory = Memory()
    memory.map_segment("a", 0x1000, size=0x100)
    assert memory.segment("a").base == 0x1000
    with pytest.raises(MachineError):
        memory.segment("zzz")
    assert memory.segment_for(0x10FF).name == "a"
    with pytest.raises(MachineError):
        memory.segment_for(0x10FD, count=8)  # straddles the end


def test_is_mapped():
    memory = Memory()
    memory.map_segment("a", 0x1000, size=16)
    assert memory.is_mapped(0x1000, 16)
    assert not memory.is_mapped(0x1000, 17)
    assert not memory.is_mapped(0x0FFF)


def test_write_version_only_bumped_for_executable_segments():
    memory = Memory()
    memory.map_segment("code", 0x1000, size=16, executable=True)
    memory.map_segment("stack", 0x2000, size=16)
    v0 = memory.write_version
    memory.write_u32(0x2000, 1)
    assert memory.write_version == v0
    memory.write_u32(0x1000, 1)
    assert memory.write_version == v0 + 1


# ---------------------------------------------------------------------------
# CPU odds and ends


def test_invalid_opcode_faults():
    memory = Memory()
    memory.map_segment("code", 0x1000, data=b"\xEE", executable=True)
    state = CPUState()
    state.ip = 0x1000
    with pytest.raises(MachineError):
        step(state, memory)


def test_self_modifying_code_is_observed():
    """Writing over an executable segment invalidates the decode cache
    (this is exactly what Ksplice's jump insertion relies on)."""
    from repro.arch import isa

    memory = Memory()
    code = isa.encode_instruction(isa.make("movi", 0, 1)) + b"\x00"
    memory.map_segment("code", 0x1000, data=code, executable=True)
    state = CPUState()
    state.ip = 0x1000
    step(state, memory)  # executes movi r0, 1 (and caches the decode)
    assert state.reg(0) == 1
    # Overwrite the same instruction with movi r0, 99 and re-run it.
    memory.write_bytes(0x1000,
                       isa.encode_instruction(isa.make("movi", 0, 99)))
    state.ip = 0x1000
    step(state, memory)
    assert state.reg(0) == 99


def test_shift_counts_masked_to_五bits_is_c_behaviour():
    tree = SourceTree(version="t", files={
        "u.c": "int f(int x, int n) { return x << n; }"})
    machine = boot_kernel(tree)
    assert machine.call_function("f", [1, 33]) == 2  # 33 & 31 == 1


# ---------------------------------------------------------------------------
# Scheduler


def _spin_tree():
    return SourceTree(version="s", files={"k.c": """
int progress_a;
int progress_b;
int work_a(void) {
    for (int i = 0; i < 100; i++) { progress_a++; __sched(); }
    return progress_a;
}
int work_b(void) {
    for (int i = 0; i < 100; i++) { progress_b++; __sched(); }
    return progress_b;
}
"""})


def test_run_until_predicate():
    machine = boot_kernel(_spin_tree())
    machine.create_thread("work_a", name="a")

    def a_done():
        return machine.read_u32(machine.symbol("progress_a")) >= 50

    assert machine.scheduler.run_until(a_done)
    assert machine.read_u32(machine.symbol("progress_a")) >= 50


def test_run_until_budget_exhaustion_returns_false():
    machine = boot_kernel(_spin_tree())
    machine.create_thread("work_a", name="a")
    assert not machine.scheduler.run_until(lambda: False,
                                           max_instructions=100)


def test_voluntary_yield_alternates_threads():
    machine = boot_kernel(_spin_tree(), quantum=1000)
    machine.create_thread("work_a", name="a")
    machine.create_thread("work_b", name="b")
    machine.run(max_instructions=4_000)
    # Despite the huge quantum, __sched() yields interleave the two.
    pa = machine.read_u32(machine.symbol("progress_a"))
    pb = machine.read_u32(machine.symbol("progress_b"))
    assert pa > 0 and pb > 0


def test_find_thread():
    machine = boot_kernel(_spin_tree())
    machine.create_thread("work_a", name="alpha")
    assert machine.scheduler.find_thread("alpha") is not None
    assert machine.scheduler.find_thread("ghost") is None


def test_frozen_scheduler_runs_nothing():
    machine = boot_kernel(_spin_tree())
    machine.create_thread("work_a", name="a")
    machine.scheduler.frozen = True
    assert machine.scheduler.run(10_000) == 0
    machine.scheduler.frozen = False
    assert machine.scheduler.run(1_000) > 0


# ---------------------------------------------------------------------------
# stop_machine


def test_stop_machine_returns_value_and_stacks_reports():
    machine = boot_kernel(_spin_tree())
    assert machine.stop_machine.run(lambda: 42) == 42
    machine.stop_machine.run(lambda: None)
    assert len(machine.stop_machine.reports) == 2
    assert machine.stop_machine.last_report.instructions_during_stop == 0


def test_stop_machine_releases_on_exception():
    machine = boot_kernel(_spin_tree())

    with pytest.raises(RuntimeError):
        machine.stop_machine.run(lambda: (_ for _ in ()).throw(
            RuntimeError("boom")))
    assert not machine.scheduler.frozen
    assert len(machine.stop_machine.reports) == 1


def test_stop_machine_last_report_before_any_run_raises():
    machine = boot_kernel(_spin_tree())
    with pytest.raises(RuntimeError):
        machine.stop_machine.last_report


# ---------------------------------------------------------------------------
# Threads


def test_live_stack_words_empty_when_sp_out_of_range():
    thread = Thread(tid=1, name="x", cpu=CPUState(), stack_base=0x1000,
                    stack_size=0x100)
    thread.cpu.set_reg(6, 0x9999)  # sp outside the stack
    assert thread.live_stack_words() == []


def test_live_stack_words_covers_sp_to_top():
    thread = Thread(tid=1, name="x", cpu=CPUState(), stack_base=0x1000,
                    stack_size=0x100)
    thread.cpu.set_reg(6, 0x10F0)
    words = thread.live_stack_words()
    assert words[0] == 0x10F0 and words[-1] == 0x10FC
    assert len(words) == 4


def test_reap_live_thread_rejected():
    machine = boot_kernel(_spin_tree())
    thread = machine.create_thread("work_a", name="a")
    with pytest.raises(MachineError):
        machine.reap_thread(thread)


# ---------------------------------------------------------------------------
# Build results


def test_build_result_queries():
    tree = SourceTree(version="t", files={
        "a.c": """
            static int tiny(int x) { return x + 1; }
            int outer(int x) { return tiny(x); }
        """,
        "b.c": "int plain(int x) { return x; }",
    })
    build = build_tree(tree, CompilerOptions(opt_level=2))
    assert build.function_inlined_anywhere("tiny")
    assert not build.function_inlined_anywhere("plain")
    merged = build.merged_inline_report()
    assert merged.was_inlined("tiny")
    with pytest.raises(BuildError):
        build.object_for("missing.c")


def test_kernel_config_filtering():
    config = KernelConfig(name="custom").without(["b.c"])
    assert config.is_enabled("a.c")
    assert not config.is_enabled("b.c")
    assert config.filter_units(["a.c", "b.c", "c.c"]) == ["a.c", "c.c"]


# ---------------------------------------------------------------------------
# kallsyms details


def test_symbol_at_prefers_innermost():
    tree = SourceTree(version="t", files={
        "a.c": "int first(void) { return 1; }\n"
               "int second(void) { return 2; }\n"})
    image = link_kernel(build_tree(tree))
    second_addr = image.kallsyms.unique_address("second")
    found = image.kallsyms.symbol_at(second_addr + 2)
    assert found.name == "second"
    # An address past everything finds nothing.
    assert image.kallsyms.symbol_at(image.end + 0x1000) is None

"""Edge-case tests for run-pre matching: read-only data sections,
function-pointer tables in data, and matcher bookkeeping."""

import pytest

from repro.compiler import CompilerOptions
from repro.core.runpre import RunPreMatcher
from repro.errors import RunPreMismatchError
from repro.kbuild import SourceTree, build_units
from repro.kernel import boot_kernel
from repro.objfile import Relocation, RelocationType, Section, SectionKind
from repro.objfile.symbol import Symbol, SymbolBinding, SymbolKind

FLAVOR = CompilerOptions().pre_post_flavor()

ASM_WITH_TABLE = """
.global dispatch
dispatch:
    cmpi r0, 2
    jge fail
    movi r4, 4
    mul r0, r4
    lea r4, handlers
    add r4, r0
    loadr r4, r4, 0
    callr r4
    ret
fail:
    movi r0, -1
    ret

.global handler_a
handler_a:
    movi r0, 100
    ret

.global handler_b
handler_b:
    movi r0, 200
    ret

.section .data
handlers:
    .word handler_a, handler_b
"""

TREE = SourceTree(version="rp-edge", files={"arch/tbl.s": ASM_WITH_TABLE})


def test_function_pointer_table_solved_through_text_relocs():
    """The dispatch code's `lea handlers` relocation lets run-pre solve
    the table's address even though `handlers` is a local data symbol."""
    machine = boot_kernel(TREE)
    pre = build_units(TREE, ["arch/tbl.s"], FLAVOR).object_for("arch/tbl.s")
    matcher = RunPreMatcher(memory=machine.memory,
                            kallsyms=machine.image.kallsyms)
    result = matcher.match_unit(pre)
    solved = result.symbol_values["handlers"]
    # The solved address holds the relocated pointers.
    assert machine.read_u32(solved) == \
        machine.image.kallsyms.unique_address("handler_a")
    assert machine.read_u32(solved + 4) == \
        machine.image.kallsyms.unique_address("handler_b")
    # Dispatch through the table still behaves (the asm routine takes
    # its selector in r0, so prime the register directly).
    thread = machine.create_thread("dispatch")
    thread.cpu.set_reg(0, 1)
    assert machine.run_thread(thread) == 200
    machine.reap_thread(thread)


def _pre_with_rodata(machine, payload, relocs=(), anchor="ro_anchor",
                     address=None):
    """Craft a helper object with a .rodata section anchored at a chosen
    run address (default: a real rodata-like blob we plant in the kernel
    image copy in machine memory)."""
    # build_units returns cache-shared objects; copy before mutating.
    pre = build_units(TREE, ["arch/tbl.s"],
                      FLAVOR).object_for("arch/tbl.s").copy()
    section = Section(name=".rodata.%s" % anchor, kind=SectionKind.RODATA,
                      data=payload, alignment=4)
    for reloc in relocs:
        section.relocations.append(reloc)
    pre.add_section(section)
    pre.add_symbol(Symbol(name=anchor, binding=SymbolBinding.LOCAL,
                          kind=SymbolKind.OBJECT,
                          section=".rodata.%s" % anchor, value=0,
                          size=len(payload)))
    pre.ensure_undefined(pre.referenced_symbol_names())
    return pre


def test_rodata_matching_succeeds_on_identical_bytes():
    machine = boot_kernel(TREE)
    # Plant a blob in the heap and register it via a fake kallsyms entry.
    blob = b"\x01\x02\x03\x04\x05\x06\x07\x08"
    address = machine.kmalloc(len(blob))
    machine.memory.write_bytes(address, blob)
    from repro.linker.kallsyms import KallsymsEntry

    machine.image.kallsyms.add(KallsymsEntry(
        name="ro_anchor", address=address, size=len(blob),
        kind=SymbolKind.OBJECT, binding=SymbolBinding.LOCAL,
        unit="arch/tbl.s"))

    pre = _pre_with_rodata(machine, blob)
    matcher = RunPreMatcher(memory=machine.memory,
                            kallsyms=machine.image.kallsyms)
    result = matcher.match_unit(pre)
    assert result.bytes_matched > 0


def test_rodata_matching_aborts_on_difference():
    machine = boot_kernel(TREE)
    blob = b"\x01\x02\x03\x04\x05\x06\x07\x08"
    address = machine.kmalloc(len(blob))
    machine.memory.write_bytes(address, b"\x01\x02\x03\x04\xFF\x06\x07\x08")
    from repro.linker.kallsyms import KallsymsEntry

    machine.image.kallsyms.add(KallsymsEntry(
        name="ro_anchor", address=address, size=len(blob),
        kind=SymbolKind.OBJECT, binding=SymbolBinding.LOCAL,
        unit="arch/tbl.s"))

    pre = _pre_with_rodata(machine, blob)
    matcher = RunPreMatcher(memory=machine.memory,
                            kallsyms=machine.image.kallsyms)
    with pytest.raises(RunPreMismatchError):
        matcher.match_unit(pre)


def test_rodata_relocation_holes_are_skipped():
    machine = boot_kernel(TREE)
    handler_a = machine.image.kallsyms.unique_address("handler_a")
    # Run blob holds a relocated pointer; pre blob has a zero hole with
    # a relocation entry covering it.
    blob_run = handler_a.to_bytes(4, "little") + b"\xAA\xBB\xCC\xDD"
    blob_pre = b"\x00\x00\x00\x00" + b"\xAA\xBB\xCC\xDD"
    address = machine.kmalloc(len(blob_run))
    machine.memory.write_bytes(address, blob_run)
    from repro.linker.kallsyms import KallsymsEntry

    machine.image.kallsyms.add(KallsymsEntry(
        name="ro_anchor", address=address, size=len(blob_run),
        kind=SymbolKind.OBJECT, binding=SymbolBinding.LOCAL,
        unit="arch/tbl.s"))

    pre = _pre_with_rodata(
        machine, blob_pre,
        relocs=[Relocation(offset=0, symbol="handler_a",
                           type=RelocationType.ABS32, addend=0)])
    matcher = RunPreMatcher(memory=machine.memory,
                            kallsyms=machine.image.kallsyms)
    matcher.match_unit(pre)  # must not raise


def test_matcher_reports_byte_and_reloc_counts():
    machine = boot_kernel(TREE)
    pre = build_units(TREE, ["arch/tbl.s"], FLAVOR).object_for("arch/tbl.s")
    matcher = RunPreMatcher(memory=machine.memory,
                            kallsyms=machine.image.kallsyms)
    result = matcher.match_unit(pre)
    assert result.bytes_matched >= sum(
        s.size for s in pre.sections.values() if s.kind.is_code) - 16
    assert result.relocations_solved >= 1  # lea handlers
    assert set(result.matched_functions) == {"dispatch", "handler_a",
                                             "handler_b"}


def test_value_of_unknown_symbol_raises():
    from repro.core.runpre import RunPreResult
    from repro.errors import SymbolResolutionError

    result = RunPreResult(unit="x")
    with pytest.raises(SymbolResolutionError):
        result.value_of("nope")

"""Tests for the MiniC parser."""

import pytest

from repro.errors import CompileError
from repro.lang import ast, parse_unit
from repro.lang.types import ArrayType, PointerType


def test_parse_empty_unit():
    unit = parse_unit("")
    assert unit.decls == []


def test_parse_function_def():
    unit = parse_unit("int add(int a, int b) { return a + b; }")
    fn = unit.functions()[0]
    assert fn.name == "add"
    assert [p.name for p in fn.params] == ["a", "b"]
    assert not fn.is_static and not fn.is_inline
    ret = fn.body.statements[0]
    assert isinstance(ret, ast.Return)
    assert isinstance(ret.value, ast.Binary) and ret.value.op == "+"


def test_parse_static_inline_function():
    unit = parse_unit("static inline int one(void) { return 1; }")
    fn = unit.functions()[0]
    assert fn.is_static and fn.is_inline
    assert fn.params == []


def test_parse_prototype():
    unit = parse_unit("int do_thing(int x);")
    proto = unit.prototypes()[0]
    assert proto.name == "do_thing"
    assert proto.is_prototype


def test_parse_globals():
    unit = parse_unit("""
        int counter = 5;
        static int debug;
        extern int other_unit_var;
        int table[4] = { 1, 2 };
    """)
    by_name = {g.name: g for g in unit.global_vars()}
    assert by_name["counter"].init == [5]
    assert by_name["debug"].is_static and by_name["debug"].init is None
    assert by_name["other_unit_var"].is_extern
    assert by_name["table"].init == [1, 2, 0, 0]
    assert isinstance(by_name["table"].typ, ArrayType)


def test_parse_multiple_declarators():
    unit = parse_unit("int a, b = 2, c;")
    assert [g.name for g in unit.global_vars()] == ["a", "b", "c"]
    assert unit.global_vars()[1].init == [2]


def test_parse_struct_def_and_use():
    unit = parse_unit("""
        struct task { int pid; int uid; int flags; };
        struct task init_task;
        int read_uid(struct task *t) { return t->uid; }
    """)
    struct_def = unit.decls[0]
    assert isinstance(struct_def, ast.StructDef)
    task = unit.types.struct("task")
    assert task.size == 12
    assert task.field_offset("uid") == 4
    fn = unit.find_function("read_uid")
    access = fn.body.statements[0].value
    assert isinstance(access, ast.FieldAccess) and access.arrow


def test_struct_redefinition_raises():
    with pytest.raises(CompileError):
        parse_unit("struct a { int x; }; struct a { int y; };")


def test_parse_pointer_types():
    unit = parse_unit("int **pp; int deref(int *p) { return *p; }")
    pp = unit.global_vars()[0]
    assert isinstance(pp.typ, PointerType)
    assert isinstance(pp.typ.pointee, PointerType)


def test_parse_control_flow():
    unit = parse_unit("""
        int f(int n) {
            int total = 0;
            while (n > 0) {
                if (n % 2 == 0) { total += n; } else total -= 1;
                n--;
            }
            for (int i = 0; i < 3; i++) total++;
            return total;
        }
    """)
    fn = unit.functions()[0]
    kinds = [type(s).__name__ for s in fn.body.statements]
    assert "While" in kinds
    # for loop desugars to Block(LocalDecl, While)
    assert "Block" in kinds


def test_for_loop_desugar_structure():
    unit = parse_unit("int f(void) { for (int i = 0; i < 2; i++) ; return 0; }")
    outer = unit.functions()[0].body.statements[0]
    assert isinstance(outer, ast.Block)
    decl, loop = outer.statements
    assert isinstance(decl, ast.LocalDecl) and decl.name == "i"
    assert isinstance(loop, ast.While)
    # The step is carried on the While so `continue` can target it.
    assert isinstance(loop.step, ast.IncDec)


def test_parse_break_continue():
    unit = parse_unit("""
        int f(void) {
            while (1) { if (0) break; continue; }
            return 0;
        }
    """)
    loop = unit.functions()[0].body.statements[0]
    assert isinstance(loop.body.statements[0].then.statements[0], ast.Break)
    assert isinstance(loop.body.statements[1], ast.Continue)


def test_parse_static_local():
    unit = parse_unit("int f(void) { static int count = 7; return count; }")
    decl = unit.functions()[0].body.statements[0]
    assert isinstance(decl, ast.LocalDecl)
    assert decl.is_static and decl.static_init == 7


def test_parse_operator_precedence():
    unit = parse_unit("int f(void) { return 1 + 2 * 3 == 7 && 4 < 5; }")
    expr = unit.functions()[0].body.statements[0].value
    assert isinstance(expr, ast.Binary) and expr.op == "&&"
    assert expr.left.op == "=="


def test_parse_assignment_right_associative():
    unit = parse_unit("int f(int a, int b) { a = b = 1; return a; }")
    assign = unit.functions()[0].body.statements[0].expr
    assert isinstance(assign, ast.Assign)
    assert isinstance(assign.value, ast.Assign)


def test_parse_compound_assignment_desugars():
    unit = parse_unit("int f(int a) { a += 2; return a; }")
    assign = unit.functions()[0].body.statements[0].expr
    assert isinstance(assign, ast.Assign)
    assert isinstance(assign.value, ast.Binary) and assign.value.op == "+"


def test_parse_ternary():
    unit = parse_unit("int f(int a) { return a ? 1 : 2; }")
    expr = unit.functions()[0].body.statements[0].value
    assert isinstance(expr, ast.Conditional)


def test_parse_sizeof():
    unit = parse_unit("""
        struct pair { int a; int b; };
        int f(void) { return sizeof(struct pair) + sizeof(int); }
    """)
    expr = unit.functions()[0].body.statements[0].value
    assert expr.left.measured.size == 8
    assert expr.right.measured.size == 4


def test_parse_sizeof_in_global_init():
    unit = parse_unit("""
        struct pair { int a; int b; };
        int pair_size = sizeof(struct pair);
    """)
    assert unit.global_vars()[0].init == [8]


def test_parse_address_of_and_calls():
    unit = parse_unit("""
        int callee(int *p);
        int caller(void) { int x = 3; return callee(&x); }
    """)
    call = unit.find_function("caller").body.statements[1].value
    assert isinstance(call, ast.Call)
    assert isinstance(call.args[0], ast.Unary) and call.args[0].op == "&"


def test_parse_index_chain():
    unit = parse_unit("int t[8]; int f(int i) { return t[i + 1]; }")
    expr = unit.functions()[0].body.statements[0].value
    assert isinstance(expr, ast.Index)


def test_parse_ksplice_hook_macros():
    unit = parse_unit("""
        int my_transition(void) { return 0; }
        __ksplice_apply__(my_transition);
        __ksplice_post_reverse__(my_transition);
    """)
    hooks = unit.hooks()
    assert [(h.section, h.function) for h in hooks] == [
        (".ksplice_apply", "my_transition"),
        (".ksplice_post_reverse", "my_transition"),
    ]


def test_parse_errors_carry_location():
    with pytest.raises(CompileError) as exc:
        parse_unit("int f(void) {\n  return *;\n}", unit_name="x.c")
    assert "x.c" in str(exc.value)


def test_parse_missing_semicolon_raises():
    with pytest.raises(CompileError):
        parse_unit("int x = 1")


def test_non_constant_global_init_raises():
    with pytest.raises(CompileError):
        parse_unit("int f(void); int x = f();")


def test_extern_with_initializer_raises():
    with pytest.raises(CompileError):
        parse_unit("extern int x = 1;")

"""White-box tests of _SectionMatch: hand-crafted code windows exercise
matcher paths the compiler never emits (non-canonical pc32 addends,
abs-relocation on a pc field, register operand mismatches)."""

import pytest

from repro.arch import isa
from repro.arch.nops import nop_sequence
from repro.core.runpre import _CandidateMismatch, _SectionMatch
from repro.kernel.memory import Memory
from repro.objfile import Relocation, RelocationType, Section, SectionKind

BASE = 0x1000


def make_memory(run_bytes):
    memory = Memory()
    memory.map_segment("code", BASE, data=run_bytes, executable=True)
    return memory


def section_with(code, relocs=()):
    section = Section(name=".text.fn", kind=SectionKind.TEXT,
                      data=bytes(code))
    section.relocations.extend(relocs)
    return section


def encode(*insns):
    return b"".join(isa.encode_instruction(i) for i in insns)


def test_canonical_pc32_solved_via_target_identity():
    # pre: call <reloc helper, addend -4>;  run: call rel32 to BASE+100.
    pre = encode(isa.make("call", 0))
    run = encode(isa.make("call", 100 - 5))
    match = _SectionMatch(make_memory(run), section_with(
        pre, [Relocation(offset=1, symbol="helper",
                         type=RelocationType.PC32, addend=-4)]), BASE)
    match.match()
    assert match.symbol_values["helper"] == BASE + 100


def test_noncanonical_addend_solved_from_raw_field():
    # Addend -8: the stored run field is S - 8 - P; solving must invert
    # the general formula, which requires the long-form run encoding.
    symbol_value = BASE + 64
    place = BASE + 1
    stored = (symbol_value - 8 - place) & 0xFFFFFFFF
    stored_signed = stored - (1 << 32) if stored >= (1 << 31) else stored
    run = encode(isa.make("jmp", stored_signed))
    pre = encode(isa.make("jmp", 0))
    match = _SectionMatch(make_memory(run), section_with(
        pre, [Relocation(offset=1, symbol="oddball",
                         type=RelocationType.PC32, addend=-8)]), BASE)
    match.match()
    assert match.symbol_values["oddball"] == symbol_value


def test_noncanonical_addend_rejects_short_run_form():
    run = encode(isa.make("jmps", 10))
    pre = encode(isa.make("jmp", 0)) + nop_sequence(0)
    match = _SectionMatch(make_memory(run), section_with(
        pre, [Relocation(offset=1, symbol="oddball",
                         type=RelocationType.PC32, addend=-8)]), BASE)
    with pytest.raises(_CandidateMismatch):
        match.match()


def test_abs_relocation_on_pc_field_rejected():
    run = encode(isa.make("call", 0))
    pre = encode(isa.make("call", 0))
    match = _SectionMatch(make_memory(run), section_with(
        pre, [Relocation(offset=1, symbol="x",
                         type=RelocationType.ABS32, addend=0)]), BASE)
    with pytest.raises(_CandidateMismatch):
        match.match()


def test_register_operand_mismatch():
    run = encode(isa.make("movr", 1, 2))
    pre = encode(isa.make("movr", 1, 3))
    match = _SectionMatch(make_memory(run), section_with(pre), BASE)
    with pytest.raises(_CandidateMismatch) as exc:
        match.match()
    assert "register operand" in str(exc.value)


def test_immediate_mismatch_without_reloc():
    run = encode(isa.make("movi", 0, 5))
    pre = encode(isa.make("movi", 0, 6))
    match = _SectionMatch(make_memory(run), section_with(pre), BASE)
    with pytest.raises(_CandidateMismatch) as exc:
        match.match()
    assert "immediate operand differs" in str(exc.value)


def test_short_long_equivalence_with_corresponding_targets():
    # pre: long jz over one movi; run: short jzs over the same movi
    # padded so both streams stay aligned through nop skipping.
    pre = encode(isa.make("jz", 6), isa.make("movi", 0, 1),
                 isa.make("ret"))
    run = encode(isa.make("jzs", 6), isa.make("movi", 0, 1),
                 isa.make("ret"))
    # pre jz target: 5 + 6 = 11 == ret offset; run: 2 + 6 = 8... make
    # targets correspond by recomputing: pre ret at 5+6=11, run ret at
    # 2+6=8.
    match = _SectionMatch(make_memory(run), section_with(pre), BASE)
    match.match()


def test_inconsistent_symbol_solutions_abort():
    # Two loads relocated against the same symbol but the run code holds
    # two different addresses.
    pre = encode(isa.make("load", 0, 0), isa.make("load", 1, 0))
    run = encode(isa.make("load", 0, 0x2000), isa.make("load", 1, 0x3000))
    relocs = [
        Relocation(offset=2, symbol="gvar", type=RelocationType.ABS32),
        Relocation(offset=8, symbol="gvar", type=RelocationType.ABS32),
    ]
    match = _SectionMatch(make_memory(run), section_with(pre, relocs), BASE)
    with pytest.raises(_CandidateMismatch) as exc:
        match.match()
    assert "inconsistently" in str(exc.value)


def test_jump_target_correspondence_violation():
    # Both jumps are long, but they land on non-corresponding
    # instructions.
    pre = encode(isa.make("jmp", 6), isa.make("movi", 0, 1),
                 isa.make("ret"))
    run = encode(isa.make("jmp", 0), isa.make("movi", 0, 1),
                 isa.make("ret"))
    match = _SectionMatch(make_memory(run), section_with(pre), BASE)
    with pytest.raises(_CandidateMismatch) as exc:
        match.match()
    assert "do not correspond" in str(exc.value)


def test_run_side_alignment_nops_skipped():
    body = encode(isa.make("movi", 0, 3), isa.make("ret"))
    pre = body
    run = encode(isa.make("movi", 0, 3)) + nop_sequence(5) + \
        encode(isa.make("ret"))
    match = _SectionMatch(make_memory(run), section_with(pre), BASE)
    match.match()
    assert match.nop_bytes_skipped == 5

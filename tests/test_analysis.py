"""Tests for the static patch-safety analyzer (repro.analysis)."""

import json

from repro.analysis import (
    VERDICT_EXIT_CODES,
    VERDICT_NEEDS_HOOKS,
    VERDICT_NEEDS_SHADOW,
    VERDICT_QUIESCE_RISK,
    VERDICT_REJECT,
    VERDICT_SAFE,
    AnalysisReport,
    Finding,
    build_call_graph,
)
from repro.analysis.datalayout import (
    analyze_data_layout,
    analyze_init_only_writers,
)
from repro.analysis.lint import lint_pack
from repro.analysis.model import worst_verdict
from repro.analysis.quiescence import analyze_quiescence
from repro.compiler import CompilerOptions
from repro.core import UnitUpdate, UpdatePack, diff_objects, ksplice_create
from repro.core.create import CreateReport
from repro.core.objdiff import UnitDiff
from repro.kbuild import SourceTree, build_tree, build_units
from repro.objfile import (
    ObjectFile,
    Relocation,
    RelocationType,
    Section,
    SectionKind,
    Symbol,
)
from repro.patch import make_patch

FLAVOR = CompilerOptions().pre_post_flavor()

# A four-unit kernel exercising every call-graph feature: a syscall
# table data reference, a cross-unit sleep chain, and a boot-only
# initialization path.
GRAPH_TREE = SourceTree(version="graph-test", files={
    "arch/entry.s": """
.global syscall_entry
syscall_entry:
    ret
.section .data
sys_call_table:
    .word sys_counter
""",
    "kernel/sched.c": """
int jiffies;

int schedule(void) {
    jiffies++;
    __sched();
    return 0;
}
""",
    "kernel/sys.c": """
int schedule(void);
int boot_setup(void);

int counter;

int helper_wait(int n) {
    schedule();
    return n;
}

int sys_counter(int a, int b, int c) {
    counter++;
    return helper_wait(a);
}

int kernel_init(void) {
    boot_setup();
    return 0;
}
""",
    "drivers/dev.c": """
int dev_table[4];

int boot_setup(void) {
    dev_table[0] = 7;
    return 0;
}

int pure_math(int x) {
    return x * 3;
}
""",
})


def graph_for(tree=GRAPH_TREE):
    # opt_level=0 keeps every call an explicit relocation (no inlining)
    return build_call_graph(build_tree(tree, CompilerOptions(opt_level=0)))


def compile_one(source, name="u.c"):
    return build_units(SourceTree(version="t", files={name: source}),
                       [name], FLAVOR).object_for(name)


def unit_analysis_inputs(pre_src, post_src, name="u.c"):
    pre = compile_one(pre_src, name)
    post = compile_one(post_src, name)
    diff = diff_objects(pre, post)
    return {name: diff}, {name: pre}, {name: post}


# -- call graph ------------------------------------------------------------


def test_call_edges_attributed_by_function_extent():
    """The run build merges each unit into one text section; edges must
    land on the function whose extent contains the call site."""
    graph = graph_for()
    sys_counter = ("kernel/sys.c", "sys_counter")
    helper_wait = ("kernel/sys.c", "helper_wait")
    schedule = ("kernel/sched.c", "schedule")
    assert helper_wait in graph.calls[sys_counter]
    assert schedule in graph.calls[helper_wait]
    assert schedule not in graph.calls.get(sys_counter, set())
    assert sys_counter in graph.callers[helper_wait]
    assert helper_wait in graph.callers[schedule]


def test_data_references_kept_apart_from_call_edges():
    """The syscall table's .word entry makes sys_counter reachable but
    is not a stack-visible call edge."""
    graph = graph_for()
    sys_counter = ("kernel/sys.c", "sys_counter")
    assert sys_counter in graph.data_referenced
    assert "arch/entry.s:.data" in graph.data_ref_sites[sys_counter]
    assert sys_counter not in graph.callers
    refs = graph.references_of(sys_counter)
    assert "arch/entry.s:.data" in refs


def test_sleep_points_and_shortest_sleep_path():
    graph = graph_for()
    schedule = ("kernel/sched.c", "schedule")
    assert schedule in graph.sleep_points
    assert graph.sleep_path(schedule) == [schedule]
    path = graph.sleep_path(("kernel/sys.c", "sys_counter"))
    assert path == [("kernel/sys.c", "sys_counter"),
                    ("kernel/sys.c", "helper_wait"), schedule]
    assert graph.sleep_path(("drivers/dev.c", "pure_math")) is None


def test_caller_closure_excludes_roots():
    graph = graph_for()
    closure = graph.caller_closure([("kernel/sched.c", "schedule")])
    assert ("kernel/sys.c", "helper_wait") in closure
    assert ("kernel/sys.c", "sys_counter") in closure
    assert ("kernel/sched.c", "schedule") not in closure


def test_is_init_only_classification():
    graph = graph_for()
    # boot_setup: only caller chain is kernel_init -> boot_setup
    assert graph.is_init_only(("drivers/dev.c", "boot_setup"))
    # sys_counter: address-taken by the syscall table
    assert not graph.is_init_only(("kernel/sys.c", "sys_counter"))
    # pure_math: no callers at all (dead, not init-only)
    assert not graph.is_init_only(("drivers/dev.c", "pure_math"))
    # schedule: reachable from the data-referenced syscall path
    assert not graph.is_init_only(("kernel/sched.c", "schedule"))


def test_inline_hosts_recorded_from_compiler_metadata():
    """At -O2 a static callee is inlined; the host counts as a caller
    even though no relocation survives."""
    tree = SourceTree(version="inline-test", files={"kernel/a.c": """
static int check(int x) { return x > 0; }

int outer(int x) {
    if (!check(x)) { return -1; }
    return x;
}
"""})
    graph = build_call_graph(build_tree(tree, CompilerOptions(opt_level=2)))
    hosts = graph.inline_hosts.get(("kernel/a.c", "check"), set())
    assert ("kernel/a.c", "outer") in hosts


# -- quiescence ------------------------------------------------------------


def test_quiescence_flags_transitive_sleep_chain():
    graph = graph_for()
    diffs = {"kernel/sys.c": UnitDiff(unit="kernel/sys.c",
                                      changed_functions=["sys_counter"])}
    findings = analyze_quiescence(graph, diffs, {}, stack_check_retries=5)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.verdict == VERDICT_QUIESCE_RISK
    assert finding.symbol == "sys_counter"
    assert "sys_counter -> helper_wait -> schedule" in finding.detail
    assert "5" in finding.detail


def test_quiescence_quiet_for_non_sleeping_function():
    graph = graph_for()
    diffs = {"drivers/dev.c": UnitDiff(unit="drivers/dev.c",
                                       changed_functions=["pure_math"])}
    assert analyze_quiescence(graph, diffs, {}) == []


def test_quiescence_degrades_to_own_text_scan_without_run_build():
    pre = compile_one(GRAPH_TREE.files["kernel/sched.c"], "kernel/sched.c")
    diffs = {"kernel/sched.c": UnitDiff(unit="kernel/sched.c",
                                        changed_functions=["schedule"])}
    findings = analyze_quiescence(None, diffs, {"kernel/sched.c": pre})
    assert [f.symbol for f in findings] == ["schedule"]
    assert "sleep instruction" in findings[0].detail
    # and a non-sleeping function stays quiet in degraded mode too
    pre2 = compile_one(GRAPH_TREE.files["drivers/dev.c"], "drivers/dev.c")
    diffs2 = {"drivers/dev.c": UnitDiff(unit="drivers/dev.c",
                                        changed_functions=["pure_math"])}
    assert analyze_quiescence(None, diffs2, {"drivers/dev.c": pre2}) == []


# -- data layout -----------------------------------------------------------

DATA_BASE = """
int counter = 5;
int buf[2];

int bump(int x) {
    buf[0] = x;
    return counter + x;
}
"""


def test_changed_initializer_needs_hooks():
    post = DATA_BASE.replace("int counter = 5;", "int counter = 6;")
    findings = analyze_data_layout(*unit_analysis_inputs(DATA_BASE, post))
    hooks = [f for f in findings if f.verdict == VERDICT_NEEDS_HOOKS]
    assert [f.symbol for f in hooks] == ["counter"]
    assert "initializer changed" in hooks[0].detail


def test_resized_data_needs_shadow():
    post = DATA_BASE.replace("int buf[2];", "int buf[4];")
    findings = analyze_data_layout(*unit_analysis_inputs(DATA_BASE, post))
    shadow = [f for f in findings if f.verdict == VERDICT_NEEDS_SHADOW]
    assert [f.symbol for f in shadow] == ["buf"]
    assert "8 -> 16 bytes" in shadow[0].detail


def test_shadow_api_adoption_needs_shadow():
    post = DATA_BASE.replace(
        "int bump(int x) {",
        "int ksplice_shadow_get(int obj, int key);\n"
        "int bump(int x) {\n    if (ksplice_shadow_get(x, 1) < 0) "
        "{ return -1; }")
    findings = analyze_data_layout(*unit_analysis_inputs(DATA_BASE, post))
    shadow = [f for f in findings if f.verdict == VERDICT_NEEDS_SHADOW]
    assert [f.symbol for f in shadow] == ["ksplice_shadow_get"]


def test_hooks_reported_as_informational():
    post = DATA_BASE.replace("int counter = 5;", "int counter = 6;") + """
int fixup(void) { return 0; }
__ksplice_apply__(fixup);
"""
    findings = analyze_data_layout(*unit_analysis_inputs(DATA_BASE, post))
    notes = [f for f in findings if f.verdict == VERDICT_SAFE]
    assert len(notes) == 1
    assert ".ksplice_apply" in notes[0].detail
    assert not notes[0].detail.startswith("hook-only")


def test_hook_only_unit_labelled():
    post = DATA_BASE + """
int fixup(void) { return 0; }
__ksplice_apply__(fixup);
"""
    diffs, pres, posts = unit_analysis_inputs(DATA_BASE, post)
    # fixup itself is new code; strip it so only the hook table remains
    diffs["u.c"].new_functions = []
    findings = analyze_data_layout(diffs, pres, posts)
    notes = [f for f in findings if f.verdict == VERDICT_SAFE]
    assert notes and notes[0].detail.startswith("hook-only unit")


def test_init_only_writer_needs_hooks():
    """The Table-1 shape: a changed function fills persistent data but
    only ever runs during boot."""
    graph = graph_for()
    pre_src = GRAPH_TREE.files["drivers/dev.c"]
    post_src = pre_src.replace("dev_table[0] = 7;", "dev_table[0] = 8;")
    pre = compile_one(pre_src, "drivers/dev.c")
    post = compile_one(post_src, "drivers/dev.c")
    diffs = {"drivers/dev.c": diff_objects(pre, post)}
    assert diffs["drivers/dev.c"].changed_functions == ["boot_setup"]
    findings = analyze_init_only_writers(graph, diffs,
                                         {"drivers/dev.c": pre},
                                         {"drivers/dev.c": post})
    assert len(findings) == 1
    assert findings[0].verdict == VERDICT_NEEDS_HOOKS
    assert findings[0].symbol == "boot_setup"
    assert "dev_table" in findings[0].detail
    assert "boot path" in findings[0].detail


def test_init_only_writer_quiet_for_syscall_reachable_function():
    graph = graph_for()
    pre_src = GRAPH_TREE.files["kernel/sys.c"]
    post_src = pre_src.replace("counter++;", "counter = counter + 2;")
    pre = compile_one(pre_src, "kernel/sys.c")
    post = compile_one(post_src, "kernel/sys.c")
    diffs = {"kernel/sys.c": diff_objects(pre, post)}
    assert "sys_counter" in diffs["kernel/sys.c"].changed_functions
    assert analyze_init_only_writers(graph, diffs, {"kernel/sys.c": pre},
                                     {"kernel/sys.c": post}) == []


# -- lint ------------------------------------------------------------------


def simple_pack(tree_files=None):
    tree = SourceTree(version="lint-test", files=tree_files or {
        "kernel/ping.c": """
int ping_count;

int sys_ping(int a, int b, int c) {
    ping_count++;
    return 41;
}
"""})
    post = {unit: src.replace("return 41;", "return 42;")
            for unit, src in tree.files.items()}
    return ksplice_create(tree, make_patch(tree.files, post))


def test_lint_clean_pack_has_no_findings():
    assert lint_pack(simple_pack()) == []


def test_lint_rejects_unsupported_relocation():
    primary = ObjectFile(name="u.c")
    primary.add_section(Section(name=".text.f", kind=SectionKind.TEXT,
                                data=b"\x00" * 8,
                                relocations=[Relocation(
                                    offset=0, symbol="x",
                                    type="got32")]))  # type: ignore[arg-type]
    pack = UpdatePack(update_id="ksplice-badrel", kernel_version="t")
    pack.units.append(UnitUpdate(unit="u.c", helper=ObjectFile(name="u.c"),
                                 primary=primary))
    findings = lint_pack(pack)
    assert [f.verdict for f in findings] == [VERDICT_REJECT]
    assert "unsupported relocation" in findings[0].detail


def test_lint_rejects_function_smaller_than_jump():
    pack = simple_pack()
    pack.units[0].helper.symbol("sys_ping").size = 3
    findings = lint_pack(pack)
    assert [f.verdict for f in findings] == [VERDICT_REJECT]
    assert "3 bytes" in findings[0].detail
    assert "5-byte redirection jump" in findings[0].detail


def test_lint_rejects_undecodable_pre_text():
    pack = simple_pack()
    helper = pack.units[0].helper
    helper.symbol("sys_ping").size = 0  # disarm the jump-size check
    helper.sections[".text.sys_ping"].data = b"\xff\xff\xff\xff"
    findings = lint_pack(pack)
    assert [f.verdict for f in findings] == [VERDICT_REJECT]
    assert "does not disassemble" in findings[0].detail


def test_lint_unresolvable_and_ambiguous_symbols():
    run_build = build_tree(SourceTree(version="run", files={
        "fs/a.c": "static int dup_fn(int x) { return x + 1; }\n"
                  "int a_entry(int x) { return dup_fn(x); }\n",
        "fs/b.c": "static int dup_fn(int x) { return x * 9; }\n"
                  "int b_entry(int x) { return dup_fn(x); }\n",
    }), CompilerOptions(opt_level=0))
    primary = ObjectFile(name="u.c")
    primary.add_symbol(Symbol(name="ghost_fn", section=None))
    primary.add_symbol(Symbol(name="dup_fn", section=None))
    pack = UpdatePack(update_id="ksplice-unres", kernel_version="t")
    pack.units.append(UnitUpdate(unit="u.c", helper=ObjectFile(name="u.c"),
                                 primary=primary))

    # without the run build the kallsyms checks cannot run
    assert lint_pack(pack) == []

    findings = lint_pack(pack, run_build=run_build)
    by_symbol = {f.symbol: f for f in findings}
    assert by_symbol["ghost_fn"].verdict == VERDICT_REJECT
    assert "unresolvable" in by_symbol["ghost_fn"].detail
    assert by_symbol["dup_fn"].verdict == VERDICT_REJECT
    assert "ambiguous symbol: 2 definitions" in by_symbol["dup_fn"].detail


def test_lint_notes_runpre_disambiguation():
    """An ambiguous name the pre unit references is solvable: run-pre
    matching pins it down, so the lint note is informational only."""
    run_build = build_tree(SourceTree(version="run", files={
        "fs/a.c": "int shared_state;\n"
                  "int a_entry(int x) { shared_state = x; return x; }\n",
        "fs/b.c": "static int shared_state;\n"
                  "int b_entry(int x) { shared_state = x; return x; }\n",
    }), CompilerOptions(opt_level=0))
    helper = ObjectFile(name="u.c")
    helper.add_section(Section(name=".data.k", kind=SectionKind.DATA,
                               data=b"\x00" * 4,
                               relocations=[Relocation(
                                   offset=0, symbol="shared_state",
                                   type=RelocationType.ABS32)]))
    helper.add_symbol(Symbol(name="shared_state", section=None))
    primary = helper.copy()
    pack = UpdatePack(update_id="ksplice-amb", kernel_version="t")
    pack.units.append(UnitUpdate(unit="u.c", helper=helper, primary=primary))
    findings = lint_pack(pack, run_build=run_build)
    assert [f.verdict for f in findings] == [VERDICT_SAFE]
    assert "run-pre matching disambiguates" in findings[0].detail


# -- model / report --------------------------------------------------------


def test_worst_verdict_and_exit_codes():
    assert worst_verdict([]) == VERDICT_SAFE
    assert worst_verdict([VERDICT_SAFE, VERDICT_QUIESCE_RISK]) == \
        VERDICT_QUIESCE_RISK
    assert worst_verdict([VERDICT_NEEDS_SHADOW, VERDICT_NEEDS_HOOKS]) == \
        VERDICT_NEEDS_HOOKS
    assert worst_verdict([VERDICT_NEEDS_HOOKS, VERDICT_REJECT]) == \
        VERDICT_REJECT
    assert VERDICT_EXIT_CODES[VERDICT_SAFE] == 0
    assert VERDICT_EXIT_CODES[VERDICT_NEEDS_HOOKS] == 2
    assert VERDICT_EXIT_CODES[VERDICT_NEEDS_SHADOW] == 2
    assert VERDICT_EXIT_CODES[VERDICT_QUIESCE_RISK] == 2
    assert VERDICT_EXIT_CODES[VERDICT_REJECT] == 3


def test_report_verdict_tracks_worst_finding():
    report = AnalysisReport()
    assert report.verdict == VERDICT_SAFE and report.exit_code() == 0
    report.add(Finding(analysis="quiescence", verdict=VERDICT_QUIESCE_RISK,
                       detail="zzz"))
    assert report.verdict == VERDICT_QUIESCE_RISK and report.exit_code() == 2
    report.add(Finding(analysis="lint", verdict=VERDICT_REJECT, detail="no"))
    assert report.verdict == VERDICT_REJECT and report.exit_code() == 3
    # sorted_findings puts the most severe first regardless of insertion
    assert [f.verdict for f in report.sorted_findings()] == \
        [VERDICT_REJECT, VERDICT_QUIESCE_RISK]


def test_report_json_is_deterministic():
    def build(order):
        report = AnalysisReport(hooks_present=True, run_build_analyzed=True)
        for unit, fn in order:
            report.patched_functions.setdefault(unit, []).append(fn)
            report.add(Finding(analysis="lint", verdict=VERDICT_SAFE,
                               unit=unit, symbol=fn, detail="note"))
        report.references = {"b.c:g": ["z.c:q", "a.c:p"]}
        report.caller_closure = ["z.c:q", "a.c:p"]
        return json.dumps(report.to_json_dict(), sort_keys=True)

    forward = build([("a.c", "f"), ("b.c", "g")])
    backward = build([("b.c", "g"), ("a.c", "f")])
    assert forward == backward
    data = json.loads(forward)
    assert data["caller_closure"] == ["a.c:p", "z.c:q"]
    assert data["references"]["b.c:g"] == ["a.c:p", "z.c:q"]


# -- create-stage integration ----------------------------------------------


def test_create_attaches_analysis_report():
    tree = SourceTree(version="int-test", files={
        "kernel/sched.c": GRAPH_TREE.files["kernel/sched.c"]})
    post = {"kernel/sched.c": tree.files["kernel/sched.c"].replace(
        "jiffies++;", "jiffies = jiffies + 1;")}
    report = CreateReport()
    ksplice_create(tree, make_patch(tree.files, post), report=report,
                   run_build=build_tree(tree))
    analysis = report.analysis
    assert analysis is not None
    assert analysis.run_build_analyzed
    assert analysis.patched_functions == {"kernel/sched.c": ["schedule"]}
    assert analysis.verdict == VERDICT_QUIESCE_RISK
    assert analysis.findings_for(VERDICT_QUIESCE_RISK)[0].symbol == \
        "schedule"


def test_create_analysis_degrades_without_run_build():
    tree = SourceTree(version="int-test", files={
        "kernel/sched.c": GRAPH_TREE.files["kernel/sched.c"]})
    post = {"kernel/sched.c": tree.files["kernel/sched.c"].replace(
        "jiffies++;", "jiffies = jiffies + 1;")}
    report = CreateReport()
    ksplice_create(tree, make_patch(tree.files, post), report=report)
    assert report.analysis is not None
    assert not report.analysis.run_build_analyzed
    # schedule's own text sleeps, so even the degraded scan flags it
    assert report.analysis.verdict == VERDICT_QUIESCE_RISK

"""Property-based serialization tests over randomly generated object
files (beyond the fixed-shape roundtrip in test_objfile)."""

from hypothesis import given, settings, strategies as st

from repro.objfile import (
    ObjectFile,
    Relocation,
    RelocationType,
    Section,
    SectionKind,
    Symbol,
    SymbolBinding,
    SymbolKind,
    dump_object,
    load_object,
)

_name = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                           whitelist_characters="._"),
    min_size=1, max_size=24)


@st.composite
def object_files(draw):
    obj = ObjectFile(name=draw(_name))
    n_sections = draw(st.integers(1, 5))
    section_names = draw(st.lists(_name, min_size=n_sections,
                                  max_size=n_sections, unique=True))
    symbol_pool = draw(st.lists(_name, min_size=1, max_size=6,
                                unique=True))
    for sec_name in section_names:
        data = draw(st.binary(min_size=0, max_size=64))
        section = Section(
            name="." + sec_name,
            kind=draw(st.sampled_from(list(SectionKind))),
            data=data,
            alignment=draw(st.sampled_from([1, 2, 4, 8, 16])))
        if len(data) >= 4:
            for _ in range(draw(st.integers(0, 3))):
                section.relocations.append(Relocation(
                    offset=draw(st.integers(0, len(data) - 4)),
                    symbol=draw(st.sampled_from(symbol_pool)),
                    type=draw(st.sampled_from(list(RelocationType))),
                    addend=draw(st.integers(-(1 << 31), (1 << 31) - 1))))
        obj.add_section(section)
    for sym_name in symbol_pool:
        in_section = draw(st.booleans())
        if in_section:
            target = draw(st.sampled_from(section_names))
            section = obj.sections["." + target]
            obj.add_symbol(Symbol(
                name=sym_name,
                binding=draw(st.sampled_from(list(SymbolBinding))),
                kind=draw(st.sampled_from(list(SymbolKind))),
                section="." + target,
                value=draw(st.integers(0, max(section.size, 0))),
                size=draw(st.integers(0, 64))))
        else:
            obj.add_symbol(Symbol(name=sym_name, section=None))
    return obj


def _fingerprint(obj: ObjectFile):
    return (
        obj.name,
        {name: (s.kind, bytes(s.data), s.alignment,
                tuple((r.offset, r.symbol, r.type, r.addend)
                      for r in s.sorted_relocations()))
         for name, s in obj.sections.items()},
        [(s.name, s.binding, s.kind, s.section, s.value, s.size)
         for s in obj.symbols],
    )


@settings(max_examples=80, deadline=None)
@given(obj=object_files())
def test_property_serialization_roundtrip(obj):
    assert _fingerprint(load_object(dump_object(obj))) == _fingerprint(obj)


@settings(max_examples=40, deadline=None)
@given(obj=object_files())
def test_property_copy_is_equal_and_independent(obj):
    clone = obj.copy()
    assert _fingerprint(clone) == _fingerprint(obj)
    for section in clone.sections.values():
        section.data = b"\xFF" + bytes(section.data[1:]) \
            if section.data else b"\x01"
    if any(s.size for s in obj.sections.values()):
        assert _fingerprint(clone) != _fingerprint(obj)


@settings(max_examples=40, deadline=None)
@given(obj=object_files())
def test_property_dump_is_deterministic(obj):
    assert dump_object(obj) == dump_object(obj)

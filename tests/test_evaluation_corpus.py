"""Tests for the CVE corpus and kernel generation: the paper's published
statistics must hold by construction."""

import pytest

from repro.evaluation import CORPUS, corpus_by_id
from repro.evaluation.kernels import (
    ALL_VERSIONS,
    DEBIAN_VERSIONS,
    VANILLA_VERSIONS,
    kernel_for_version,
)
from repro.evaluation.specs import CveCategory, count_logical_lines
from repro.kernel import boot_kernel
from repro.patch import apply_patch, parse_patch

TABLE1_EXPECTED = [
    ("CVE-2008-0007", "2f98735", "changes data init", 34),
    ("CVE-2007-4571", "ccec6e2", "changes data init", 10),
    ("CVE-2007-3851", "21f1628", "changes data init", 1),
    ("CVE-2006-5753", "be6aab0", "changes data init", 1),
    ("CVE-2006-2071", "b78b6af", "changes data init", 14),
    ("CVE-2006-1056", "7466f9e", "changes data init", 4),
    ("CVE-2005-3179", "c075814", "changes data init", 20),
    ("CVE-2005-2709", "330d57f", "adds field to struct", 48),
]


def test_corpus_has_64_entries_with_unique_ids():
    assert len(CORPUS) == 64
    assert len({c.cve_id for c in CORPUS}) == 64


def test_fourteen_kernel_versions_six_debian_eight_vanilla():
    assert len(DEBIAN_VERSIONS) == 6
    assert len(VANILLA_VERSIONS) == 8
    used = {c.kernel_version for c in CORPUS}
    assert used <= set(ALL_VERSIONS)


def test_table1_matches_paper():
    table1 = {c.cve_id: c for c in CORPUS if c.table1}
    assert len(table1) == 8
    for cve_id, patch_id, reason, lines in TABLE1_EXPECTED:
        spec = table1[cve_id]
        assert spec.patch_id == patch_id
        assert spec.table1.reason == reason
        assert spec.table1.new_code_lines == lines
        # The shipped hook code really has that many logical lines.
        assert spec.custom_code_logical_lines() == lines


def test_mean_new_code_lines_is_about_17():
    lines = [c.table1.new_code_lines for c in CORPUS if c.table1]
    assert 16 <= sum(lines) / len(lines) <= 18


def test_inline_statistics():
    assert sum(1 for c in CORPUS if c.expect_inlined) == 20
    assert sum(1 for c in CORPUS if c.declared_inline) == 4


def test_ambiguity_statistics():
    assert sum(1 for c in CORPUS if c.ambiguous_symbol) == 5


def test_object_level_capability_patches():
    signature = sum(1 for c in CORPUS if c.signature_change)
    static_local = sum(1 for c in CORPUS if c.static_local)
    assert signature + static_local == 8


def test_paper_exploit_cves_have_exploits():
    for cve_id in ("CVE-2006-2451", "CVE-2006-3626", "CVE-2007-4573",
                   "CVE-2008-0600"):
        assert corpus_by_id(cve_id).exploit is not None


def test_categories_roughly_two_thirds_escalation():
    pe = sum(1 for c in CORPUS
             if c.category is CveCategory.PRIVILEGE_ESCALATION)
    assert 40 <= pe <= 48  # "about two-thirds"


def test_count_logical_lines_excludes_macros():
    code = "int f(void) {\n    x = 1;\n    return 0;\n}\n" \
           "__ksplice_apply__(f);\n"
    assert count_logical_lines(code) == 2


@pytest.mark.parametrize("version", ALL_VERSIONS)
def test_every_kernel_version_builds_and_boots(version):
    kernel = kernel_for_version(version)
    machine = boot_kernel(kernel.tree)
    # The boot ran kernel_init.
    assert machine.read_u32(machine.symbol("boot_complete")) == 1
    # Base syscalls answer.
    assert machine.call_function("sys_getuid", [0, 0, 0]) == 1000


@pytest.mark.parametrize("spec", CORPUS, ids=lambda s: s.cve_id)
def test_every_patch_parses_and_applies_to_its_tree(spec):
    kernel = kernel_for_version(spec.kernel_version)
    patch_text = kernel.patch_for(spec.cve_id, augmented=bool(spec.table1))
    parsed = parse_patch(patch_text)
    assert parsed.files, spec.cve_id
    patched = apply_patch(kernel.tree.files, parsed)
    assert patched != kernel.tree.files


def test_vulnerable_fragments_anchor_uniquely():
    for spec in CORPUS:
        kernel = kernel_for_version(spec.kernel_version)
        text = kernel.tree.read(spec.unit)
        assert text.count(spec.vulnerable_fragment) == 1, spec.cve_id


def test_collision_hosts_make_debug_state_notesize_ambiguous():
    kernel = kernel_for_version("2.6.12-deb2")  # hosts dst_ca + lease
    from repro.kbuild import build_tree
    from repro.linker import link_kernel

    image = link_kernel(build_tree(kernel.tree))
    assert image.kallsyms.is_ambiguous("debug")
    assert image.kallsyms.is_ambiguous("state")


def test_exploit_source_substitutes_syscall_numbers():
    spec = corpus_by_id("CVE-2006-2451")
    kernel = kernel_for_version(spec.kernel_version)
    source = kernel.exploit_source(spec)
    assert "{sys_" not in source
    assert "__syscall(%d" % kernel.syscall_numbers["sys_prctl"] in source


def test_asm_cve_kernel_lacks_negative_check():
    kernel = kernel_for_version("2.6.22")  # hosts CVE-2007-4573
    entry = kernel.tree.read("arch/entry.s")
    assert "jl bad_sys" not in entry
    assert "compat_helpers" in entry
    other = kernel_for_version("2.6.23")
    assert "jl bad_sys" in other.tree.read("arch/entry.s")


def test_fixed_tree_augmented_includes_custom_code():
    spec = corpus_by_id("CVE-2008-0007")
    kernel = kernel_for_version(spec.kernel_version)
    plain = kernel.fixed_tree(spec.cve_id, augmented=False)
    augmented = kernel.fixed_tree(spec.cve_id, augmented=True)
    assert "__ksplice_apply__" not in plain.read(spec.unit)
    assert "__ksplice_apply__" in augmented.read(spec.unit)

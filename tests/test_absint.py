"""Tests for the abstract-interpretation proof engine (repro.analysis.absint).

Covers the domain lattice, the per-function interpreter, and each
client pass (ABI, pointer escape, hunk equivalence, sleep path, data
image) against small compiled units, plus the ANALYZER_VERSION cache
invalidation that keeps stale verdicts unreachable.
"""

from repro.analysis import build_call_graph
from repro.analysis.absint import (
    analyze_abi,
    analyze_escapes,
    caller_arg_counts,
    downgrade_unwitnessed_shadow,
    equivalence_evidence,
    function_summary,
    image_change_evidence,
    init_writer_evidence,
    join_states,
    join_values,
    run_absint,
    shadow_api_evidence,
    sleep_path_evidence,
    summarize_function,
)
from repro.analysis.absint.domain import (
    TOP,
    MachineState,
    arg_slot_index,
    const,
    dataptr,
    signed32,
    stackaddr,
)
from repro.analysis.model import (
    EVIDENCE_ABI,
    EVIDENCE_EQUIVALENCE,
    VERDICT_NEEDS_SHADOW,
    VERDICT_REJECT,
    VERDICT_SAFE,
    Finding,
)
from repro.arch.assembler import Insn, assemble
from repro.arch.isa import REG_FP, REG_SP
from repro.compiler import CompilerOptions, compile_source
from repro.kbuild import SourceTree, build_tree
from repro.objfile import ObjectFile, Section, SectionKind

#: pre/post-style layout: one section per function and data symbol
FS_OPTIONS = CompilerOptions(opt_level=0, function_sections=True,
                             data_sections=True)


def compile_fs(source, name="u.c"):
    return compile_source(source, name, FS_OPTIONS).objfile


def text_object(fn, items):
    """An ObjectFile holding hand-assembled code as ``.text.<fn>``."""
    result = assemble(items)
    obj = ObjectFile(name="asm.c")
    obj.add_section(Section(name=".text.%s" % fn, kind=SectionKind.TEXT,
                            data=result.code))
    return obj


# -- domain ----------------------------------------------------------------


def test_join_values_lattice():
    assert join_values(const(3), const(3)) == const(3)
    assert join_values(const(3), const(4)) == TOP
    assert join_values(dataptr("t"), dataptr("t")) == dataptr("t")
    assert join_values(dataptr("t"), dataptr("u")) == TOP
    assert join_values(TOP, const(1)) == TOP


def test_signed32_two_complement():
    assert signed32(4) == 4
    assert signed32(0xFFFFFFFC) == -4
    assert signed32(0x80000000) == -0x80000000


def test_machine_state_slots_and_args():
    state = MachineState().with_sp(-8).with_slot(-8, const(7))
    assert state.slot(-8) == const(7)
    assert state.slot(-4) == TOP
    assert arg_slot_index(4) == 0
    assert arg_slot_index(12) == 2
    assert arg_slot_index(0) is None
    assert arg_slot_index(6) is None


def test_join_states_merges_pointwise():
    a = MachineState().with_sp(-4).with_slot(-4, dataptr("t"))
    b = MachineState().with_sp(-4).with_slot(-4, dataptr("t")) \
        .with_reg(1, const(9))
    joined = join_states(a, b)
    assert joined.sp == -4
    assert joined.slot(-4) == dataptr("t")
    assert joined.reg(1) == TOP  # entry(r1) vs const disagree
    # diverging depths lose sp entirely
    assert join_states(a, a.with_sp(-8)).sp is None


# -- interpreter -----------------------------------------------------------


def test_summary_of_compiled_function():
    obj = compile_fs("""
int depot;

int stash(int a, int b) {
    depot = a + b;
    return a;
}
""")
    summary = function_summary(obj, "stash")
    assert summary is not None and summary.decode_ok
    assert summary.stack_balanced and summary.frame_preserved
    assert summary.args_read == 2
    assert any(event.symbol == "depot" and event.is_write
               for event in summary.accesses)
    assert summary.escapes == []


def test_summary_records_calls_and_sleeps():
    obj = compile_fs("""
int helper(int n);

int waiter(int n) {
    __sched();
    return helper(n);
}
""")
    summary = function_summary(obj, "waiter")
    assert summary is not None
    assert [c.callee for c in summary.calls] == ["helper"]
    assert len(summary.sleep_sites) == 1


def test_summary_on_undecodable_bytes():
    summary = summarize_function("junk", b"\xff\xff\xff\xff", {})
    assert not summary.decode_ok
    assert summary.opaque_reason


def test_unbalanced_code_is_not_stack_balanced():
    code = assemble([Insn("push", (1,)), Insn("ret", ())]).code
    summary = summarize_function("leaky", code, {})
    assert summary.rets and summary.rets[0].sp == -4
    assert not summary.stack_balanced


# -- ABI pass --------------------------------------------------------------

ABI_PRE = """
int widget_get(int a) {
    return a + 1;
}
"""


def test_abi_proof_for_well_behaved_change():
    pre = compile_fs(ABI_PRE, "kernel/widget.c")
    post = compile_fs(ABI_PRE.replace("a + 1", "a + 2"),
                      "kernel/widget.c")
    findings, evidence = analyze_abi("kernel/widget.c", "widget_get",
                                     pre, post, None, {"widget_get"})
    assert findings == []
    assert [e.kind for e in evidence] == [EVIDENCE_ABI]
    assert evidence[0].facts["stack_balanced"] is True
    assert evidence[0].facts["frame_preserved"] is True
    assert any("ret" in site for site in evidence[0].sites)


def test_abi_rejects_stack_discipline_break():
    pre = compile_fs(ABI_PRE, "kernel/widget.c")
    post = text_object("widget_get", [
        Insn("push", (REG_FP,)),
        Insn("movr", (REG_FP, REG_SP)),
        Insn("ret", ()),  # returns without popping fp: sp is off by 4
    ])
    findings, evidence = analyze_abi("kernel/widget.c", "widget_get",
                                     pre, post, None, {"widget_get"})
    assert [f.verdict for f in findings] == [VERDICT_REJECT]
    assert "stack discipline" in findings[0].detail
    assert evidence and "ABI violation" in evidence[0].detail


RIPPLE_TREE = SourceTree(version="ripple", files={
    "kernel/widget.c": ABI_PRE,
    "kernel/caller.c": """
int widget_get(int a);

int caller_one(int x) {
    return widget_get(x);
}
""",
})


def test_caller_arg_counts_recovered_from_run_kernel():
    run_build = build_tree(RIPPLE_TREE, CompilerOptions(opt_level=0))
    counts = caller_arg_counts(run_build, "widget_get")
    assert counts == {"kernel/caller.c:caller_one": 1}


def test_abi_rejects_prototype_ripple_against_unpatched_caller():
    run_build = build_tree(RIPPLE_TREE, CompilerOptions(opt_level=0))
    pre = compile_fs(ABI_PRE, "kernel/widget.c")
    post = compile_fs("""
int widget_get(int a, int b) {
    return a + b;
}
""", "kernel/widget.c")
    findings, evidence = analyze_abi("kernel/widget.c", "widget_get",
                                     pre, post, run_build,
                                     {"widget_get"})
    assert [f.verdict for f in findings] == [VERDICT_REJECT]
    assert "unpatched callers push fewer" in findings[0].detail
    assert "kernel/caller.c:caller_one pushes 1 arg" \
        in findings[0].detail
    assert evidence[0].facts["prototype_ripple"] is True

    # when the caller is patched along, the ripple is harmless
    findings, _ = analyze_abi("kernel/widget.c", "widget_get",
                              pre, post, run_build,
                              {"widget_get", "caller_one"})
    assert findings == []


# -- hunk equivalence ------------------------------------------------------


def test_equivalence_identical_streams():
    pre = compile_fs(ABI_PRE, "kernel/widget.c")
    post = compile_fs(ABI_PRE, "kernel/widget.c")
    ev = equivalence_evidence("kernel/widget.c", "widget_get",
                              pre, post)
    assert ev is not None
    assert ev.facts["relocation_only"] is True
    assert ev.facts["changed_pre"] == 0 and ev.facts["changed_post"] == 0


def test_equivalence_pins_the_changed_window():
    source = """
int clamp(int a) {
    if (a > 10) { return 10; }
    return a;
}
"""
    pre = compile_fs(source, "kernel/clamp.c")
    post = compile_fs(source.replace("a > 10", "a >= 10"),
                      "kernel/clamp.c")
    ev = equivalence_evidence("kernel/clamp.c", "clamp", pre, post)
    assert ev is not None
    assert ev.facts["relocation_only"] is False
    assert ev.facts["changed_pre"] >= 1
    assert ev.facts["common_prefix"] + ev.facts["common_suffix"] > 0
    assert "changed window" in ev.sites[0]


# -- pointer escape --------------------------------------------------------

ESCAPE_SRC = """
int table[4];
int holder;

int publish(int x) {
    holder = table;
    return x;
}
"""


def test_escape_witnessed_when_pointer_stored():
    post = compile_fs(ESCAPE_SRC, "kernel/esc.c")
    evidence, seen = analyze_escapes("kernel/esc.c", {"table"},
                                     post, None)
    assert seen == {"table": True}
    assert evidence[0].facts["escapes"] >= 1
    assert any("pointer stored" in site for site in evidence[0].sites)


def test_no_escape_enables_downgrade():
    post = compile_fs("""
int scratch[2];

int probe(int x) {
    return x;
}
""", "kernel/esc.c")
    evidence, seen = analyze_escapes("kernel/esc.c", {"scratch"},
                                     post, None)
    assert seen == {"scratch": False}
    assert "nothing escapes" in evidence[0].detail

    finding = Finding(analysis="data-layout",
                      verdict=VERDICT_NEEDS_SHADOW,
                      unit="kernel/esc.c", symbol="scratch",
                      detail="data symbol resized: 8 -> 16 bytes")
    out = downgrade_unwitnessed_shadow(
        [finding], {("kernel/esc.c", "scratch"): False})
    assert [f.verdict for f in out] == [VERDICT_SAFE]
    assert out[0].analysis == "absint-escape"
    # a witnessed symbol keeps its needs-shadow finding
    kept = downgrade_unwitnessed_shadow(
        [finding], {("kernel/esc.c", "scratch"): True})
    assert [f.verdict for f in kept] == [VERDICT_NEEDS_SHADOW]


def test_shadow_api_call_sites_witnessed():
    pre = compile_fs("int bump(int x) { return x; }", "kernel/sh.c")
    post = compile_fs("""
int ksplice_shadow_get(int obj, int key);

int bump(int x) {
    return ksplice_shadow_get(x, 1);
}
""", "kernel/sh.c")
    evidence = shadow_api_evidence("kernel/sh.c", pre, post)
    assert [e.symbol for e in evidence] == ["ksplice_shadow_get"]
    assert evidence[0].facts["call_sites"] == 1
    assert "call ksplice_shadow_get" in evidence[0].sites[0]


# -- sleep paths -----------------------------------------------------------

SLEEP_TREE = SourceTree(version="absint-sleep", files={
    "kernel/sched.c": """
int jiffies;

int schedule(void) {
    jiffies++;
    __sched();
    return 0;
}
""",
    "kernel/widget.c": """
int schedule(void);

int widget_wait(int n) {
    schedule();
    return n;
}

int sys_widget(int a, int b, int c) {
    return widget_wait(a);
}
""",
})


def test_sleep_path_evidence_pins_every_hop():
    graph = build_call_graph(build_tree(SLEEP_TREE,
                                        CompilerOptions(opt_level=0)))
    ev = sleep_path_evidence(graph, "kernel/widget.c", "sys_widget",
                             None)
    assert ev is not None
    assert ev.facts["hops"] == 2
    assert ev.facts["chain"][-1] == "kernel/sched.c:schedule"
    assert any("call widget_wait" in site for site in ev.sites)
    assert any("sleep instruction" in site for site in ev.sites)
    # a function with no path to a sleep gets no evidence
    quiet = build_call_graph(build_tree(SourceTree(
        version="quiet", files={
            "kernel/m.c": "int pure(int x) { return x * 3; }\n"}),
        CompilerOptions(opt_level=0)))
    assert sleep_path_evidence(quiet, "kernel/m.c", "pure", None) is None


def test_sleep_path_degrades_to_own_text():
    pre = compile_fs(SLEEP_TREE.files["kernel/sched.c"],
                     "kernel/sched.c")
    ev = sleep_path_evidence(None, "kernel/sched.c", "schedule", pre)
    assert ev is not None
    assert ev.facts["hops"] == 0
    assert "sleep instruction" in ev.sites[0]


# -- data image ------------------------------------------------------------


def test_image_change_evidence_spans_the_differing_bytes():
    pre = compile_fs("int counter = 5;\n", "kernel/d.c")
    post = compile_fs("int counter = 6;\n", "kernel/d.c")
    ev = image_change_evidence("kernel/d.c", ".data.counter",
                               pre, post, None)
    assert ev.symbol == "counter"
    assert ev.facts["first_diff"] == 0
    assert ev.facts["pre_size"] == ev.facts["post_size"] == 4
    assert "bytes [0x0..0x0] differ" in ev.sites[0]


BOOT_TREE = SourceTree(version="absint-boot", files={
    "kernel/sys.c": """
int boot_setup(void);

int kernel_init(void) {
    boot_setup();
    return 0;
}
""",
    "drivers/dev.c": """
int dev_table[4];

int boot_setup(void) {
    dev_table[0] = 7;
    return 0;
}
""",
})


def test_init_writer_evidence_names_the_data_and_boot_chain():
    graph = build_call_graph(build_tree(BOOT_TREE,
                                        CompilerOptions(opt_level=0)))
    pre = compile_fs(BOOT_TREE.files["drivers/dev.c"], "drivers/dev.c")
    post = compile_fs(BOOT_TREE.files["drivers/dev.c"].replace(
        "= 7", "= 8"), "drivers/dev.c")
    ev = init_writer_evidence(graph, "drivers/dev.c", "boot_setup",
                              pre, post)
    assert ev is not None
    assert ev.facts["data_symbols"] == ["dev_table"]
    assert ev.facts["boot_only"] is True
    assert any("references persistent data dev_table" in site
               for site in ev.sites)
    # a function touching no persistent data yields no witness
    none_pre = compile_fs("int pure(int x) { return x; }", "k.c")
    assert init_writer_evidence(graph, "k.c", "pure",
                                none_pre, none_pre) is None


# -- engine ----------------------------------------------------------------


def test_run_absint_attaches_proofs_per_changed_function():
    from repro.core import diff_objects

    pre = compile_fs(ABI_PRE, "kernel/widget.c")
    post = compile_fs(ABI_PRE.replace("a + 1", "a + 2"),
                      "kernel/widget.c")
    diffs = {"kernel/widget.c": diff_objects(pre, post)}
    findings, evidence = run_absint(diffs, {"kernel/widget.c": pre},
                                    {"kernel/widget.c": post},
                                    None, None, [])
    assert findings == []
    kinds = sorted(e.kind for e in evidence)
    assert kinds == [EVIDENCE_ABI, EVIDENCE_EQUIVALENCE]
    assert all(e.symbol == "widget_get" for e in evidence)


# -- analyzer-version cache invalidation -----------------------------------


def test_analyzer_version_bump_invalidates_cached_verdicts(monkeypatch):
    from repro.analysis import model as analysis_model
    from repro.evaluation.analyze import analyze_corpus_cve

    first = analyze_corpus_cve("CVE-2006-2451")
    assert analyze_corpus_cve("CVE-2006-2451") is first  # warm hit

    monkeypatch.setattr(analysis_model, "ANALYZER_VERSION", "test-bump")
    fresh = analyze_corpus_cve("CVE-2006-2451")
    assert fresh is not first  # the bump made the old entry unreachable
    assert analyze_corpus_cve("CVE-2006-2451") is fresh

    monkeypatch.undo()
    assert analyze_corpus_cve("CVE-2006-2451") is first


def test_baseline_heuristic_run_is_never_cached():
    from repro.evaluation.analyze import analyze_corpus_cve

    baseline = analyze_corpus_cve("CVE-2006-2451", absint=False)
    assert baseline.evidence == []
    assert not baseline.is_proven()
    assert analyze_corpus_cve("CVE-2006-2451", absint=False) \
        is not baseline
    # and it never displaces the proof-carrying entry
    assert analyze_corpus_cve("CVE-2006-2451").is_proven()

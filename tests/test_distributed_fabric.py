"""The distributed evaluation fabric: protocol, scheduling, failures.

End-to-end tests spawn real worker processes on ephemeral localhost
ports and drive them through ``evaluate_corpus(workers=...)`` — the
same code path ``repro evaluate --workers`` uses — asserting the
fabric's three contracts: results byte-identical (after
``normalize_result``) to a sequential run, per-CVE streamed progress,
and survival of worker crashes via bounded retry and local rescue.
"""

import socket
import threading
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro.compiler.cache import CacheStats, merge_stats_into
from repro.distributed import (
    Coordinator,
    DistributedExecutor,
    ProtocolError,
    parse_address,
    protocol,
    spawn_local_workers,
)
from repro.evaluation import (
    CORPUS,
    clear_caches,
    evaluate_corpus,
    normalize_result,
)
from repro.evaluation.engine import (
    EngineStats,
    _evaluate_group,
    _evaluate_parallel,
    _group_by_version,
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _slice(count=6, versions=2):
    """The first ``count`` CVEs spanning at most ``versions`` versions."""
    seen, chosen = [], []
    for spec in CORPUS:
        if spec.kernel_version not in seen:
            if len(seen) == versions:
                continue
            seen.append(spec.kernel_version)
        chosen.append(spec)
        if len(chosen) == count:
            break
    return chosen


@pytest.fixture(scope="module")
def sequential_results():
    clear_caches()
    report = evaluate_corpus(_slice(), run_stress=False)
    return [normalize_result(r) for r in report.results]


# -- protocol framing -------------------------------------------------------


def test_message_roundtrip_over_socketpair():
    left, right = socket.socketpair()
    try:
        message = {"type": "item", "specs": [1, 2, 3], "blob": b"x" * 1000}
        protocol.send_message(left, message)
        received = protocol.recv_message(right)
        assert received == message
        left.close()
        assert protocol.recv_message(right) is None  # clean EOF
    finally:
        right.close()


def test_oversized_frame_is_rejected_before_allocation():
    left, right = socket.socketpair()
    try:
        header = (protocol.MAX_FRAME + 4096).to_bytes(4, "big")
        left.sendall(header)
        with pytest.raises(ProtocolError):
            protocol.MessageStream(right).recv()
    finally:
        left.close()
        right.close()


def test_message_stream_survives_timeout_mid_frame():
    """A heartbeat timeout mid-frame must not desynchronize the wire."""
    from repro.distributed import wire
    from repro.distributed.protocol import pack_batch

    left, right = socket.socketpair()
    try:
        stream = protocol.MessageStream(right)
        frame = wire.encode_frame({"type": "item", "item_id": 7,
                                   "blob": b"y" * 4096})
        expected = wire.decode_frame(frame)
        record = pack_batch([frame])
        buf = len(record).to_bytes(4, "big") + record
        right.settimeout(0.05)
        left.sendall(buf[:100])  # first fragment only
        with pytest.raises(socket.timeout):
            stream.recv()
        left.sendall(buf[100:])  # the rest arrives later
        assert stream.recv() == expected
    finally:
        left.close()
        right.close()


def test_parse_address_validation():
    assert parse_address("10.0.0.1:5000") == ("10.0.0.1", 5000)
    assert parse_address("[::1]:80") == ("[::1]", 80)
    for bad in ("nocolon", ":5000", "host:", "host:abc", "host:70000"):
        with pytest.raises(ProtocolError):
            parse_address(bad)
    with pytest.raises(ProtocolError):
        parse_address("host:0")
    assert parse_address("host:0", allow_zero=True) == ("host", 0)


def test_version_mismatch_rejected_at_handshake():
    done = {}

    def fake_worker(listener):
        sock, _ = listener.accept()
        stream = protocol.accept_stream(sock, None)
        hello = stream.recv()
        done["version"] = hello["version"]
        stream.send({"type": protocol.ERROR,
                     "item_id": None,
                     "error": "protocol version mismatch"})
        sock.close()

    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    thread = threading.Thread(target=fake_worker, args=(listener,),
                              daemon=True)
    thread.start()
    stats = EngineStats()
    coordinator = Coordinator(["127.0.0.1:%d" % port],
                              connect_timeout=5.0)
    assert coordinator.run(_slice(2), run_stress=False,
                           stats=stats) is None
    assert "no workers reachable" in stats.fallback_reason
    thread.join(timeout=10.0)
    listener.close()
    assert done["version"] == protocol.PROTOCOL_VERSION


def test_stale_error_frame_does_not_fail_inflight_item():
    """An ERROR stamped with a *retired* item_id — a zombie thread from
    a previously abandoned item reporting late — must be discarded like
    stale results, not fail the item currently in flight."""
    fake_result = {"ok": True}

    def fake_worker(listener):
        sock, _ = listener.accept()
        sock.settimeout(10.0)
        stream = protocol.accept_stream(sock, None)
        assert stream.recv()["type"] == protocol.HELLO
        stream.send({"type": protocol.READY,
                     "version": protocol.PROTOCOL_VERSION})
        item = stream.recv()
        assert item["type"] == protocol.ITEM
        # Zombie noise first: an error for an item this coordinator
        # never dispatched to us (retired id).
        stream.send({"type": protocol.ERROR, "item_id": "i999",
                     "error": "late failure from an abandoned item"})
        stream.send({"type": protocol.RESULT,
                     "item_id": item["item_id"], "offset": 0,
                     "result": fake_result})
        stream.send({"type": protocol.ITEM_DONE,
                     "item_id": item["item_id"]})
        while True:
            message = stream.recv()
            if message is None or message["type"] == protocol.SHUTDOWN:
                break
        stream.close()

    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    thread = threading.Thread(target=fake_worker, args=(listener,),
                              daemon=True)
    thread.start()
    stats = EngineStats()
    coordinator = Coordinator(["127.0.0.1:%d" % port],
                              connect_timeout=5.0)
    results = coordinator.run(_slice(1), run_stress=False, stats=stats)
    thread.join(timeout=10.0)
    listener.close()
    assert results == [fake_result]
    assert stats.retries == 0  # the stale error cost nothing
    assert stats.local_rescues == 0


# -- end-to-end over spawned localhost workers ------------------------------


def test_distributed_matches_sequential(sequential_results):
    specs = _slice()
    workers = spawn_local_workers(2)
    stats = EngineStats()
    seen = []
    try:
        report = evaluate_corpus(
            specs, run_stress=False, stats=stats,
            workers=[w.address for w in workers],
            progress=lambda r: seen.append(r.cve_id))
    finally:
        for worker in workers:
            worker.stop()
    assert [normalize_result(r) for r in report.results] == \
        sequential_results
    assert not stats.fell_back
    assert stats.workers == 2
    # Streaming granularity: progress fired exactly once per CVE.
    assert sorted(seen) == sorted(s.cve_id for s in specs)
    # Work-stealing granularity: after each version's lead, the tail is
    # dispatched as single-CVE items — one work item per CVE overall.
    assert stats.work_items == len(specs)
    assert stats.groups == len(_group_by_version(specs))
    # Cache deltas rode back per item and were merged per worker.
    assert stats.combined_cache_stats().lookups > 0


def test_worker_killed_mid_run_is_retried(sequential_results):
    """A worker that dies with an item in flight must not lose it."""
    faulty = spawn_local_workers(1, fail_after_items=2)
    healthy = spawn_local_workers(1)
    stats = EngineStats()
    try:
        report = evaluate_corpus(
            _slice(), run_stress=False, stats=stats,
            workers=[faulty[0].address, healthy[0].address])
    finally:
        for worker in faulty + healthy:
            worker.stop()
    assert [normalize_result(r) for r in report.results] == \
        sequential_results
    assert not stats.fell_back
    assert stats.retries >= 1


def test_whole_fleet_dead_degrades_to_local_rescue(sequential_results):
    """Connected-then-crashed workers leave the coordinator to finish
    the corpus in-process — complete, identical results regardless."""
    doomed = spawn_local_workers(1, fail_after_items=1)
    stats = EngineStats()
    try:
        report = evaluate_corpus(_slice(), run_stress=False, stats=stats,
                                 workers=[doomed[0].address])
    finally:
        doomed[0].stop()
    assert [normalize_result(r) for r in report.results] == \
        sequential_results
    assert not stats.fell_back  # the distributed run *completed*
    assert stats.local_rescues == len(_slice())


def test_no_workers_reachable_falls_back(sequential_results):
    stats = EngineStats()
    report = evaluate_corpus(_slice(), run_stress=False, stats=stats,
                             workers=["127.0.0.1:9", "127.0.0.1:10"])
    assert stats.fell_back
    assert "no workers reachable" in stats.fallback_reason
    assert [normalize_result(r) for r in report.results] == \
        sequential_results


def test_unserializable_specs_fall_back_with_reason():
    """A class outside the wire's closed registry cannot cross: the
    coordinator refuses before connecting rather than failing mid-run."""
    from dataclasses import fields

    from repro.evaluation.specs import CveSpec

    class LocalSpec(CveSpec):
        pass

    local = LocalSpec(**{f.name: getattr(CORPUS[0], f.name)
                         for f in fields(CveSpec)})
    stats = EngineStats()
    coordinator = Coordinator(["127.0.0.1:9"])
    assert coordinator.run([local], run_stress=False, stats=stats) is None
    assert stats.fallback_reason == "unserializable specs"


def test_bad_worker_address_falls_back():
    stats = EngineStats()
    report = evaluate_corpus(_slice(2), run_stress=False, stats=stats,
                             workers=["not-an-address"])
    assert stats.fell_back
    assert "not-an-address" in stats.fallback_reason
    assert len(report.results) == 2


# -- the ProcessPoolExecutor-shaped surface ---------------------------------


def test_executor_slots_into_evaluate_parallel(sequential_results):
    """DistributedExecutor fills ProcessPoolExecutor's contract, so the
    engine's local parallel path runs unchanged against remote hosts."""
    specs = _slice()
    workers = spawn_local_workers(2)
    stats = EngineStats()
    try:
        results = _evaluate_parallel(
            specs, False, False, None, 4, stats,
            executor_factory=lambda n: DistributedExecutor(
                [w.address for w in workers]))
    finally:
        for worker in workers:
            worker.stop()
    assert results is not None
    assert [normalize_result(r) for r in results] == sequential_results


def test_executor_with_no_workers_raises_broken_executor():
    with pytest.raises(BrokenExecutor):
        DistributedExecutor(["127.0.0.1:9"])


def test_cache_delta_merge_across_two_workers_overlapping_keys():
    """Two workers that evaluate the *same* kernel version each pay for
    the same content keys; the merged stats must sum their deltas, not
    collapse them (satellite: overlapping-key delta merging)."""
    version = CORPUS[0].kernel_version
    same_version = [s for s in CORPUS if s.kernel_version == version][:2]
    assert len(same_version) == 2
    workers = spawn_local_workers(2)
    try:
        with DistributedExecutor([w.address for w in workers]) as pool:
            futures = [
                pool.submit(_evaluate_group,
                            (version, [spec], False, False, None))
                for spec in same_version]  # round-robin: one per worker
            deltas = [f.result()[1] for f in futures]
    finally:
        for worker in workers:
            worker.stop()
    merged = {}
    for delta in deltas:
        merge_stats_into(merged, delta)
    # Both workers were cold and saw no shared disk tier, so each one
    # missed the run-build key for this version once: the merged counter
    # must show both misses even though the content key is identical.
    assert deltas[0]["run-build"].misses == 1
    assert deltas[1]["run-build"].misses == 1
    assert merged["run-build"].misses == 2
    for name in merged:
        assert merged[name].hits == sum(d[name].hits for d in deltas)
        assert merged[name].misses == sum(d[name].misses for d in deltas)


def test_merge_stats_into_overlapping_names_pure():
    target = {}
    merge_stats_into(target, {"parse": CacheStats(hits=2, misses=1),
                              "compile": CacheStats(hits=1)})
    merge_stats_into(target, {"parse": CacheStats(hits=3, misses=4,
                                                  disk_hits=2)})
    assert target["parse"].hits == 5
    assert target["parse"].misses == 5
    assert target["parse"].disk_hits == 2
    assert target["compile"].hits == 1


# -- streaming progress -----------------------------------------------------


def test_distributed_progress_streams_per_cve():
    """Progress must fire per CVE as results stream in, not in one
    burst at the end: with a single worker evaluating sequentially,
    successive callbacks are separated by real evaluation time."""
    specs = _slice(4, versions=1)
    workers = spawn_local_workers(1)
    stamps = []
    try:
        evaluate_corpus(specs, run_stress=False,
                        workers=[workers[0].address],
                        progress=lambda r: stamps.append(
                            (time.perf_counter(), r.cve_id)))
    finally:
        workers[0].stop()
    assert len(stamps) == len(specs)
    assert len({cve for _, cve in stamps}) == len(specs)
    spread = stamps[-1][0] - stamps[0][0]
    # A per-group burst would deliver all callbacks within microseconds;
    # streamed delivery spreads them across the whole evaluation.
    assert spread > 0.01, "progress callbacks arrived in one burst"

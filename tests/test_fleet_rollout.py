"""Tests for the fleet rollout service: canary waves, health gating,
fault injection, automatic LIFO rollback, and the report model."""

import json

import pytest

from repro.fleet import (
    GREEN,
    OUTCOME_COMPLETE,
    OUTCOME_GATED,
    OUTCOME_HALTED,
    OUTCOME_ROLLED_BACK,
    RED,
    Fleet,
    InjectedFault,
    RolloutError,
    RolloutOrchestrator,
    RolloutPlan,
    RolloutReport,
    check_machine,
    replay_rollback,
    rollout_corpus_cve,
)
from repro.fleet.model import (
    MEMBER_LOST,
    MEMBER_OOPS,
    MEMBER_STACK_CHECK,
    MEMBER_UPDATED,
)

CVE = "CVE-2006-2451"  # analyzer-safe, has a semantics probe


# -- plan and fault model -----------------------------------------------------


def test_wave_sizes_canary_then_exponential():
    plan = RolloutPlan(cve_id=CVE, fleet_size=10, canary=1, growth=2)
    assert plan.wave_sizes() == [1, 2, 4, 3]
    assert sum(plan.wave_sizes()) == 10
    plan = RolloutPlan(cve_id=CVE, fleet_size=4, canary=2, growth=3)
    assert plan.wave_sizes() == [2, 2]


def test_plan_validation():
    with pytest.raises(RolloutError):
        RolloutPlan(cve_id=CVE, fleet_size=0)
    with pytest.raises(RolloutError):
        RolloutPlan(cve_id=CVE, fleet_size=2, canary=3)
    with pytest.raises(RolloutError):
        RolloutPlan(cve_id=CVE, fleet_size=2, growth=0)
    with pytest.raises(RolloutError):
        RolloutPlan(cve_id=CVE, fleet_size=2,
                    faults=[InjectedFault("oops", member=7)])


def test_fault_parse():
    fault = InjectedFault.parse("oops", "3:1")
    assert (fault.kind, fault.member, fault.wave) == ("oops", 3, 1)
    assert InjectedFault.parse("kill", "2").wave == 0
    with pytest.raises(RolloutError):
        InjectedFault.parse("oops", "three:one")
    with pytest.raises(RolloutError):
        InjectedFault("melt", member=0)


def test_plan_round_trips_through_json():
    plan = RolloutPlan(cve_id=CVE, fleet_size=6, canary=2, growth=3,
                       keepalive_instructions=500, probe=False,
                       faults=[InjectedFault.parse("wedge", "3:1")])
    clone = RolloutPlan.from_json_dict(
        json.loads(json.dumps(plan.to_json_dict())))
    assert clone == plan


# -- machine health primitives ------------------------------------------------


def _corpus_member():
    from repro.evaluation.kernels import kernel_for_version

    return Fleet.boot(kernel_for_version("2.6.16-deb3"), 1).members[0]


def test_machine_health_and_sleep_wake():
    member = _corpus_member()
    machine = member.machine
    health = machine.health()
    assert health.healthy
    assert health.oops_count == 0
    assert health.blocked_threads == 0

    spinner = [t for t in machine.scheduler.threads
               if t.name.startswith("keepalive")][0]
    machine.sleep_thread(spinner)
    assert machine.health().blocked_threads == 1
    # A blocked thread is alive (the stack check must scan it) but not
    # runnable (the scheduler must skip it).
    assert spinner.alive and not spinner.runnable
    machine.run(500)  # must not wedge on the blocked thread
    machine.wake_thread(spinner)
    assert machine.health().blocked_threads == 0
    with pytest.raises(Exception):
        machine.wake_thread(spinner)  # only BLOCKED threads wake


def test_oops_makes_machine_unhealthy():
    member = _corpus_member()
    machine = member.machine
    machine.create_thread(0x10, name="crasher")
    machine.run(200)
    health = machine.health()
    assert not health.healthy
    assert health.oops_count >= 1
    result = check_machine(machine, None, expect_patched=False)
    assert not result.healthy
    assert "oops" in result.reason_text()


# -- rollouts -----------------------------------------------------------------


def test_green_rollout_updates_whole_fleet():
    plan = RolloutPlan(cve_id=CVE, fleet_size=4, canary=1, growth=2)
    report = rollout_corpus_cve(plan)
    assert report.outcome == OUTCOME_COMPLETE
    assert report.gate_verdict == "safe"
    assert [w.verdict for w in report.waves] == [GREEN, GREEN, GREEN]
    assert [sorted(w.members) for w in report.waves] == [[0], [1, 2], [3]]
    assert report.updated_members == [0, 1, 2, 3]
    assert report.rolled_back_members == []
    assert report.survivors_healthy


def test_acceptance_oops_and_wedge_roll_back_the_wave():
    """The issue's acceptance scenario: one member oopses after its
    apply, another's stack check exhausts; the wave goes red, every
    member it patched is LIFO-undone, earlier waves stay patched."""
    plan = RolloutPlan(
        cve_id=CVE, fleet_size=6, canary=2,
        faults=[InjectedFault.parse("oops", "2:1"),
                InjectedFault.parse("wedge", "3:1")])
    report = rollout_corpus_cve(plan)
    assert report.outcome == OUTCOME_HALTED
    assert [w.verdict for w in report.waves] == [GREEN, RED]
    red = report.red_wave()
    assert sorted(red.members) == [2, 3, 4, 5]

    oopsed = red.report_for(2)
    assert oopsed.outcome == MEMBER_OOPS
    assert oopsed.applied and oopsed.rolled_back

    wedged = red.report_for(3)
    assert wedged.outcome == MEMBER_STACK_CHECK
    assert not wedged.applied  # apply is atomic: nothing to undo
    assert wedged.stack_check_attempts == 5
    assert "stop_machine attempts" in wedged.detail

    for index in (4, 5):
        innocent = red.report_for(index)
        assert innocent.outcome == MEMBER_UPDATED
        assert innocent.rolled_back

    # Blast radius is the failed wave: the canary wave stays patched.
    assert report.updated_members == [0, 1]
    assert report.rolled_back_members == [2, 4, 5]
    assert report.survivors_healthy


def test_kill_in_wave_is_lost_and_never_undone():
    plan = RolloutPlan(
        cve_id=CVE, fleet_size=3, canary=1,
        faults=[InjectedFault.parse("kill", "1:1")])
    report = rollout_corpus_cve(plan)
    assert report.outcome == OUTCOME_HALTED
    red = report.red_wave()
    lost = red.report_for(1)
    assert lost.outcome == MEMBER_LOST
    assert not lost.rolled_back  # unreachable machines cannot be undone
    assert report.lost_members == [1]
    assert 1 not in report.rolled_back_members


def test_reject_verdict_gates_the_rollout():
    from repro.evaluation.kernels import kernel_for_version

    class FakeAnalysis:
        verdict = "reject"

        def findings_for(self, verdict):
            return []

    fleet = Fleet.boot(kernel_for_version("2.6.16-deb3"), 2)
    plan = RolloutPlan(cve_id=CVE, fleet_size=2)
    orch = RolloutOrchestrator(fleet, plan)
    report = orch.run(pack=_any_pack(), analysis=FakeAnalysis())
    assert report.outcome == OUTCOME_GATED
    assert report.gate_verdict == "reject"
    assert report.waves == []  # no machine was touched
    assert report.updated_members == []


def _any_pack():
    from repro.core.create import CreateReport, ksplice_create
    from repro.evaluation.corpus import corpus_by_id
    from repro.evaluation.engine import run_build_for
    from repro.evaluation.kernels import kernel_for_version

    spec = corpus_by_id(CVE)
    kernel = kernel_for_version(spec.kernel_version)
    return ksplice_create(kernel.tree, kernel.patch_for(CVE),
                          description=spec.description,
                          report=CreateReport(),
                          run_build=run_build_for(kernel))


def test_unknown_cve_raises():
    with pytest.raises(RolloutError):
        rollout_corpus_cve(RolloutPlan(cve_id="CVE-0000-0000"))


# -- report model -------------------------------------------------------------


def test_report_json_is_deterministic_and_round_trips():
    plan = RolloutPlan(
        cve_id=CVE, fleet_size=4, canary=1,
        faults=[InjectedFault.parse("oops", "1:1")])
    first = rollout_corpus_cve(plan)
    second = rollout_corpus_cve(plan)
    assert first.to_json() == second.to_json()
    clone = RolloutReport.from_json_dict(json.loads(first.to_json()))
    assert clone.to_json() == first.to_json()
    rendered = first.render()
    assert "oops" in rendered and "rolled back" in rendered


def test_replay_rollback_reverses_updated_members():
    plan = RolloutPlan(cve_id=CVE, fleet_size=3)
    report = rollout_corpus_cve(plan)
    assert report.updated_members == [0, 1, 2]
    report = replay_rollback(report)
    assert report.outcome == OUTCOME_ROLLED_BACK
    assert report.updated_members == []
    assert report.rolled_back_members == [0, 1, 2]
    assert report.survivors_healthy

"""Tests for the MiniC tokenizer."""

import pytest

from repro.errors import CompileError
from repro.lang.lexer import TokenKind, tokenize


def kinds_and_texts(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


def test_empty_source_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_keywords_vs_identifiers():
    tokens = kinds_and_texts("int foo static struct bar")
    assert tokens == [
        (TokenKind.KEYWORD, "int"),
        (TokenKind.IDENT, "foo"),
        (TokenKind.KEYWORD, "static"),
        (TokenKind.KEYWORD, "struct"),
        (TokenKind.IDENT, "bar"),
    ]


def test_numbers_decimal_and_hex():
    tokens = kinds_and_texts("42 0x2A 0XFF")
    assert all(kind is TokenKind.NUMBER for kind, _ in tokens)
    assert [text for _, text in tokens] == ["42", "0x2A", "0XFF"]


def test_multi_char_punctuation_longest_match():
    tokens = [text for _, text in kinds_and_texts("a->b <<= >> == != ++ i--")]
    assert tokens == ["a", "->", "b", "<<=", ">>", "==", "!=", "++",
                      "i", "--"]


def test_line_comments_ignored():
    assert kinds_and_texts("x // comment\ny") == [
        (TokenKind.IDENT, "x"), (TokenKind.IDENT, "y")]


def test_block_comments_ignored_and_multiline():
    assert kinds_and_texts("a /* line1\nline2 */ b") == [
        (TokenKind.IDENT, "a"), (TokenKind.IDENT, "b")]


def test_line_numbers_tracked():
    tokens = tokenize("a\nb\n\nc")
    lines = {t.text: t.line for t in tokens[:-1]}
    assert lines == {"a": 1, "b": 2, "c": 4}


def test_bad_character_raises_with_line():
    with pytest.raises(CompileError) as exc:
        tokenize("x\n@")
    assert "line 2" in str(exc.value)


def test_underscore_identifiers():
    tokens = kinds_and_texts("__ksplice_apply__ _x x_1")
    assert all(kind is TokenKind.IDENT for kind, _ in tokens)

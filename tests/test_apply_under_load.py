"""Applying updates while the kernel is under load.

The paper's §6.2 criterion is that the kernel "continue functioning
without any observed problems while running a correctness-checking POSIX
stress test" — and §2 stresses that open applications and connections
survive.  Here the stress battery is *mid-flight* when the update lands:
in-progress syscalls, threads bouncing through the patched function, and
the stack check doing real work.
"""

from repro.core import KspliceCore, ksplice_create
from repro.evaluation import corpus_by_id
from repro.evaluation.kernels import kernel_for_version
from repro.evaluation.stress import STRESS_OK, BATTERY
from repro.kernel import boot_kernel
from repro.kernel.threads import ThreadStatus


def test_update_applies_while_stress_battery_runs():
    spec = corpus_by_id("CVE-2006-2451")
    kernel = kernel_for_version(spec.kernel_version)
    machine = boot_kernel(kernel.tree, quantum=20)
    core = KspliceCore(machine)

    threads = [(name, machine.load_user_program(source,
                                                name="mid-%s" % name))
               for name, source in BATTERY]
    machine.run(max_instructions=3_000)  # everyone is mid-flight
    in_flight = [t for _, t in threads if t.alive]
    assert in_flight, "battery finished too quickly to be a load test"

    pack = ksplice_create(kernel.tree, kernel.patch_for(spec.cve_id))
    applied = core.apply(pack)
    assert applied.stop_report.instructions_during_stop == 0

    machine.run(max_instructions=5_000_000)
    for name, thread in threads:
        assert thread.status is ThreadStatus.EXITED, name
        assert thread.exit_value == STRESS_OK, (name, thread.exit_value)

    # And the update is effective.
    exploit = kernel.exploit_source(spec)
    assert machine.run_user_program(exploit, name="x") == 1000


def test_update_to_hot_function_waits_for_callers():
    """Patch the very syscall the load is hammering: the stack check
    retries until a stop window finds it quiescent, then succeeds."""
    spec = corpus_by_id("CVE-2006-2451")
    kernel = kernel_for_version(spec.kernel_version)
    machine = boot_kernel(kernel.tree, quantum=13)
    core = KspliceCore(machine, stack_check_retries=50,
                       retry_run_instructions=3_000)

    hammer = machine.load_user_program("""
int main(void) {
    int denials = 0;
    for (int i = 0; i < 60; i++) {
        if (__syscall({sys_prctl}, 4, 2, 0) != 0) { denials++; }
    }
    return denials;
}
""".replace("{sys_prctl}", str(kernel.syscall_numbers["sys_prctl"])),
        name="hammer")
    machine.run(max_instructions=1_500)
    assert hammer.alive

    pack = ksplice_create(kernel.tree, kernel.patch_for(spec.cve_id))
    core.apply(pack)
    machine.run(max_instructions=3_000_000)
    assert hammer.status is ThreadStatus.EXITED
    # Calls before the update were allowed (dumpable=2 accepted), calls
    # after were denied: the flip happened mid-run.
    assert 0 < hammer.exit_value <= 60


def test_many_concurrent_updates_under_load():
    """Three stacked updates land while spinners run; everything stays
    coherent."""
    spec = corpus_by_id("CVE-2006-2451")
    kernel = kernel_for_version(spec.kernel_version)
    machine = boot_kernel(kernel.tree, quantum=17)
    core = KspliceCore(machine)

    spin_num = kernel.syscall_numbers["sys_spin"]
    spinners = [machine.load_user_program(
        "int main(void) { return __syscall(%d, 2500, 0, 0); }" % spin_num,
        name="spin-%d" % i) for i in range(3)]
    machine.run(max_instructions=3_000)

    tree = kernel.tree
    current = tree.read("kernel/prctl.c")
    packs = []
    thresholds = [(2, 1), (1, 0), (0, 1)]  # each a real code change
    for old_limit, new_limit in thresholds:
        new = current.replace(
            "if (val < 0 || val > %d)" % old_limit,
            "if (val < 0 || val > %d)" % new_limit)
        assert new != current
        from repro.patch import make_patch

        files_old = dict(tree.files)
        files_old["kernel/prctl.c"] = current
        files_new = dict(files_old)
        files_new["kernel/prctl.c"] = new
        pack = ksplice_create(
            type(tree)(version=tree.version, files=files_old),
            make_patch(files_old, files_new))
        packs.append(pack)
        core.apply(pack)
        machine.run(max_instructions=50_000)
        current = new

    machine.run(max_instructions=5_000_000)
    for spinner in spinners:
        assert spinner.exit_value == 2500
    # LIFO undo of the whole stack while the machine stays healthy.
    for pack in reversed(packs):
        core.undo(pack.update_id)
    assert machine.call_function("sys_getuid", [0, 0, 0]) == 1000

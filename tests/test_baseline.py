"""Tests for the source-level baseline updater and its failure modes."""

from repro.baseline import BaselineFailure, SourceLevelUpdater
from repro.core import KspliceCore, ksplice_create
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.patch import make_patch

ENTRY_S = """
.global syscall_entry
syscall_entry:
    cmpi r0, 2
    jge bad_sys
    cmpi r0, 0
    jl bad_sys
    push r3
    push r2
    push r1
    movi r4, 4
    mul r0, r4
    lea r4, sys_call_table
    add r4, r0
    loadr r4, r4, 0
    callr r4
    addi sp, 12
    ret
bad_sys:
    movi r0, -38
    ret
.section .data
sys_call_table:
    .word sys_setuid, sys_getuid
"""

CRED_C = """
int current_uid = 1000;

static int uid_ok(int uid) { return uid >= 0; }

int sys_setuid(int uid, int b, int c) {
    if (!uid_ok(uid)) { return -1; }
    current_uid = uid;
    return 0;
}

int sys_getuid(int a, int b, int c) {
    return current_uid;
}
"""

TREE = SourceTree(version="base-test", files={
    "arch/entry.s": ENTRY_S,
    "kernel/cred.c": CRED_C,
})

EXPLOIT = """
int main(void) {
    __syscall(0, 0, 0, 0);
    return __syscall(1, 0, 0, 0);
}
"""


def patch_for(new_cred, tree=TREE):
    files = dict(tree.files)
    files["kernel/cred.c"] = new_cred
    return make_patch(tree.files, files)


def test_baseline_succeeds_on_simple_patch():
    machine = boot_kernel(TREE)
    updater = SourceLevelUpdater(machine)
    diff = patch_for(CRED_C.replace(
        "    current_uid = uid;",
        "    if (uid == 0 && current_uid != 0) { return -1; }\n"
        "    current_uid = uid;"))
    result = updater.apply(TREE, diff)
    assert result.success
    assert result.replaced_functions == ["sys_setuid"]
    assert machine.run_user_program(EXPLOIT, name="x") == 1000


def test_baseline_refuses_assembly_patch():
    machine = boot_kernel(TREE)
    updater = SourceLevelUpdater(machine)
    files = dict(TREE.files)
    files["arch/entry.s"] = ENTRY_S.replace("cmpi r0, 2", "cmpi r0, 1")
    result = updater.apply(TREE, make_patch(TREE.files, files))
    assert not result.success
    assert result.failure is BaselineFailure.ASSEMBLY_FILE


def test_baseline_refuses_signature_change():
    machine = boot_kernel(TREE)
    updater = SourceLevelUpdater(machine)
    new_cred = CRED_C.replace(
        "static int uid_ok(int uid) { return uid >= 0; }",
        "static int uid_ok(int uid, int strict) "
        "{ return uid >= 0 && (!strict || uid > 0); }").replace(
        "if (!uid_ok(uid)) { return -1; }",
        "if (!uid_ok(uid, 1)) { return -1; }")
    result = updater.apply(TREE, patch_for(new_cred))
    assert not result.success
    assert result.failure is BaselineFailure.SIGNATURE_CHANGE


def test_baseline_refuses_static_local():
    tree = SourceTree(version="t", files={
        "arch/entry.s": ENTRY_S,
        "kernel/cred.c": CRED_C.replace(
            "int sys_getuid(int a, int b, int c) {\n    return current_uid;",
            "int sys_getuid(int a, int b, int c) {\n"
            "    static int queries = 0;\n"
            "    queries++;\n"
            "    return current_uid;"),
    })
    machine = boot_kernel(tree)
    updater = SourceLevelUpdater(machine)
    new = tree.files["kernel/cred.c"].replace("return current_uid;",
                                              "return current_uid + 0;")
    result = updater.apply(tree, patch_for(new, tree))
    assert not result.success
    assert result.failure is BaselineFailure.STATIC_LOCAL


def test_baseline_fails_on_ambiguous_symbol():
    tree = SourceTree(version="t", files={
        "arch/entry.s": ENTRY_S,
        "kernel/cred.c": CRED_C.replace(
            "int current_uid = 1000;",
            "int current_uid = 1000;\nstatic int debug;").replace(
            "    current_uid = uid;",
            "    debug = uid;\n    current_uid = uid;"),
        "drivers/dst.c": "static int debug;\n"
                         "int dst_probe(void) { debug = 1; return debug; }",
    })
    machine = boot_kernel(tree)
    updater = SourceLevelUpdater(machine)
    new = tree.files["kernel/cred.c"].replace(
        "    debug = uid;", "    debug = uid + 1;")
    result = updater.apply(tree, patch_for(new, tree))
    assert not result.success
    assert result.failure is BaselineFailure.AMBIGUOUS_SYMBOL

    # Ksplice handles the same patch via run-pre matching.
    core = KspliceCore(machine)
    pack = ksplice_create(tree, patch_for(new, tree))
    core.apply(pack)


def test_baseline_misses_inlined_copy_ksplice_does_not():
    """The unsafe case: patching uid_ok only replaces uid_ok's standalone
    body; the copy inlined into sys_setuid keeps running.  The baseline
    reports success, but the exploit still works."""
    new_cred = CRED_C.replace("{ return uid >= 0; }",
                              "{ return uid > 0; }")

    machine = boot_kernel(TREE)
    updater = SourceLevelUpdater(machine)
    result = updater.apply(TREE, patch_for(new_cred))
    assert result.success  # silently unsafe!
    assert machine.run_user_program(EXPLOIT, name="bx") == 0  # still root

    fresh = boot_kernel(TREE)
    core = KspliceCore(fresh)
    core.apply(ksplice_create(TREE, patch_for(new_cred)))
    assert fresh.run_user_program(EXPLOIT, name="kx") == 1000  # fixed


def test_baseline_no_changes():
    machine = boot_kernel(TREE)
    updater = SourceLevelUpdater(machine)
    new = CRED_C.replace("int current_uid = 1000;",
                         "int current_uid = 1000; // audited")
    result = updater.apply(TREE, patch_for(new))
    assert not result.success
    assert result.failure is BaselineFailure.NO_CHANGES

"""Failure injection: every abort path must leave the kernel untouched.

The paper's safety story is that Ksplice *aborts* rather than installs a
wrong update.  These tests corrupt inputs and exhaust resources at each
stage and verify (a) the right error surfaces and (b) the running kernel
is exactly as it was — memory, modules, and behaviour.
"""

import pytest

from repro.core import KspliceCore, UpdatePack, ksplice_create
from repro.errors import (
    KspliceError,
    MachineError,
    ModuleLoadError,
    RunPreMismatchError,
    StackCheckError,
    SymbolResolutionError,
    UpdateStateError,
)
from repro.kbuild import SourceTree
from repro.kernel import Machine, boot_kernel
from repro.linker import link_kernel
from repro.kbuild import build_tree
from repro.patch import make_patch

ENTRY_S = """
.global syscall_entry
syscall_entry:
    cmpi r0, 2
    jge bad_sys
    cmpi r0, 0
    jl bad_sys
    push r3
    push r2
    push r1
    movi r4, 4
    mul r0, r4
    lea r4, sys_call_table
    add r4, r0
    loadr r4, r4, 0
    callr r4
    addi sp, 12
    ret
bad_sys:
    movi r0, -38
    ret
.section .data
sys_call_table:
    .word sys_value, sys_spin
"""

VALUE_C = """
int stored_value = 7;

int sys_value(int a, int b, int c) {
    return stored_value * 3;
}

int sys_spin(int n, int b, int c) {
    int i = 0;
    while (i < n) { i++; __sched(); }
    return i;
}
"""

TREE = SourceTree(version="inject-test", files={
    "arch/entry.s": ENTRY_S,
    "kernel/value.c": VALUE_C,
})


def fresh():
    machine = boot_kernel(TREE)
    return machine, KspliceCore(machine)


def good_pack():
    new_files = dict(TREE.files)
    new_files["kernel/value.c"] = VALUE_C.replace("stored_value * 3",
                                                  "stored_value * 4")
    return ksplice_create(TREE, make_patch(TREE.files, new_files))


def kernel_behaves_originally(machine):
    return machine.call_function("sys_value", [0, 0, 0]) == 21


def snapshot(machine, core):
    return (machine.loader.resident_bytes(),
            bytes(machine.memory.segment("kernel").data),
            len(core.applied))


def assert_untouched(machine, core, before):
    assert snapshot(machine, core) == before
    assert kernel_behaves_originally(machine)


def test_corrupted_pack_bytes_rejected():
    machine, core = fresh()
    raw = bytearray(good_pack().to_bytes())
    raw[10] ^= 0xFF
    with pytest.raises(KspliceError):
        UpdatePack.from_bytes(bytes(raw))


def test_truncated_pack_rejected():
    raw = good_pack().to_bytes()
    with pytest.raises(KspliceError):
        UpdatePack.from_bytes(raw[: len(raw) // 2])


def test_corrupted_helper_section_aborts_cleanly():
    machine, core = fresh()
    before = snapshot(machine, core)
    pack = good_pack()
    helper = pack.units[0].helper
    section = helper.section(".text.sys_value")
    data = bytearray(section.data)
    data[6] ^= 0x01  # flip a bit inside an instruction operand
    section.data = bytes(data)
    with pytest.raises((RunPreMismatchError, SymbolResolutionError)):
        core.apply(pack)
    assert_untouched(machine, core, before)


def test_primary_referencing_ghost_symbol_aborts_cleanly():
    machine, core = fresh()
    before = snapshot(machine, core)
    pack = good_pack()
    primary = pack.units[0].primary
    section = primary.section(".text.sys_value")
    for reloc in section.relocations:
        if reloc.symbol == "stored_value":
            reloc.symbol = "ghost_symbol"
    primary.ensure_undefined(["ghost_symbol"])
    with pytest.raises(SymbolResolutionError):
        core.apply(pack)
    assert_untouched(machine, core, before)


def test_module_area_exhaustion_aborts_cleanly():
    machine, core = fresh()
    # Burn almost the whole module area with junk modules.
    from repro.objfile import ObjectFile, Section, SectionKind

    filler = ObjectFile(name="filler")
    filler.add_section(Section(name=".data", kind=SectionKind.DATA,
                               data=bytes(1 << 20), alignment=4))
    for _ in range(3):
        machine.loader.load(filler, resolver=lambda name: 0)
    # Leave just a few hundred bytes: far too little for the helper.
    remaining = machine.memory.segment("modules").end \
        - machine.loader._cursor
    junk = ObjectFile(name="junk")
    junk.add_section(Section(name=".data", kind=SectionKind.DATA,
                             data=bytes(remaining - 64), alignment=4))
    machine.loader.load(junk, resolver=lambda name: 0)

    before_behaviour = kernel_behaves_originally(machine)
    with pytest.raises(ModuleLoadError):
        core.apply(good_pack())
    assert before_behaviour and kernel_behaves_originally(machine)
    assert not core.applied


def test_hook_runaway_loop_hits_budget_and_rolls_back():
    machine, core = fresh()
    before = snapshot(machine, core)
    new_files = dict(TREE.files)
    new_files["kernel/value.c"] = VALUE_C.replace(
        "stored_value * 3", "stored_value * 4") + """
int ksplice_runaway(void) {
    int x = 1;
    while (x) { x = x + 1; if (!x) { x = 1; } }
    return 0;
}
__ksplice_apply__(ksplice_runaway);
"""
    pack = ksplice_create(TREE, make_patch(TREE.files, new_files))
    with pytest.raises((KspliceError, MachineError)):
        core.apply(pack)
    assert_untouched(machine, core, before)
    assert not core.applied


def test_hook_oops_aborts_and_rolls_back():
    machine, core = fresh()
    new_files = dict(TREE.files)
    new_files["kernel/value.c"] = VALUE_C.replace(
        "stored_value * 3", "stored_value * 4") + """
int ksplice_crasher(void) {
    int z = 0;
    return 1 / z;
}
__ksplice_apply__(ksplice_crasher);
"""
    pack = ksplice_create(TREE, make_patch(TREE.files, new_files))
    with pytest.raises((KspliceError, MachineError)):
        core.apply(pack)
    assert kernel_behaves_originally(machine)
    assert not core.applied


def test_stack_check_catches_return_address_not_just_ip():
    """Park a thread whose *stack* (not instruction pointer) holds a
    return address into the patched function: the conservative scan
    must refuse."""
    machine, core = fresh()
    # sys_spin calls __sched in a loop; a thread inside it has sys_spin
    # frames on its stack while its IP may sit in the scheduler's path.
    spinner = machine.load_user_program(
        "int main(void) { return __syscall(1, 100000000, 0, 0); }",
        name="deep-sleeper")
    machine.run(max_instructions=2_000)
    assert spinner.alive

    new_files = dict(TREE.files)
    new_files["kernel/value.c"] = VALUE_C.replace(
        "    int i = 0;",
        "    int i = 0;\n    if (n < 0) { return -22; }")
    pack = ksplice_create(TREE, make_patch(TREE.files, new_files))
    assert pack.all_changed_functions() == ["sys_spin"]
    with pytest.raises(StackCheckError):
        core.apply(pack)
    assert kernel_behaves_originally(machine)


def test_undo_waits_for_threads_to_leave_replacement_code():
    machine, core = fresh()
    pack = good_pack()
    core.apply(pack)
    # A thread bounded inside the *replacement* sys_spin?  sys_spin was
    # not replaced; park one inside it anyway and undo sys_value, which
    # is unaffected: undo must succeed.
    spinner = machine.load_user_program(
        "int main(void) { return __syscall(1, 60, 0, 0); }", name="s")
    machine.run(max_instructions=500)
    core.undo(pack.update_id)
    assert kernel_behaves_originally(machine)
    machine.run(max_instructions=100_000)
    assert spinner.exit_value == 60


def test_double_undo_rejected():
    machine, core = fresh()
    pack = good_pack()
    core.apply(pack)
    core.undo(pack.update_id)
    with pytest.raises(UpdateStateError):
        core.undo(pack.update_id)


def test_failed_apply_can_be_retried_after_fixing_cause():
    """A stack-check abort is not fatal: once the offending thread
    leaves, the same pack applies."""
    machine, core = fresh()
    spinner = machine.load_user_program(
        "int main(void) { return __syscall(1, 120, 0, 0); }", name="w")
    machine.run(max_instructions=300)

    new_files = dict(TREE.files)
    new_files["kernel/value.c"] = VALUE_C.replace(
        "    int i = 0;", "    int i = 0;\n    if (n < 0) { return -22; }")
    pack = ksplice_create(TREE, make_patch(TREE.files, new_files))
    core_strict = KspliceCore(machine, stack_check_retries=1,
                              retry_run_instructions=10)
    try:
        core_strict.apply(pack)
        applied_first_time = True
    except StackCheckError:
        applied_first_time = False
    if applied_first_time:
        return  # thread left quickly; nothing more to show
    machine.run(max_instructions=200_000)  # let the spinner finish
    assert not spinner.alive
    core_strict.apply(pack)  # retry succeeds
    assert machine.call_function("sys_spin", [3, 0, 0]) == 3


def test_signed_module_policy_blocks_unsigned_core():
    image = link_kernel(build_tree(TREE))
    machine = Machine(image, require_signed_modules=True)
    # The ksplice core module loads as signed; policy holds for others.
    core = KspliceCore(machine)
    from repro.objfile import ObjectFile, Section, SectionKind

    rogue = ObjectFile(name="rogue")
    rogue.add_section(Section(name=".text", kind=SectionKind.TEXT,
                              data=b"\x42", alignment=4))
    with pytest.raises(ModuleLoadError):
        machine.loader.load(rogue, resolver=lambda n: 0, signed=False)
    # Signed updates still apply under the policy.
    core.apply(good_pack())
    assert machine.call_function("sys_value", [0, 0, 0]) == 28

"""Property-based consistency between static verdicts and dynamic
outcomes.

Each example takes a CVE's fix — from the seed corpus or from a
factory-generated scenario — and mutates it with one of the
:data:`repro.scenarios.fuzz.OPERATORS`, then runs the full analyzer
over the mutated patch and checks the contract the proof engine
promises (shared with the fuzz harness via
:func:`~repro.scenarios.fuzz.check_mutant_contract`):

* whatever the mutation did, the verdict is from the lattice and
  (when the run kernel was analyzed) backed by evidence
  (:meth:`AnalysisReport.is_proven`);
* a ``safe`` verdict is a real promise: the mutated pack must apply
  cleanly to a booted kernel;
* a ``reject`` maps to exit code 3 and ``needs-*`` to exit code 2,
  the codes the publish gate keys off.

Mutations that break the build are legitimate outcomes — the pipeline
refused them with a diagnostic — so those examples pass vacuously.
"""

import random

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import ksplice_create
from repro.core.create import CreateReport
from repro.errors import ReproError
from repro.evaluation.corpus import corpus_by_id
from repro.evaluation.engine import run_build_for
from repro.evaluation.kernels import kernel_for_version
from repro.patch import make_patch
from repro.scenarios import GeneratedCorpus, OPERATORS, mutate_unit
from repro.scenarios.fuzz import check_mutant_contract

#: small, single-unit corpus entries — cheap to rebuild per example
CVE_IDS = (
    "CVE-2005-3847",
    "CVE-2006-0095",
    "CVE-2006-6106",
    "CVE-2007-2453",
    "CVE-2007-5904",
)

#: a bounded factory corpus joins the pool: one kernel-version group,
#: so every generated example shares one cached build
_GENERATED = {spec.cve_id: spec
              for spec in GeneratedCorpus.generate(2024, 6).specs()}


def _spec_for(cve_id):
    return _GENERATED.get(cve_id) or corpus_by_id(cve_id)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(cve_id=st.sampled_from(CVE_IDS + tuple(sorted(_GENERATED))),
       operator=st.sampled_from(OPERATORS),
       site=st.integers(min_value=0, max_value=2 ** 16))
def test_mutated_patches_keep_verdicts_and_outcomes_consistent(
        cve_id, operator, site):
    spec = _spec_for(cve_id)
    kernel = kernel_for_version(spec.kernel_version)
    run_build = run_build_for(kernel)

    fixed = kernel.fixed_tree(spec.cve_id, augmented=False)
    mutated_unit = mutate_unit(kernel.tree.read(spec.unit),
                               fixed.read(spec.unit), operator,
                               random.Random(site))
    assume(mutated_unit is not None)
    files = dict(fixed.files)
    files[spec.unit] = mutated_unit
    patch = make_patch(kernel.tree.files, files)

    report = CreateReport()
    try:
        pack = ksplice_create(kernel.tree, patch,
                              allow_data_changes=True, report=report,
                              run_build=run_build)
    except ReproError:
        return  # the mutation broke the patch/build: refused up front

    problems = check_mutant_contract(report.analysis, pack, kernel,
                                     run_build)
    assert not problems, "\n".join(problems)

"""Property-based consistency between static verdicts and dynamic
outcomes.

Each example takes a corpus CVE's fix and mutates it — dropping the
hunk, swapping a callee, or widening an array field — then runs the
full analyzer over the mutated patch and checks the contract the
proof engine promises:

* whatever the mutation did, the verdict is from the lattice and
  (when the run kernel was analyzed) backed by evidence
  (:meth:`AnalysisReport.is_proven`);
* a ``safe`` verdict is a real promise: the mutated pack must apply
  cleanly to a booted kernel;
* a ``reject`` maps to exit code 3 and ``needs-*`` to exit code 2,
  the codes the publish gate keys off.

Mutations that break the build are legitimate outcomes — the pipeline
refused them with a diagnostic — so those examples pass vacuously.
"""

import re

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis.model import (
    PROOF_KINDS,
    VERDICT_EXIT_CODES,
    VERDICT_REJECT,
    VERDICT_SAFE,
    VERDICT_SEVERITY,
)
from repro.core import KspliceCore, ksplice_create
from repro.core.create import CreateReport
from repro.errors import ReproError
from repro.evaluation.corpus import corpus_by_id
from repro.evaluation.engine import run_build_for
from repro.evaluation.kernels import kernel_for_version
from repro.kernel import boot_kernel
from repro.patch import make_patch

#: small, single-unit corpus entries — cheap to rebuild per example
CVE_IDS = (
    "CVE-2005-3847",
    "CVE-2006-0095",
    "CVE-2006-6106",
    "CVE-2007-2453",
    "CVE-2007-5904",
)

MUTATIONS = ("drop-hunk", "swap-callee", "widen-field")


def _defined_functions(text):
    return re.findall(r"^int (\w+)\(", text, re.M)


def mutate_fixed_unit(pre_text, fixed_text, mutation):
    """Apply one mutation to the fixed unit, or None if inapplicable."""
    if mutation == "drop-hunk":
        # revert the fix: the patch collapses to nothing
        return pre_text
    if mutation == "swap-callee":
        functions = _defined_functions(fixed_text)
        calls = [name for name in functions
                 if re.search(r"(?<!int )\b%s\(" % name, fixed_text)]
        if len(functions) < 2 or not calls:
            return None
        target = calls[0]
        replacement = next((f for f in functions if f != target), None)
        if replacement is None:
            return None
        return re.sub(r"(?<!int )\b%s\(" % target, replacement + "(",
                      fixed_text, count=1)
    if mutation == "widen-field":
        match = re.search(r"\[(\d+)\]", fixed_text)
        if match is None:
            return None
        widened = "[%d]" % (int(match.group(1)) * 2)
        return fixed_text[:match.start()] + widened \
            + fixed_text[match.end():]
    raise AssertionError(mutation)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(cve_id=st.sampled_from(CVE_IDS),
       mutation=st.sampled_from(MUTATIONS))
def test_mutated_patches_keep_verdicts_and_outcomes_consistent(
        cve_id, mutation):
    spec = corpus_by_id(cve_id)
    kernel = kernel_for_version(spec.kernel_version)
    run_build = run_build_for(kernel)

    fixed = kernel.fixed_tree(spec.cve_id, augmented=False)
    mutated_unit = mutate_fixed_unit(kernel.tree.read(spec.unit),
                                     fixed.read(spec.unit), mutation)
    assume(mutated_unit is not None)
    files = dict(fixed.files)
    files[spec.unit] = mutated_unit
    patch = make_patch(kernel.tree.files, files)

    report = CreateReport()
    try:
        pack = ksplice_create(kernel.tree, patch,
                              allow_data_changes=True, report=report,
                              run_build=run_build)
    except ReproError:
        return  # the mutation broke the patch/build: refused up front

    analysis = report.analysis
    assert analysis is not None
    assert analysis.verdict in VERDICT_SEVERITY
    assert analysis.exit_code() == VERDICT_EXIT_CODES[analysis.verdict]
    if analysis.run_build_analyzed:
        # whatever the verdict, it must be evidence-backed
        assert analysis.is_proven()
    for finding in analysis.findings:
        kinds = PROOF_KINDS.get(finding.verdict)
        if kinds:
            matching = [e for e in analysis.evidence
                        if e.kind in kinds and e.sites]
            assert matching, ("finding %s/%s carries no witness"
                              % (finding.verdict, finding.symbol))

    if not pack.units:
        assert analysis.verdict == VERDICT_SAFE
        return
    if analysis.verdict == VERDICT_REJECT:
        return  # the gate refuses these; applying is out of contract

    if analysis.verdict == VERDICT_SAFE:
        # a proven-safe verdict promises a clean hot apply
        machine = boot_kernel(kernel.tree, build=run_build)
        applied = KspliceCore(machine).apply(pack)
        assert applied.replaced or pack.all_changed_functions() == []

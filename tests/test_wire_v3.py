"""Property tests for the protocol v3 binary codec and session crypto.

Hypothesis drives three invariants the fabric depends on:

* **round-trip identity** — any encodable message comes back equal
  through ``encode_frame``/``decode_frame`` (and any kpack-able value
  through ``kpack``/``kunpack``);
* **no raw decode errors** — truncated, corrupted, or hostile bytes
  raise :class:`WireError` / :class:`ProtocolError`, never a raw
  ``struct.error`` / ``UnicodeDecodeError`` / ``IndexError`` that
  would leak codec internals into the fabric's error handling;
* **version fencing** — a peer speaking protocol v2 (or any other
  version) is rejected with an explicit upgrade message, at the frame
  layer and at the handshake banner.
"""

import socket
import struct

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis ships in the image
    pytest.skip("hypothesis unavailable", allow_module_level=True)

from repro.distributed import protocol, wire
from repro.distributed.crypto import (
    FrameAuthError,
    SessionKeys,
)
from repro.distributed.protocol import ProtocolError
from repro.distributed.wire import WireError

# -- strategies --------------------------------------------------------------

# Text that survives a round trip must be valid UTF-8 (no lone
# surrogates) — exactly what the fabric ships.
_text = st.text(alphabet=st.characters(codec="utf-8"), max_size=40)

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    st.floats(allow_nan=False),
    _text,
    st.binary(max_size=200),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(_text, children, max_size=4),
        st.sets(st.integers(min_value=-1000, max_value=1000),
                max_size=4),
    ),
    max_leaves=20,
)

_messages = st.fixed_dictionaries(
    {"type": st.sampled_from(["hello", "ready", "item", "error",
                              "shutdown"])},
    optional={
        "item_id": st.integers(min_value=0, max_value=2 ** 31),
        "blob": st.binary(max_size=200),
        "nested": _values,
    },
)


# -- round-trip identity -----------------------------------------------------


@given(_values)
@settings(max_examples=200)
def test_kpack_roundtrip_identity(value):
    assert wire.kunpack(wire.kpack(value)) == value


@given(_messages)
@settings(max_examples=200)
def test_frame_roundtrip_identity(message):
    assert wire.decode_frame(wire.encode_frame(message)) == message


@given(st.integers(min_value=0, max_value=2 ** 63 - 1),
       _text.filter(lambda t: "\x00" not in t),
       st.binary(max_size=300))
def test_update_frame_roundtrip(seq, cve_id, payload):
    message = {"type": protocol.UPDATE, "seq": seq,
               "cve_id": cve_id, "payload": payload}
    assert wire.decode_frame(wire.encode_frame(message)) == message


@given(st.integers(min_value=0, max_value=2 ** 63 - 1),
       st.integers(min_value=0, max_value=255),
       _text)
def test_ack_frame_roundtrip(seq, status, member_id):
    message = {"type": protocol.ACK, "seq": seq, "status": status,
               "member_id": member_id}
    assert wire.decode_frame(wire.encode_frame(message)) == message


def test_registered_object_roundtrip():
    from repro.evaluation import CORPUS

    spec = CORPUS[0]
    back = wire.kunpack(wire.kpack(spec))
    assert type(back) is type(spec)
    assert back == spec


# -- hostile bytes never leak raw errors -------------------------------------

_RAW_ERRORS = (struct.error, UnicodeDecodeError, IndexError, KeyError,
               ValueError, MemoryError, OverflowError)


@given(_messages, st.integers(min_value=0, max_value=400))
@settings(max_examples=200)
def test_truncated_frame_is_wire_error(message, cut):
    frame = wire.encode_frame(message)
    truncated = frame[:min(cut, max(0, len(frame) - 1))]
    try:
        wire.decode_frame(truncated)
    except WireError:
        pass
    except _RAW_ERRORS as exc:  # pragma: no cover - the regression
        pytest.fail("raw %s leaked: %s" % (type(exc).__name__, exc))


@given(_messages, st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=0, max_value=255))
@settings(max_examples=200)
def test_corrupted_frame_never_leaks_raw_errors(message, index, byte):
    frame = bytearray(wire.encode_frame(message))
    frame[index % len(frame)] = byte
    try:
        decoded = wire.decode_frame(bytes(frame))
    except WireError:
        return
    except _RAW_ERRORS as exc:  # pragma: no cover - the regression
        pytest.fail("raw %s leaked: %s" % (type(exc).__name__, exc))
    assert isinstance(decoded, dict)  # lucky corruption must still parse


@given(st.binary(max_size=400))
@settings(max_examples=200)
def test_random_bytes_are_wire_error(blob):
    try:
        decoded = wire.decode_frame(blob)
    except WireError:
        return
    except _RAW_ERRORS as exc:  # pragma: no cover - the regression
        pytest.fail("raw %s leaked: %s" % (type(exc).__name__, exc))
    assert isinstance(decoded, dict)


@given(st.binary(max_size=200))
@settings(max_examples=200)
def test_random_batch_split_is_protocol_error(blob):
    try:
        frames = protocol.split_batch(blob, protocol.MAX_FRAME)
    except ProtocolError:
        return
    except _RAW_ERRORS as exc:  # pragma: no cover - the regression
        pytest.fail("raw %s leaked: %s" % (type(exc).__name__, exc))
    assert all(isinstance(f, bytes) for f in frames)


@given(st.lists(st.binary(min_size=1, max_size=100), min_size=1,
                max_size=8))
def test_batch_roundtrip(frames):
    blob = protocol.pack_batch(frames)
    assert protocol.split_batch(blob, protocol.MAX_FRAME) == frames


# -- session crypto ----------------------------------------------------------


def _pair():
    keys = SessionKeys.from_master(b"m" * 32, authenticated=True)
    from repro.distributed.crypto import _pair_for

    return _pair_for(keys, "client"), _pair_for(keys, "worker")


@given(st.binary(min_size=1, max_size=500))
@settings(max_examples=100)
def test_seal_open_roundtrip(plaintext):
    client, worker = _pair()
    assert worker.rx.open(client.tx.seal(plaintext)) == plaintext


@given(st.binary(min_size=1, max_size=200),
       st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=0, max_value=255))
@settings(max_examples=100)
def test_tampered_record_is_rejected(plaintext, index, byte):
    client, worker = _pair()
    record = bytearray(client.tx.seal(plaintext))
    position = index % len(record)
    if record[position] == byte:
        byte = (byte + 1) % 256
    record[position] = byte
    with pytest.raises(FrameAuthError):
        worker.rx.open(bytes(record))


def test_replayed_record_is_rejected():
    client, worker = _pair()
    record = client.tx.seal(b"only once")
    assert worker.rx.open(record) == b"only once"
    with pytest.raises(FrameAuthError):
        worker.rx.open(record)


# -- version fencing ---------------------------------------------------------


@given(st.integers(min_value=0, max_value=255)
       .filter(lambda v: v != wire.WIRE_VERSION))
def test_other_frame_versions_rejected_with_upgrade_message(version):
    frame = bytearray(wire.encode_frame({"type": "shutdown"}))
    frame[0] = version
    with pytest.raises(WireError, match="upgrade both ends"):
        wire.decode_frame(bytes(frame))


def test_v2_pickle_banner_rejected_at_handshake():
    """A v2 worker opened the session with a raw pickled HELLO (or the
    HMAC AUTH banner) — no KSP3 magic either way.  The v3 client must
    name the version mismatch, not crash parsing garbage."""
    import pickle

    from repro.distributed.crypto import ClientHandshake

    for v2_banner in (
            pickle.dumps({"type": "hello", "version": 2}),
            b"AUTH?" + b"\x00" * 16):
        handshake = ClientHandshake(None)
        with pytest.raises(Exception, match="v2 or older|v3 required"):
            handshake.respond(v2_banner)


def test_v2_style_client_rejected_by_worker():
    """A coordinator that skips the crypto handshake and speaks
    length-prefixed pickle at a v3 worker is dropped cleanly."""
    left, right = socket.socketpair()
    try:
        import pickle

        payload = pickle.dumps({"type": "hello", "version": 2})
        left.sendall(len(payload).to_bytes(8, "big") + payload)
        with pytest.raises((ProtocolError, ConnectionError)):
            protocol.accept_stream(right, None)
    finally:
        left.close()
        right.close()

"""Tests for CLI/STI critical sections and the preemption watchdog."""

import pytest

from repro.errors import CompileError
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.kernel.threads import ThreadStatus

# A shared counter incremented with a deliberately racy read-modify-
# write: load, yield-inducing delay, store.  Without a critical section,
# preemption between the load and the store loses increments.
RACY_C = """
int shared_counter;

static int delay(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) { acc += i; }
    return acc;
}

int racy_add(int rounds) {
    for (int i = 0; i < rounds; i++) {
        int value = shared_counter;
        delay(20);
        shared_counter = value + 1;
    }
    return 0;
}

int safe_add(int rounds) {
    for (int i = 0; i < rounds; i++) {
        __cli();
        int value = shared_counter;
        delay(20);
        shared_counter = value + 1;
        __sti();
    }
    return 0;
}

int nested_sections(void) {
    __cli();
    __cli();
    shared_counter = shared_counter + 1;
    __sti();
    shared_counter = shared_counter + 1;
    __sti();
    return shared_counter;
}

int spin_forever_with_cli(void) {
    __cli();
    int x = 1;
    while (x) { x = x + 1; if (!x) { x = 1; } }
    return 0;
}
"""

TREE = SourceTree(version="cs-test", files={"kernel/racy.c": RACY_C})

ROUNDS = 60
WORKERS = 3


def run_workers(fn):
    machine = boot_kernel(TREE, quantum=11)
    threads = [machine.create_thread(fn, args=[ROUNDS],
                                     name="w%d" % i)
               for i in range(WORKERS)]
    machine.run(max_instructions=20_000_000)
    assert all(t.status is ThreadStatus.EXITED for t in threads)
    return machine.read_u32(machine.symbol("shared_counter"))


def test_racy_increment_loses_updates():
    """The control: without critical sections, preemption between load
    and store loses increments (this is the bug class __cli exists for)."""
    assert run_workers("racy_add") < ROUNDS * WORKERS


def test_cli_sti_makes_increment_atomic():
    assert run_workers("safe_add") == ROUNDS * WORKERS


def test_nested_critical_sections():
    machine = boot_kernel(TREE)
    assert machine.call_function("nested_sections") == 2
    # Depth is balanced afterwards: the machine still schedules.
    assert machine.call_function("nested_sections") == 4


def test_watchdog_kills_stuck_critical_section():
    machine = boot_kernel(TREE, quantum=50)
    thread = machine.create_thread("spin_forever_with_cli", name="stuck")
    machine.run(max_instructions=200_000)
    assert thread.status is ThreadStatus.FAULTED
    assert "watchdog" in thread.fault


def test_sti_without_cli_is_harmless():
    tree = SourceTree(version="t", files={"k.c": """
int f(void) { __sti(); __sti(); return 5; }
"""})
    machine = boot_kernel(tree)
    assert machine.call_function("f") == 5


def test_cli_sti_reject_arguments():
    with pytest.raises(CompileError):
        boot_kernel(SourceTree(version="t", files={
            "k.c": "int f(void) { __cli(1); return 0; }"}))


def test_voluntary_yield_inside_critical_section_still_yields():
    """__sched() is an explicit yield; CLI only suppresses *preemption*.
    (Matches real kernels: schedule() inside a critical section is a
    choice, if usually a bug.)"""
    tree = SourceTree(version="t", files={"k.c": """
int progress_a;
int progress_b;
int yielder(void) {
    __cli();
    for (int i = 0; i < 50; i++) { progress_a++; __sched(); }
    __sti();
    return 0;
}
int watcher(void) {
    for (int i = 0; i < 50; i++) { progress_b++; __sched(); }
    return 0;
}
"""})
    machine = boot_kernel(tree, quantum=1000)
    machine.create_thread("yielder", name="y")
    machine.create_thread("watcher", name="w")
    machine.run(max_instructions=1_000_000)
    assert machine.read_u32(machine.symbol("progress_a")) == 50
    assert machine.read_u32(machine.symbol("progress_b")) == 50

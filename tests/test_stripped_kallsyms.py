"""§4.1's hardest symbol case: the name "does not appear at all".

On kernels whose symbol table omits local symbols, a static function
cannot be looked up by name.  Run-pre matching still locates it: some
matched caller's relocation solves its address, and the matcher then
verifies its body there.  A full hot update of a static function works
on such a kernel end to end.
"""

import pytest

from repro.compiler import CompilerOptions
from repro.core import KspliceCore, ksplice_create
from repro.core.runpre import RunPreMatcher
from repro.errors import SymbolResolutionError
from repro.kbuild import SourceTree, build_units
from repro.kernel import boot_kernel
from repro.patch import make_patch

FLAVOR = CompilerOptions().pre_post_flavor()

TREE = SourceTree(version="stripped-test", files={
    "kernel/policy.c": """
int policy_hits;

static int policy_check(int req) {
    if (req < 0) { return 0; }
    if (req > 5000) { return 0; }
    return 1;
}

static int policy_log(int req) {
    policy_hits++;
    if (req > 100) { policy_hits++; }
    return policy_hits;
}

int policy_enter(int req) {
    if (!policy_check(req)) { return -22; }
    policy_log(req);
    return req + 1;
}
""",
})


def stripped_machine():
    machine = boot_kernel(TREE, options=CompilerOptions(opt_level=0))
    machine.image.kallsyms = machine.image.kallsyms.stripped_of_locals()
    return machine


def test_static_functions_absent_from_stripped_table():
    machine = stripped_machine()
    assert machine.image.kallsyms.candidates("policy_check") == []
    assert machine.image.kallsyms.candidates("policy_enter") != []


def test_matcher_locates_statics_through_relocations():
    machine = stripped_machine()
    pre = build_units(TREE, ["kernel/policy.c"],
                      CompilerOptions(opt_level=0).pre_post_flavor()
                      ).object_for("kernel/policy.c")
    matcher = RunPreMatcher(memory=machine.memory,
                            kallsyms=machine.image.kallsyms)
    result = matcher.match_unit(pre)
    # All three functions matched although two are unlisted.
    assert set(result.matched_functions) == {"policy_check",
                                             "policy_log",
                                             "policy_enter"}


def test_hot_update_of_unlisted_static_function():
    machine = stripped_machine()
    core = KspliceCore(machine)
    files = dict(TREE.files)
    files["kernel/policy.c"] = TREE.files["kernel/policy.c"].replace(
        "if (req > 5000) { return 0; }",
        "if (req > 1000) { return 0; }")
    pack = ksplice_create(TREE, make_patch(TREE.files, files),
                          options=CompilerOptions(opt_level=0))
    assert pack.all_changed_functions() == ["policy_check"]
    core.apply(pack)
    assert machine.call_function("policy_enter", [999]) == 1000
    assert machine.call_function("policy_enter", [2000]) == \
        (-22) & 0xFFFFFFFF


def test_unreferenced_static_cannot_be_located():
    """Dead static code reachable from nowhere has no anchor; the
    matcher must refuse rather than guess."""
    tree = SourceTree(version="dead", files={"k.c": """
static int dead_code(int x) { if (x > 2) { return x - 2; } return 0; }
int live_entry(int x) { if (x < 0) { return -1; } return x * 2; }
"""})
    machine = boot_kernel(tree, options=CompilerOptions(opt_level=0))
    machine.image.kallsyms = machine.image.kallsyms.stripped_of_locals()
    pre = build_units(tree, ["k.c"],
                      CompilerOptions(opt_level=0).pre_post_flavor()
                      ).object_for("k.c")
    matcher = RunPreMatcher(memory=machine.memory,
                            kallsyms=machine.image.kallsyms)
    with pytest.raises(SymbolResolutionError) as exc:
        matcher.match_unit(pre)
    assert "dead_code" in str(exc.value)


def test_full_table_still_matches_identically():
    """The iterative matcher must behave exactly as before on kernels
    with complete symbol tables."""
    machine = boot_kernel(TREE, options=CompilerOptions(opt_level=0))
    pre = build_units(TREE, ["kernel/policy.c"],
                      CompilerOptions(opt_level=0).pre_post_flavor()
                      ).object_for("kernel/policy.c")
    matcher = RunPreMatcher(memory=machine.memory,
                            kallsyms=machine.image.kallsyms)
    result = matcher.match_unit(pre)
    for name, address in result.matched_functions.items():
        assert address == machine.image.kallsyms.unique_address(name)

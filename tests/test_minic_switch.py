"""Tests for MiniC switch statements (parse + execution semantics)."""

import pytest

from repro.errors import CompileError
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.lang import ast, parse_unit


def run(source, fn="f", args=()):
    machine = boot_kernel(SourceTree(version="x", files={"u.c": source}))
    value = machine.call_function(fn, list(args))
    return value - (1 << 32) if value >= (1 << 31) else value


def test_parse_switch_structure():
    unit = parse_unit("""
        int f(int x) {
            switch (x) {
            case 1:
                return 10;
            case 2:
            case 3:
                return 23;
            default:
                return -1;
            }
        }
    """)
    switch = unit.functions()[0].body.statements[0]
    assert isinstance(switch, ast.Switch)
    assert [c.value for c in switch.cases] == [1, 2, 3, None]
    assert switch.cases[1].body == []  # shared-body case label


def test_basic_dispatch():
    source = """
    int f(int x) {
        switch (x) {
        case 1: return 100;
        case 2: return 200;
        default: return -1;
        }
    }
    """
    assert run(source, args=[1]) == 100
    assert run(source, args=[2]) == 200
    assert run(source, args=[9]) == -1


def test_fallthrough_accumulates():
    source = """
    int f(int x) {
        int acc = 0;
        switch (x) {
        case 3: acc += 100;
        case 2: acc += 10;
        case 1: acc += 1;
        }
        return acc;
    }
    """
    assert run(source, args=[3]) == 111
    assert run(source, args=[2]) == 11
    assert run(source, args=[1]) == 1
    assert run(source, args=[7]) == 0  # no default: falls past


def test_break_exits_switch():
    source = """
    int f(int x) {
        int acc = 0;
        switch (x) {
        case 1:
            acc = 1;
            break;
        case 2:
            acc = 2;
            break;
        default:
            acc = 99;
        }
        return acc * 10;
    }
    """
    assert run(source, args=[1]) == 10
    assert run(source, args=[2]) == 20
    assert run(source, args=[5]) == 990


def test_default_in_middle():
    source = """
    int f(int x) {
        switch (x) {
        case 1: return 1;
        default: return 50;
        case 2: return 2;
        }
    }
    """
    assert run(source, args=[1]) == 1
    assert run(source, args=[2]) == 2
    assert run(source, args=[3]) == 50


def test_negative_case_values():
    source = """
    int f(int x) {
        switch (x) {
        case -1: return 10;
        case 0: return 20;
        }
        return 30;
    }
    """
    assert run(source, args=[(-1) & 0xFFFFFFFF]) == 10
    assert run(source, args=[0]) == 20


def test_continue_inside_switch_targets_enclosing_loop():
    source = """
    int f(void) {
        int total = 0;
        for (int i = 0; i < 6; i++) {
            switch (i % 3) {
            case 0:
                continue;
            case 1:
                total += 10;
                break;
            default:
                total += 1;
            }
            total += 100;
        }
        return total;
    }
    """
    # i=0,3: continue (skip +100).  i=1,4: +10+100.  i=2,5: +1+100.
    assert run(source) == 2 * 110 + 2 * 101


def test_switch_in_kernel_dispatch_is_hot_patchable():
    """switch-based ioctl-style dispatch goes through the whole Ksplice
    pipeline like any code."""
    from repro.core import KspliceCore, ksplice_create
    from repro.patch import make_patch

    source = """
    int dev_state;
    int dev_ioctl(int cmd, int arg) {
        switch (cmd) {
        case 1:
            dev_state = arg;
            return 0;
        case 2:
            return dev_state;
        case 3:
            dev_state = 0;
            return 0;
        }
        return -25;
    }
    """
    tree = SourceTree(version="sw", files={"drivers/dev.c": source})
    machine = boot_kernel(tree)
    core = KspliceCore(machine)
    machine.call_function("dev_ioctl", [1, 77])
    assert machine.call_function("dev_ioctl", [2, 0]) == 77

    files = {"drivers/dev.c": source.replace(
        "        case 1:\n            dev_state = arg;",
        "        case 1:\n            if (arg < 0) { return -22; }\n"
        "            dev_state = arg;")}
    core.apply(ksplice_create(tree, make_patch(tree.files, files)))
    bad = machine.call_function("dev_ioctl", [1, (-5) & 0xFFFFFFFF])
    assert bad == (-22) & 0xFFFFFFFF
    assert machine.call_function("dev_ioctl", [2, 0]) == 77  # state kept


def test_duplicate_case_rejected():
    with pytest.raises(CompileError):
        parse_unit("int f(int x) { switch (x) { case 1: case 1: return 0; } }")


def test_multiple_defaults_rejected():
    with pytest.raises(CompileError):
        parse_unit("int f(int x) { switch (x) "
                   "{ default: return 0; default: return 1; } }")


def test_statement_before_case_rejected():
    with pytest.raises(CompileError):
        parse_unit("int f(int x) { switch (x) { return 0; } }")


def test_continue_in_switch_outside_loop_rejected():
    from repro.compiler import CompilerOptions, compile_source

    with pytest.raises(CompileError):
        compile_source("""
            int f(int x) {
                switch (x) { case 1: continue; }
                return 0;
            }
        """, "u.c", CompilerOptions())

"""§5.4 stacking edge cases: out-of-LIFO-order undo must be refused
with the kernel state intact, and shadow-table data (Table 1 patches)
must survive a later stacked update."""

import pytest

from repro.core import KspliceCore, ksplice_create
from repro.errors import UpdateStateError
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.patch import make_patch

ENTRY_S = """
.global syscall_entry
syscall_entry:
    cmpi r0, 2
    jge bad_sys
    cmpi r0, 0
    jl bad_sys
    push r3
    push r2
    push r1
    movi r4, 4
    mul r0, r4
    lea r4, sys_call_table
    add r4, r0
    loadr r4, r4, 0
    callr r4
    addi sp, 12
    ret
bad_sys:
    movi r0, -38
    ret

.section .data
sys_call_table:
    .word sys_get_limit, sys_use_session
"""

LIMITS_C = """
int limit_table[4];
int sessions_id[8];
int sessions_level[8];
int session_count;

int kernel_init(void) {
    for (int i = 0; i < 4; i++) limit_table[i] = 100;
    session_count = 2;
    sessions_id[0] = 11; sessions_level[0] = 3;
    sessions_id[1] = 22; sessions_level[1] = 5;
    return 0;
}

int sys_get_limit(int idx, int b, int c) {
    if (idx < 0) { return -1; }
    if (idx >= 4) { return -1; }
    return limit_table[idx];
}

int sys_use_session(int idx, int b, int c) {
    if (idx < 0) { return -1; }
    if (idx >= session_count) { return -1; }
    return sessions_level[idx];
}
"""

# First update, the CVE-2005-2709 shape: sys_use_session consults a new
# per-session field that lives in the shadow table; the apply hook
# attaches it for existing high-level sessions.
SHADOW_SOURCE = LIMITS_C.replace(
    "int sys_use_session(int idx, int b, int c) {\n"
    "    if (idx < 0) { return -1; }\n"
    "    if (idx >= session_count) { return -1; }\n"
    "    return sessions_level[idx];",
    "int ksplice_shadow_get(int obj, int key);\n"
    "int ksplice_shadow_attach(int obj, int key, int val);\n"
    "\n"
    "int sys_use_session(int idx, int b, int c) {\n"
    "    if (idx < 0) { return -1; }\n"
    "    if (idx >= session_count) { return -1; }\n"
    "    if (ksplice_shadow_get(idx, 42)) { return -13; }\n"
    "    return sessions_level[idx];")

SHADOW_SOURCE_WITH_HOOK = SHADOW_SOURCE + """
int ksplice_lockdown_existing(void) {
    for (int i = 0; i < session_count; i++) {
        if (sessions_level[i] >= 5) {
            if (ksplice_shadow_attach(i, 42, 1) < 0) { return -1; }
        }
    }
    return 0;
}
__ksplice_apply__(ksplice_lockdown_existing);
"""

TREE = SourceTree(version="stacking-test", files={
    "arch/entry.s": ENTRY_S,
    "kernel/limits.c": LIMITS_C,
})


def make_update(new_source, old_source=LIMITS_C):
    old_files = dict(TREE.files)
    old_files["kernel/limits.c"] = old_source
    new_files = dict(old_files)
    new_files["kernel/limits.c"] = new_source
    diff = make_patch(old_files, new_files)
    return ksplice_create(SourceTree(version=TREE.version,
                                     files=old_files), diff)


def fresh():
    machine = boot_kernel(TREE)
    return machine, KspliceCore(machine)


def test_out_of_lifo_undo_rejected_with_state_intact():
    """Undoing an update while a later one sits on the same function
    must be refused, and the refusal must not disturb either update."""
    machine, core = fresh()
    first_source = LIMITS_C.replace(
        "    return limit_table[idx];",
        "    if (limit_table[idx] > 50) { return 50; }\n"
        "    return limit_table[idx];")
    first = make_update(first_source)
    core.apply(first)
    assert machine.call_function("sys_get_limit", [0, 0, 0]) == 50

    second_source = first_source.replace(
        "    if (limit_table[idx] > 50) { return 50; }",
        "    if (limit_table[idx] > 25) { return 25; }")
    second = make_update(second_source, old_source=first_source)
    core.apply(second)
    assert machine.call_function("sys_get_limit", [0, 0, 0]) == 25

    with pytest.raises(UpdateStateError):
        core.undo(first.update_id)

    # The refused undo changed nothing: both updates still applied, in
    # order, and the kernel still runs the newest code.
    assert core.applied_ids() == [first.update_id, second.update_id]
    assert machine.call_function("sys_get_limit", [0, 0, 0]) == 25

    # LIFO order works, one layer at a time.
    undone = core.undo_latest()
    assert undone is not None and undone.pack.update_id == second.update_id
    assert machine.call_function("sys_get_limit", [0, 0, 0]) == 50
    undone = core.undo_latest()
    assert undone is not None and undone.pack.update_id == first.update_id
    assert machine.call_function("sys_get_limit", [0, 0, 0]) == 100
    assert core.undo_latest() is None


def test_shadow_data_survives_second_stacked_update():
    """Shadow-table entries belong to the core, not to one update's
    modules: stacking another update on top must leave them readable by
    the still-patched code, and undoing that later update must too."""
    machine, core = fresh()
    shadow_pack = make_update(SHADOW_SOURCE_WITH_HOOK)
    core.apply(shadow_pack)
    assert machine.call_function("sys_use_session", [1, 0, 0]) == \
        (-13) & 0xFFFFFFFF
    assert core.shadow.count == 1
    assert core.shadow.get(1, 42) == 1

    # Stack a second, unrelated update (sys_get_limit) on top.  It is
    # built against the maintained source, which never carried the first
    # update's one-shot transition hook.
    second_source = SHADOW_SOURCE.replace(
        "    return limit_table[idx];",
        "    if (limit_table[idx] > 10) { return 10; }\n"
        "    return limit_table[idx];")
    second = make_update(second_source, old_source=SHADOW_SOURCE)
    core.apply(second)
    assert machine.call_function("sys_get_limit", [0, 0, 0]) == 10

    # The shadow field still gates session 1, and the registry still
    # holds the attached data.
    assert machine.call_function("sys_use_session", [1, 0, 0]) == \
        (-13) & 0xFFFFFFFF
    assert machine.call_function("sys_use_session", [0, 0, 0]) == 3
    assert core.shadow.count == 1
    assert core.shadow.get(1, 42) == 1

    # Undoing the stacked update must not tear the shadow data down.
    core.undo_latest()
    assert machine.call_function("sys_get_limit", [0, 0, 0]) == 100
    assert machine.call_function("sys_use_session", [1, 0, 0]) == \
        (-13) & 0xFFFFFFFF
    assert core.shadow.get(1, 42) == 1

"""Performance smoke tests: the corpus stays fast.

Not a benchmark — these run in the tier-1 suite with deliberately
generous budgets, so they only trip on order-of-magnitude regressions
(a cache silently disabled, the interpreter fast path bypassed, boots
re-zeroing the big segments).  The seed evaluated the full corpus in
roughly half a minute on this class of host; with the engine's caches
it takes a few seconds.
"""

import time

from repro.compiler.cache import reset_cache_stats
from repro.evaluation import cache_stats, clear_caches, evaluate_corpus

#: wall-clock ceiling for one full create+apply pass over all 64 CVEs
#: (stress battery skipped; it measures workloads, not engine speed).
CORPUS_BUDGET_SECONDS = 60.0


def test_corpus_within_budget_and_caches_effective():
    clear_caches()
    start = time.perf_counter()
    report = evaluate_corpus(run_stress=False)
    cold = time.perf_counter() - start
    assert len(report.successes()) == report.total()
    assert cold < CORPUS_BUDGET_SECONDS, (
        "cold corpus pass took %.1fs (budget %.1fs)"
        % (cold, CORPUS_BUDGET_SECONDS))

    # A second pass over warm caches must be almost entirely hits.
    reset_cache_stats()
    start = time.perf_counter()
    report = evaluate_corpus(run_stress=False)
    warm = time.perf_counter() - start
    assert len(report.successes()) == report.total()
    assert warm < CORPUS_BUDGET_SECONDS

    stats = cache_stats()
    total_hits = sum(s.hits for s in stats.values())
    total_lookups = sum(s.lookups for s in stats.values())
    assert total_lookups > 0
    hit_rate = total_hits / total_lookups
    assert hit_rate > 0.9, (
        "second-pass cache hit rate %.2f; per-cache: %s"
        % (hit_rate, {name: "%d/%d" % (s.hits, s.lookups)
                      for name, s in stats.items()}))

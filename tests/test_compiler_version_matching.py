"""§4.3: compiler-version discipline.

"Ksplice does not strictly require that the hot update be prepared using
exactly the same compiler version ... but doing so is advisable since
the run-pre check will, in order to be safe, abort the upgrade if it
detects unexpected object code differences.  Obtaining exactly the same
compiler version ... is straightforward."

The evaluation (§6.2) did exactly that: "we began by fetching the
compiler and assembler versions originally used by Debian in order to
compile that binary kernel".
"""

import pytest

from repro.compiler import CompilerOptions
from repro.core import KspliceCore, ksplice_create
from repro.errors import RunPreMismatchError
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.patch import make_patch

TREE = SourceTree(version="cv-test", files={
    "kernel/mod.c": """
int knob = 10;

int read_knob(void) { return knob * 2; }
int set_knob(int v) {
    if (v < 0) { return -1; }
    knob = v;
    return 0;
}
""",
})


def patch_text():
    files = dict(TREE.files)
    files["kernel/mod.c"] = TREE.files["kernel/mod.c"].replace(
        "knob * 2", "knob * 2 + 1")
    return make_patch(TREE.files, files)


@pytest.mark.parametrize("version", ["kcc-1.0", "kcc-1.1"])
def test_matching_compiler_versions_always_work(version):
    """Whatever compiler built the running kernel, preparing the update
    with the *same* version succeeds — including non-default ones."""
    options = CompilerOptions(compiler_version=version)
    machine = boot_kernel(TREE, options=options)
    core = KspliceCore(machine)
    pack = ksplice_create(TREE, patch_text(), options=options)
    core.apply(pack)
    assert machine.call_function("read_knob") == 21


def test_mismatched_compiler_versions_abort():
    machine = boot_kernel(TREE,
                          options=CompilerOptions(compiler_version="kcc-1.1"))
    core = KspliceCore(machine)
    pack = ksplice_create(TREE, patch_text(),
                          options=CompilerOptions(compiler_version="kcc-1.0"))
    with pytest.raises(RunPreMismatchError):
        core.apply(pack)
    # Untouched: old behaviour intact.
    assert machine.call_function("read_knob") == 20


def test_mismatched_opt_levels_abort():
    """Optimization level is part of 'how the kernel was compiled' too:
    an -O0 kernel cannot take an update prepared at -O2 when inlining
    decisions differ."""
    tree = SourceTree(version="cv-opt", files={
        "kernel/mod.c": """
int knob = 10;

static int double_it(int v) { return v * 2; }

int read_knob(void) { return double_it(knob); }
""",
    })
    files = dict(tree.files)
    files["kernel/mod.c"] = tree.files["kernel/mod.c"].replace(
        "double_it(knob)", "double_it(knob) + 1")
    patch = make_patch(tree.files, files)

    machine = boot_kernel(tree, options=CompilerOptions(opt_level=0))
    core = KspliceCore(machine)
    pack = ksplice_create(tree, patch,
                          options=CompilerOptions(opt_level=2))
    with pytest.raises(RunPreMismatchError):
        core.apply(pack)


def test_same_opt_level_zero_works():
    options = CompilerOptions(opt_level=0)
    machine = boot_kernel(TREE, options=options)
    core = KspliceCore(machine)
    pack = ksplice_create(TREE, patch_text(), options=options)
    core.apply(pack)
    assert machine.call_function("read_knob") == 21

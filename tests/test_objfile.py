"""Tests for the KELF object format and its serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ObjectFormatError
from repro.objfile import (
    ObjectFile,
    Relocation,
    RelocationType,
    Section,
    SectionKind,
    Symbol,
    SymbolBinding,
    SymbolKind,
    dump_object,
    load_object,
)
from repro.objfile.section import kind_for_name


def make_simple_object() -> ObjectFile:
    obj = ObjectFile(name="kernel/demo.c")
    text = Section(name=".text.fn", kind=SectionKind.TEXT,
                   data=b"\x10\x00\x2a\x00\x00\x00\x42", alignment=16)
    text.relocations.append(Relocation(offset=2, symbol="counter",
                                       type=RelocationType.ABS32, addend=0))
    obj.add_section(text)
    data = Section(name=".data.counter", kind=SectionKind.DATA,
                   data=b"\x00\x00\x00\x00", alignment=4)
    obj.add_section(data)
    obj.add_symbol(Symbol(name="fn", binding=SymbolBinding.GLOBAL,
                          kind=SymbolKind.FUNC, section=".text.fn",
                          value=0, size=7))
    obj.add_symbol(Symbol(name="counter", binding=SymbolBinding.LOCAL,
                          kind=SymbolKind.OBJECT, section=".data.counter",
                          value=0, size=4))
    return obj


def test_kind_for_name():
    assert kind_for_name(".text") is SectionKind.TEXT
    assert kind_for_name(".text.foo") is SectionKind.TEXT
    assert kind_for_name(".data.x") is SectionKind.DATA
    assert kind_for_name(".rodata.s") is SectionKind.RODATA
    assert kind_for_name(".bss.buf") is SectionKind.BSS
    assert kind_for_name(".ksplice_apply") is SectionKind.KSPLICE


def test_duplicate_section_raises():
    obj = make_simple_object()
    with pytest.raises(ObjectFormatError):
        obj.add_section(Section(name=".text.fn", kind=SectionKind.TEXT))


def test_symbol_in_missing_section_raises():
    obj = make_simple_object()
    with pytest.raises(ObjectFormatError):
        obj.add_symbol(Symbol(name="x", section=".nope"))


def test_find_symbol_and_queries():
    obj = make_simple_object()
    assert obj.find_symbol("fn").kind is SymbolKind.FUNC
    assert obj.find_symbol("missing") is None
    with pytest.raises(ObjectFormatError):
        obj.symbol("missing")
    assert [s.name for s in obj.defined_symbols()] == ["fn", "counter"]
    assert obj.undefined_symbols() == []
    assert [s.name for s in obj.symbols_in_section(".text.fn")] == ["fn"]
    assert [s.name for s in obj.text_sections()[0].relocations and
            obj.text_sections()] == [".text.fn"]


def test_referenced_symbol_names():
    obj = make_simple_object()
    assert obj.referenced_symbol_names() == ["counter"]


def test_ensure_undefined_adds_only_missing():
    obj = make_simple_object()
    obj.ensure_undefined(["counter", "extern_fn"])
    extern = obj.find_symbol("extern_fn")
    assert extern is not None and not extern.is_defined
    assert len([s for s in obj.symbols if s.name == "counter"]) == 1


def test_validate_accepts_good_object():
    make_simple_object().validate()


def test_validate_rejects_reloc_outside_section():
    obj = make_simple_object()
    obj.section(".text.fn").relocations.append(
        Relocation(offset=100, symbol="counter",
                   type=RelocationType.ABS32))
    with pytest.raises(ObjectFormatError):
        obj.validate()


def test_validate_rejects_reloc_against_unknown_symbol():
    obj = make_simple_object()
    obj.section(".text.fn").relocations.append(
        Relocation(offset=0, symbol="ghost", type=RelocationType.ABS32))
    with pytest.raises(ObjectFormatError):
        obj.validate()


def test_copy_is_deep():
    obj = make_simple_object()
    clone = obj.copy()
    clone.section(".text.fn").relocations[0].addend = 99
    assert obj.section(".text.fn").relocations[0].addend == 0


def test_relocation_compute_and_solve_abs32():
    reloc = Relocation(offset=0, symbol="x", type=RelocationType.ABS32,
                       addend=8)
    value = reloc.compute(symbol_value=0xC0001000, place=0xDEAD)
    assert value == 0xC0001008
    assert reloc.solve_symbol(value, place=0xBEEF) == 0xC0001000


def test_relocation_compute_and_solve_pc32():
    # The paper's worked example: val = A + S - P_run, S = val + P_run - A.
    reloc = Relocation(offset=0, symbol="x", type=RelocationType.PC32,
                       addend=-4)
    place = 0xF0000003
    symbol = 0xF0111107
    value = reloc.compute(symbol_value=symbol, place=place)
    assert reloc.solve_symbol(value, place=place) == symbol


@given(symbol=st.integers(0, 0xFFFFFFFF), place=st.integers(0, 0xFFFFFFFF),
       addend=st.integers(-1 << 31, (1 << 31) - 1),
       kind=st.sampled_from(list(RelocationType)))
def test_property_solve_inverts_compute(symbol, place, addend, kind):
    reloc = Relocation(offset=0, symbol="s", type=kind, addend=addend)
    assert reloc.solve_symbol(reloc.compute(symbol, place), place) == symbol


def test_serialize_roundtrip():
    obj = make_simple_object()
    back = load_object(dump_object(obj))
    assert back.name == obj.name
    assert set(back.sections) == set(obj.sections)
    for name in obj.sections:
        assert back.section(name).data == obj.section(name).data
        assert back.section(name).kind == obj.section(name).kind
        assert back.section(name).alignment == obj.section(name).alignment
        got = [(r.offset, r.symbol, r.type, r.addend)
               for r in back.section(name).sorted_relocations()]
        want = [(r.offset, r.symbol, r.type, r.addend)
                for r in obj.section(name).sorted_relocations()]
        assert got == want
    assert [(s.name, s.binding, s.kind, s.section, s.value, s.size)
            for s in back.symbols] == \
           [(s.name, s.binding, s.kind, s.section, s.value, s.size)
            for s in obj.symbols]


def test_serialize_rejects_bad_magic():
    with pytest.raises(ObjectFormatError):
        load_object(b"NOPE" + b"\0" * 16)


def test_serialize_rejects_truncation():
    raw = dump_object(make_simple_object())
    with pytest.raises(ObjectFormatError):
        load_object(raw[:len(raw) // 2])


@given(st.binary(min_size=0, max_size=64))
def test_property_loader_never_crashes_on_garbage(raw):
    try:
        load_object(raw)
    except ObjectFormatError:
        pass

"""The fleet-rollout fabric: both dispatchers, small fleets.

The scale numbers live in ``benchmarks/bench_fabric_scale.py``; these
tests pin the *behavioral* contract at CI-friendly sizes: every ack
collected, encrypted sessions, identical counting on the asyncio
fabric and the threaded v2-architecture baseline, and honest failure
accounting when members misbehave.
"""

import asyncio
import threading

import pytest

from repro.distributed.fabric import (
    ACK_CORRUPT,
    ACK_OK,
    RolloutDispatcher,
    ThreadedRolloutDispatcher,
    make_payload,
    run_members,
    verify_payload,
)
from repro.distributed.protocol import ProtocolError

SECRET = b"scale-test-secret"


def _updates(waves, payload=b"patch-bytes"):
    return [("CVE-2026-%04d" % i, make_payload(payload))
            for i in range(waves)]


def _member_thread(members):
    holder = {}

    def on_listen(host, port):
        thread = threading.Thread(
            target=run_members, args=(host, port, members, SECRET),
            daemon=True)
        thread.start()
        holder["thread"] = thread

    return holder, on_listen


@pytest.mark.parametrize("dispatcher_cls",
                         [RolloutDispatcher, ThreadedRolloutDispatcher])
def test_rollout_collects_every_ack(dispatcher_cls):
    members, waves = 12, 3
    holder, on_listen = _member_thread(members)
    dispatcher = dispatcher_cls(expected=members, secret=SECRET,
                                join_timeout=60.0, on_listen=on_listen)
    report = dispatcher.run(_updates(waves))
    holder["thread"].join(timeout=30.0)
    assert report.members == members
    assert report.acks == members * waves
    assert report.failures == 0
    assert report.encrypted
    assert report.updates_per_s > 0


@pytest.mark.parametrize("dispatcher_cls",
                         [RolloutDispatcher, ThreadedRolloutDispatcher])
def test_corrupt_payload_is_not_acked_ok(dispatcher_cls):
    """A payload whose CRC does not verify must be counted as a
    failure, not an ack — on both fabrics identically."""
    members, waves = 4, 2
    bad = b"\x00\x00\x00\x00corrupt"  # CRC of b"corrupt" is not 0
    assert not verify_payload(bad)
    updates = [("CVE-2026-0000", make_payload(b"fine")),
               ("CVE-2026-0001", bad)]
    assert len(updates) == waves
    holder, on_listen = _member_thread(members)
    dispatcher = dispatcher_cls(expected=members, secret=SECRET,
                                join_timeout=60.0, member_timeout=15.0,
                                on_listen=on_listen)
    report = dispatcher.run(updates)
    holder["thread"].join(timeout=30.0)
    assert report.acks == members  # only the intact wave
    assert report.failures == members


def test_join_timeout_is_a_protocol_error():
    dispatcher = RolloutDispatcher(expected=3, secret=SECRET,
                                   join_timeout=0.5)
    with pytest.raises(ProtocolError, match="joined within"):
        dispatcher.run(_updates(1))


def test_payload_crc_helpers():
    payload = make_payload(b"some patch")
    assert verify_payload(payload)
    assert not verify_payload(payload[:-1] + b"\x00")
    assert not verify_payload(b"abc")
    assert ACK_OK != ACK_CORRUPT


def test_async_channel_backpressure_bounds_queue():
    """A producer outrunning a stalled peer parks on the bounded send
    queue instead of buffering unboundedly."""
    from repro.distributed import aio

    async def scenario():
        server_ready = asyncio.Event()
        port_holder = {}
        parked = {"count": 0}

        async def handle(reader, writer):
            channel = await aio.accept_channel(reader, writer, SECRET,
                                               send_queue=2)
            port_holder["server_channel"] = channel
            server_ready.set()

        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
        client = await aio.connect_channel(host, port, SECRET,
                                           send_queue=2)
        await server_ready.wait()
        # The client never reads; the server's writer drains into the
        # socket until TCP buffers fill, then its queue (bound 2)
        # fills, then send() parks.  Pushing a big payload many times
        # must eventually time out rather than buffer forever.
        big = {"type": "item", "blob": b"x" * 1_000_000}
        sender = port_holder["server_channel"]

        async def flood():
            while True:
                await sender.send(big)
                parked["count"] += 1

        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(flood(), 2.0)
        assert parked["count"] < 200  # bounded, not unbounded buffering
        await client.close()
        await sender.close()
        server.close()
        await server.wait_closed()

    asyncio.run(scenario())

"""Property-based tests over the whole toolchain.

Random MiniC programs are generated, compiled under both layout
flavours, linked, executed, and run-pre matched.  These fuzz the
assembler's branch relaxation, the alignment machinery, the CPU
interpreter, and the matcher's short/long + nop bridging far beyond the
handwritten cases.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler import CompilerOptions
from repro.core.runpre import RunPreMatcher
from repro.kbuild import SourceTree, build_units
from repro.kernel import boot_kernel

FLAVOR = CompilerOptions().pre_post_flavor()

# -- random program generation ---------------------------------------------

_NAMES = ["a", "b"]


@st.composite
def arith_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(st.sampled_from(
            ["a", "b", str(draw(st.integers(0, 200)))]))
        return leaf
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    left = draw(arith_expr(depth=depth + 1))
    right = draw(arith_expr(depth=depth + 1))
    return "(%s %s %s)" % (left, op, right)


@st.composite
def cond_expr(draw):
    op = draw(st.sampled_from(["<", ">", "<=", ">=", "==", "!="]))
    return "(a %s %s)" % (op, draw(st.integers(-50, 50)))


@st.composite
def statements(draw, depth=0):
    out = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(
            ["assign", "if", "while"] if depth < 2 else ["assign"]))
        if kind == "assign":
            target = draw(st.sampled_from(_NAMES))
            out.append("%s = %s;" % (target, draw(arith_expr())))
        elif kind == "if":
            body = draw(statements(depth=depth + 1))
            out.append("if %s {\n%s\n}" % (draw(cond_expr()),
                                           "\n".join(body)))
        else:
            # Bounded loop: mutate a fresh counter, not a/b.
            body = draw(statements(depth=depth + 1))
            out.append(
                "for (int i%d = 0; i%d < %d; i%d++) {\n%s\n}"
                % (depth, depth, draw(st.integers(1, 5)), depth,
                   "\n".join(body)))
    return out


@st.composite
def random_unit(draw):
    fns = []
    for index in range(draw(st.integers(1, 3))):
        body = "\n    ".join(draw(statements()))
        fns.append("""
int fn%d(int a, int b) {
    %s
    return a + b;
}
""" % (index, body))
    return "int shared_state;\n" + "\n".join(fns)


_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow,
                                            HealthCheck.data_too_large])


@_SETTINGS
@given(source=random_unit())
def test_property_random_programs_runpre_match(source):
    """Any compilable program's split pre build must match its merged
    run build, and every function symbol must resolve."""
    tree = SourceTree(version="fuzz", files={"u.c": source})
    machine = boot_kernel(tree)
    pre = build_units(tree, ["u.c"], FLAVOR).object_for("u.c")
    matcher = RunPreMatcher(memory=machine.memory,
                            kallsyms=machine.image.kallsyms)
    result = matcher.match_unit(pre)
    for name, address in result.matched_functions.items():
        assert address == machine.image.kallsyms.unique_address(name)


@_SETTINGS
@given(source=random_unit(), a=st.integers(-1000, 1000),
       b=st.integers(-1000, 1000))
def test_property_both_layouts_compute_identically(source, a, b):
    """The merged and split builds of the same program must produce the
    same results when executed (they are the same code, differently
    encoded)."""
    tree = SourceTree(version="fuzz", files={"u.c": source})
    merged_machine = boot_kernel(tree)
    split_machine = boot_kernel(tree, options=FLAVOR)
    merged = merged_machine.call_function("fn0", [a, b],
                                          max_instructions=200_000)
    split = split_machine.call_function("fn0", [a, b],
                                        max_instructions=200_000)
    assert merged == split


_C_BINOPS = {
    "+": lambda x, y: x + y,
    "-": lambda x, y: x - y,
    "*": lambda x, y: x * y,
    "&": lambda x, y: x & y,
    "|": lambda x, y: x | y,
    "^": lambda x, y: x ^ y,
}


def _as_u32(value):
    return value & 0xFFFFFFFF


@settings(max_examples=60, deadline=None)
@given(op=st.sampled_from(sorted(_C_BINOPS)),
       x=st.integers(-(1 << 31), (1 << 31) - 1),
       y=st.integers(-(1 << 31), (1 << 31) - 1))
def test_property_cpu_arithmetic_matches_c_semantics(op, x, y):
    tree = SourceTree(version="arith", files={
        "u.c": "int f(int x, int y) { return x %s y; }" % op})
    machine = boot_kernel(tree)
    got = machine.call_function("f", [_as_u32(x), _as_u32(y)])
    want = _as_u32(_C_BINOPS[op](x, y))
    assert got == want


@settings(max_examples=40, deadline=None)
@given(x=st.integers(-10000, 10000), y=st.integers(-10000, 10000))
def test_property_division_truncates_toward_zero(x, y):
    if y == 0:
        return
    tree = SourceTree(version="div", files={
        "u.c": "int q(int x, int y) { return x / y; }\n"
               "int r(int x, int y) { return x % y; }"})
    machine = boot_kernel(tree)
    quotient = machine.call_function("q", [_as_u32(x), _as_u32(y)])
    remainder = machine.call_function("r", [_as_u32(x), _as_u32(y)])
    assert quotient == _as_u32(int(x / y))       # C truncation
    assert remainder == _as_u32(x - int(x / y) * y)
    # The C invariant (x/y)*y + x%y == x holds.
    assert _as_u32(int(x / y) * y + (x - int(x / y) * y)) == _as_u32(x)


@settings(max_examples=20, deadline=None)
@given(source=random_unit())
def test_property_objdiff_identity(source):
    """Differencing a unit against itself finds nothing; mutating one
    function's constant is detected in exactly that function."""
    from repro.core import diff_objects

    tree = SourceTree(version="d", files={"u.c": source})
    obj_a = build_units(tree, ["u.c"], FLAVOR).object_for("u.c")
    obj_b = build_units(tree, ["u.c"], FLAVOR).object_for("u.c")
    diff = diff_objects(obj_a, obj_b)
    assert not diff.has_code_changes

    mutated = source.replace("return a + b;", "return a + b + 1;", 1)
    if mutated == source:
        return
    tree_m = SourceTree(version="d", files={"u.c": mutated})
    obj_m = build_units(tree_m, ["u.c"], FLAVOR).object_for("u.c")
    diff_m = diff_objects(obj_a, obj_m)
    assert diff_m.changed_functions == ["fn0"]

"""Tests for the applied-update status view."""

from repro.core import KspliceCore, ksplice_create
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.patch import make_patch

TREE = SourceTree(version="status-test", files={
    "kernel/a.c": "int get_a(void) { return 1; }",
    "kernel/b.c": "int get_b(void) { return 2; }",
})


def make_pack(unit, old, new, description):
    files = dict(TREE.files)
    files[unit] = files[unit].replace(old, new)
    return ksplice_create(TREE, make_patch(TREE.files, files),
                          description=description)


def test_status_empty():
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    assert core.status() == []
    assert "no ksplice updates" in core.render_status()


def test_status_lists_updates_in_order():
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    pack_a = make_pack("kernel/a.c", "return 1;", "return 10;", "bump a")
    pack_b = make_pack("kernel/b.c", "return 2;", "return 20;", "bump b")
    core.apply(pack_a)
    core.apply(pack_b)

    rows = core.status()
    assert [r["update_id"] for r in rows] == [pack_a.update_id,
                                              pack_b.update_id]
    assert rows[0]["functions"][0]["name"] == "get_a"
    assert rows[0]["units"] == ["kernel/a.c"]
    assert rows[0]["primary_bytes"] > 0
    assert rows[0]["stop_ms"] is not None

    rendered = core.render_status()
    assert pack_a.update_id in rendered and "bump a" in rendered
    assert "get_b" in rendered
    # Addresses render as old -> new.
    old = machine.image.kallsyms.unique_address("get_a")
    assert "0x%08x" % old in rendered


def test_status_shrinks_after_undo():
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    pack = make_pack("kernel/a.c", "return 1;", "return 11;", "x")
    core.apply(pack)
    assert len(core.status()) == 1
    core.undo(pack.update_id)
    assert core.status() == []

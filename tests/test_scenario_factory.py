"""Scenario factory: determinism, addressing, ground truth, providers.

The factory's contract is that a corpus is a pure function of its
``(seed, size, mix)`` address: identical manifests in-process, across
processes, and on distributed workers; identical per-scenario results
along every execution path; and a stamped ground truth the pipeline
actually reproduces (checked here over a bounded corpus, and over 1k
scenarios by ``benchmarks/bench_scenario_factory.py --full``).
"""

import json
import subprocess
import sys

import pytest

from repro.errors import ReproError
from repro.evaluation.corpus import (
    CORPUS,
    SeedCorpus,
    load_corpus_provider,
)
from repro.evaluation.engine import evaluate_corpus, normalize_result
from repro.evaluation.kernels import kernel_for_version
from repro.scenarios import (
    GROUP_SIZE,
    MIXES,
    GeneratedCorpus,
    GeneratedCorpusProvider,
    generate_scenario,
    generated_version,
    load_corpus,
    manifest_text,
    parse_generated_version,
    write_corpus,
)

SEED, SIZE, MIX = 1234, 12, "default"


@pytest.fixture(scope="module")
def corpus():
    return GeneratedCorpus.generate(SEED, SIZE, MIX)


# ---------------------------------------------------------------------------
# Determinism and addressing


def test_same_address_reproduces_byte_identical_manifest(corpus):
    again = GeneratedCorpus.generate(SEED, SIZE, MIX)
    assert manifest_text(corpus) == manifest_text(again)


def test_manifest_identical_across_processes(corpus, tmp_path):
    """A fresh interpreter (cold caches, different hash seed) emits the
    same manifest bytes."""
    script = (
        "from repro.scenarios import GeneratedCorpus, manifest_text;"
        "import sys;"
        "sys.stdout.write(manifest_text("
        "GeneratedCorpus.generate(%d, %d, %r)))" % (SEED, SIZE, MIX))
    child = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": "99"}, check=True)
    assert child.stdout == manifest_text(corpus)


def test_different_seeds_sizes_and_mixes_differ(corpus):
    assert manifest_text(GeneratedCorpus.generate(SEED + 1, SIZE, MIX)) \
        != manifest_text(corpus)
    assert manifest_text(GeneratedCorpus.generate(SEED, SIZE,
                                                  "code-only")) \
        != manifest_text(corpus)


def test_scenario_generation_is_index_local(corpus):
    """Any single scenario regenerates without its siblings — what lets
    a worker rebuild exactly one kernel-version group."""
    for index in (0, SIZE // 2, SIZE - 1):
        alone = generate_scenario(SEED, SIZE, MIX, index)
        assert alone.spec == corpus.scenarios[index].spec
        assert alone.expected == corpus.scenarios[index].expected


def test_version_string_round_trips():
    version = generated_version(0xDEADBEEF, 1000, "data-heavy", 17)
    assert parse_generated_version(version) == (0xDEADBEEF, 1000,
                                                "data-heavy", 17)
    with pytest.raises(ReproError):
        parse_generated_version("2.6.8-deb1")
    with pytest.raises(ReproError):
        parse_generated_version("gen@nothex:10:default#0000")


def test_generated_kernel_resolves_from_version_string(corpus):
    version = corpus.scenarios[0].spec.kernel_version
    kernel = kernel_for_version(version)
    group = [s.spec.cve_id for s in corpus.scenarios[:GROUP_SIZE]]
    assert [spec.cve_id for spec in kernel.cves] == group
    with pytest.raises(ReproError):
        kernel_for_version("gen@00000000:8:no-such-mix#0000")


def test_unknown_mix_and_bad_index_raise():
    with pytest.raises(ReproError):
        generate_scenario(1, 4, "no-such-mix", 0)
    with pytest.raises(ReproError):
        generate_scenario(1, 4, "default", 4)


def test_mixes_cover_every_declared_shape():
    from repro.scenarios.factory import _SHAPES

    declared = {shape for weights in MIXES.values()
                for shape, _w in weights}
    assert declared == set(_SHAPES)


# ---------------------------------------------------------------------------
# Providers


def test_seed_provider_is_byte_identical_to_corpus():
    provider = load_corpus_provider(None)
    assert isinstance(provider, SeedCorpus)
    assert provider.specs() == CORPUS
    assert provider.by_id("CVE-2005-2709") in CORPUS
    assert provider.expected_for("CVE-2005-2709") is None


def test_generated_provider_loads_and_verifies_manifest(corpus, tmp_path):
    out = tmp_path / "corpus"
    write_corpus(corpus, str(out))
    provider = load_corpus_provider(str(out))
    assert isinstance(provider, GeneratedCorpusProvider)
    assert [s.cve_id for s in provider.specs()] \
        == [s.spec.cve_id for s in corpus.scenarios]
    expected = provider.expected_for(provider.ids()[0])
    assert expected is not None and expected.applies_cleanly


def test_tampered_manifest_digest_fails_loudly(corpus, tmp_path):
    out = tmp_path / "corpus"
    path = write_corpus(corpus, str(out))
    manifest = json.loads(open(path).read())
    manifest["digest"] = "0" * 64
    open(path, "w").write(json.dumps(manifest, indent=2, sort_keys=True))
    with pytest.raises(ReproError, match="does not reproduce"):
        load_corpus(str(out))


def test_wrong_factory_version_refuses(corpus, tmp_path):
    out = tmp_path / "corpus"
    path = write_corpus(corpus, str(out))
    manifest = json.loads(open(path).read())
    manifest["factory_version"] = "0"
    open(path, "w").write(json.dumps(manifest, indent=2, sort_keys=True))
    with pytest.raises(ReproError, match="factory version"):
        load_corpus(str(out))


def test_missing_manifest_dir_is_an_error(tmp_path):
    with pytest.raises(ReproError, match="not a generated corpus"):
        load_corpus_provider(str(tmp_path / "nowhere"))


# ---------------------------------------------------------------------------
# Ground truth: the pipeline reproduces the stamps


@pytest.fixture(scope="module")
def evaluated(corpus):
    provider = GeneratedCorpusProvider(corpus)
    report = evaluate_corpus(provider.specs(), run_stress=False)
    return provider, report


def test_generated_corpus_has_zero_oracle_discrepancies(evaluated):
    provider, report = evaluated
    assert provider.discrepancies(report.results) == []


def test_generated_verdicts_are_proven(evaluated):
    _provider, report = evaluated
    for result in report.results:
        assert result.analysis is not None, result.cve_id
        assert result.analysis.is_proven(), result.cve_id


def test_expected_verdicts_match_reality(evaluated):
    provider, report = evaluated
    for result in report.results:
        expected = provider.expected_for(result.cve_id)
        assert result.analysis_verdict == expected.verdict, result.cve_id
        assert result.applied_cleanly, result.cve_id


def test_evaluation_results_identical_across_paths(corpus):
    """Sequential vs a rerun in the same address space: per-scenario
    results are byte-identical (the distributed variant is covered in
    test_distributed_fabric-style by the worker test below)."""
    specs = corpus.specs()[:GROUP_SIZE]
    first = evaluate_corpus(specs, run_stress=False)
    second = evaluate_corpus(specs, run_stress=False)
    assert [normalize_result(r) for r in first.results] \
        == [normalize_result(r) for r in second.results]


def test_distributed_worker_matches_sequential(corpus):
    """A spawned worker (fresh process, cold caches) resolves the
    ``gen@`` versions from the specs alone and produces byte-identical
    results."""
    from repro.distributed.worker import spawn_local_workers

    specs = corpus.specs()[:GROUP_SIZE]
    sequential = evaluate_corpus(specs, run_stress=False)
    workers = spawn_local_workers(1)
    try:
        distributed = evaluate_corpus(
            specs, run_stress=False,
            workers=[worker.address for worker in workers])
    finally:
        for worker in workers:
            worker.stop()
    assert [normalize_result(r) for r in sequential.results] \
        == [normalize_result(r) for r in distributed.results]


# ---------------------------------------------------------------------------
# CLI


def _run_cli(*argv, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli"] + list(argv),
        capture_output=True, text=True,
        env={"PYTHONPATH": "src"}, **kwargs)


def test_cli_generate_writes_manifest(tmp_path):
    out = tmp_path / "corpus"
    child = _run_cli("generate", "--seed", str(SEED), "--size",
                     str(SIZE), "--out", str(out))
    assert child.returncode == 0, child.stderr
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["seed"] == SEED and manifest["size"] == SIZE


def test_cli_generate_rejects_unknown_mix(tmp_path):
    child = _run_cli("generate", "--seed", "1", "--size", "4",
                     "--mix", "bogus", "--out", str(tmp_path / "x"))
    assert child.returncode == 2
    assert "unknown dimension mix" in child.stderr


def test_cli_evaluate_unknown_cve_exits_2_with_near_misses():
    child = _run_cli("evaluate", "--quick", "--cve", "CVE-2006-9999")
    assert child.returncode == 2
    assert "unknown CVE" in child.stderr
    assert "did you mean" in child.stderr
    # near misses are real corpus ids
    assert "CVE-2006-4997" in child.stderr
    assert "Traceback" not in child.stderr


def test_cli_evaluate_unknown_cve_in_generated_corpus(tmp_path, corpus):
    out = tmp_path / "corpus"
    write_corpus(corpus, str(out))
    child = _run_cli("evaluate", "--quick", "--corpus", str(out),
                     "--cve", "GEN-000004d2-999999")
    assert child.returncode == 2
    assert "did you mean" in child.stderr
    assert "GEN-000004d2-" in child.stderr


def test_cli_evaluate_missing_corpus_dir_exits_2(tmp_path):
    child = _run_cli("evaluate", "--quick",
                     "--corpus", str(tmp_path / "missing"))
    assert child.returncode == 2
    assert "not a generated corpus" in child.stderr

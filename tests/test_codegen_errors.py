"""Codegen diagnostics: programs that must be rejected with clear
errors rather than miscompiled."""

import pytest

from repro.compiler import CompilerOptions, compile_source
from repro.errors import CompileError


def reject(source, fragment=None):
    with pytest.raises(CompileError) as exc:
        compile_source(source, "u.c", CompilerOptions())
    if fragment:
        assert fragment in str(exc.value)
    return exc.value


def test_continue_outside_loop():
    reject("int f(void) { continue; return 0; }", "continue outside loop")


def test_assignment_to_rvalue():
    reject("int f(int a, int b) { (a + b) = 3; return a; }",
           "not an lvalue")


def test_assignment_to_literal():
    reject("int f(void) { 5 = 6; return 0; }")


def test_unknown_function_like_builtin_arity():
    reject("int f(void) { return __syscall(1, 2); }",
           "__syscall takes exactly 4 arguments")
    reject("int f(void) { return __sched(1); }", "__sched takes no")
    reject("int f(void) { return __hlt(1); }", "__hlt takes no")


def test_unknown_identifier_in_address_context():
    reject("int f(void) { return &mystery; }", "unknown identifier")


def test_arrow_on_plain_int():
    reject("int f(int x) { return x->field; }")


def test_dot_on_pointer():
    reject("""
        struct s { int a; };
        int f(struct s *p) { return p.a; }
    """)


def test_unknown_struct_field():
    reject("""
        struct s { int a; };
        struct s g;
        int f(void) { return g.b; }
    """, "no field")


def test_indexing_scalar():
    reject("int f(int x) { return x[0]; }")


def test_inline_keyword_on_variable():
    reject("inline int x;", "inline on a variable")


def test_error_message_names_unit_and_function():
    error = reject("int broken_fn(void) { return ghost; }")
    assert "u.c" in str(error)
    assert "broken_fn" in str(error)


def test_call_undefined_function_is_link_error_not_compile_error():
    """Calling an undeclared function compiles (implicit extern, like C)
    but fails at link when nothing defines it."""
    from repro.errors import LinkError
    from repro.kbuild import SourceTree, build_tree
    from repro.linker import link_kernel

    compile_source("int f(void) { return missing_fn(); }", "u.c",
                   CompilerOptions())  # compiles fine
    with pytest.raises(LinkError):
        link_kernel(build_tree(SourceTree(version="t", files={
            "u.c": "int f(void) { return missing_fn(); }"})))

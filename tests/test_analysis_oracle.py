"""Corpus-as-oracle validation of the static analyzer (the PR's
acceptance test): every verdict issued during ``create`` must be
consistent with what actually happened when the update was applied.

The cross-check rules live in
:func:`repro.evaluation.engine.verdict_discrepancies`:

- a ``safe`` CVE must apply cleanly, first try, and fix the CVE
  without custom code;
- ``needs-hooks`` / ``needs-shadow`` must coincide with the hook-less
  patch failing to fully fix (Table-1 membership, measured — not the
  annotation);
- ``quiesce-risk`` must coincide with stack-check retries;
- ``reject`` must coincide with an apply abort;
- every verdict produced with the run kernel's build must be *proven*:
  ABI and hunk-equivalence evidence per patched function, and a
  matching witness with concrete sites behind every non-safe finding
  (the abstract-interpretation engine, :mod:`repro.analysis.absint`).
"""

import pytest

from repro.analysis import (
    VERDICT_NEEDS_HOOKS,
    VERDICT_NEEDS_SHADOW,
    VERDICT_SAFE,
)
from repro.analysis.model import (
    EVIDENCE_ABI,
    EVIDENCE_DATA_IMAGE,
    EVIDENCE_EQUIVALENCE,
    EVIDENCE_ESCAPE,
    EVIDENCE_SHADOW_API,
    PROOF_KINDS,
)
from repro.evaluation import clear_caches
from repro.evaluation.corpus import CORPUS
from repro.evaluation.engine import verdict_discrepancies
from repro.evaluation.harness import evaluate_corpus


@pytest.fixture(scope="module")
def corpus_report():
    clear_caches()
    return evaluate_corpus(run_stress=False)


def test_whole_corpus_still_succeeds(corpus_report):
    assert corpus_report.total() == len(CORPUS) == 64
    assert len(corpus_report.successes()) == 64


def test_no_verdict_discrepancies_across_corpus(corpus_report):
    """The headline oracle check: zero static/dynamic mismatches."""
    assert verdict_discrepancies(corpus_report.results) == []


def test_every_result_carries_a_verdict_and_report(corpus_report):
    for result in corpus_report.results:
        assert result.analysis_verdict, result.cve_id
        assert result.analysis is not None, result.cve_id
        assert result.analysis.verdict == result.analysis_verdict
        assert result.analysis.run_build_analyzed, result.cve_id
        assert result.hookless_fixes is not None, result.cve_id


def test_needs_custom_verdicts_match_measured_table1(corpus_report):
    """Static needs-hooks/needs-shadow == measured 'hook-less patch
    does not fully fix' == the paper's Table-1 membership."""
    needs_custom = {r.cve_id for r in corpus_report.results
                    if r.analysis_verdict in (VERDICT_NEEDS_HOOKS,
                                              VERDICT_NEEDS_SHADOW)}
    hookless_fails = {r.cve_id for r in corpus_report.results
                      if r.hookless_fixes is False}
    table1 = {s.cve_id for s in CORPUS if s.table1 is not None}
    assert needs_custom == hookless_fails == table1
    assert len(needs_custom) == 8


def test_safe_cves_need_no_custom_code_and_never_retry(corpus_report):
    for result in corpus_report.results:
        if result.analysis_verdict != VERDICT_SAFE:
            continue
        assert result.applied_cleanly, result.cve_id
        assert result.stack_check_attempts == 1, result.cve_id
        assert result.hookless_fixes, result.cve_id


def test_verdict_histogram(corpus_report):
    counts = corpus_report.verdict_counts()
    assert counts == {"safe": 56, "needs-hooks": 7, "needs-shadow": 1}


def test_every_verdict_is_proven(corpus_report):
    """No bare labels: every report must carry machine-checkable
    evidence backing its verdict (the absint acceptance criterion)."""
    for result in corpus_report.results:
        analysis = result.analysis
        assert analysis.is_proven(), (
            result.cve_id, analysis.verdict,
            sorted(e.kind for e in analysis.evidence))


def test_every_patched_function_has_abi_and_equivalence_proof(
        corpus_report):
    for result in corpus_report.results:
        analysis = result.analysis
        for unit, fns in analysis.patched_functions.items():
            for fn in fns:
                for kind in (EVIDENCE_ABI, EVIDENCE_EQUIVALENCE):
                    matching = [e for e in analysis.evidence_for(kind)
                                if e.unit == unit and e.symbol == fn]
                    assert matching, (result.cve_id, kind, unit, fn)


def test_needs_custom_verdicts_carry_concrete_witnesses(corpus_report):
    """The Table-1 set must carry escape / data-image / shadow-api
    witnesses with concrete program points, not bare labels."""
    checked = 0
    for result in corpus_report.results:
        analysis = result.analysis
        for finding in analysis.findings:
            kinds = PROOF_KINDS.get(finding.verdict)
            if kinds is None:
                continue
            witnesses = [e for kind in kinds
                         for e in analysis.evidence_for(kind)
                         if e.sites]
            assert witnesses, (result.cve_id, finding.verdict)
            checked += 1
        if result.analysis_verdict == VERDICT_NEEDS_SHADOW:
            witnessed = analysis.evidence_for(EVIDENCE_ESCAPE) \
                + analysis.evidence_for(EVIDENCE_SHADOW_API)
            assert any(e.sites for e in witnessed), result.cve_id
        if result.analysis_verdict == VERDICT_NEEDS_HOOKS:
            assert any(e.sites for e in
                       analysis.evidence_for(EVIDENCE_DATA_IMAGE)), \
                result.cve_id
    assert checked >= 8  # at least the Table-1 findings were exercised


def test_unproven_report_is_a_discrepancy(corpus_report):
    """Stripping the evidence off a result must trip the oracle."""
    import copy

    results = [copy.copy(r) for r in corpus_report.results]
    victim = copy.deepcopy(results[0].analysis)
    victim.evidence = []
    results[0] = copy.copy(results[0])
    results[0].analysis = victim
    flagged = verdict_discrepancies(results)
    assert any("not backed by machine-checkable evidence" in line
               for line in flagged)


def test_stale_analyzer_version_is_a_discrepancy(corpus_report):
    import copy

    results = [copy.copy(r) for r in corpus_report.results]
    victim = copy.deepcopy(results[0].analysis)
    victim.analyzer_version = "0-stale"
    results[0] = copy.copy(results[0])
    results[0].analysis = victim
    flagged = verdict_discrepancies(results)
    assert any("stale cached verdict" in line for line in flagged)


def test_discrepancy_rules_detect_a_seeded_mismatch(corpus_report):
    """The oracle must actually bite: flip one verdict and the
    cross-check has to flag it."""
    import copy

    results = [copy.copy(r) for r in corpus_report.results]
    victim = next(r for r in results
                  if r.analysis_verdict == VERDICT_SAFE)
    victim.analysis_verdict = VERDICT_NEEDS_HOOKS
    flagged = verdict_discrepancies(results)
    assert any(victim.cve_id in line for line in flagged)

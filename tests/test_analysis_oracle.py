"""Corpus-as-oracle validation of the static analyzer (the PR's
acceptance test): every verdict issued during ``create`` must be
consistent with what actually happened when the update was applied.

The cross-check rules live in
:func:`repro.evaluation.engine.verdict_discrepancies`:

- a ``safe`` CVE must apply cleanly, first try, and fix the CVE
  without custom code;
- ``needs-hooks`` / ``needs-shadow`` must coincide with the hook-less
  patch failing to fully fix (Table-1 membership, measured — not the
  annotation);
- ``quiesce-risk`` must coincide with stack-check retries;
- ``reject`` must coincide with an apply abort.
"""

import pytest

from repro.analysis import (
    VERDICT_NEEDS_HOOKS,
    VERDICT_NEEDS_SHADOW,
    VERDICT_SAFE,
)
from repro.evaluation import clear_caches
from repro.evaluation.corpus import CORPUS
from repro.evaluation.engine import verdict_discrepancies
from repro.evaluation.harness import evaluate_corpus


@pytest.fixture(scope="module")
def corpus_report():
    clear_caches()
    return evaluate_corpus(run_stress=False)


def test_whole_corpus_still_succeeds(corpus_report):
    assert corpus_report.total() == len(CORPUS) == 64
    assert len(corpus_report.successes()) == 64


def test_no_verdict_discrepancies_across_corpus(corpus_report):
    """The headline oracle check: zero static/dynamic mismatches."""
    assert verdict_discrepancies(corpus_report.results) == []


def test_every_result_carries_a_verdict_and_report(corpus_report):
    for result in corpus_report.results:
        assert result.analysis_verdict, result.cve_id
        assert result.analysis is not None, result.cve_id
        assert result.analysis.verdict == result.analysis_verdict
        assert result.analysis.run_build_analyzed, result.cve_id
        assert result.hookless_fixes is not None, result.cve_id


def test_needs_custom_verdicts_match_measured_table1(corpus_report):
    """Static needs-hooks/needs-shadow == measured 'hook-less patch
    does not fully fix' == the paper's Table-1 membership."""
    needs_custom = {r.cve_id for r in corpus_report.results
                    if r.analysis_verdict in (VERDICT_NEEDS_HOOKS,
                                              VERDICT_NEEDS_SHADOW)}
    hookless_fails = {r.cve_id for r in corpus_report.results
                      if r.hookless_fixes is False}
    table1 = {s.cve_id for s in CORPUS if s.table1 is not None}
    assert needs_custom == hookless_fails == table1
    assert len(needs_custom) == 8


def test_safe_cves_need_no_custom_code_and_never_retry(corpus_report):
    for result in corpus_report.results:
        if result.analysis_verdict != VERDICT_SAFE:
            continue
        assert result.applied_cleanly, result.cve_id
        assert result.stack_check_attempts == 1, result.cve_id
        assert result.hookless_fixes, result.cve_id


def test_verdict_histogram(corpus_report):
    counts = corpus_report.verdict_counts()
    assert counts == {"safe": 56, "needs-hooks": 7, "needs-shadow": 1}


def test_discrepancy_rules_detect_a_seeded_mismatch(corpus_report):
    """The oracle must actually bite: flip one verdict and the
    cross-check has to flag it."""
    import copy

    results = [copy.copy(r) for r in corpus_report.results]
    victim = next(r for r in results
                  if r.analysis_verdict == VERDICT_SAFE)
    victim.analysis_verdict = VERDICT_NEEDS_HOOKS
    flagged = verdict_discrepancies(results)
    assert any(victim.cve_id in line for line in flagged)

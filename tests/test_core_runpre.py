"""Tests for run-pre matching against a live simulated kernel."""

import pytest

from repro.compiler import CompilerOptions
from repro.core.runpre import RunPreMatcher
from repro.errors import RunPreMismatchError, SymbolResolutionError
from repro.kbuild import SourceTree, build_units
from repro.kernel import boot_kernel

FLAVOR = CompilerOptions().pre_post_flavor()

TREE = SourceTree(version="rp-test", files={
    "kernel/core.c": """
        static int debug;
        int tick_count = 3;

        static int scale(int x) {
            int total = 0;
            int i = 0;
            while (i < x) { total += tick_count; i++; }
            return total;
        }

        int account(int x) {
            debug = x;
            if (x < 0) { return -1; }
            return scale(x) + debug;
        }

        int idle_loop(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) acc += account(i);
            return acc;
        }
    """,
    "drivers/dst.c": """
        static int debug;
        int dst_ready(void) { debug = 7; return debug; }
    """,
    "drivers/dst_ca.c": """
        static int debug;
        int ca_get_slot_info(int slot) {
            debug = slot;
            return debug * 2;
        }
    """,
})


@pytest.fixture(scope="module")
def machine():
    return boot_kernel(TREE)


def pre_object(unit, tree=TREE):
    return build_units(tree, [unit], FLAVOR).object_for(unit)


def matcher_for(machine):
    return RunPreMatcher(memory=machine.memory,
                         kallsyms=machine.image.kallsyms)


def test_match_unit_succeeds_against_unmodified_kernel(machine):
    result = matcher_for(machine).match_unit(pre_object("kernel/core.c"))
    assert set(result.matched_functions) == {"scale", "account", "idle_loop"}
    assert result.bytes_matched > 0


def test_matched_addresses_agree_with_kallsyms(machine):
    result = matcher_for(machine).match_unit(pre_object("kernel/core.c"))
    assert result.matched_functions["account"] == \
        machine.image.kallsyms.unique_address("account")


def test_relocations_solved_for_data_symbols(machine):
    result = matcher_for(machine).match_unit(pre_object("kernel/core.c"))
    assert result.relocations_solved > 0
    # tick_count is unambiguous; run-pre must agree with kallsyms.
    assert result.value_of("tick_count") == \
        machine.image.kallsyms.unique_address("tick_count")


def test_ambiguous_debug_symbol_resolved_per_unit(machine):
    """Three units define a local ``debug``; matching each unit must
    recover that unit's own instance (the paper's CVE-2005-4639 case)."""
    kallsyms = machine.image.kallsyms
    debug_addrs = {e.unit: e.address for e in kallsyms.candidates("debug")}
    assert len(debug_addrs) == 3

    for unit in ("kernel/core.c", "drivers/dst.c", "drivers/dst_ca.c"):
        result = matcher_for(machine).match_unit(pre_object(unit))
        assert result.value_of("debug") == debug_addrs[unit], unit


def test_nops_skipped_against_merged_run_code(machine):
    """The run kernel is a merged build with alignment padding; the pre
    build is function-sections.  Matching still succeeds and reports
    the padding it skipped somewhere in the unit."""
    result = matcher_for(machine).match_unit(pre_object("kernel/core.c"))
    assert set(result.matched_functions) == {"scale", "account", "idle_loop"}


def test_mismatch_when_pre_source_differs(machine):
    doctored = TREE.with_file("kernel/core.c", TREE.files[
        "kernel/core.c"].replace("return scale(x) + debug;",
                                 "return scale(x) - debug;"))
    with pytest.raises(RunPreMismatchError):
        matcher_for(machine).match_unit(
            pre_object("kernel/core.c", doctored))


def test_mismatch_when_compiler_version_differs():
    """§4.3: preparing the update with a different compiler version makes
    run-pre matching abort rather than install wrong code."""
    machine = boot_kernel(TREE)
    skewed = build_units(
        TREE, ["kernel/core.c"],
        CompilerOptions(compiler_version="kcc-1.1").pre_post_flavor())
    with pytest.raises(RunPreMismatchError):
        matcher_for(machine).match_unit(skewed.object_for("kernel/core.c"))


def test_missing_function_raises_symbol_resolution_error(machine):
    ghost_tree = SourceTree(version="x", files={
        "kernel/core.c": "int nonexistent_fn(void) { return 1; }"})
    with pytest.raises(SymbolResolutionError):
        matcher_for(machine).match_unit(
            pre_object("kernel/core.c", ghost_tree))


def test_candidate_override_redirects_lookup(machine):
    """Stacking support: an override pointing at garbage must fail the
    match (proving the override is actually used)."""
    matcher = RunPreMatcher(
        memory=machine.memory, kallsyms=machine.image.kallsyms,
        candidate_override=lambda unit, name:
            [machine.image.base] if name == "account" else None)
    with pytest.raises(RunPreMismatchError):
        matcher.match_unit(pre_object("kernel/core.c"))


def test_ambiguous_static_function_disambiguated_by_matching():
    """Two units define a static function with the same name but different
    bodies; candidate matching must pick the right one for each unit."""
    tree = SourceTree(version="amb", files={
        "fs/a.c": """
            static int notesize(int x) {
                int pad = x % 4;
                if (pad) { return x + 4 - pad; }
                return x;
            }
            int a_entry(int x) { return notesize(x) + 1; }
        """,
        "fs/b.c": """
            static int notesize(int x) {
                return x * 2 + 7;
            }
            int b_entry(int x) { return notesize(x) - 1; }
        """,
    }, )
    machine = boot_kernel(tree, options=CompilerOptions(opt_level=0))
    kallsyms = machine.image.kallsyms
    assert len(kallsyms.candidates("notesize")) == 2

    matcher = RunPreMatcher(memory=machine.memory, kallsyms=kallsyms)
    note_addrs = {e.unit: e.address for e in kallsyms.candidates("notesize")}
    for unit in ("fs/a.c", "fs/b.c"):
        pre = build_units(tree, [unit],
                          CompilerOptions(opt_level=0).pre_post_flavor()
                          ).object_for(unit)
        result = matcher.match_unit(pre)
        assert result.matched_functions["notesize"] == note_addrs[unit]


def test_match_candidates_picks_the_single_matching_address():
    """Whitebox: handed two candidate run addresses of which exactly one
    holds the pre bytes, ``_match_candidates`` must return that one (and
    not just the first in list order)."""
    tree = SourceTree(version="amb", files={
        "fs/a.c": """
            static int notesize(int x) {
                int pad = x % 4;
                if (pad) { return x + 4 - pad; }
                return x;
            }
            int a_entry(int x) { return notesize(x) + 1; }
        """,
        "fs/b.c": """
            static int notesize(int x) {
                return x * 2 + 7;
            }
            int b_entry(int x) { return notesize(x) - 1; }
        """,
    })
    machine = boot_kernel(tree, options=CompilerOptions(opt_level=0))
    kallsyms = machine.image.kallsyms
    addrs = {e.unit: e.address for e in kallsyms.candidates("notesize")}
    assert len(addrs) == 2
    matcher = RunPreMatcher(memory=machine.memory, kallsyms=kallsyms)

    pre = build_units(tree, ["fs/a.c"],
                      CompilerOptions(opt_level=0).pre_post_flavor()
                      ).object_for("fs/a.c")
    section = pre.section(".text.notesize")
    fn_symbol = pre.symbol("notesize")
    for candidates in ([addrs["fs/a.c"], addrs["fs/b.c"]],
                       [addrs["fs/b.c"], addrs["fs/a.c"]]):
        run_addr, attempt = matcher._match_candidates(
            pre, section, fn_symbol, list(candidates))
        assert run_addr == addrs["fs/a.c"]
        assert attempt is not None


def test_identical_static_functions_cannot_be_disambiguated():
    """If two candidates both match byte-for-byte, Ksplice must refuse
    rather than guess."""
    tree = SourceTree(version="dup", files={
        "fs/a.c": """
            static int helper(int x) { if (x > 3) { return x - 3; } return 0; }
            int a_entry(int x) { return helper(x); }
        """,
        "fs/b.c": """
            static int helper(int x) { if (x > 3) { return x - 3; } return 0; }
            int b_entry(int x) { return helper(x); }
        """,
    })
    machine = boot_kernel(tree, options=CompilerOptions(opt_level=0))
    pre = build_units(tree, ["fs/a.c"],
                      CompilerOptions(opt_level=0).pre_post_flavor()
                      ).object_for("fs/a.c")
    with pytest.raises(SymbolResolutionError):
        RunPreMatcher(memory=machine.memory,
                      kallsyms=machine.image.kallsyms).match_unit(pre)

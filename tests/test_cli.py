"""Tests for the command-line front-end."""

import pytest

from repro.cli import load_tree_from_directory, main
from repro.errors import ReproError

ENTRY_S = """
.global syscall_entry
syscall_entry:
    cmpi r0, 1
    jge bad_sys
    cmpi r0, 0
    jl bad_sys
    push r3
    push r2
    push r1
    movi r4, 4
    mul r0, r4
    lea r4, sys_call_table
    add r4, r0
    loadr r4, r4, 0
    callr r4
    addi sp, 12
    ret
bad_sys:
    movi r0, -38
    ret
.section .data
sys_call_table:
    .word sys_ping
"""

PING_C = """
int ping_count;

int sys_ping(int a, int b, int c) {
    ping_count++;
    return 41;
}
"""

PATCH = """--- kernel/ping.c
+++ kernel/ping.c
@@ -3,5 +3,5 @@

 int sys_ping(int a, int b, int c) {
     ping_count++;
-    return 41;
+    return 42;
 }
"""


@pytest.fixture
def tree_dir(tmp_path):
    (tmp_path / "arch").mkdir()
    (tmp_path / "kernel").mkdir()
    (tmp_path / "arch" / "entry.s").write_text(ENTRY_S)
    (tmp_path / "kernel" / "ping.c").write_text(PING_C)
    (tmp_path / "README").write_text("not source")
    return tmp_path


def test_load_tree_from_directory(tree_dir):
    tree = load_tree_from_directory(str(tree_dir), version="v1")
    assert sorted(tree.files) == ["arch/entry.s", "kernel/ping.c"]
    assert tree.version == "v1"


def test_load_tree_empty_directory_raises(tmp_path):
    with pytest.raises(ReproError):
        load_tree_from_directory(str(tmp_path))


def test_create_and_inspect(tree_dir, tmp_path, capsys):
    patch_file = tmp_path / "fix.patch"
    patch_file.write_text(PATCH)
    out = tmp_path / "update.kspl"

    rc = main(["create", "--patch", str(patch_file),
               "--tree", str(tree_dir), "-o", str(out),
               "--version", "cli-test", "--description", "bump ping"])
    assert rc == 0
    assert out.exists()
    captured = capsys.readouterr()
    assert "update pack written" in captured.out

    rc = main(["inspect", str(out)])
    assert rc == 0
    captured = capsys.readouterr()
    assert "cli-test" in captured.out
    assert "sys_ping" in captured.out
    assert "bump ping" in captured.out


def test_objdump_command(tree_dir, tmp_path, capsys):
    patch_file = tmp_path / "fix.patch"
    patch_file.write_text(PATCH)
    out = tmp_path / "update.kspl"
    main(["create", "--patch", str(patch_file), "--tree", str(tree_dir),
          "-o", str(out)])
    capsys.readouterr()

    rc = main(["objdump", str(out)])
    assert rc == 0
    dumped = capsys.readouterr().out
    assert "section .text.sys_ping" in dumped
    assert "movi" in dumped

    rc = main(["objdump", str(out), "--helper"])
    assert rc == 0
    helper_dump = capsys.readouterr().out
    assert "section .bss.ping_count" in helper_dump


def test_demo_applies_to_running_kernel(tree_dir, tmp_path, capsys):
    patch_file = tmp_path / "fix.patch"
    patch_file.write_text(PATCH)
    rc = main(["demo", "--patch", str(patch_file),
               "--tree", str(tree_dir), "--version", "cli-demo"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "Done!" in captured.out
    assert "stop_machine window" in captured.out


def test_evaluate_subset(capsys):
    rc = main(["evaluate", "--quick", "--limit", "2"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "2/2 updates succeeded" in captured.out


def test_analyze_safe_cve_exits_zero(capsys):
    rc = main(["analyze", "CVE-2006-2451"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "verdict: safe" in out
    assert "sys_prctl" in out


def test_analyze_needs_hooks_cve_exits_two(capsys):
    rc = main(["analyze", "CVE-2007-3851"])
    assert rc == 2
    out = capsys.readouterr().out
    assert "verdict: needs-hooks" in out
    assert "boot path" in out


def test_analyze_unknown_cve_errors(capsys):
    rc = main(["analyze", "CVE-0000-0000"])
    assert rc == 2
    assert "unknown CVE" in capsys.readouterr().err


def test_analyze_json_is_deterministic_and_sorted(capsys):
    import json

    rc = main(["analyze", "CVE-2007-3851", "--json"])
    assert rc == 2
    first = capsys.readouterr().out
    data = json.loads(first)
    assert data["verdict"] == "needs-hooks"
    assert data["exit_code"] == 2
    assert list(data) == sorted(data)

    rc = main(["analyze", "CVE-2007-3851", "--json"])
    assert rc == 2
    assert capsys.readouterr().out == first


def test_trace_json_is_deterministic(tmp_path, monkeypatch, capsys):
    import json

    from repro.pipeline import Trace, save_run
    from repro.pipeline.store import TRACE_FILE_ENV

    monkeypatch.setenv(TRACE_FILE_ENV, str(tmp_path / "trace.json"))
    trace = Trace(label="CVE-2008-0001")
    with trace.stage("create"):
        with trace.stage("analyze") as rep:
            rep.artifacts["verdict"] = "safe"
    save_run([trace], meta={"command": "evaluate"})

    assert main(["trace", "--json", "--scrub"]) == 0
    first = capsys.readouterr().out
    assert main(["trace", "--json", "--scrub"]) == 0
    assert capsys.readouterr().out == first

    data = json.loads(first)
    assert data["meta"]["command"] == "evaluate"
    assert data["traces"][0]["label"] == "CVE-2008-0001"

    # --cve filters the JSON output as well
    assert main(["trace", "--json", "--cve", "CVE-2008-0001"]) == 0
    assert json.loads(capsys.readouterr().out)["traces"][0]["label"] == \
        "CVE-2008-0001"
    assert main(["trace", "--json", "--cve", "CVE-none"]) == 2
    capsys.readouterr()


def test_bad_patch_reports_error(tree_dir, tmp_path, capsys):
    patch_file = tmp_path / "bad.patch"
    patch_file.write_text("--- kernel/ping.c\n+++ kernel/ping.c\n"
                          "@@ -1,1 +1,1 @@\n-nonexistent line\n+other\n")
    rc = main(["create", "--patch", str(patch_file),
               "--tree", str(tree_dir)])
    assert rc == 3
    assert "error:" in capsys.readouterr().err


def test_missing_patch_file_is_user_error(tree_dir, tmp_path, capsys):
    rc = main(["create", "--patch", str(tmp_path / "no-such.patch"),
               "--tree", str(tree_dir)])
    assert rc == 2
    assert "error:" in capsys.readouterr().err


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == "repro %s" % __version__


def test_fleet_rollout_status_rollback_cycle(tmp_path, monkeypatch,
                                             capsys):
    import json

    from repro.fleet.model import ROLLOUT_FILE_ENV
    from repro.pipeline.store import TRACE_FILE_ENV

    monkeypatch.setenv(ROLLOUT_FILE_ENV, str(tmp_path / "rollout.json"))
    monkeypatch.setenv(TRACE_FILE_ENV, str(tmp_path / "trace.json"))

    rc = main(["fleet", "rollout", "--cve", "CVE-2006-2451",
               "--size", "2", "--json"])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report["outcome"] == "complete"
    assert report["updated_members"] == [0, 1]

    assert main(["fleet", "status"]) == 0
    assert "complete" in capsys.readouterr().out

    assert main(["fleet", "rollback"]) == 0
    assert "rolled back 2 members (LIFO): member-1, member-0" \
        in capsys.readouterr().out

    assert main(["fleet", "status", "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["outcome"] == "rolled-back"


def test_fleet_rollout_halts_with_failure_exit_code(tmp_path,
                                                    monkeypatch, capsys):
    from repro.fleet.model import ROLLOUT_FILE_ENV
    from repro.pipeline.store import TRACE_FILE_ENV

    monkeypatch.setenv(ROLLOUT_FILE_ENV, str(tmp_path / "rollout.json"))
    monkeypatch.setenv(TRACE_FILE_ENV, str(tmp_path / "trace.json"))

    rc = main(["fleet", "rollout", "--cve", "CVE-2006-2451",
               "--size", "3", "--inject-oops", "1:1"])
    assert rc == 3
    out = capsys.readouterr().out
    assert "halted" in out and "oops" in out


def test_fleet_bad_arguments_are_usage_errors(tmp_path, monkeypatch,
                                              capsys):
    from repro.fleet.model import ROLLOUT_FILE_ENV

    assert main(["fleet", "rollout", "--cve", "CVE-0000-0000"]) == 2
    assert "unknown CVE" in capsys.readouterr().err
    assert main(["fleet", "rollout", "--cve", "CVE-2006-2451",
                 "--size", "2", "--canary", "9"]) == 2
    assert "canary" in capsys.readouterr().err
    monkeypatch.setenv(ROLLOUT_FILE_ENV, str(tmp_path / "missing.json"))
    assert main(["fleet", "status"]) == 2
    assert "no rollout recorded" in capsys.readouterr().err


def test_fleet_status_corrupt_persistence_is_usage_error(
        tmp_path, monkeypatch, capsys):
    """A mangled persistence file must produce the friendly "no rollout
    recorded" message with exit code 2, never a traceback."""
    from repro.fleet.model import ROLLOUT_FILE_ENV

    path = tmp_path / "rollout.json"
    monkeypatch.setenv(ROLLOUT_FILE_ENV, str(path))

    path.write_text("{ this is not json")
    assert main(["fleet", "status"]) == 2
    assert "no rollout recorded" in capsys.readouterr().err

    path.write_text('{"valid": "json", "wrong": "shape"}')
    assert main(["fleet", "status"]) == 2
    err = capsys.readouterr().err
    assert "no rollout recorded" in err

    assert main(["fleet", "rollback"]) == 2
    assert "no rollout recorded" in capsys.readouterr().err

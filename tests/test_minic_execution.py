"""MiniC execution torture tests: compile on the real toolchain, run on
the real machine, compare against C semantics."""

import pytest

from repro.compiler import CompilerOptions
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel


def run(source, fn="f", args=(), opt_level=2):
    tree = SourceTree(version="x", files={"u.c": source})
    machine = boot_kernel(tree, options=CompilerOptions(opt_level=opt_level))
    value = machine.call_function(fn, list(args))
    return value - (1 << 32) if value >= (1 << 31) else value


# ---------------------------------------------------------------------------
# Operators and precedence


@pytest.mark.parametrize("expr,expected", [
    ("2 + 3 * 4", 14),
    ("(2 + 3) * 4", 20),
    ("20 / 3", 6),
    ("20 % 3", 2),
    ("-20 / 3", -6),          # C truncates toward zero
    ("-20 % 3", -2),
    ("1 << 10", 1024),
    ("1024 >> 3", 128),
    ("0xF0 & 0x3C", 0x30),
    ("0xF0 | 0x0F", 0xFF),
    ("0xFF ^ 0x0F", 0xF0),
    ("~0", -1),
    ("-(5)", -5),
    ("!0", 1),
    ("!7", 0),
    ("1 < 2", 1),
    ("2 < 1", 0),
    ("2 <= 2", 1),
    ("3 > 2", 1),
    ("3 >= 4", 0),
    ("5 == 5", 1),
    ("5 != 5", 0),
    ("1 && 2", 1),
    ("1 && 0", 0),
    ("0 || 0", 0),
    ("0 || 3", 1),
    ("1 + 2 == 3 && 4 < 5", 1),
    ("2 & 1 | 4", 4),          # precedence: (2&1)|4
    ("1 ? 10 : 20", 10),
    ("0 ? 10 : 20", 20),
    ("0 ? 1 : 0 ? 2 : 3", 3),  # right-associative ternary
], ids=lambda v: str(v)[:30])
def test_expression(expr, expected):
    assert run("int f(void) { return %s; }" % expr) == expected


def test_short_circuit_skips_side_effects():
    source = """
    int hits;
    static int bump(void) { hits = hits + 1; return 1; }
    int f(void) {
        int a = 0 && bump();
        int b = 1 || bump();
        return hits * 10 + a + b;
    }
    """
    assert run(source) == 1  # bump never ran; a=0, b=1


def test_assignment_chains_and_compound():
    source = """
    int f(void) {
        int a = 1, b = 2, c = 3;
        a = b = c = 7;
        a += 3; b -= 1; c *= 2;
        a <<= 1; b |= 8; c %= 5;
        return a * 10000 + b * 100 + c;
    }
    """
    assert run(source) == 20 * 10000 + 14 * 100 + 4


def test_incdec_prefix_vs_postfix():
    source = """
    int f(void) {
        int i = 5;
        int a = i++;
        int b = ++i;
        int c = i--;
        int d = --i;
        return a * 1000 + b * 100 + c * 10 + d;
    }
    """
    assert run(source) == 5 * 1000 + 7 * 100 + 7 * 10 + 5


# ---------------------------------------------------------------------------
# Control flow


def test_nested_loops_with_break_continue():
    source = """
    int f(void) {
        int total = 0;
        for (int i = 0; i < 10; i++) {
            if (i == 7) break;
            for (int j = 0; j < 10; j++) {
                if (j % 2) continue;
                if (j > 4) break;
                total += i * j;
            }
        }
        return total;
    }
    """
    # inner sum over j in {0,2,4} = 6i, i in 0..6 -> 6*21 = 126
    assert run(source) == 126


def test_while_with_complex_condition():
    source = """
    int f(int n) {
        int steps = 0;
        while (n != 1 && steps < 1000) {
            if (n % 2) { n = 3 * n + 1; } else { n = n / 2; }
            steps++;
        }
        return steps;
    }
    """
    assert run(source, args=[27]) == 111  # Collatz


def test_early_returns():
    source = """
    int f(int x) {
        if (x < 0) return -1;
        if (x == 0) return 0;
        if (x < 10) { return 1; }
        return 2;
    }
    """
    assert run(source, args=[(-5) & 0xFFFFFFFF]) == -1
    assert run(source, args=[0]) == 0
    assert run(source, args=[9]) == 1
    assert run(source, args=[99]) == 2


def test_dangling_else_binds_to_nearest_if():
    source = """
    int f(int x) {
        if (x > 0)
            if (x > 10) return 1;
            else return 2;
        return 3;
    }
    """
    assert run(source, args=[20]) == 1
    assert run(source, args=[5]) == 2
    assert run(source, args=[0]) == 3


# ---------------------------------------------------------------------------
# Data: arrays, pointers, structs


def test_two_dimensional_emulation_via_flat_array():
    source = """
    int grid[16];
    int f(void) {
        for (int r = 0; r < 4; r++)
            for (int c = 0; c < 4; c++)
                grid[r * 4 + c] = r * 10 + c;
        return grid[2 * 4 + 3];
    }
    """
    assert run(source) == 23


def test_pointer_to_pointer():
    source = """
    int f(void) {
        int x = 5;
        int *p = &x;
        int **pp = &p;
        **pp = 42;
        return x;
    }
    """
    assert run(source) == 42


def test_pointer_walk_over_array():
    source = """
    int data[5];
    int f(void) {
        for (int i = 0; i < 5; i++) data[i] = i + 1;
        int *p = data;
        int total = 0;
        for (int i = 0; i < 5; i++) { total += *p; p++; }
        return total;
    }
    """
    assert run(source) == 15


def test_swap_through_pointers():
    source = """
    int swap(int *a, int *b) {
        int t = *a;
        *a = *b;
        *b = t;
        return 0;
    }
    int f(void) {
        int x = 3, y = 9;
        swap(&x, &y);
        return x * 100 + y;
    }
    """
    assert run(source) == 903


def test_struct_nested_updates():
    source = """
    struct point { int x; int y; };
    struct rect { int x0; int y0; int x1; int y1; };
    struct rect box;
    int area(struct rect *r) {
        return (r->x1 - r->x0) * (r->y1 - r->y0);
    }
    int f(void) {
        box.x0 = 2; box.y0 = 3; box.x1 = 10; box.y1 = 7;
        struct rect *r = &box;
        r->x1 = r->x1 + 2;
        return area(r);
    }
    """
    assert run(source) == 40


def test_struct_array_of_values_via_sizeof_stride():
    source = """
    struct entry { int key; int val; };
    int storage[8];
    int f(void) {
        struct entry *entries = storage;
        for (int i = 0; i < 4; i++) {
            struct entry *e = entries + i;
            e->key = i;
            e->val = i * i;
        }
        struct entry *third = entries + 2;
        return third->val * 10 + sizeof(struct entry);
    }
    """
    assert run(source) == 48  # val 4 * 10 + sizeof 8


def test_global_initializer_expressions():
    source = """
    struct pair { int a; int b; };
    int word = sizeof(int) * 8;
    int both = sizeof(struct pair);
    int masked = 0xFF & 0x3C;
    int f(void) { return word * 10000 + both * 100 + masked; }
    """
    assert run(source) == 32 * 10000 + 8 * 100 + 0x3C


# ---------------------------------------------------------------------------
# Functions


def test_mutual_recursion():
    source = """
    int is_odd(int n);
    int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
    int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
    int f(int n) { return is_even(n) * 10 + is_odd(n); }
    """
    assert run(source, args=[10]) == 10
    assert run(source, args=[7]) == 1


def test_many_arguments_passed_on_stack():
    source = """
    int sum6(int a, int b, int c, int d, int e, int g) {
        return a + b * 2 + c * 3 + d * 4 + e * 5 + g * 6;
    }
    int f(void) { return sum6(1, 2, 3, 4, 5, 6); }
    """
    assert run(source) == 1 + 4 + 9 + 16 + 25 + 36


def test_argument_evaluation_uses_values_not_references():
    source = """
    int touch(int v) { v = v + 100; return v; }
    int f(void) {
        int x = 1;
        int y = touch(x);
        return x * 1000 + y;
    }
    """
    assert run(source) == 1101


def test_static_locals_are_per_function():
    source = """
    int count_a(void) { static int n = 0; n++; return n; }
    int count_b(void) { static int n = 10; n++; return n; }
    int f(void) {
        count_a(); count_a();
        count_b();
        return count_a() * 100 + count_b();
    }
    """
    assert run(source) == 3 * 100 + 12


def test_void_return_yields_zero():
    source = """
    int side;
    int poke(void) { side = 9; return 0; }
    int f(void) {
        poke();
        return side;
    }
    """
    assert run(source) == 9


@pytest.mark.parametrize("opt_level", [0, 1, 2])
def test_same_results_across_opt_levels(opt_level):
    source = """
    static int helper(int v) { return v * 3 + 1; }
    int f(int x) {
        int acc = 0;
        for (int i = 0; i < x; i++) acc += helper(i) % 7;
        return acc;
    }
    """
    assert run(source, args=[20], opt_level=opt_level) == \
        sum((i * 3 + 1) % 7 for i in range(20))


def test_comments_everywhere():
    source = """
    // leading comment
    int f(void) { /* inline */ return /* mid */ 5; } // trailing
    /* block
       spanning
       lines */
    """
    assert run(source) == 5


# ---------------------------------------------------------------------------
# do-while


def test_do_while_runs_body_at_least_once():
    source = """
    int f(int n) {
        int count = 0;
        do {
            count++;
            n--;
        } while (n > 0);
        return count;
    }
    """
    assert run(source, args=[5]) == 5
    assert run(source, args=[0]) == 1   # body runs once even when false
    assert run(source, args=[(-3) & 0xFFFFFFFF]) == 1


def test_do_while_with_break_and_continue():
    source = """
    int f(void) {
        int i = 0, total = 0;
        do {
            i++;
            if (i % 2) continue;    // continue -> the condition test
            if (i > 8) break;
            total += i;
        } while (i < 100);
        return total;
    }
    """
    # evens 2+4+6+8 = 20; breaks at i == 10.
    assert run(source) == 20


def test_nested_do_while_in_loop():
    source = """
    int f(void) {
        int total = 0;
        for (int i = 1; i <= 3; i++) {
            int j = 0;
            do { total += i; j++; } while (j < i);
        }
        return total;
    }
    """
    # i repeated i times: 1*1 + 2*2 + 3*3 = 14
    assert run(source) == 14


def test_do_while_static_local_inside():
    source = """
    int f(void) {
        int rounds = 0;
        do {
            static int persistent = 100;
            persistent++;
            rounds = persistent;
        } while (rounds < 103);
        return rounds;
    }
    """
    assert run(source) == 103

"""Tests for the unified-diff engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PatchError
from repro.patch import (
    apply_patch,
    count_patch_lines,
    make_patch,
    parse_patch,
    reverse_patch,
)

OLD = "\n".join("line %d" % i for i in range(1, 21))
NEW = OLD.replace("line 10", "line ten").replace("line 3", "line three")


def test_make_patch_empty_for_identical_trees():
    assert make_patch({"a.c": OLD}, {"a.c": OLD}) == ""


def test_roundtrip_modify():
    diff = make_patch({"a.c": OLD}, {"a.c": NEW})
    assert "-line 10" in diff and "+line ten" in diff
    assert apply_patch({"a.c": OLD}, diff) == {"a.c": NEW}


def test_roundtrip_create_and_delete():
    diff = make_patch({"gone.c": "bye"}, {"fresh.c": "hi"})
    result = apply_patch({"gone.c": "bye"}, diff)
    assert result == {"fresh.c": "hi"}


def test_roundtrip_multiple_files():
    old = {"a.c": OLD, "b.c": "alpha\nbeta", "c.c": "same"}
    new = {"a.c": NEW, "b.c": "alpha\ngamma", "c.c": "same"}
    diff = make_patch(old, new)
    assert apply_patch(old, diff) == new
    parsed = parse_patch(diff)
    assert sorted(parsed.changed_paths()) == ["a.c", "b.c"]


def test_apply_is_strict_on_context():
    diff = make_patch({"a.c": OLD}, {"a.c": NEW})
    corrupted = {"a.c": OLD.replace("line 9", "line nine")}
    with pytest.raises(PatchError):
        apply_patch(corrupted, diff)


def test_apply_missing_file_raises():
    diff = make_patch({"a.c": OLD}, {"a.c": NEW})
    with pytest.raises(PatchError):
        apply_patch({}, diff)


def test_apply_create_over_existing_raises():
    diff = make_patch({}, {"a.c": "new"})
    with pytest.raises(PatchError):
        apply_patch({"a.c": "old"}, diff)


def test_parse_counts():
    diff = make_patch({"a.c": OLD}, {"a.c": NEW})
    parsed = parse_patch(diff)
    assert parsed.removed() == 2
    assert parsed.added() == 2
    assert count_patch_lines(diff) == 4


def test_parse_tolerates_git_noise():
    diff = make_patch({"a.c": OLD}, {"a.c": NEW})
    noisy = ("diff --git a/a.c b/a.c\nindex 123..456 100644\n"
             + diff + "-- \n2.30.0\n")
    parsed = parse_patch(noisy)
    assert parsed.changed_paths() == ["a.c"]
    assert apply_patch({"a.c": OLD}, parsed) == {"a.c": NEW}


def test_parse_strips_ab_prefixes():
    diff = make_patch({"a.c": "x\n"}, {"a.c": "y\n"})
    prefixed = diff.replace("--- a.c", "--- a/a.c").replace(
        "+++ a.c", "+++ b/a.c")
    parsed = parse_patch(prefixed)
    assert parsed.changed_paths() == ["a.c"]


def test_parse_rejects_bad_hunk_counts():
    bad = ("--- a.c\n+++ a.c\n@@ -1,5 +1,2 @@\n x\n-y\n+z\n")
    with pytest.raises(PatchError):
        parse_patch(bad)


def test_parse_rejects_hunk_before_header():
    with pytest.raises(PatchError):
        parse_patch("@@ -1,1 +1,1 @@\n-x\n+y\n")


def test_reverse_patch_undoes():
    diff = make_patch({"a.c": OLD}, {"a.c": NEW})
    forward = apply_patch({"a.c": OLD}, diff)
    back = apply_patch(forward, reverse_patch(diff))
    assert back == {"a.c": OLD}


def test_insert_at_start_and_end():
    old = {"a.c": "middle"}
    new = {"a.c": "first\nmiddle\nlast"}
    diff = make_patch(old, new)
    assert apply_patch(old, diff) == new


def test_pure_deletion_hunk():
    old = {"a.c": "a\nb\nc\nd"}
    new = {"a.c": "a\nd"}
    diff = make_patch(old, new)
    assert apply_patch(old, diff) == new
    assert count_patch_lines(diff) == 2


_tree_lines = st.lists(
    st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=0, max_size=12),
    min_size=0, max_size=30)


@given(old_lines=_tree_lines, new_lines=_tree_lines)
def test_property_make_then_apply_roundtrips(old_lines, new_lines):
    old = {"f.c": "\n".join(old_lines)}
    new = {"f.c": "\n".join(new_lines)}
    diff = make_patch(old, new)
    assert apply_patch(old, diff) == new


@given(old_lines=_tree_lines, new_lines=_tree_lines)
def test_property_reverse_roundtrips(old_lines, new_lines):
    old = {"f.c": "\n".join(old_lines)}
    new = {"f.c": "\n".join(new_lines)}
    diff = make_patch(old, new)
    if diff:
        assert apply_patch(new, reverse_patch(diff)) == old

"""Tests for the tiered cache backends (memory + disk)."""

import os
import threading

import pytest

from repro.compiler.cache import (
    ContentCache,
    DiskBackend,
    MemoryBackend,
    active_disk_root,
    clear_caches,
    disable_disk_cache,
    drop_memory_tiers,
    enable_disk_cache,
)


@pytest.fixture
def disk_isolation():
    """Leave the module-level registry exactly as the suite expects."""
    yield
    disable_disk_cache()
    clear_caches()


def _disk_files(root):
    found = []
    for dirpath, _dirs, files in os.walk(str(root)):
        found.extend(os.path.join(dirpath, f) for f in files
                     if f.endswith(".pkl"))
    return found


def test_memory_backend_is_lru_bounded():
    backend = MemoryBackend(max_entries=2)
    assert backend.put("a", 1) == 0
    assert backend.put("b", 2) == 0
    assert backend.get("a") == (True, 1)  # refreshes "a"
    assert backend.put("c", 3) == 1  # evicts "b", the LRU entry
    assert backend.get("b") == (False, None)
    assert backend.get("a") == (True, 1)
    assert backend.get("c") == (True, 3)
    assert len(backend) == 2


def test_disk_backend_roundtrip_and_cross_instance_reuse(tmp_path):
    first = DiskBackend(str(tmp_path), max_entries=16)
    key = ("kernel/sched.c", "deadbeef")
    assert first.put(key, {"payload": list(range(5))}) == 0
    # A fresh backend over the same directory — a "new process" — sees
    # the entry purely through the content address.
    second = DiskBackend(str(tmp_path), max_entries=16)
    assert second.get(key) == (True, {"payload": [0, 1, 2, 3, 4]})
    assert second.get(("other", "key")) == (False, None)


def test_disk_backend_eviction_bound(tmp_path):
    backend = DiskBackend(str(tmp_path), max_entries=4)
    for i in range(10):
        backend.put(("key", i), i)
    assert len(backend) <= 4


def test_disk_backend_tolerates_corrupt_entries(tmp_path):
    backend = DiskBackend(str(tmp_path), max_entries=16)
    backend.put("key", "value")
    path = backend._path("key")
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    assert backend.get("key") == (False, None)
    assert not os.path.exists(path)  # corrupt file was dropped


def test_disk_backend_skips_unpicklable_values(tmp_path):
    backend = DiskBackend(str(tmp_path), max_entries=16)
    backend.put("lock", threading.Lock())
    assert backend.put_failures == 1
    assert backend.get("lock") == (False, None)
    assert _disk_files(tmp_path) == []


def test_disk_backend_clear_removes_files(tmp_path):
    backend = DiskBackend(str(tmp_path), max_entries=16)
    backend.put("a", 1)
    backend.put("b", 2)
    assert len(backend) == 2
    backend.clear()
    assert len(backend) == 0
    assert _disk_files(tmp_path) == []


def test_disk_hit_promotes_into_memory_tier(tmp_path):
    cache = ContentCache("t", max_entries=8)
    cache.attach_disk(DiskBackend(str(tmp_path), max_entries=16))
    cache.put("k", "v")
    cache.drop_memory()
    assert len(cache) == 0

    assert cache.get("k") == "v"  # served by disk
    assert cache.stats.disk_hits == 1
    assert cache.stats.hits == 1
    assert len(cache) == 1  # promoted

    assert cache.get("k") == "v"  # now a pure memory hit
    assert cache.stats.disk_hits == 1
    assert cache.stats.hits == 2


def test_cold_process_starts_warm_from_disk(tmp_path):
    warm = ContentCache("t", max_entries=8)
    warm.attach_disk(DiskBackend(str(tmp_path), max_entries=16))
    warm.put(("unit", "digest"), "compiled")

    # A second ContentCache over the same directory models a process
    # restart: no memory state survives, the disk tier does.
    cold = ContentCache("t", max_entries=8)
    cold.attach_disk(DiskBackend(str(tmp_path), max_entries=16))
    assert len(cold) == 0
    assert cold.get(("unit", "digest")) == "compiled"
    assert cold.stats.disk_hits == 1


def test_content_cache_clear_wipes_all_tiers(tmp_path):
    cache = ContentCache("t", max_entries=8)
    cache.attach_disk(DiskBackend(str(tmp_path), max_entries=16))
    cache.put("k", "v")
    assert _disk_files(tmp_path)
    cache.clear()
    assert len(cache) == 0
    assert _disk_files(tmp_path) == []
    assert cache.get("k") is None


def test_disabled_cache_bypasses_disk_tier(tmp_path):
    cache = ContentCache("t", max_entries=8)
    cache.attach_disk(DiskBackend(str(tmp_path), max_entries=16))
    cache.enabled = False
    cache.put("k", "v")
    assert cache.get("k") is None
    assert _disk_files(tmp_path) == []


def test_enable_disk_cache_covers_registered_caches(tmp_path,
                                                    disk_isolation):
    from repro.compiler.cache import COMPILE_CACHE, PARSE_CACHE

    root = str(tmp_path / "objects")
    assert active_disk_root() is None
    assert enable_disk_cache(root, max_entries=32) == root
    assert active_disk_root() == root
    assert PARSE_CACHE.disk is not None
    assert COMPILE_CACHE.disk is not None
    # per-cache subdirectories keep the content addresses disjoint
    assert PARSE_CACHE.disk.directory != COMPILE_CACHE.disk.directory

    from repro.compiler.cache import parse_unit_cached

    clear_caches()
    source = "int f(void) { return 7; }\n"
    parse_unit_cached(source, "unit.c")
    assert _disk_files(root)

    # a restart: memory gone, the parse comes back from disk
    drop_memory_tiers()
    parse_unit_cached(source, "unit.c")
    assert PARSE_CACHE.stats.disk_hits == 1

    # clear_caches() is the hygiene story: the directory empties too
    clear_caches()
    assert _disk_files(root) == []

    disable_disk_cache()
    assert active_disk_root() is None
    assert PARSE_CACHE.disk is None


def test_compile_results_survive_a_simulated_restart(tmp_path,
                                                     disk_isolation):
    """End-to-end: a real unit compile is served from the disk tier
    after every memory tier is dropped."""
    from repro.compiler import compile_source_cached
    from repro.compiler.cache import COMPILE_CACHE

    root = str(tmp_path / "objects")
    enable_disk_cache(root, max_entries=64)
    clear_caches()
    source = "int answer(void) { return 42; }\n"
    first = compile_source_cached(source, "unit.c")
    drop_memory_tiers()
    again = compile_source_cached(source, "unit.c")
    assert COMPILE_CACHE.stats.disk_hits >= 1
    assert first.objfile.name == again.objfile.name

"""Tests for the update-channel control plane: the durable store,
the coordinator service, the REST daemon, and restart recovery."""

import json
import threading

import pytest

from repro.controlplane import (
    ROLLOUT_COMPLETE,
    ROLLOUT_INTERRUPTED,
    ROLLOUT_RUNNING,
    ChannelStore,
    ControlPlaneClient,
    ControlPlaneClientError,
    ControlPlaneError,
    ControlPlaneServer,
    ControlPlaneService,
    ControlPlaneStore,
    RolloutRecord,
    UnknownChannelError,
    UnknownMemberError,
)
from repro.controlplane.model import StoreCorruptError

CVE = "CVE-2006-2451"  # analyzer-safe, has a semantics probe
KERNEL = "2.6.16-deb3"


def make_service(tmp_path, members=(), channel="canary"):
    service = ControlPlaneService(ControlPlaneStore(str(tmp_path)))
    for member_id in members:
        service.register_member(member_id, KERNEL, channel=channel)
    return service


# -- durable store ------------------------------------------------------------


def test_store_survives_reopen(tmp_path):
    store = ControlPlaneStore(str(tmp_path))
    service = ControlPlaneService(store)
    service.register_member("web-00", KERNEL, channel="canary")
    service.quarantine("web-00")
    store.channels.append_entry("canary", {"cve_id": CVE})
    store.save_rollout(RolloutRecord(
        rollout_id="canary-0001", channel="canary", cve_id=CVE,
        sequence=1, status=ROLLOUT_COMPLETE))

    # A second store over the same directory (a restarted daemon)
    # sees every collection.
    revived = ControlPlaneStore(str(tmp_path))
    member = revived.get_member("web-00")
    assert member.kernel_version == KERNEL
    assert member.quarantined
    assert revived.channels.latest_sequence("canary") == 1
    record = revived.load_rollout("canary-0001")
    assert record.status == ROLLOUT_COMPLETE
    assert record.cve_id == CVE


def test_store_corruption_is_a_typed_error(tmp_path):
    ControlPlaneStore(str(tmp_path))  # builds the on-disk layout
    (tmp_path / "registry.json").write_text("{ torn write")
    with pytest.raises(StoreCorruptError):
        ControlPlaneStore(str(tmp_path)).members()


def test_channel_store_stamps_the_sequence_chain(tmp_path):
    channels = ChannelStore(str(tmp_path))
    channels.ensure_channel("stable")
    first = channels.append_entry("stable", {"cve_id": "a"})
    second = channels.append_entry("stable", {"cve_id": "b"})
    assert (first["sequence"], first["base_sequence"]) == (1, 0)
    assert (second["sequence"], second["base_sequence"]) == (2, 1)
    # A reopened store continues the chain, not restarts it.
    third = ChannelStore(str(tmp_path)).append_entry(
        "stable", {"cve_id": "c"})
    assert (third["sequence"], third["base_sequence"]) == (3, 2)
    with pytest.raises(UnknownChannelError):
        channels.get("no-such-channel")


def test_memory_channel_store_needs_no_disk():
    channels = ChannelStore()
    channels.ensure_channel("ephemeral")
    entry = channels.append_entry("ephemeral", {"cve_id": "a"})
    assert entry["sequence"] == 1
    assert channels.names() == ["ephemeral"]


# -- service ------------------------------------------------------------------


def test_recover_marks_running_rollouts_interrupted(tmp_path):
    store = ControlPlaneStore(str(tmp_path))
    record = RolloutRecord(
        rollout_id="canary-0001", channel="canary", cve_id=CVE,
        sequence=1, status=ROLLOUT_RUNNING,
        member_ids=["web-00", "web-01"],
        waves=[{"index": 0, "verdict": "green",
                "member_ids": ["web-00"]}])
    store.save_rollout(record)

    service = ControlPlaneService(ControlPlaneStore(str(tmp_path)))
    revived = service.rollout("canary-0001")
    assert revived.status == ROLLOUT_INTERRUPTED
    assert "1 wave(s) had completed" in revived.detail
    # The streamed progress is still readable.
    assert revived.waves[0]["member_ids"] == ["web-00"]


def test_publish_rolls_out_and_updates_the_registry(tmp_path):
    service = make_service(tmp_path, ["web-00", "web-01", "web-02"])
    record = service.publish("canary", CVE, synchronous=True)
    record = service.rollout(record.rollout_id)

    assert record.status == ROLLOUT_COMPLETE
    assert record.sequence == 1
    assert record.member_ids == ["web-00", "web-01", "web-02"]
    # canary=1, growth=2 over 3 members -> waves of 1 then 2
    assert [len(w["member_ids"]) for w in record.waves] == [1, 2]
    for member_id in record.member_ids:
        member = service.store.get_member(member_id)
        assert member.applied_sequence == 1
        assert member.applied_updates[-1]["cve_id"] == CVE
        assert member.health_history[-1]["healthy"]


def test_quarantined_and_pinned_members_are_skipped(tmp_path):
    service = make_service(tmp_path, ["web-00", "web-01", "web-02"])
    service.quarantine("web-01")
    service.pin("web-02")
    record = service.publish("canary", CVE, synchronous=True)
    record = service.rollout(record.rollout_id)

    assert record.member_ids == ["web-00"]
    skipped = {s["member_id"]: s["reason"] for s in record.skipped}
    assert skipped == {"web-01": "quarantined", "web-02": "pinned"}
    rolled = [m for w in record.waves for m in w["member_ids"]]
    assert "web-01" not in rolled and "web-02" not in rolled
    assert service.store.get_member("web-01").applied_sequence == 0
    assert service.store.get_member("web-02").applied_sequence == 0


def test_version_mismatch_and_sequence_gap_are_skipped(tmp_path):
    service = make_service(tmp_path, ["web-00"])
    service.register_member("old-00", "2.6.8", channel="canary")
    first = service.publish("canary", CVE, synchronous=True)
    assert service.rollout(first.rollout_id).status == ROLLOUT_COMPLETE

    # web-00 is now at #1; a member still at #0 gaps on entry #2.
    service.register_member("late-00", KERNEL, channel="canary")
    second = service.publish("canary", CVE, synchronous=True)
    record = service.rollout(second.rollout_id)
    assert record.member_ids == ["web-00"]
    skipped = {s["member_id"]: s["reason"] for s in record.skipped}
    assert "kernel-version mismatch" in skipped["old-00"]
    assert "sequence gap: member at #0, entry stacks on #1" \
        in skipped["late-00"]


def test_publish_with_no_eligible_members_completes_inline(tmp_path):
    service = make_service(tmp_path, ["web-00"])
    service.pin("web-00")
    record = service.publish("canary", CVE)
    assert record.status == ROLLOUT_COMPLETE
    assert "no eligible members" in record.detail
    # The entry is still published: the channel advanced.
    assert service.store.channels.latest_sequence("canary") == 1


def test_publish_refusals_are_typed(tmp_path):
    service = make_service(tmp_path, ["web-00"])
    with pytest.raises(ControlPlaneError, match="unknown corpus CVE"):
        service.publish("canary", "CVE-0000-0000")
    with pytest.raises(UnknownChannelError):
        service.publish("no-such-channel", CVE)
    with pytest.raises(UnknownMemberError):
        service.pin("no-such-member")
    with pytest.raises(UnknownChannelError):
        service.register_member("web-01", KERNEL,
                                channel="no-such-channel")


def test_reregistration_keeps_history(tmp_path):
    service = make_service(tmp_path, ["web-00"])
    service.publish("canary", CVE, synchronous=True)
    before = service.store.get_member("web-00")
    assert before.applied_sequence == 1

    service.register_member("web-00", KERNEL, channel="canary")
    after = service.store.get_member("web-00")
    assert after.applied_sequence == 1
    assert after.applied_updates == before.applied_updates


# -- REST daemon --------------------------------------------------------------


@pytest.fixture
def daemon(tmp_path):
    """A live control plane on an ephemeral port, plus its data dir."""
    server = ControlPlaneServer(("127.0.0.1", 0),
                                data_dir=str(tmp_path / "cp"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def test_http_publish_drives_canary_waves_across_eight_members(
        daemon, tmp_path):
    """The acceptance path: 8 registered members, a publish over HTTP,
    wave-by-wave progress visible through GET /rollouts/<id>, and a
    daemon restart that loses nothing."""
    client = ControlPlaneClient(daemon.url)
    assert client.health()["ok"]

    fleet = ["web-%02d" % i for i in range(8)]
    for member_id in fleet:
        client.register_member(member_id, KERNEL, channel="canary")
    assert len(client.members()) == 8

    record = client.publish("canary", CVE, canary=1, growth=2)
    assert record["status"] == ROLLOUT_RUNNING
    rollout_id = record["rollout_id"]

    seen = []
    final = client.wait_rollout(rollout_id, timeout=300,
                                on_wave=seen.append)
    assert final["status"] == ROLLOUT_COMPLETE
    # canary=1, growth=2 over 8 members: 1, 2, 4, then the last 1.
    assert [len(w["member_ids"]) for w in seen] == [1, 2, 4, 1]
    assert [m for w in seen for m in w["member_ids"]] == fleet
    assert all(w["verdict"] == "green" for w in seen)

    status = client.channel("canary")
    assert [s["member_id"] for s in status["subscribers"]
            if s["current"]] == fleet
    assert status["entries"][0]["cve_id"] == CVE
    assert "pack_b64" not in status["entries"][0]

    # Kill the daemon, start a fresh one over the same directory:
    # registry, channel series, and the finished report all survive.
    daemon.shutdown()
    revived = ControlPlaneServer(("127.0.0.1", 0),
                                 data_dir=str(tmp_path / "cp"))
    thread = threading.Thread(target=revived.serve_forever,
                              daemon=True)
    thread.start()
    try:
        client = ControlPlaneClient(revived.url)
        assert len(client.members()) == 8
        assert client.member("web-03")["applied_sequence"] == 1
        record = client.rollout(rollout_id)
        assert record["status"] == ROLLOUT_COMPLETE
        assert len(record["waves"]) == 4
        assert record["report"]["outcome"] == "complete"
    finally:
        revived.shutdown()
        revived.server_close()
        thread.join(timeout=10)


def test_http_restart_marks_interrupted(daemon, tmp_path):
    """A record left ``running`` by a dead daemon reads as interrupted
    after the next boot, with its streamed waves intact."""
    store = daemon.service.store
    store.save_rollout(RolloutRecord(
        rollout_id="canary-0099", channel="canary", cve_id=CVE,
        sequence=99, status=ROLLOUT_RUNNING,
        member_ids=["web-00"],
        waves=[{"index": 0, "verdict": "green",
                "member_ids": ["web-00"]}]))
    daemon.shutdown()

    revived = ControlPlaneServer(("127.0.0.1", 0),
                                 data_dir=store.root)
    thread = threading.Thread(target=revived.serve_forever,
                              daemon=True)
    thread.start()
    try:
        record = ControlPlaneClient(revived.url).rollout("canary-0099")
        assert record["status"] == ROLLOUT_INTERRUPTED
        assert "wave(s) had completed" in record["detail"]
        assert record["waves"][0]["member_ids"] == ["web-00"]
    finally:
        revived.shutdown()
        revived.server_close()
        thread.join(timeout=10)


def test_http_quarantine_excludes_member_from_waves(daemon):
    client = ControlPlaneClient(daemon.url)
    for member_id in ("db-00", "db-01", "db-02"):
        client.register_member(member_id, KERNEL, channel="canary")
    assert client.member_action("db-02", "quarantine")["quarantined"]

    record = client.publish("canary", CVE)
    final = client.wait_rollout(record["rollout_id"], timeout=300)
    assert final["status"] == ROLLOUT_COMPLETE
    assert final["member_ids"] == ["db-00", "db-01"]
    assert final["skipped"] == [{"member_id": "db-02",
                                 "reason": "quarantined"}]
    rolled = [m for w in final["waves"] for m in w["member_ids"]]
    assert "db-02" not in rolled
    assert client.member("db-02")["applied_sequence"] == 0

    # Unquarantine and the member catches up on the next publish.
    client.member_action("db-02", "unquarantine")
    record = client.publish("canary", CVE)
    final = client.wait_rollout(record["rollout_id"], timeout=300)
    skipped = {s["member_id"] for s in final["skipped"]}
    # db-02 is at #0 and entry #2 stacks on #1 -> sequence gap.
    assert skipped == {"db-02"}


def test_http_error_statuses(daemon):
    client = ControlPlaneClient(daemon.url)
    with pytest.raises(ControlPlaneClientError) as excinfo:
        client.member("no-such-member")
    assert excinfo.value.status == 404
    assert excinfo.value.is_user_error
    with pytest.raises(ControlPlaneClientError) as excinfo:
        client.publish("stable", "CVE-0000-0000")
    assert excinfo.value.status == 400
    with pytest.raises(ControlPlaneClientError) as excinfo:
        client.register_member("", KERNEL)
    assert excinfo.value.status == 400
    with pytest.raises(ControlPlaneClientError) as excinfo:
        client.rollout("no-such-rollout")
    assert excinfo.value.status == 404
    with pytest.raises(ControlPlaneClientError, match="cve_id"):
        client._request("POST", "/channels/stable/publish", {})
    with pytest.raises(ControlPlaneClientError) as excinfo:
        client._request("GET", "/no/such/route")
    assert excinfo.value.status == 404


def test_http_create_channel_and_list(daemon):
    client = ControlPlaneClient(daemon.url)
    client.create_channel("hotfix")
    names = {c["name"] for c in client.channels()}
    assert {"stable", "canary", "nightly", "hotfix"} <= names
    # Unreachable daemon -> transport error, not a traceback.
    dead = ControlPlaneClient("http://127.0.0.1:1", timeout=2)
    with pytest.raises(ControlPlaneClientError,
                       match="cannot reach the control plane"):
        dead.health()


# -- remote execution ---------------------------------------------------------


def test_publish_ships_to_a_shared_worker(tmp_path):
    """Members registered with a worker address roll out remotely:
    the whole publish runs as one fleet-rollout item on the worker,
    with waves streamed back into the record."""
    from repro.distributed import spawn_local_workers

    workers = spawn_local_workers(1)
    try:
        service = make_service(tmp_path)
        for member_id in ("edge-00", "edge-01"):
            service.register_member(member_id, KERNEL,
                                    channel="canary",
                                    worker=workers[0].address)
        record = service.publish("canary", CVE, synchronous=True)
        record = service.rollout(record.rollout_id)
        assert record.worker == workers[0].address
        assert record.status == ROLLOUT_COMPLETE
        assert [len(w["member_ids"]) for w in record.waves] == [1, 1]
        assert record.report["outcome"] == "complete"
        for member_id in ("edge-00", "edge-01"):
            member = service.store.get_member(member_id)
            assert member.applied_sequence == 1
    finally:
        workers[0].stop()


def test_mixed_workers_fall_back_to_local(tmp_path):
    service = make_service(tmp_path)
    service.register_member("a", KERNEL, channel="canary",
                            worker="host-1:9999")
    service.register_member("b", KERNEL, channel="canary",
                            worker="host-2:9999")
    record = service.publish("canary", CVE, synchronous=True)
    record = service.rollout(record.rollout_id)
    # No single shared worker -> the coordinator runs it locally.
    assert record.worker == ""
    assert record.status == ROLLOUT_COMPLETE


# -- serialization ------------------------------------------------------------


def test_rollout_record_roundtrip():
    record = RolloutRecord(
        rollout_id="stable-0002", channel="stable", cve_id=CVE,
        sequence=2, status=ROLLOUT_COMPLETE,
        member_ids=["m-0"], skipped=[{"member_id": "m-1",
                                      "reason": "pinned"}],
        waves=[{"index": 0, "verdict": "green",
                "member_ids": ["m-0"]}])
    clone = RolloutRecord.from_json_dict(
        json.loads(json.dumps(record.to_json_dict())))
    assert clone == record
    assert clone.summary()["status"] == ROLLOUT_COMPLETE


# -- publish gate -------------------------------------------------------------


def _fake_report(verdict="safe", proven=True, run_build=True):
    """An AnalysisReport shaped to hit one gate branch."""
    from repro.analysis import AnalysisReport, Finding
    from repro.analysis.model import (
        EVIDENCE_ABI,
        EVIDENCE_EQUIVALENCE,
        Evidence,
    )

    report = AnalysisReport(run_build_analyzed=run_build)
    report.patched_functions = {"unit.c": ["fn"]}
    if verdict != "safe":
        report.add(Finding(analysis="lint", verdict=verdict,
                           unit="unit.c", symbol="fn",
                           detail="seeded %s" % verdict))
    if proven:
        for kind in (EVIDENCE_ABI, EVIDENCE_EQUIVALENCE):
            report.evidence.append(Evidence(
                kind=kind, unit="unit.c", symbol="fn",
                detail="seeded", sites=["unit.c:fn+0x0: seeded"]))
    return report


def test_publish_records_the_evidence_bundle(tmp_path):
    """A real publish carries the analyzer's proof on the record."""
    service = make_service(tmp_path, ["web-00"])
    record = service.publish("canary", CVE, synchronous=True)
    record = service.rollout(record.rollout_id)
    assert record.status == ROLLOUT_COMPLETE
    assert not record.forced
    bundle = record.analysis
    assert bundle is not None
    assert bundle["verdict"] == "safe"
    assert bundle["proven"] is True
    assert bundle["forced"] is False
    assert bundle["evidence"], "evidence bundle must not be empty"
    kinds = {e["kind"] for e in bundle["evidence"]}
    assert {"abi", "equivalence"} <= kinds
    # The bundle survives the store round-trip.
    revived = ControlPlaneStore(str(tmp_path)).load_rollout(
        record.rollout_id)
    assert revived.analysis == bundle


def test_publish_gate_refuses_a_reject_verdict(tmp_path, monkeypatch):
    import repro.evaluation.analyze as analyze_mod

    monkeypatch.setattr(
        analyze_mod, "analyze_corpus_cve",
        lambda spec, augmented=True: _fake_report(verdict="reject"))
    service = make_service(tmp_path, ["web-00"])
    with pytest.raises(ControlPlaneError, match="publish gate"):
        service.publish("canary", CVE)
    # Nothing was published: the channel did not advance.
    assert service.store.channels.latest_sequence("canary") == 0
    assert service.rollouts() == []


def test_publish_gate_refuses_an_unproven_verdict(tmp_path,
                                                  monkeypatch):
    import repro.evaluation.analyze as analyze_mod

    monkeypatch.setattr(
        analyze_mod, "analyze_corpus_cve",
        lambda spec, augmented=True: _fake_report(proven=False))
    service = make_service(tmp_path, ["web-00"])
    with pytest.raises(ControlPlaneError,
                       match="not backed by machine-checkable"):
        service.publish("canary", CVE)
    assert service.store.channels.latest_sequence("canary") == 0


def test_publish_gate_force_overrides_and_records_it(tmp_path,
                                                     monkeypatch):
    import repro.evaluation.analyze as analyze_mod

    monkeypatch.setattr(
        analyze_mod, "analyze_corpus_cve",
        lambda spec, augmented=True: _fake_report(verdict="reject"))
    service = make_service(tmp_path, ["web-00"])
    record = service.publish("canary", CVE, synchronous=True,
                             force=True)
    record = service.rollout(record.rollout_id)
    assert record.forced
    assert record.analysis["forced"] is True
    assert "rejects" in record.analysis["overridden_refusal"]
    # The override is durable.
    revived = ControlPlaneStore(str(tmp_path)).load_rollout(
        record.rollout_id)
    assert revived.forced


def test_publish_gate_refusal_over_http_is_a_user_error(
        daemon, monkeypatch):
    import repro.evaluation.analyze as analyze_mod

    monkeypatch.setattr(
        analyze_mod, "analyze_corpus_cve",
        lambda spec, augmented=True: _fake_report(proven=False))
    client = ControlPlaneClient(daemon.url)
    client.register_member("web-00", KERNEL, channel="canary")
    with pytest.raises(ControlPlaneClientError) as excinfo:
        client.publish("canary", CVE)
    assert excinfo.value.is_user_error
    # force=True goes through and the bundle rides the record.
    record = client.publish("canary", CVE, force=True)
    assert record["forced"] is True

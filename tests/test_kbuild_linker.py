"""Tests for the build system and linker."""

import pytest

from repro.compiler import CompilerOptions
from repro.errors import BuildError, LinkError, SymbolResolutionError
from repro.kbuild import KernelConfig, SourceTree, build_tree, build_units
from repro.linker import link_kernel
from repro.patch import make_patch

TREE = SourceTree(version="2.6.16", files={
    "kernel/main.c": """
        extern int helper_value(int x);
        int boot_flag = 1;
        int kernel_main(void) { return helper_value(boot_flag); }
    """,
    "kernel/helper.c": """
        static int debug;
        int helper_value(int x) { debug = x; return debug + 41; }
    """,
    "drivers/dst.c": """
        static int debug;
        int dst_probe(void) { debug = 1; return debug; }
    """,
    "README": "not a source file",
})


def test_source_units_sorted_and_filtered():
    assert TREE.source_units() == [
        "drivers/dst.c", "kernel/helper.c", "kernel/main.c"]


def test_read_missing_file_raises():
    with pytest.raises(BuildError):
        TREE.read("kernel/nope.c")


def test_patched_tree_and_changed_units():
    new_files = dict(TREE.files)
    new_files["kernel/helper.c"] = TREE.files["kernel/helper.c"].replace(
        "41", "42")
    diff = make_patch(TREE.files, new_files)
    patched = TREE.patched(diff)
    assert patched.version == "2.6.16+"
    assert TREE.changed_units(patched) == ["kernel/helper.c"]


def test_config_disables_units():
    config = KernelConfig.default().without(["drivers/dst.c"])
    build = build_tree(TREE, config=config)
    assert "drivers/dst.c" not in build.objects
    assert "kernel/main.c" in build.objects


def test_build_units_incremental():
    build = build_units(TREE, ["kernel/helper.c"])
    assert list(build.objects) == ["kernel/helper.c"]


def test_build_empty_raises():
    empty = SourceTree(version="x", files={})
    with pytest.raises(BuildError):
        build_tree(empty)


def test_link_produces_image_with_resolved_symbols():
    image = link_kernel(build_tree(TREE))
    main_addr = image.kallsyms.unique_address("kernel_main")
    assert image.contains(main_addr)
    helper_addr = image.kallsyms.unique_address("helper_value")
    assert image.contains(helper_addr)
    # boot_flag's initial value is in the image.
    flag_addr = image.kallsyms.unique_address("boot_flag")
    assert image.read_u32(flag_addr) == 1


def test_link_places_text_before_data_before_bss():
    image = link_kernel(build_tree(TREE))
    text = image.placement("kernel/main.c", ".text")
    data = image.placement("kernel/main.c", ".data")
    bss = image.placement("kernel/helper.c", ".bss")
    assert text.address < data.address < bss.address


def test_ambiguous_local_symbols_coexist():
    image = link_kernel(build_tree(TREE))
    debugs = image.kallsyms.candidates("debug")
    assert len(debugs) == 2
    assert {e.unit for e in debugs} == {"kernel/helper.c", "drivers/dst.c"}
    assert image.kallsyms.is_ambiguous("debug")
    with pytest.raises(SymbolResolutionError):
        image.kallsyms.unique_address("debug")


def test_kallsyms_census():
    image = link_kernel(build_tree(TREE))
    table = image.kallsyms
    assert table.total_symbols() > 0
    ambiguous = table.ambiguous_symbols()
    assert all(e.name == "debug" for e in ambiguous)
    assert 0 < table.ambiguous_fraction() < 1
    assert set(table.units_with_ambiguous_symbols()) == {
        "kernel/helper.c", "drivers/dst.c"}


def test_symbol_at_finds_enclosing_function():
    image = link_kernel(build_tree(TREE))
    main_addr = image.kallsyms.unique_address("kernel_main")
    entry = image.kallsyms.symbol_at(main_addr + 3)
    assert entry is not None and entry.name == "kernel_main"


def test_undefined_symbol_raises_link_error():
    tree = SourceTree(version="x", files={
        "a.c": "extern int ghost; int f(void) { return ghost; }"})
    with pytest.raises(LinkError):
        link_kernel(build_tree(tree))


def test_duplicate_global_symbol_raises():
    tree = SourceTree(version="x", files={
        "a.c": "int f(void) { return 1; }",
        "b.c": "int f(void) { return 2; }"})
    with pytest.raises(LinkError):
        link_kernel(build_tree(tree))


def test_cross_unit_call_relocated():
    """The call in kernel_main must land on helper_value's entry."""
    from repro.arch.disassembler import iter_instructions

    image = link_kernel(build_tree(TREE, CompilerOptions(opt_level=0)))
    main = image.kallsyms.unique_address("kernel_main")
    main_entry = image.kallsyms.symbol_at(main)
    code = image.read_bytes(main, main_entry.size)
    helper = image.kallsyms.unique_address("helper_value")
    call_targets = [
        main + d.offset + d.length + d.instruction.operands[0]
        for d in iter_instructions(code)
        if d.mnemonic == "call"
    ]
    assert helper in call_targets


def test_text_range_covers_all_functions():
    image = link_kernel(build_tree(TREE))
    lo, hi = image.text_range()
    for name in ("kernel_main", "helper_value", "dst_probe"):
        addr = image.kallsyms.unique_address(name)
        assert lo <= addr < hi


def test_read_outside_image_raises():
    image = link_kernel(build_tree(TREE))
    with pytest.raises(LinkError):
        image.read_bytes(image.base - 4, 4)
    with pytest.raises(LinkError):
        image.read_bytes(image.end - 2, 4)

"""Tests for the hardened fabric: shared-secret handshake auth,
per-item wall-clock timeouts, and remote fleet rollouts."""

import socket

import pytest

from repro.distributed import (
    AuthError,
    ProtocolError,
    protocol,
    spawn_local_workers,
)
from repro.evaluation import clear_caches, evaluate_corpus
from repro.evaluation.engine import EngineStats
from repro.fleet import RolloutPlan, run_remote_rollout

SECRET = b"fabric-test-secret"


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _connect(worker):
    sock = socket.create_connection((worker.host, worker.port),
                                    timeout=10.0)
    sock.settimeout(10.0)
    return sock


# -- handshake authentication ------------------------------------------------


def test_unauthenticated_peer_dropped_before_any_decode():
    """A client with no secret is rejected during the handshake —
    the worker never decodes a data frame from it — and the worker
    stays up for properly authenticated peers."""
    workers = spawn_local_workers(1, secret=SECRET)
    try:
        sock = _connect(workers[0])
        try:
            with pytest.raises(AuthError, match="requires a shared"):
                protocol.connect_stream(sock, None)
        finally:
            sock.close()

        # Same worker process, correct secret: a full remote rollout.
        report = run_remote_rollout(
            workers[0].address,
            RolloutPlan(cve_id="CVE-2006-2451", fleet_size=2),
            secret=SECRET)
        assert report.outcome == "complete"
    finally:
        workers[0].stop()


def test_wrong_secret_is_rejected():
    workers = spawn_local_workers(1, secret=SECRET)
    try:
        sock = _connect(workers[0])
        try:
            with pytest.raises(ProtocolError):
                protocol.connect_stream(sock, b"not-the-secret")
        finally:
            sock.close()
    finally:
        workers[0].stop()


def test_client_detects_impostor_worker():
    """Mutual auth: a fake worker that demands a secret but cannot
    prove it knows it must be refused by the client."""
    from repro.distributed.crypto import ServerHandshake

    def impostor(server):
        conn, _ = server.accept()
        with conn:
            # A worker that *demands* the secret but holds a wrong one
            # cannot compute the confirmation the client expects.
            handshake = ServerHandshake(b"some-other-secret")
            protocol.send_raw(conn, handshake.banner())
            protocol.recv_raw(conn)  # client proof; impostor can't check
            protocol.send_raw(conn, b"\x00" * 32)  # forged confirmation

    import threading

    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    thread = threading.Thread(target=impostor, args=(server,),
                              daemon=True)
    thread.start()
    try:
        sock = socket.create_connection(server.getsockname(), timeout=10)
        sock.settimeout(10.0)
        try:
            with pytest.raises(AuthError, match="failed to prove"):
                protocol.connect_stream(sock, SECRET)
        finally:
            sock.close()
    finally:
        server.close()
        thread.join(5.0)


def test_client_refuses_anonymous_downgrade():
    """A client configured with a secret must refuse a worker (or a
    MITM rewriting the banner's mode byte) that offers an
    unauthenticated handshake — never silently fall back to anonymous
    DH and ship work to a peer that proved nothing."""
    from repro.distributed.crypto import ServerHandshake

    def impostor(server):
        conn, _ = server.accept()
        with conn:
            handshake = ServerHandshake(None)  # anonymous-mode banner
            protocol.send_raw(conn, handshake.banner())
            try:
                protocol.recv_raw(conn)  # client hangs up instead
            except (ConnectionError, OSError, ProtocolError):
                pass

    import threading

    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    thread = threading.Thread(target=impostor, args=(server,),
                              daemon=True)
    thread.start()
    try:
        sock = socket.create_connection(server.getsockname(), timeout=10)
        sock.settimeout(10.0)
        try:
            with pytest.raises(AuthError, match="downgrade"):
                protocol.connect_stream(sock, SECRET)
        finally:
            sock.close()
    finally:
        server.close()
        thread.join(5.0)


def test_authenticated_evaluation_matches_open(monkeypatch):
    """The coordinator picks the secret up from the environment and the
    distributed run completes without fallback."""
    from repro.evaluation import CORPUS

    specs = CORPUS[:2]
    monkeypatch.setenv(protocol.SECRET_ENV, SECRET.decode("utf-8"))
    workers = spawn_local_workers(1, secret=SECRET)
    stats = EngineStats()
    try:
        report = evaluate_corpus(specs, run_stress=False, stats=stats,
                                 workers=[workers[0].address])
    finally:
        workers[0].stop()
    assert not stats.fell_back
    assert all(r.success for r in report.results)


def test_secret_worker_open_coordinator_falls_back(monkeypatch):
    """An auth rejection looks like an unreachable worker: the run
    still completes, locally, with the reason recorded."""
    monkeypatch.delenv(protocol.SECRET_ENV, raising=False)
    from repro.evaluation import CORPUS

    workers = spawn_local_workers(1, secret=SECRET)
    stats = EngineStats()
    try:
        report = evaluate_corpus(CORPUS[:2], run_stress=False,
                                 stats=stats,
                                 workers=[workers[0].address])
    finally:
        workers[0].stop()
    assert stats.fell_back
    assert all(r.success for r in report.results)


# -- heartbeats under load ----------------------------------------------------


def test_heartbeat_answered_while_item_runs():
    """A slow item must not starve the heartbeat: the worker evaluates
    in an executor thread while its event loop answers pings, so a
    coordinator with a tight heartbeat budget sees a live worker and
    never retries or rescues."""
    from repro.distributed.coordinator import Coordinator
    from repro.evaluation import CORPUS
    from repro.evaluation.engine import _evaluate_group

    specs = CORPUS[:2]
    # Each item wedges ~2s; three missed 0.2s heartbeats (~0.6s budget)
    # would mark the worker dead long before the item finishes.
    workers = spawn_local_workers(1, wedge_seconds=2.0)
    stats = EngineStats()
    try:
        coordinator = Coordinator([workers[0].address],
                                  heartbeat_interval=0.2,
                                  heartbeat_misses=3)
        results = coordinator.run(specs, run_stress=False, stats=stats)
    finally:
        workers[0].stop()
    assert results is not None and len(results) == len(specs)
    assert stats.retries == 0
    assert stats.local_rescues == 0
    assert stats.workers == 1


# -- reconnect backoff --------------------------------------------------------


def test_reconnect_after_worker_death_is_counted():
    """A worker that dies mid-run is reconnected (the respawned
    listener reuses the port) with exponential backoff, and the
    reconnect shows up in EngineStats per peer."""
    from repro.evaluation import CORPUS

    faulty = spawn_local_workers(1, fail_after_items=1)
    healthy = spawn_local_workers(1)
    stats = EngineStats()
    try:
        report = evaluate_corpus(CORPUS[:4], run_stress=False,
                                 stats=stats,
                                 workers=[faulty[0].address,
                                          healthy[0].address])
    finally:
        faulty[0].stop()
        healthy[0].stop()
    assert all(r.success for r in report.results)
    assert not stats.fell_back
    # The faulty worker died after its first item; the coordinator
    # either reconnected to its respawned listener or exhausted the
    # backoff schedule — both are visible in the stats.
    assert stats.reconnects == sum(stats.reconnects_by_peer.values())


# -- frame-size enforcement ---------------------------------------------------


def test_oversize_frame_drops_peer_post_handshake():
    """max_frame binds *after* the handshake too: a session frame
    larger than the configured cap is a ProtocolError on the sender
    and, wire-injected, on the receiver."""
    left, right = socket.socketpair()
    try:
        sender = protocol.MessageStream(left, max_frame=1024)
        with pytest.raises(ProtocolError, match="exceeds the session"):
            sender.send({"type": "item", "blob": b"z" * 2048})
        # Receiver side: a forged record header over the cap is
        # rejected before any allocation or decode.
        receiver = protocol.MessageStream(right, max_frame=1024)
        left.sendall((1024 + 4096).to_bytes(4, "big"))
        with pytest.raises(ProtocolError, match="dropping the peer"):
            receiver.recv()
    finally:
        left.close()
        right.close()


# -- per-item wall-clock timeout ---------------------------------------------


def test_wedged_item_is_abandoned_with_reasoned_failure():
    """A worker whose item wedges past --item-timeout reports a
    reasoned ERROR frame and stays in session; the coordinator
    finishes the corpus itself."""
    from repro.evaluation import CORPUS

    specs = CORPUS[:2]
    workers = spawn_local_workers(1, item_timeout=0.2, wedge_seconds=30.0)
    stats = EngineStats()
    try:
        report = evaluate_corpus(specs, run_stress=False, stats=stats,
                                 workers=[workers[0].address])
    finally:
        workers[0].stop()
    # Results are complete despite every remote attempt timing out.
    assert all(r.success for r in report.results)
    assert len(report.results) == len(specs)
    assert stats.local_rescues == len(specs)


# -- remote fleet rollouts ---------------------------------------------------


def test_remote_rollout_streams_waves_and_matches_local():
    plan = RolloutPlan(cve_id="CVE-2006-2451", fleet_size=3)
    workers = spawn_local_workers(1)
    seen = []
    try:
        remote = run_remote_rollout(workers[0].address, plan,
                                    on_wave=seen.append)
    finally:
        workers[0].stop()
    from repro.fleet import rollout_corpus_cve

    local = rollout_corpus_cve(plan)
    assert remote.to_json() == local.to_json()
    assert [w["index"] for w in seen] == [0, 1]
    assert all(w["verdict"] == "green" for w in seen)

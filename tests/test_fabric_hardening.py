"""Tests for the hardened fabric: shared-secret handshake auth,
per-item wall-clock timeouts, and remote fleet rollouts."""

import socket

import pytest

from repro.distributed import (
    AuthError,
    ProtocolError,
    protocol,
    spawn_local_workers,
)
from repro.evaluation import clear_caches, evaluate_corpus
from repro.evaluation.engine import EngineStats
from repro.fleet import RolloutPlan, run_remote_rollout

SECRET = b"fabric-test-secret"


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _connect(worker):
    sock = socket.create_connection((worker.host, worker.port),
                                    timeout=10.0)
    sock.settimeout(10.0)
    return sock


# -- handshake authentication ------------------------------------------------


def test_unauthenticated_peer_dropped_before_any_pickle():
    """A client with no secret is rejected at the raw-frame layer —
    the worker never deserializes anything from it — and the worker
    stays up for properly authenticated peers."""
    workers = spawn_local_workers(1, secret=SECRET)
    try:
        sock = _connect(workers[0])
        try:
            with pytest.raises(AuthError, match="requires a shared"):
                protocol.worker_auth_connect(sock, None)
        finally:
            sock.close()

        # Same worker process, correct secret: a full remote rollout.
        report = run_remote_rollout(
            workers[0].address,
            RolloutPlan(cve_id="CVE-2006-2451", fleet_size=2),
            secret=SECRET)
        assert report.outcome == "complete"
    finally:
        workers[0].stop()


def test_wrong_secret_is_rejected():
    workers = spawn_local_workers(1, secret=SECRET)
    try:
        sock = _connect(workers[0])
        try:
            with pytest.raises(ProtocolError):
                protocol.worker_auth_connect(sock, b"not-the-secret")
        finally:
            sock.close()
    finally:
        workers[0].stop()


def test_client_detects_impostor_worker():
    """Mutual auth: a fake worker that demands a secret but cannot
    prove it knows it must be refused by the client."""

    def impostor(server):
        conn, _ = server.accept()
        with conn:
            protocol.send_raw(
                conn, protocol.AUTH_REQUIRED + b"\x00" * 16)
            protocol.recv_raw(conn)  # client proof; impostor can't check
            protocol.send_raw(conn, b"\x00" * 32)  # forged proof

    import threading

    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    thread = threading.Thread(target=impostor, args=(server,),
                              daemon=True)
    thread.start()
    try:
        sock = socket.create_connection(server.getsockname(), timeout=10)
        sock.settimeout(10.0)
        try:
            with pytest.raises(AuthError, match="failed to prove"):
                protocol.worker_auth_connect(sock, SECRET)
        finally:
            sock.close()
    finally:
        server.close()
        thread.join(5.0)


def test_authenticated_evaluation_matches_open(monkeypatch):
    """The coordinator picks the secret up from the environment and the
    distributed run completes without fallback."""
    from repro.evaluation import CORPUS

    specs = CORPUS[:2]
    monkeypatch.setenv(protocol.SECRET_ENV, SECRET.decode("utf-8"))
    workers = spawn_local_workers(1, secret=SECRET)
    stats = EngineStats()
    try:
        report = evaluate_corpus(specs, run_stress=False, stats=stats,
                                 workers=[workers[0].address])
    finally:
        workers[0].stop()
    assert not stats.fell_back
    assert all(r.success for r in report.results)


def test_secret_worker_open_coordinator_falls_back(monkeypatch):
    """An auth rejection looks like an unreachable worker: the run
    still completes, locally, with the reason recorded."""
    monkeypatch.delenv(protocol.SECRET_ENV, raising=False)
    from repro.evaluation import CORPUS

    workers = spawn_local_workers(1, secret=SECRET)
    stats = EngineStats()
    try:
        report = evaluate_corpus(CORPUS[:2], run_stress=False,
                                 stats=stats,
                                 workers=[workers[0].address])
    finally:
        workers[0].stop()
    assert stats.fell_back
    assert all(r.success for r in report.results)


# -- per-item wall-clock timeout ---------------------------------------------


def test_wedged_item_is_abandoned_with_reasoned_failure():
    """A worker whose item wedges past --item-timeout reports a
    reasoned ERROR frame and stays in session; the coordinator
    finishes the corpus itself."""
    from repro.evaluation import CORPUS

    specs = CORPUS[:2]
    workers = spawn_local_workers(1, item_timeout=0.2, wedge_seconds=30.0)
    stats = EngineStats()
    try:
        report = evaluate_corpus(specs, run_stress=False, stats=stats,
                                 workers=[workers[0].address])
    finally:
        workers[0].stop()
    # Results are complete despite every remote attempt timing out.
    assert all(r.success for r in report.results)
    assert len(report.results) == len(specs)
    assert stats.local_rescues == len(specs)


# -- remote fleet rollouts ---------------------------------------------------


def test_remote_rollout_streams_waves_and_matches_local():
    plan = RolloutPlan(cve_id="CVE-2006-2451", fleet_size=3)
    workers = spawn_local_workers(1)
    seen = []
    try:
        remote = run_remote_rollout(workers[0].address, plan,
                                    on_wave=seen.append)
    finally:
        workers[0].stop()
    from repro.fleet import rollout_corpus_cve

    local = rollout_corpus_cve(plan)
    assert remote.to_json() == local.to_json()
    assert [w["index"] for w in seen] == [0, 1]
    assert all(w["verdict"] == "green" for w in seen)

"""Tracing-JIT lifecycle vs live patching.

The JIT may only ever be an invisible accelerator: traces compiled
from hot k86 regions must produce bit-identical architectural results,
and any write that lands on decoded code — a Ksplice apply or undo at
stop_machine, or plain self-modifying stores — must evict every
overlapping trace before the new bytes can matter.
"""

from collections import OrderedDict

import repro.kernel.cpu as cpu
from repro.core import KspliceCore, ksplice_create
from repro.evaluation import corpus_by_id
from repro.evaluation.kernels import kernel_for_version
from repro.kernel import boot_kernel, set_jit_enabled

CVE = "CVE-2006-2451"

_HOT_LOOP = """
int main(void) {
    int acc = 7;
    for (int round = 0; round < 300; round++) {
        for (int i = 1; i < 20; i++) {
            acc = (acc * 31 + i) & 65535;
            acc = acc ^ (acc >> 3);
        }
    }
    return acc;
}
"""

_PRCTL_HAMMER = """
int main(void) {
    int denials = 0;
    for (int i = 0; i < 80; i++) {
        if (__syscall(%d, 4, 2, 0) != 0) { denials++; }
    }
    return denials;
}
"""


def _boot(kernel):
    return boot_kernel(kernel.tree, quantum=50)


def _hammer_source(kernel):
    return _PRCTL_HAMMER % kernel.syscall_numbers["sys_prctl"]


def test_hot_loop_traces_and_stays_architecturally_identical():
    kernel = kernel_for_version("2.6.16-deb3")

    prev = set_jit_enabled(False)
    try:
        machine = _boot(kernel)
        interp_exit = machine.run_user_program(_HOT_LOOP, name="i")
        interp_insns = machine.scheduler.total_instructions
    finally:
        set_jit_enabled(prev)

    prev = set_jit_enabled(True)
    try:
        machine = _boot(kernel)
        jit_exit = machine.run_user_program(_HOT_LOOP, name="j")
        jit_insns = machine.scheduler.total_instructions
        stats = machine.trace_stats()
    finally:
        set_jit_enabled(prev)

    assert jit_exit == interp_exit
    assert jit_insns == interp_insns
    assert stats["traces_compiled"] > 0
    assert stats["trace_hits"] > 0
    # perf smoke (deterministic counters, not wall clock): the hot
    # loop must spend the bulk of its instructions inside traces
    assert stats["traced_insns"] > stats["interpreted_insns"]


def test_apply_at_stop_machine_evicts_overlapping_traces():
    spec = corpus_by_id(CVE)
    kernel = kernel_for_version(spec.kernel_version)
    prev = set_jit_enabled(True)
    try:
        machine = _boot(kernel)
        core = KspliceCore(machine)

        # Heat the syscall path until the prctl handler is traced.
        denials = machine.run_user_program(_hammer_source(kernel),
                                           name="warm")
        assert denials == 0  # unpatched kernel accepts dumpable=2
        before = machine.trace_stats()
        assert before["traces_compiled"] > 0

        pack = ksplice_create(kernel.tree, kernel.patch_for(spec.cve_id))
        core.apply(pack)
        after = machine.trace_stats()
        assert after["traces_evicted"] > before["traces_evicted"], (
            "patching sys_prctl must evict the traces that inlined it")

        # The patched path is what actually runs now.
        denials = machine.run_user_program(_hammer_source(kernel),
                                           name="patched")
        assert denials == 80
        # Undo the warm-up's lingering dumpable=2 (set while the
        # kernel was still unpatched), then prove the exploit is dead.
        assert machine.call_function("sys_prctl", [4, 0, 0]) == 0
        assert machine.run_user_program(
            kernel.exploit_source(spec), name="x") == 1000
    finally:
        set_jit_enabled(prev)


def test_undo_at_stop_machine_evicts_reheated_traces():
    spec = corpus_by_id(CVE)
    kernel = kernel_for_version(spec.kernel_version)
    prev = set_jit_enabled(True)
    try:
        machine = _boot(kernel)
        core = KspliceCore(machine)
        pack = ksplice_create(kernel.tree, kernel.patch_for(spec.cve_id))
        core.apply(pack)

        # Re-heat on the patched code, then undo: the traces compiled
        # from the *patched* bytes must die with the undo.
        assert machine.run_user_program(_hammer_source(kernel),
                                        name="hot") == 80
        before = machine.trace_stats()["traces_evicted"]
        core.undo(pack.update_id)
        assert machine.trace_stats()["traces_evicted"] > before

        # And the pre-patch semantics are back.
        assert machine.run_user_program(_hammer_source(kernel),
                                        name="old") == 0
    finally:
        set_jit_enabled(prev)


def test_plain_code_store_evicts_traces():
    """A store into decoded kernel text — no stop_machine involved —
    must still evict overlapping traces, even when it writes back the
    very same bytes."""
    spec = corpus_by_id(CVE)
    kernel = kernel_for_version(spec.kernel_version)
    prev = set_jit_enabled(True)
    try:
        machine = _boot(kernel)
        assert machine.run_user_program(_hammer_source(kernel),
                                        name="warm") == 0
        before = machine.trace_stats()["traces_evicted"]
        addr = machine.symbol("sys_prctl")
        machine.memory.write_u32(addr, machine.memory.read_u32(addr))
        assert machine.trace_stats()["traces_evicted"] > before
        # Still correct afterwards (traces recompile on demand).
        assert machine.run_user_program(_hammer_source(kernel),
                                        name="again") == 0
    finally:
        set_jit_enabled(prev)


def test_health_report_carries_trace_counters():
    kernel = kernel_for_version("2.6.16-deb3")
    prev = set_jit_enabled(True)
    try:
        machine = _boot(kernel)
        machine.run_user_program(_HOT_LOOP, name="hot")
        stats = machine.trace_stats()
        health = machine.health().to_json_dict()
    finally:
        set_jit_enabled(prev)
    assert health["traced_insns"] == stats["traced_insns"]
    assert health["trace_hits"] == stats["trace_hits"]
    assert health["traces_evicted"] == stats["traces_evicted"]
    assert health["traces_compiled"] == stats["traces_compiled"]


def test_op_cache_lru_stays_bounded_and_correct():
    """Regression: the process-global decoded-op cache must stay under
    its cap via LRU eviction, and eviction must never affect results
    (evicted entries are simply re-decoded)."""
    saved_cache = cpu._OP_CACHE
    saved_max = cpu._OP_CACHE_MAX
    kernel = kernel_for_version("2.6.16-deb3")
    try:
        cpu._OP_CACHE = OrderedDict()
        cpu._OP_CACHE_MAX = 64  # far below a kernel's working set
        machine = _boot(kernel)
        exit_value = machine.run_user_program(_HOT_LOOP, name="tiny")
        assert len(cpu._OP_CACHE) <= 64
    finally:
        cpu._OP_CACHE = saved_cache
        cpu._OP_CACHE_MAX = saved_max

    machine = _boot(kernel)
    assert machine.run_user_program(_HOT_LOOP, name="ref") == exit_value

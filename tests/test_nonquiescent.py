"""Updating non-quiescent functions (§5.2, §7.1).

``schedule`` is the paper's example of a non-quiescent function: sleeping
threads block inside it, so its text is always on some thread's stack
and a plain update aborts.  DynAMOS describes the manual remedy —
drain the sleepers — and "Ksplice's hooks for running custom code during
the update process allow a programmer to use the DynAMOS method for
updating non-quiescent kernel threads".  These tests reproduce both the
abort and the hook-assisted success.
"""

import pytest

from repro.core import KspliceCore, ksplice_create
from repro.errors import StackCheckError
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.patch import make_patch

ENTRY_S = """
.global syscall_entry
syscall_entry:
    cmpi r0, 1
    jge bad_sys
    cmpi r0, 0
    jl bad_sys
    push r3
    push r2
    push r1
    movi r4, 4
    mul r0, r4
    lea r4, sys_call_table
    add r4, r0
    loadr r4, r4, 0
    callr r4
    addi sp, 12
    ret
bad_sys:
    movi r0, -38
    ret
.section .data
sys_call_table:
    .word sys_nanosleep
"""

SCHED_C = """
int jiffies;
int sched_drain;

int schedule(void) {
    jiffies++;
    __sched();
    return 0;
}

int sys_nanosleep(int ticks, int b, int c) {
    int i = 0;
    while (i < ticks) {
        if (sched_drain) { return -11; }
        i++;
        schedule();
    }
    return i;
}
"""

TREE = SourceTree(version="nq-test", files={
    "arch/entry.s": ENTRY_S,
    "kernel/sched.c": SCHED_C,
})

#: the actual change: schedule() gets accounting
PATCHED_SCHED = SCHED_C.replace(
    "    jiffies++;\n    __sched();",
    "    jiffies++;\n    jiffies = jiffies + 0;\n    __sched();")

#: the programmer's DynAMOS-style drain hooks
DRAIN_HOOKS = """
int ksplice_drain_on(void) {
    sched_drain = 1;
    return 0;
}
int ksplice_drain_off(void) {
    sched_drain = 0;
    return 0;
}
__ksplice_pre_apply__(ksplice_drain_on);
__ksplice_post_apply__(ksplice_drain_off);
"""


def sleeper(machine):
    thread = machine.load_user_program(
        "int main(void) { return __syscall(0, 100000000, 0, 0); }",
        name="sleeper")
    machine.run(max_instructions=2_000)
    assert thread.alive
    return thread


def patch_text(new_sched):
    files = dict(TREE.files)
    files["kernel/sched.c"] = new_sched
    return make_patch(TREE.files, files)


def test_schedule_is_non_quiescent_without_drain():
    machine = boot_kernel(TREE)
    core = KspliceCore(machine, stack_check_retries=3,
                       retry_run_instructions=2_000)
    sleeper(machine)
    pack = ksplice_create(TREE, patch_text(PATCHED_SCHED))
    assert "schedule" in pack.all_changed_functions()
    with pytest.raises(StackCheckError):
        core.apply(pack)


def test_drain_hooks_make_schedule_updatable():
    """The DynAMOS method through Ksplice hooks: pre_apply sets the
    drain flag, sleepers exit the kernel, the stack-check retry loop
    finds quiescence, post_apply clears the flag."""
    machine = boot_kernel(TREE)
    core = KspliceCore(machine, stack_check_retries=10,
                       retry_run_instructions=20_000)
    thread = sleeper(machine)

    pack = ksplice_create(TREE,
                          patch_text(PATCHED_SCHED + DRAIN_HOOKS))
    applied = core.apply(pack)
    assert applied.stack_check_attempts >= 2  # it really had to drain

    # The sleeper was kicked out with -EAGAIN by the drain.
    machine.run(max_instructions=50_000)
    assert thread.exit_value == (-11) & 0xFFFFFFFF
    # The drain flag was cleared by post_apply: new sleeps work.
    assert machine.call_function("sys_nanosleep", [5, 0, 0]) == 5
    # And the patched schedule() is live.
    jiffies_before = machine.read_u32(machine.symbol("jiffies"))
    machine.call_function("sys_nanosleep", [3, 0, 0])
    assert machine.read_u32(machine.symbol("jiffies")) > jiffies_before


def test_drained_update_is_reversible():
    machine = boot_kernel(TREE)
    core = KspliceCore(machine, stack_check_retries=10,
                       retry_run_instructions=20_000)
    pack = ksplice_create(TREE,
                          patch_text(PATCHED_SCHED + DRAIN_HOOKS))
    core.apply(pack)
    core.undo(pack.update_id)
    assert machine.call_function("sys_nanosleep", [4, 0, 0]) == 4

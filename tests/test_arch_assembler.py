"""Tests for the assembler: relaxation, relocations, and the text parser."""

import pytest

from repro.arch import isa
from repro.arch.assembler import (
    Align,
    Data,
    Insn,
    Label,
    LabelRef,
    SymRef,
    assemble,
    parse_asm,
)
from repro.arch.disassembler import disassemble
from repro.errors import AssemblyError


def test_simple_sequence():
    result = assemble([
        Insn("movi", (0, 42)),
        Insn("ret", ()),
    ])
    decoded = disassemble(result.code)
    assert [d.mnemonic for d in decoded] == ["movi", "ret"]
    assert decoded[0].instruction.operands == (0, 42)


def test_labels_have_offsets():
    result = assemble([
        Label("start"),
        Insn("movi", (0, 1)),
        Label("end"),
    ])
    assert result.labels == {"start": 0, "end": 6}


def test_short_branch_to_near_label():
    result = assemble([
        Label("loop"),
        Insn("addi", (0, 1)),
        Insn("jmp", (LabelRef("loop"),)),
    ])
    decoded = disassemble(result.code)
    assert decoded[-1].mnemonic == "jmps"
    assert decoded[-1].branch_target_offset() == 0


def test_long_branch_when_out_of_rel8_range():
    filler = [Insn("movi", (0, i)) for i in range(40)]  # 240 bytes
    result = assemble([Label("top")] + filler + [Insn("jmp", (LabelRef("top"),))])
    decoded = disassemble(result.code)
    assert decoded[-1].mnemonic == "jmp"
    assert decoded[-1].branch_target_offset() == 0


def test_short_branches_disabled():
    result = assemble([
        Label("loop"),
        Insn("jmp", (LabelRef("loop"),)),
    ], allow_short_branches=False)
    decoded = disassemble(result.code)
    assert decoded[0].mnemonic == "jmp"


def test_forward_branch():
    result = assemble([
        Insn("jz", (LabelRef("out"),)),
        Insn("movi", (0, 1)),
        Label("out"),
        Insn("ret", ()),
    ])
    decoded = disassemble(result.code)
    assert decoded[0].mnemonic == "jzs"
    assert decoded[0].branch_target_offset() == result.labels["out"]


def test_undefined_branch_target_becomes_pc32_reloc():
    result = assemble([Insn("call", (LabelRef("extern_fn"),))])
    assert len(result.relocations) == 1
    reloc = result.relocations[0]
    assert reloc.symbol == "extern_fn"
    assert reloc.kind == "pc32"
    assert reloc.addend == isa.PC32_ADDEND
    assert reloc.offset == 1  # field right after the opcode


def test_symref_operand_becomes_abs32_reloc():
    result = assemble([Insn("load", (0, SymRef("counter", 4)))])
    assert len(result.relocations) == 1
    reloc = result.relocations[0]
    assert reloc.symbol == "counter"
    assert reloc.kind == "abs32"
    assert reloc.addend == 4
    assert reloc.offset == 2  # opcode + reg byte


def test_align_pads_with_nops():
    result = assemble([
        Insn("ret", ()),
        Align(8),
        Label("aligned"),
        Insn("ret", ()),
    ])
    assert result.labels["aligned"] == 8
    middle = disassemble(result.code)[1:-1]
    assert all(d.is_nop for d in middle)


def test_align_non_power_of_two_raises():
    with pytest.raises(AssemblyError):
        assemble([Insn("ret", ()), Align(6), Insn("ret", ())])


def test_data_with_relocs():
    result = assemble([Data(b"\0\0\0\0\0\0\0\0",
                            ((4, SymRef("fn", 0)),))])
    assert result.code == b"\0" * 8
    assert result.relocations[0].offset == 4
    assert result.relocations[0].kind == "abs32"


def test_relaxation_cascade():
    # A chain of branches near the rel8 boundary: widening one branch can
    # push another out of range; the fixpoint must widen both.
    items = [Insn("jmp", (LabelRef("far"),))]
    items += [Insn("movi", (0, i)) for i in range(20)]  # 120 bytes
    items += [Insn("jmp", (LabelRef("far"),))]
    items += [Insn("movi", (0, i)) for i in range(20)]  # 120 bytes
    items.append(Label("far"))
    items.append(Insn("ret", ()))
    result = assemble(items)
    decoded = disassemble(result.code)
    jumps = [d for d in decoded if d.canonical == "jmp"]
    assert all(d.branch_target_offset() == result.labels["far"] for d in jumps)


def test_wrong_arity_raises():
    with pytest.raises(AssemblyError):
        assemble([Insn("movi", (0,))])


def test_unknown_mnemonic_raises():
    with pytest.raises(AssemblyError):
        assemble([Insn("nope", ())])


# ---------------------------------------------------------------------------
# Text front-end


def test_parse_simple_text():
    parsed = parse_asm("""
    .global entry
    entry:
        movi r0, 42
        ret
    """)
    assert parsed.global_symbols == ["entry"]
    items = parsed.sections[".text"]
    assert items[0] == Label("entry")
    result = assemble(items)
    assert [d.mnemonic for d in disassemble(result.code)] == ["movi", "ret"]


def test_parse_comments_and_blank_lines():
    parsed = parse_asm("""
    ; leading comment
    start:             # trailing comment
        nop            ; another
    """)
    assert parsed.sections[".text"] == [Label("start"), Insn("nop", ())]


def test_parse_sections():
    parsed = parse_asm("""
    .section .text
        ret
    .section .data
        .word 1, 2, tbl
    """)
    assert ".text" in parsed.sections
    data_items = parsed.sections[".data"]
    assert isinstance(data_items[0], Data)
    assert len(data_items[0].relocs) == 1
    assert data_items[0].relocs[0][1] == SymRef("tbl")


def test_parse_symbolic_operand_with_addend():
    parsed = parse_asm("    load r1, counter + 8\n")
    insn = parsed.sections[".text"][0]
    assert insn.operands[1] == SymRef("counter", 8)


def test_parse_branch_operand():
    parsed = parse_asm("    call do_thing\n")
    insn = parsed.sections[".text"][0]
    assert insn.operands == (LabelRef("do_thing"),)


def test_parse_register_aliases():
    parsed = parse_asm("    movr sp, fp\n")
    insn = parsed.sections[".text"][0]
    assert insn.operands == (isa.REG_SP, isa.REG_FP)


def test_parse_byte_directive():
    parsed = parse_asm("    .byte 1, 2, 0xff\n")
    assert parsed.sections[".text"][0] == Data(b"\x01\x02\xff")


def test_parse_bad_directive_raises():
    with pytest.raises(AssemblyError):
        parse_asm("    .bogus 1\n")


def test_parse_bad_mnemonic_raises():
    with pytest.raises(AssemblyError):
        parse_asm("    frobnicate r0\n")


def test_parse_wrong_operand_count_raises():
    with pytest.raises(AssemblyError):
        parse_asm("    movi r0\n")


def test_end_to_end_assembly_of_loop():
    parsed = parse_asm("""
    .global sum_to_ten
    sum_to_ten:
        movi r0, 0
        movi r1, 10
    loop:
        add r0, r1
        addi r1, -1
        cmpi r1, 0
        jnz loop
        ret
    """)
    result = assemble(parsed.sections[".text"])
    decoded = disassemble(result.code)
    back_jump = [d for d in decoded if d.canonical == "jnz"][0]
    assert back_jump.branch_target_offset() == result.labels["loop"]

"""End-to-end tests of the simulated kernel: boot, syscalls, threads,
faults, modules, stop_machine."""

import pytest

from repro.errors import MachineError, ModuleLoadError
from repro.kbuild import SourceTree, build_tree
from repro.kernel import Machine, ThreadStatus, boot_kernel
from repro.kernel.machine import GADGET_BASE
from repro.linker import link_kernel

ENTRY_S = """
.global syscall_entry
syscall_entry:
    cmpi r0, 4
    jge bad_sys
    cmpi r0, 0
    jl bad_sys
    push r3
    push r2
    push r1
    movi r4, 4
    mul r0, r4
    lea r4, sys_call_table
    add r4, r0
    loadr r4, r4, 0
    callr r4
    addi sp, 12
    ret
bad_sys:
    movi r0, -38
    ret

.section .data
sys_call_table:
    .word sys_getval, sys_setval, sys_add, sys_spin
"""

SYS_C = """
int kernel_value = 100;
int init_ran;

int kernel_init(void) {
    init_ran = 1;
    kernel_value = kernel_value + 11;
    return 0;
}

int sys_getval(int a, int b, int c) {
    return kernel_value;
}

int sys_setval(int a, int b, int c) {
    kernel_value = a;
    return 0;
}

int sys_add(int a, int b, int c) {
    return a + b + c;
}

int sys_spin(int a, int b, int c) {
    int i = 0;
    while (i < a) {
        i++;
        __sched();
    }
    return i;
}
"""

TREE = SourceTree(version="test-0.1", files={
    "arch/entry.s": ENTRY_S,
    "kernel/sys.c": SYS_C,
})


@pytest.fixture(scope="module")
def machine():
    return boot_kernel(TREE)


def test_boot_runs_kernel_init(machine):
    assert machine.read_u32(machine.symbol("init_ran")) == 1
    assert machine.read_u32(machine.symbol("kernel_value")) == 111


def test_call_kernel_function_directly(machine):
    assert machine.call_function("sys_add", [5, 6, 7]) == 18


def test_user_program_syscall_roundtrip(machine):
    value = machine.run_user_program("""
        int main(void) {
            return __syscall(0, 0, 0, 0);
        }
    """, name="getval")
    assert value == 111


def test_user_program_sets_kernel_state():
    machine = boot_kernel(TREE)
    machine.run_user_program("""
        int main(void) {
            __syscall(1, 4242, 0, 0);
            return __syscall(0, 0, 0, 0);
        }
    """, name="setval")
    assert machine.read_u32(machine.symbol("kernel_value")) == 4242


def test_bad_syscall_number_returns_enosys(machine):
    value = machine.run_user_program(
        "int main(void) { return __syscall(99, 0, 0, 0); }", name="bad")
    assert value == (-38) & 0xFFFFFFFF


def test_negative_syscall_number_rejected(machine):
    value = machine.run_user_program(
        "int main(void) { return __syscall(0 - 5, 0, 0, 0); }", name="neg")
    assert value == (-38) & 0xFFFFFFFF


def test_exit_value_through_gadget(machine):
    thread = machine.load_user_program(
        "int main(void) { return 7; }", name="seven")
    machine.run_thread(thread)
    assert thread.status is ThreadStatus.EXITED
    assert thread.exit_value == 7


def test_two_threads_interleave():
    machine = boot_kernel(TREE, quantum=10)
    a = machine.load_user_program(
        "int main(void) { return __syscall(3, 50, 0, 0); }", name="spin-a")
    b = machine.load_user_program(
        "int main(void) { return __syscall(3, 50, 0, 0); }", name="spin-b")
    machine.run(max_instructions=2_000_000)
    assert a.status is ThreadStatus.EXITED and a.exit_value == 50
    assert b.status is ThreadStatus.EXITED and b.exit_value == 50
    # Preemption: neither thread ran to completion before the other started.
    assert a.instructions_executed > 0 and b.instructions_executed > 0


def test_divide_by_zero_is_oops_not_crash():
    machine = boot_kernel(TREE)
    thread = machine.load_user_program(
        "int main(void) { int z = 0; return 5 / z; }", name="div0")
    machine.run(max_instructions=10_000)
    assert thread.status is ThreadStatus.FAULTED
    assert any("divide by zero" in o.message for o in machine.oopses)
    # The rest of the machine still works.
    assert machine.call_function("sys_add", [1, 2, 3]) == 6


def test_unmapped_memory_access_faults():
    machine = boot_kernel(TREE)
    thread = machine.load_user_program("""
        int main(void) {
            int *p = 0;
            return *p;
        }
    """, name="nullderef")
    machine.run(max_instructions=10_000)
    assert thread.status is ThreadStatus.FAULTED


def test_run_thread_raises_on_fault():
    machine = boot_kernel(TREE)
    thread = machine.load_user_program(
        "int main(void) { int z = 0; return 1 / z; }", name="boom")
    with pytest.raises(MachineError):
        machine.run_thread(thread)


def test_stack_scan_sees_return_addresses():
    """A thread paused inside a syscall has kernel return addresses on its
    stack (the substrate of the Ksplice stack check)."""
    machine = boot_kernel(TREE, quantum=5)
    thread = machine.load_user_program(
        "int main(void) { return __syscall(3, 1000, 0, 0); }", name="spinner")
    machine.run(max_instructions=400)
    assert thread.alive
    lo, hi = machine.image.text_range()
    stack_values = [machine.read_u32(addr)
                    for addr in thread.live_stack_words()]
    kernel_text_refs = [v for v in stack_values if lo <= v < hi]
    assert kernel_text_refs, "expected kernel return addresses on the stack"


def test_stop_machine_freezes_other_threads():
    machine = boot_kernel(TREE, quantum=10)
    spinner = machine.load_user_program(
        "int main(void) { return __syscall(3, 100000, 0, 0); }", name="s")
    machine.run(max_instructions=500)
    before = spinner.instructions_executed

    def while_stopped():
        assert machine.scheduler.frozen
        return machine.read_u32(machine.symbol("kernel_value"))

    result = machine.stop_machine.run(while_stopped)
    assert result == machine.read_u32(machine.symbol("kernel_value"))
    assert spinner.instructions_executed == before
    report = machine.stop_machine.last_report
    assert report.instructions_during_stop == 0
    assert report.wall_seconds >= 0
    # And the scheduler resumes afterwards.
    machine.run(max_instructions=500)
    assert spinner.instructions_executed > before


def test_module_loading_and_calls():
    machine = boot_kernel(TREE)
    module_build = build_tree(SourceTree(version="mod", files={
        "mod.c": """
            extern int kernel_value;
            int mod_double(void) { return kernel_value + kernel_value; }
        """,
    }))
    objfile = module_build.objects["mod.c"]

    def resolver(name):
        return machine.symbol(name)

    module = machine.loader.load(objfile, resolver)
    address = module.symbol_address("mod_double")
    assert machine.call_function(address) == 222


def test_unsigned_module_rejected_when_policy_requires():
    image = link_kernel(build_tree(TREE))
    machine = Machine(image, require_signed_modules=True)
    module_build = build_tree(SourceTree(version="mod", files={
        "mod.c": "int nop_fn(void) { return 0; }"}))
    with pytest.raises(ModuleLoadError):
        machine.loader.load(module_build.objects["mod.c"],
                            lambda name: 0, signed=False)


def test_module_unload_zeroes_memory():
    machine = boot_kernel(TREE)
    module_build = build_tree(SourceTree(version="mod", files={
        "mod.c": "int marker = 1234; int get_marker(void) { return marker; }"}))
    module = machine.loader.load(module_build.objects["mod.c"],
                                 lambda name: 0)
    marker_addr = module.symbol_address("marker")
    assert machine.read_u32(marker_addr) == 1234
    resident_before = machine.loader.resident_bytes()
    machine.loader.unload(module)
    assert machine.read_u32(marker_addr) == 0
    assert machine.loader.resident_bytes() < resident_before
    with pytest.raises(ModuleLoadError):
        machine.loader.unload(module)


def test_kmalloc_returns_distinct_zeroed_chunks(machine):
    a = machine.kmalloc(16)
    b = machine.kmalloc(16)
    assert a != b
    assert machine.read_bytes(a, 16) == bytes(16)
    machine.write_u32(a, 7)
    assert machine.read_u32(b) == 0


def test_gadget_is_read_only(machine):
    with pytest.raises(MachineError):
        machine.memory.write_bytes(GADGET_BASE, b"\x01")


def test_static_local_persists_across_calls():
    tree = SourceTree(version="t", files={"k.c": """
        int bump(void) {
            static int count = 0;
            count++;
            return count;
        }
    """})
    machine = boot_kernel(tree)
    assert machine.call_function("bump") == 1
    assert machine.call_function("bump") == 2
    assert machine.call_function("bump") == 3


def test_struct_field_access_executes():
    tree = SourceTree(version="t", files={"k.c": """
        struct task { int pid; int uid; int flags; };
        struct task current_task;
        int setup(void) {
            current_task.pid = 42;
            current_task.uid = 1000;
            current_task.flags = 7;
            return 0;
        }
        int get_uid(void) {
            struct task *t = &current_task;
            return t->uid;
        }
    """})
    machine = boot_kernel(tree)
    machine.call_function("setup")
    assert machine.call_function("get_uid") == 1000


def test_array_indexing_executes():
    tree = SourceTree(version="t", files={"k.c": """
        int table[8];
        int fill(void) {
            for (int i = 0; i < 8; i++) table[i] = i * i;
            return 0;
        }
        int probe(int i) { return table[i]; }
    """})
    machine = boot_kernel(tree)
    machine.call_function("fill")
    assert machine.call_function("probe", [5]) == 25
    assert machine.call_function("probe", [7]) == 49


def test_pointer_arithmetic_scaling():
    tree = SourceTree(version="t", files={"k.c": """
        int data[4];
        int init(void) { data[0] = 10; data[1] = 20; data[2] = 30; return 0; }
        int second(void) {
            int *p = data;
            p = p + 2;
            return *p;
        }
    """})
    machine = boot_kernel(tree)
    machine.call_function("init")
    assert machine.call_function("second") == 30


def test_recursion_executes():
    tree = SourceTree(version="t", files={"k.c": """
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
    """})
    machine = boot_kernel(tree)
    assert machine.call_function("fib", [10]) == 55


def test_ternary_and_logical_ops_execute():
    tree = SourceTree(version="t", files={"k.c": """
        int clamp(int x) { return x < 0 ? 0 : (x > 10 ? 10 : x); }
        int both(int a, int b) { return a && b; }
        int either(int a, int b) { return a || b; }
    """})
    machine = boot_kernel(tree)
    assert machine.call_function("clamp", [-5]) == 0
    assert machine.call_function("clamp", [5]) == 5
    assert machine.call_function("clamp", [15]) == 10
    assert machine.call_function("both", [1, 0]) == 0
    assert machine.call_function("both", [2, 3]) == 1
    assert machine.call_function("either", [0, 0]) == 0
    assert machine.call_function("either", [0, 9]) == 1

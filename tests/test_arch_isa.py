"""Unit tests for the k86 instruction set: encode/decode round trips."""

import pytest
from hypothesis import given, strategies as st

from repro.arch import isa
from repro.arch.isa import (
    Instruction,
    Opcode,
    OperandKind,
    decode_instruction,
    encode_instruction,
    instruction_length,
    spec_for,
)
from repro.errors import AssemblyError, DisassemblyError


def test_all_opcodes_have_specs():
    for opcode in Opcode:
        spec = spec_for(int(opcode))
        assert spec.opcode is opcode
        assert spec.length >= 1


def test_invalid_opcode_raises():
    with pytest.raises(DisassemblyError):
        spec_for(0xFF)


def test_instruction_lengths_match_encodings():
    insn = isa.make("movi", 0, 42)
    assert len(encode_instruction(insn)) == instruction_length(int(Opcode.MOVI)) == 6
    assert instruction_length(int(Opcode.RET)) == 1
    assert instruction_length(int(Opcode.JMP)) == 5
    assert instruction_length(int(Opcode.JMPS)) == 2
    assert instruction_length(int(Opcode.LOADR)) == 7


def test_short_long_pairs_share_canonical_mnemonic():
    for long_name, short_name in [("jmp", "jmps"), ("jz", "jzs"),
                                  ("jnz", "jnzs"), ("jl", "jls"),
                                  ("jg", "jgs"), ("jle", "jles"),
                                  ("jge", "jges")]:
        long_spec = isa.SPEC_BY_MNEMONIC[long_name]
        short_spec = isa.SPEC_BY_MNEMONIC[short_name]
        assert long_spec.canonical == short_spec.canonical
        assert long_spec.length == 5
        assert short_spec.length == 2


def test_encode_decode_movi_roundtrip():
    insn = isa.make("movi", 3, 0xDEADBEEF)
    raw = encode_instruction(insn)
    back = decode_instruction(raw)
    assert back.mnemonic == "movi"
    assert back.operands == (3, 0xDEADBEEF)


def test_decode_negative_rel8():
    raw = encode_instruction(isa.make("jmps", -2))
    back = decode_instruction(raw)
    assert back.operands == (-2,)
    assert back.rel_target(100) == 100 + 2 - 2


def test_rel_target_for_rel32():
    insn = isa.make("call", 0x10)
    assert insn.rel_target(0x1000) == 0x1000 + 5 + 0x10


def test_rel_target_on_non_branch_raises():
    with pytest.raises(ValueError):
        isa.make("ret").rel_target(0)


def test_encode_bad_register_raises():
    with pytest.raises(AssemblyError):
        encode_instruction(Instruction(spec=isa.SPEC_BY_MNEMONIC["movr"],
                                       operands=(9, 0)))


def test_encode_rel8_out_of_range_raises():
    with pytest.raises(AssemblyError):
        encode_instruction(isa.make("jmps", 300))


def test_decode_truncated_raises():
    raw = encode_instruction(isa.make("movi", 0, 1))
    with pytest.raises(DisassemblyError):
        decode_instruction(raw[:-1])


def test_decode_bad_register_raises():
    raw = bytes([int(Opcode.MOVR), 200, 0])
    with pytest.raises(DisassemblyError):
        decode_instruction(raw)


def test_make_wrong_arity_raises():
    with pytest.raises(AssemblyError):
        isa.make("movi", 1)
    with pytest.raises(AssemblyError):
        isa.make("ret", 0)


def test_make_unknown_mnemonic_raises():
    with pytest.raises(AssemblyError):
        isa.make("bogus")


def test_pc_relative_operand_offset():
    assert isa.SPEC_BY_MNEMONIC["jmp"].pc_relative_operand_offset == 1
    assert isa.SPEC_BY_MNEMONIC["call"].pc_relative_operand_offset == 1
    assert isa.SPEC_BY_MNEMONIC["movi"].pc_relative_operand_offset is None


def test_pc32_addend_matches_x86_convention():
    # rel32 is relative to the end of the 4-byte field that starts right
    # after the opcode, hence -4, as in the paper's worked example.
    assert isa.PC32_ADDEND == -4


_ENCODABLE = [
    ("movi", [st.integers(0, 7), st.integers(0, 0xFFFFFFFF)]),
    ("movr", [st.integers(0, 7), st.integers(0, 7)]),
    ("add", [st.integers(0, 7), st.integers(0, 7)]),
    ("addi", [st.integers(0, 7), st.integers(0, 0xFFFFFFFF)]),
    ("load", [st.integers(0, 7), st.integers(0, 0xFFFFFFFF)]),
    ("loadr", [st.integers(0, 7), st.integers(0, 7),
               st.integers(0, 0xFFFFFFFF)]),
    ("jmp", [st.integers(-(1 << 31), (1 << 31) - 1)]),
    ("jmps", [st.integers(-128, 127)]),
    ("call", [st.integers(-(1 << 31), (1 << 31) - 1)]),
    ("push", [st.integers(0, 7)]),
]


@given(data=st.data())
def test_property_encode_decode_roundtrip(data):
    mnemonic, operand_strategies = data.draw(st.sampled_from(_ENCODABLE))
    operands = tuple(data.draw(strategy) for strategy in operand_strategies)
    insn = isa.make(mnemonic, *operands)
    raw = encode_instruction(insn)
    assert len(raw) == insn.length
    back = decode_instruction(raw)
    assert back.mnemonic == mnemonic
    # Unsigned fields compare modulo 2**32; signed rel fields exactly.
    for kind, got, want in zip(
            [k for k in insn.spec.operands if k is not OperandKind.PAD],
            back.operands, operands):
        if kind in (OperandKind.REL32, OperandKind.REL8):
            assert got == want
        else:
            assert got == want & 0xFFFFFFFF or got == want

"""Tests for the evaluation harness: per-CVE pipelines and the §6.3
aggregate statistics.

The full 64-CVE sweep lives in the benchmarks; here a representative
subset runs with all criteria enabled, plus the aggregate math is
checked on a stress-free full pass.
"""

import pytest

from repro.evaluation import corpus_by_id, evaluate_cve
from repro.evaluation.harness import (
    EvaluationReport,
    evaluate_corpus,
    evaluate_original_patch_only,
)
from repro.evaluation.kernels import kernel_for_version
from repro.evaluation.stress import run_stress_battery
from repro.kernel import boot_kernel

REPRESENTATIVES = [
    "CVE-2006-2451",   # exploit, prctl
    "CVE-2007-4573",   # exploit, assembly entry path
    "CVE-2005-4639",   # ambiguous 'debug'
    "CVE-2005-1263",   # inlined guard (declared inline)
    "CVE-2006-4997",   # inlined guard (no keyword)
    "CVE-2005-3055",   # signature change
    "CVE-2005-3847",   # static local
    "CVE-2007-3851",   # Table 1, 1 line of new code
    "CVE-2005-2709",   # Table 1, shadow structures
    "CVE-2008-1367",   # 72-line hardening sweep
]


@pytest.mark.parametrize("cve_id", REPRESENTATIVES)
def test_representative_cves_fully_succeed(cve_id):
    result = evaluate_cve(corpus_by_id(cve_id))
    assert result.applied_cleanly, result.apply_error
    assert result.stress_ok, result.stress_failures
    assert result.success


def test_exploit_cve_records_flip():
    result = evaluate_cve(corpus_by_id("CVE-2006-2451"))
    assert result.exploit_worked_before is True
    assert result.exploit_blocked_after is True


def test_asm_cve_marks_is_asm_and_replaces_entry():
    result = evaluate_cve(corpus_by_id("CVE-2007-4573"))
    assert result.is_asm
    assert result.replaced_functions == ["syscall_entry"]
    assert result.success


def test_inlined_measurement_matches_annotation():
    inlined = evaluate_cve(corpus_by_id("CVE-2005-1263"),
                           run_stress=False)
    assert inlined.inlined_in_run
    not_inlined = evaluate_cve(corpus_by_id("CVE-2006-2451"),
                               run_stress=False)
    assert not not_inlined.inlined_in_run


def test_ambiguity_measurement_matches_annotation():
    ambiguous = evaluate_cve(corpus_by_id("CVE-2005-4639"),
                             run_stress=False)
    assert ambiguous.ambiguous_symbol


def test_helper_larger_than_primary_across_cves():
    result = evaluate_cve(corpus_by_id("CVE-2006-3626"), run_stress=False)
    assert result.helper_bytes > result.primary_bytes > 0


def test_table1_original_patch_insufficient_augmented_sufficient():
    """The reason Table 1 exists: without the custom code the update
    applies but the live data stays wrong."""
    spec = corpus_by_id("CVE-2007-3851")
    assert evaluate_original_patch_only(spec) is False
    result = evaluate_cve(spec)
    assert result.success  # with the hook, fully corrected


def test_table1_shadow_cve_original_patch_insufficient():
    spec = corpus_by_id("CVE-2005-2709")
    assert evaluate_original_patch_only(spec) is False


def test_non_table1_returns_none_for_original_only_check():
    assert evaluate_original_patch_only(
        corpus_by_id("CVE-2006-2451")) is None


def test_stress_battery_passes_on_pristine_kernel():
    kernel = kernel_for_version("2.6.16-deb3")
    machine = boot_kernel(kernel.tree)
    report = run_stress_battery(machine)
    assert report.passed, report.failures
    assert report.programs_run == 6
    assert report.oops_count == 0


def test_stress_battery_catches_broken_kernel():
    """Sabotage the file layer; the battery must notice."""
    kernel = kernel_for_version("2.6.16-deb3")
    broken = kernel.tree.with_file(
        "fs/file.c",
        kernel.tree.read("fs/file.c").replace(
            "    int value = ramdisk[file_pos[fd]];",
            "    int value = ramdisk[file_pos[fd]] + 1;"))
    machine = boot_kernel(broken)
    report = run_stress_battery(machine)
    assert not report.passed
    assert any("file-roundtrip" in f for f in report.failures)


@pytest.fixture(scope="module")
def full_report() -> EvaluationReport:
    """One stress-free pass over the whole corpus (fast: ~10 s)."""
    return evaluate_corpus(run_stress=False)


def test_all_64_patches_apply(full_report):
    assert full_report.total() == 64
    failures = [r.cve_id for r in full_report.results if not r.success]
    assert failures == []


def test_56_of_64_need_no_new_code(full_report):
    assert full_report.no_new_code_count() == 56
    assert len(full_report.new_code_results()) == 8


def test_mean_new_code_lines_about_17(full_report):
    assert 16 <= full_report.mean_new_code_lines() <= 18


def test_figure3_aggregates(full_report):
    assert full_report.patches_at_most(5) == 35
    assert full_report.patches_at_most(15) == 53
    histogram = full_report.patch_length_histogram()
    assert sum(histogram.values()) == 64
    assert histogram["inf"] == 0


def test_sec63_inlining_statistics_measured(full_report):
    assert full_report.inlined_count() == 20
    assert full_report.declared_inline_count() == 4


def test_sec63_ambiguity_statistics_measured(full_report):
    assert full_report.ambiguous_count() == 5


def test_sec63_exploit_list(full_report):
    flipped = [r.cve_id for r in full_report.exploit_results()
               if r.exploit_worked_before and r.exploit_blocked_after]
    for cve_id in ("CVE-2006-2451", "CVE-2006-3626", "CVE-2007-4573",
                   "CVE-2008-0600"):
        assert cve_id in flipped


def test_table1_rows_match_paper(full_report):
    rows = full_report.table1_rows()
    assert len(rows) == 8
    by_id = {cve: (patch, reason, lines)
             for cve, patch, reason, lines in rows}
    assert by_id["CVE-2008-0007"] == ("2f98735", "changes data init", 34)
    assert by_id["CVE-2005-2709"] == ("330d57f", "adds field to struct",
                                      48)


def test_stop_machine_windows_short(full_report):
    stops = [r.stop_ms for r in full_report.results if r.applied_cleanly]
    assert stops
    # Sub-second in wall-clock terms for every update (the paper: 0.7ms).
    assert max(stops) < 1000

"""Smoke tests: every shipped example must run to completion.

Each example is executed in a subprocess exactly as a user would run it;
a non-zero exit or traceback fails the build.  Key output lines are
spot-checked so a silently-broken example cannot pass.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")

CHECKS = {
    "quickstart.py": ["Done!", "after undo"],
    "security_patch_workflow.py": ["-> ROOT!", "-> blocked",
                                   "stress: PASS", "compromised: False"],
    "shadow_structs.py": ["live entries broken",
                          "live entries keep working"],
    "baseline_comparison.py": ["STILL TRIGGERS", "AMBIGUOUS_SYMBOL",
                               "ASSEMBLY_FILE"],
    "update_channel.py": ["applied 2 updates without rebooting",
                          "roll it back"],
    "anatomy_of_an_update.py": ["run-pre matching solves",
                                "out-of-range now refused"],
    "full_evaluation.py": ["updates applied successfully:       64 / 64",
                           "without writing any new code:       56 / 64"],
}


def _run_example(name):
    path = os.path.join(EXAMPLES_DIR, name)
    return subprocess.run([sys.executable, path], capture_output=True,
                          text=True, timeout=300)


@pytest.mark.parametrize("name", sorted(CHECKS))
def test_example_runs_clean(name):
    result = _run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Traceback" not in result.stderr
    for fragment in CHECKS[name]:
        assert fragment in result.stdout, (
            "%s output missing %r" % (name, fragment))


def test_every_example_is_covered():
    shipped = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert shipped == set(CHECKS), (
        "examples without smoke coverage: %s" % (shipped - set(CHECKS)))

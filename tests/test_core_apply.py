"""End-to-end Ksplice tests: create an update from a patch, hot-apply it
to a running kernel, observe behaviour change, undo, stack updates."""

import pytest

from repro.core import KspliceCore, ksplice_create
from repro.core.update import UpdatePack
from repro.errors import (
    DataSemanticsError,
    KspliceCreateError,
    RunPreMismatchError,
    StackCheckError,
    UpdateStateError,
)
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.patch import make_patch

ENTRY_S = """
.global syscall_entry
syscall_entry:
    cmpi r0, 4
    jge bad_sys
    cmpi r0, 0
    jl bad_sys
    push r3
    push r2
    push r1
    movi r4, 4
    mul r0, r4
    lea r4, sys_call_table
    add r4, r0
    loadr r4, r4, 0
    callr r4
    addi sp, 12
    ret
bad_sys:
    movi r0, -38
    ret

.section .data
sys_call_table:
    .word sys_getuid, sys_setuid, sys_read_val, sys_spin
"""

CRED_C = """
static int debug;
int current_uid = 1000;
int secret_val = 777;

static int uid_ok(int uid) { return uid >= 0; }

int sys_getuid(int a, int b, int c) {
    return current_uid;
}

int sys_setuid(int uid, int b, int c) {
    debug = uid;
    if (!uid_ok(uid)) { return -1; }
    current_uid = uid;
    return 0;
}

int sys_read_val(int a, int b, int c) {
    return secret_val;
}

int sys_spin(int n, int b, int c) {
    int i = 0;
    while (i < n) { i++; __sched(); }
    return i;
}
"""

TREE = SourceTree(version="2.6.16-test", files={
    "arch/entry.s": ENTRY_S,
    "kernel/cred.c": CRED_C,
})

# The security fix: unprivileged setuid(0) must be refused.
PATCHED_CRED = CRED_C.replace(
    "    if (!uid_ok(uid)) { return -1; }",
    "    if (!uid_ok(uid)) { return -1; }\n"
    "    if (uid == 0 && current_uid != 0) { return -1; }")

EXPLOIT = """
int main(void) {
    __syscall(1, 0, 0, 0);
    return __syscall(0, 0, 0, 0);
}
"""


def fresh_machine():
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    return machine, core


def make_update(old=CRED_C, new=PATCHED_CRED, tree=TREE):
    old_files = dict(tree.files)
    new_files = dict(tree.files)
    old_files["kernel/cred.c"] = old
    new_files["kernel/cred.c"] = new
    diff = make_patch(old_files, new_files)
    base = SourceTree(version=tree.version, files=old_files)
    return ksplice_create(base, diff)


def test_exploit_works_before_and_fails_after_update():
    machine, core = fresh_machine()
    assert machine.run_user_program(EXPLOIT, name="x1") == 0  # got root

    # Reset and hot-apply the fix.
    machine.write_u32(machine.symbol("current_uid"), 1000)
    pack = make_update()
    applied = core.apply(pack)
    assert machine.run_user_program(EXPLOIT, name="x2") == 1000  # refused
    assert applied.stop_report is not None
    assert applied.stop_report.instructions_during_stop == 0


def test_update_replaces_only_setuid():
    machine, core = fresh_machine()
    pack = make_update()
    assert pack.all_changed_functions() == ["sys_setuid"]
    core.apply(pack)
    # Other syscalls still behave.
    assert machine.call_function("sys_getuid", [0, 0, 0]) == 1000
    assert machine.call_function("sys_read_val", [0, 0, 0]) == 777


def test_legitimate_setuid_still_works_after_update():
    machine, core = fresh_machine()
    core.apply(make_update())
    assert machine.run_user_program(
        "int main(void) { __syscall(1, 500, 0, 0);"
        " return __syscall(0, 0, 0, 0); }", name="drop") == 500
    # Root can still setuid(0).
    machine.write_u32(machine.symbol("current_uid"), 0)
    assert machine.run_user_program(EXPLOIT, name="root-ok") == 0


def test_undo_restores_original_behaviour():
    machine, core = fresh_machine()
    pack = make_update()
    core.apply(pack)
    assert machine.run_user_program(EXPLOIT, name="pre-undo") == 1000
    machine.write_u32(machine.symbol("current_uid"), 1000)
    core.undo(pack.update_id)
    assert machine.run_user_program(EXPLOIT, name="post-undo") == 0
    assert not core.applied


def test_undo_unknown_update_raises():
    _, core = fresh_machine()
    with pytest.raises(UpdateStateError):
        core.undo("ksplice-zzzzzz")


def test_double_apply_rejected():
    machine, core = fresh_machine()
    pack_bytes = make_update().to_bytes()
    core.apply(UpdatePack.from_bytes(pack_bytes))
    with pytest.raises(UpdateStateError):
        core.apply(UpdatePack.from_bytes(pack_bytes))


def test_helper_unloaded_after_apply_primary_stays():
    machine, core = fresh_machine()
    resident_before = machine.loader.resident_bytes()
    applied = core.apply(make_update())
    resident_after = machine.loader.resident_bytes()
    assert applied.helper_bytes > applied.primary_bytes
    # Helpers are gone; only the primary remains resident.
    assert resident_after - resident_before == applied.primary_bytes


def test_apply_via_serialized_pack():
    """The update survives the write-to-disk / read-back cycle (the
    paper's update tarball)."""
    machine, core = fresh_machine()
    raw = make_update().to_bytes()
    pack = UpdatePack.from_bytes(raw)
    core.apply(pack)
    assert machine.run_user_program(EXPLOIT, name="ser") == 1000


def test_stacked_updates_and_lifo_undo():
    """§5.4: patch a previously-patched kernel; run-pre matches against
    the replacement code already in the kernel."""
    machine, core = fresh_machine()
    first = make_update()
    core.apply(first)

    # Second patch on top of the first: also forbid negative uids.
    second_source = PATCHED_CRED.replace(
        "int sys_getuid(int a, int b, int c) {\n    return current_uid;",
        "int sys_getuid(int a, int b, int c) {\n"
        "    debug = debug + 1;\n    return current_uid;")
    patched_tree = SourceTree(version=TREE.version + "+", files={
        "arch/entry.s": ENTRY_S, "kernel/cred.c": PATCHED_CRED})
    second = make_update(old=PATCHED_CRED, new=second_source,
                         tree=patched_tree)
    core.apply(second)
    assert machine.run_user_program(EXPLOIT, name="stacked") == 1000

    # Undo must be LIFO for functions, but these touch different
    # functions, so either order works; undo the second first anyway.
    core.undo(second.update_id)
    machine.write_u32(machine.symbol("current_uid"), 1000)
    assert machine.run_user_program(EXPLOIT, name="second-gone") == 1000
    core.undo(first.update_id)
    machine.write_u32(machine.symbol("current_uid"), 1000)
    assert machine.run_user_program(EXPLOIT, name="all-gone") == 0


def test_stacked_update_on_same_function():
    machine, core = fresh_machine()
    first = make_update()
    core.apply(first)

    # Patch sys_setuid again on top of the first patch.
    third_source = PATCHED_CRED.replace(
        "    current_uid = uid;",
        "    if (uid < 0) { return -1; }\n    current_uid = uid;")
    patched_tree = SourceTree(version=TREE.version + "+", files={
        "arch/entry.s": ENTRY_S, "kernel/cred.c": PATCHED_CRED})
    second = make_update(old=PATCHED_CRED, new=third_source,
                         tree=patched_tree)
    core.apply(second)
    assert machine.run_user_program(EXPLOIT, name="v2") == 1000
    neg = machine.run_user_program(
        "int main(void) { return __syscall(1, 0 - 5, 0, 0); }", name="neg")
    assert neg == (-1) & 0xFFFFFFFF

    # Undoing the first while the second sits on the same function must
    # be refused.
    with pytest.raises(UpdateStateError):
        core.undo(first.update_id)
    core.undo(second.update_id)
    core.undo(first.update_id)


def test_apply_aborts_on_wrong_source():
    """Run-pre matching protects against 'original' source that does not
    correspond to the running kernel (§4.2)."""
    machine, core = fresh_machine()
    wrong_base = CRED_C.replace("int secret_val = 777;",
                                "int secret_val = 777;\n"
                                "int phantom_counter;").replace(
        "    return current_uid;",
        "    return current_uid + phantom_counter;")
    pack = make_update(old=wrong_base,
                       new=wrong_base.replace(
                           "    if (!uid_ok(uid)) { return -1; }",
                           "    if (!uid_ok(uid)) { return -1; }\n"
                           "    if (uid == 0) { return -1; }"),
                       tree=SourceTree(version=TREE.version, files={
                           "arch/entry.s": ENTRY_S,
                           "kernel/cred.c": wrong_base}))
    with pytest.raises(RunPreMismatchError):
        core.apply(pack)
    # Nothing changed; the machine still runs and the exploit still works
    # (the update was not half-applied).
    assert machine.run_user_program(EXPLOIT, name="unharmed") == 0
    assert machine.loader.resident_bytes() == core.core_module.size


def test_data_init_change_refused_without_hooks():
    machine, core = fresh_machine()
    with pytest.raises(DataSemanticsError):
        make_update(new=PATCHED_CRED.replace("int secret_val = 777;",
                                             "int secret_val = 778;"))


def test_empty_patch_rejected():
    with pytest.raises(KspliceCreateError):
        ksplice_create(TREE, "")


def test_comment_only_patch_rejected():
    new = CRED_C.replace("static int debug;",
                         "// bookkeeping\nstatic int debug;")
    files = dict(TREE.files)
    files["kernel/cred.c"] = new
    diff = make_patch(TREE.files, files)
    with pytest.raises(KspliceCreateError):
        ksplice_create(TREE, diff)


def test_stack_check_aborts_on_non_quiescent_function():
    """Patching a function that is always on some thread's stack (the
    paper's ``schedule`` example) must abort with StackCheckError."""
    machine, core = fresh_machine()
    # Park a thread inside sys_spin forever.
    spinner = machine.load_user_program(
        "int main(void) { return __syscall(3, 100000000, 0, 0); }",
        name="sleeper")
    machine.run(max_instructions=2_000)
    assert spinner.alive

    pack = make_update(new=CRED_C.replace(
        "    while (i < n) { i++; __sched(); }",
        "    while (i < n) { i = i + 1; debug = i; __sched(); }"))
    assert pack.all_changed_functions() == ["sys_spin"]
    with pytest.raises(StackCheckError):
        core.apply(pack)
    # The kernel is untouched and still runs.
    assert machine.call_function("sys_getuid", [0, 0, 0]) == 1000


def test_stack_check_retries_then_succeeds():
    """A thread that leaves the patched function after a while lets a
    retry succeed."""
    machine, core = fresh_machine()
    walker = machine.load_user_program(
        "int main(void) { return __syscall(3, 40, 0, 0); }", name="walker")
    machine.run(max_instructions=300)
    assert walker.alive  # currently inside sys_spin

    pack = make_update(new=CRED_C.replace(
        "    while (i < n) { i++; __sched(); }",
        "    while (i < n) { i = i + 1; debug = i; __sched(); }"))
    applied = core.apply(pack)
    assert applied.stack_check_attempts >= 1
    machine.run(max_instructions=100_000)
    assert walker.exit_value == 40


def test_patch_to_assembly_file_applies():
    """The paper's CVE-2007-4573 case: a patch to a pure assembly unit is
    handled with the same machinery."""
    machine, core = fresh_machine()
    # Harden the entry path: reject syscall numbers >= 3 (drop sys_spin).
    new_entry = ENTRY_S.replace("cmpi r0, 4", "cmpi r0, 3")
    files = dict(TREE.files)
    files["arch/entry.s"] = new_entry
    diff = make_patch(TREE.files, files)
    pack = ksplice_create(TREE, diff)
    assert pack.all_changed_functions() == ["syscall_entry"]
    core.apply(pack)
    blocked = machine.run_user_program(
        "int main(void) { return __syscall(3, 5, 0, 0); }", name="spin-no")
    assert blocked == (-38) & 0xFFFFFFFF
    assert machine.run_user_program(EXPLOIT, name="still-vuln") == 0


def test_inlined_function_patch_replaces_caller():
    """uid_ok is inlined into sys_setuid in the run kernel; patching
    uid_ok must replace sys_setuid (§4.2's safety argument)."""
    machine, core = fresh_machine()
    pack = make_update(new=CRED_C.replace(
        "static int uid_ok(int uid) { return uid >= 0; }",
        "static int uid_ok(int uid) { return uid > 0; }"))
    changed = pack.all_changed_functions()
    assert "sys_setuid" in changed
    core.apply(pack)
    # setuid(0) now fails because the *inlined copy* inside sys_setuid
    # was replaced along with it.
    assert machine.run_user_program(EXPLOIT, name="inline") == 1000


def test_new_function_added_by_patch_is_callable():
    machine, core = fresh_machine()
    new_source = CRED_C.replace(
        "int sys_read_val(int a, int b, int c) {\n    return secret_val;",
        "static int clamp_val(int v) {\n"
        "    if (v > 100) { return 100; }\n"
        "    return v;\n"
        "}\n\n"
        "int sys_read_val(int a, int b, int c) {\n"
        "    return clamp_val(secret_val);")
    pack = make_update(new=new_source)
    core.apply(pack)
    assert machine.call_function("sys_read_val", [0, 0, 0]) == 100


def test_apply_all_is_atomic_per_stop_window():
    machine, core = fresh_machine()
    applied = core.apply(make_update())
    assert len(machine.stop_machine.reports) >= 1
    assert applied.stop_report.wall_milliseconds < 1000

"""Unit tests for the inliner's internals and report bookkeeping."""

from repro.compiler.inliner import (
    InlineReport,
    _expr_size,
    _has_side_effects,
    _single_return_expr,
    inline_unit,
)
from repro.lang import parse_unit


def parse_fn(source, name):
    unit = parse_unit(source)
    return unit.find_function(name)


def test_inline_report_record_and_merge():
    report = InlineReport()
    report.record("callee", "caller_a")
    report.record("callee", "caller_a")
    report.record("callee", "caller_b")
    assert report.inlined["callee"] == [("caller_a", 2), ("caller_b", 1)]
    assert report.was_inlined("callee")
    assert sorted(report.callers_of("callee")) == ["caller_a", "caller_b"]

    other = InlineReport()
    other.record("callee", "caller_a", count=3)
    other.record("other_fn", "caller_c")
    report.merge(other)
    assert report.inlined["callee"][0] == ("caller_a", 5)
    assert report.was_inlined("other_fn")


def test_expr_size_counts_nodes():
    fn = parse_fn("int f(int a, int b) { return a + b * 2; }", "f")
    expr = fn.body.statements[0].value
    assert _expr_size(expr) == 5  # +, a, *, b, 2


def test_has_side_effects_detection():
    cases = {
        "a + b": False,
        "a = b": True,
        "f(a)": True,
        "a++": True,
        "a[b]": False,
        "a ? b : c": False,
        "a ? (b = 1) : c": True,
    }
    for text, expected in cases.items():
        fn = parse_fn("int f(int a, int b, int c) { return %s; }" % text,
                      "f")
        expr = fn.body.statements[0].value
        assert _has_side_effects(expr) is expected, text


def test_single_return_expr_extraction():
    simple = parse_fn("int f(int x) { return x * 2; }", "f")
    assert _single_return_expr(simple) is not None
    multi = parse_fn("int f(int x) { x = x + 1; return x; }", "f")
    assert _single_return_expr(multi) is None
    no_body = parse_fn("int f(int x);", "f")
    assert no_body is None  # prototypes are not definitions


def test_inline_into_condition_and_loop():
    unit = parse_unit("""
        static int positive(int v) { return v > 0; }
        int f(int x) {
            int total = 0;
            while (positive(x)) { total += x; x--; }
            if (positive(total)) { return total; }
            return 0;
        }
    """)
    report = inline_unit(unit, opt_level=2)
    assert report.was_inlined("positive")
    # The calls are gone from the AST.
    source_repr = repr(unit.find_function("f").body)
    assert "positive" not in source_repr


def test_inline_chain_through_two_levels():
    unit = parse_unit("""
        static int base(int v) { return v + 1; }
        static int wrap(int v) { return base(v) * 2; }
        int f(int x) { return wrap(x); }
    """)
    report = inline_unit(unit, opt_level=2)
    assert report.was_inlined("wrap")
    assert report.was_inlined("base")
    body = repr(unit.find_function("f").body)
    assert "Call" not in body


def test_param_reused_with_pure_arg_is_inlined():
    unit = parse_unit("""
        static int square(int v) { return v * v; }
        int f(int x) { return square(x + 1); }
    """)
    report = inline_unit(unit, opt_level=2)
    # (x+1) is pure, so duplicating it is safe.
    assert report.was_inlined("square")


def test_unused_param_with_side_effect_arg_not_inlined():
    unit = parse_unit("""
        int sink;
        static int constant(int v) { return 7; }
        int f(int x) { return constant(sink = x); }
    """)
    report = inline_unit(unit, opt_level=2)
    assert not report.was_inlined("constant")


def test_opt_level_zero_disables_inlining():
    unit = parse_unit("""
        inline int one(void) { return 1; }
        int f(void) { return one(); }
    """)
    report = inline_unit(unit, opt_level=0)
    assert not report.was_inlined("one")


def test_arity_mismatch_call_left_alone():
    # MiniC has no strict call-arity sema; the inliner must simply skip
    # such calls rather than corrupt them.
    unit = parse_unit("""
        static int two(int a, int b) { return a + b; }
        int f(int x) { return two(x); }
    """)
    report = inline_unit(unit, opt_level=2)
    assert not report.was_inlined("two")

"""Structural tests for the MiniC compiler (execution tests live with the
kernel machine tests)."""

import pytest

from repro.compiler import CompilerOptions, compile_source
from repro.errors import CompileError
from repro.objfile import RelocationType, SymbolBinding, SymbolKind

KERNEL_C = """
struct task { int pid; int uid; };

static int debug;
int boot_count = 1;
int zeroed;

extern int other_unit_counter;

static int check_uid(struct task *t) { return t->uid == 0; }

int helper(int x) {
    return x * 2 + 1;
}

int entry(struct task *t, int request) {
    static int calls = 0;
    calls++;
    if (!check_uid(t)) {
        return -1;
    }
    debug = helper(request);
    other_unit_counter += 1;
    return debug;
}
"""


def compile_both(source, name="unit.c", opt_level=2):
    merged = compile_source(source, name, CompilerOptions(
        opt_level=opt_level))
    split = compile_source(source, name, CompilerOptions(
        opt_level=opt_level, function_sections=True, data_sections=True))
    return merged, split


def test_merged_layout_single_text_section():
    merged, _ = compile_both(KERNEL_C)
    obj = merged.objfile
    assert ".text" in obj.sections
    assert not any(name.startswith(".text.") for name in obj.sections)
    # All three functions have FUNC symbols inside .text.
    for fn in ("check_uid", "helper", "entry"):
        sym = obj.symbol(fn)
        assert sym.section == ".text" and sym.kind is SymbolKind.FUNC
        assert sym.size > 0


def test_split_layout_per_function_sections():
    _, split = compile_both(KERNEL_C)
    obj = split.objfile
    assert ".text" not in obj.sections
    for fn in ("check_uid", "helper", "entry"):
        assert ".text.%s" % fn in obj.sections
        assert obj.symbol(fn).section == ".text.%s" % fn


def test_static_function_symbol_is_local():
    merged, _ = compile_both(KERNEL_C)
    assert merged.objfile.symbol("check_uid").binding is SymbolBinding.LOCAL
    assert merged.objfile.symbol("entry").binding is SymbolBinding.GLOBAL


def test_static_global_and_static_local_are_local_symbols():
    merged, _ = compile_both(KERNEL_C)
    obj = merged.objfile
    assert obj.symbol("debug").binding is SymbolBinding.LOCAL
    calls = obj.symbol("entry.calls")
    assert calls.binding is SymbolBinding.LOCAL
    assert calls.kind is SymbolKind.OBJECT


def test_data_vs_bss_placement():
    merged, split = compile_both(KERNEL_C)
    obj = merged.objfile
    assert obj.symbol("boot_count").section == ".data"
    assert obj.symbol("zeroed").section == ".bss"
    assert obj.symbol("debug").section == ".bss"  # zero-initialized
    split_obj = split.objfile
    assert split_obj.symbol("boot_count").section == ".data.boot_count"
    assert split_obj.symbol("zeroed").section == ".bss.zeroed"


def test_extern_produces_undefined_symbol():
    merged, _ = compile_both(KERNEL_C)
    undefined = {s.name for s in merged.objfile.undefined_symbols()}
    assert "other_unit_counter" in undefined


def test_intra_unit_call_resolved_in_merged_but_reloc_in_split():
    source = """
    int callee(int x) { if (x) { x = x + 1; } while (x > 9) { x--; } return x; }
    int caller(int y) { return callee(y); }
    """
    merged, split = compile_both(source, opt_level=0)
    merged_refs = merged.objfile.referenced_symbol_names()
    assert "callee" not in merged_refs
    split_refs = split.objfile.referenced_symbol_names()
    assert "callee" in split_refs
    # The split reloc is pc-relative with the canonical -4 addend.
    caller_sec = split.objfile.section(".text.caller")
    call_relocs = [r for r in caller_sec.relocations if r.symbol == "callee"]
    assert call_relocs and all(
        r.type is RelocationType.PC32 and r.addend == -4 for r in call_relocs)


def test_global_data_reference_is_reloc_in_both_modes():
    merged, split = compile_both(KERNEL_C)
    for result in (merged, split):
        refs = result.objfile.referenced_symbol_names()
        assert "debug" in refs


def test_merged_functions_are_aligned():
    merged, _ = compile_both(KERNEL_C)
    obj = merged.objfile
    for fn in ("check_uid", "helper", "entry"):
        assert obj.symbol(fn).value % 16 == 0


def test_inlining_at_o2_not_at_o0():
    source = """
    static int is_root(int uid) { return uid == 0; }
    int gate(int uid) { return is_root(uid); }
    """
    at_o2 = compile_source(source, "u.c", CompilerOptions(opt_level=2))
    assert at_o2.inline_report.was_inlined("is_root")
    assert at_o2.inline_report.callers_of("is_root") == ["gate"]
    # The call disappears from the object code.
    refs = at_o2.objfile.referenced_symbol_names()
    assert "is_root" not in refs

    at_o0 = compile_source(source, "u.c", CompilerOptions(opt_level=0))
    assert not at_o0.inline_report.was_inlined("is_root")


def test_inline_keyword_inlined_at_o1():
    source = """
    inline int twice(int x) { return x + x; }
    int f(int x) { return twice(x); }
    """
    at_o1 = compile_source(source, "u.c", CompilerOptions(opt_level=1))
    assert at_o1.inline_report.was_inlined("twice")


def test_non_inline_functions_not_inlined_at_o1():
    source = """
    static int twice(int x) { return x + x; }
    int f(int x) { return twice(x); }
    """
    at_o1 = compile_source(source, "u.c", CompilerOptions(opt_level=1))
    assert not at_o1.inline_report.was_inlined("twice")


def test_large_function_not_inlined():
    source = """
    static int big(int a, int b) {
        return a*b + a/b + a%b + (a<<2) + (b>>1) + (a&b) + (a|b) + (a^b)
             + a*a + b*b + a*3 + b*5 + a*7 + b*11 + a*13;
    }
    int f(int x) { return big(x, x + 1); }
    """
    result = compile_source(source, "u.c", CompilerOptions(opt_level=2))
    assert not result.inline_report.was_inlined("big")


def test_multi_statement_function_not_inlined():
    source = """
    static int stateful(int x) { x = x + 1; return x; }
    int f(int x) { return stateful(x); }
    """
    result = compile_source(source, "u.c", CompilerOptions(opt_level=2))
    assert not result.inline_report.was_inlined("stateful")


def test_side_effect_arg_with_multi_use_param_not_inlined():
    source = """
    int sink;
    static int square(int x) { return x * x; }
    int f(int y) { return square(sink = y); }
    """
    result = compile_source(source, "u.c", CompilerOptions(opt_level=2))
    assert not result.inline_report.was_inlined("square")


def test_recursive_function_not_inlined():
    source = """
    static int fact(int n) { return n ? n * fact(n - 1) : 1; }
    int f(void) { return fact(5); }
    """
    result = compile_source(source, "u.c", CompilerOptions(opt_level=2))
    assert not result.inline_report.was_inlined("fact")


def test_prototype_change_changes_caller_object_code():
    """The paper's §3.1 point: a header-level prototype change alters the
    *callers'* object code even though their source is untouched."""
    base = """
    int callee(int a);
    int caller(void) { return callee(7); }
    """
    changed = """
    int callee(int a, int b);
    int caller(void) { return callee(7, 0); }
    """
    obj_a = compile_source(base, "u.c", CompilerOptions(
        function_sections=True, data_sections=True)).objfile
    obj_b = compile_source(changed, "u.c", CompilerOptions(
        function_sections=True, data_sections=True)).objfile
    assert obj_a.section(".text.caller").data != \
        obj_b.section(".text.caller").data


def test_hook_sections_emitted():
    source = """
    int my_transition(void) { return 0; }
    __ksplice_apply__(my_transition);
    __ksplice_reverse__(my_transition);
    """
    obj = compile_source(source, "u.c").objfile
    for name in (".ksplice_apply", ".ksplice_reverse"):
        section = obj.section(name)
        assert section.size == 4
        assert section.relocations[0].symbol == "my_transition"


def test_hook_against_missing_function_raises():
    with pytest.raises(CompileError):
        compile_source("__ksplice_apply__(ghost);", "u.c")


def test_compiler_version_skew_changes_code():
    source = "int f(void) { return 1; }"
    v1 = compile_source(source, "u.c", CompilerOptions())
    v2 = compile_source(source, "u.c",
                        CompilerOptions(compiler_version="kcc-1.1"))
    assert v1.objfile.section(".text").data != \
        v2.objfile.section(".text").data


def test_compile_asm_merged_and_split():
    source = """
    .global entry_a
    .global entry_b
    entry_a:
        movi r0, 1
        ret
    .align 16
    entry_b:
        call helper_c
        ret
    """
    merged = compile_source(source, "arch/entry.s", CompilerOptions())
    obj = merged.objfile
    assert ".text" in obj.sections
    assert obj.symbol("entry_a").value == 0
    assert obj.symbol("entry_b").value == 16
    assert "helper_c" in {s.name for s in obj.undefined_symbols()}

    split = compile_source(source, "arch/entry.s", CompilerOptions(
        function_sections=True, data_sections=True))
    assert ".text.entry_a" in split.objfile.sections
    assert ".text.entry_b" in split.objfile.sections


def test_compile_asm_data_section_with_table():
    source = """
    .global dispatch
    dispatch:
        ret
    .section .data
    table:
        .word dispatch, 0
    """
    obj = compile_source(source, "arch/tbl.s", CompilerOptions()).objfile
    data = obj.section(".data")
    assert data.relocations[0].symbol == "dispatch"
    assert obj.symbol("table").binding is SymbolBinding.LOCAL


def test_unknown_identifier_raises():
    with pytest.raises(CompileError):
        compile_source("int f(void) { return ghost_var; }", "u.c")


def test_break_outside_loop_raises():
    with pytest.raises(CompileError):
        compile_source("int f(void) { break; return 0; }", "u.c")


def test_deref_non_pointer_raises():
    with pytest.raises(CompileError):
        compile_source("int f(int x) { return *x; }", "u.c")


def test_field_access_on_non_struct_raises():
    with pytest.raises(CompileError):
        compile_source("int f(int x) { return x.pid; }", "u.c")


def test_deterministic_output():
    first = compile_source(KERNEL_C, "u.c", CompilerOptions())
    second = compile_source(KERNEL_C, "u.c", CompilerOptions())
    for name, section in first.objfile.sections.items():
        assert second.objfile.section(name).data == section.data

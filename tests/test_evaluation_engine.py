"""The evaluation engine: caches, parallelism, determinism."""

from dataclasses import fields

import pytest

import repro.compiler.cache as cache_mod
from repro.compiler import CompilerOptions, compile_source_cached
from repro.compiler.cache import (
    COMPILE_CACHE,
    PARSE_CACHE,
    CacheStats,
    ContentCache,
)
from repro.evaluation import (
    CORPUS,
    clear_caches,
    evaluate_corpus,
    kernel_for_version,
    normalize_result,
    run_build_for,
)
from repro.evaluation.engine import (
    RUN_BUILD_CACHE,
    EngineStats,
    _group_by_version,
)
from repro.evaluation.harness import _patched_source_functions
from repro.evaluation.specs import CveSpec

SRC = "int answer(void) { return 42; }\n"
PATCHED_SRC = "int answer(void) { return 43; }\n"


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


# -- content addressing -----------------------------------------------------


def test_same_source_hits_compile_cache():
    first = compile_source_cached(SRC, "u.c")
    assert COMPILE_CACHE.stats.misses == 1
    second = compile_source_cached(SRC, "u.c")
    assert second is first
    assert COMPILE_CACHE.stats.hits == 1


def test_patched_unit_misses_cache():
    """Rewriting a unit's source must never reuse the old object."""
    before = compile_source_cached(SRC, "u.c")
    patched = compile_source_cached(PATCHED_SRC, "u.c")
    assert patched is not before
    assert bytes(patched.objfile.section(".text").data) != \
        bytes(before.objfile.section(".text").data)
    assert COMPILE_CACHE.stats.misses == 2
    # ...and the original source still resolves to the original object.
    assert compile_source_cached(SRC, "u.c") is before


def test_options_participate_in_compile_key():
    merged = compile_source_cached(SRC, "u.c", CompilerOptions())
    split = compile_source_cached(
        SRC, "u.c", CompilerOptions(function_sections=True))
    assert merged is not split
    assert COMPILE_CACHE.stats.misses == 2
    # One source digest, one AST: the second flavor reuses the parse.
    assert PARSE_CACHE.stats.misses == 1
    assert PARSE_CACHE.stats.hits >= 1


def test_run_build_cache_and_clear():
    kernel = kernel_for_version(CORPUS[0].kernel_version)
    build = run_build_for(kernel)
    assert run_build_for(kernel) is build
    assert RUN_BUILD_CACHE.stats.hits == 1
    clear_caches()
    assert len(RUN_BUILD_CACHE) == 0
    assert RUN_BUILD_CACHE.stats.lookups == 0
    assert run_build_for(kernel) is not build


def test_patched_source_functions_parse_at_most_once(monkeypatch):
    """The per-line patch scan must not re-parse the unit (the seed
    parsed once per changed line); across repeated calls the parse cache
    bounds work to one parse per (unit, source) pair."""
    counts = {}
    real_parse = cache_mod.parse_unit

    def counting_parse(source, unit_name="<unit>"):
        key = (unit_name, cache_mod.source_digest(source))
        counts[key] = counts.get(key, 0) + 1
        return real_parse(source, unit_name)

    monkeypatch.setattr(cache_mod, "parse_unit", counting_parse)
    for spec in CORPUS[:6]:
        if spec.is_asm:
            continue
        kernel = kernel_for_version(spec.kernel_version)
        first = _patched_source_functions(kernel, spec)
        assert _patched_source_functions(kernel, spec) == first
    assert counts, "expected units to be parsed"
    assert all(n == 1 for n in counts.values()), counts


# -- CacheStats / ContentCache ---------------------------------------------


def test_cache_stats_counters_and_lru():
    cache = ContentCache("t", max_entries=2)
    assert cache.get("a") is None
    cache.put("a", 1, size=10)
    cache.put("b", 2)
    assert cache.get("a", size=10) == 1  # refreshes LRU position
    cache.put("c", 3)  # evicts b, the least recently used
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.stats.misses == 2
    assert cache.stats.hits == 3
    assert cache.stats.evictions == 1
    assert cache.stats.bytes_cached == 20
    assert cache.stats.hit_rate == 0.6


def test_cache_stats_merge():
    total = CacheStats(hits=1, misses=2)
    total.merge(CacheStats(hits=3, misses=4, evictions=5, bytes_cached=6))
    assert (total.hits, total.misses, total.evictions,
            total.bytes_cached) == (4, 6, 5, 6)


def test_disabled_cache_bypasses():
    cache = ContentCache("t")
    cache.enabled = False
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0


# -- parallel evaluation ----------------------------------------------------


def _subset():
    """A few CVEs spanning at least two kernel versions."""
    versions, chosen = [], []
    for spec in CORPUS:
        if spec.kernel_version not in versions:
            if len(versions) == 2:
                continue
            versions.append(spec.kernel_version)
        chosen.append(spec)
    return [s for s in chosen if s.kernel_version in versions][:8]


def test_group_by_version_preserves_order():
    groups = _group_by_version(_subset())
    assert len(groups) == 2
    seen = [i for _, indices in groups for i in indices]
    assert sorted(seen) == list(range(len(_subset())))


def test_group_by_version_first_appearance_order():
    """Groups come out in the order their version first appears in the
    spec list, and each group's indices preserve spec order — the
    contract both the local pool and the distributed coordinator's
    lead-item scheduling rely on."""
    from dataclasses import replace

    base = CORPUS[0]
    order = ["v-b", "v-a", "v-b", "v-c", "v-a", "v-b"]
    specs = [replace(base, cve_id="CVE-X-%d" % i, kernel_version=v)
             for i, v in enumerate(order)]
    groups = _group_by_version(specs)
    assert [version for version, _ in groups] == ["v-b", "v-a", "v-c"]
    assert dict(groups) == {"v-b": [0, 2, 5], "v-a": [1, 4],
                            "v-c": [3]}


def test_parallel_results_identical_to_sequential():
    specs = _subset()
    sequential = evaluate_corpus(specs, run_stress=False)
    clear_caches()
    stats = EngineStats()
    parallel = evaluate_corpus(specs, run_stress=False, jobs=4,
                               stats=stats)
    assert [normalize_result(r) for r in parallel.results] == \
        [normalize_result(r) for r in sequential.results]
    assert stats.jobs == 4
    assert stats.groups == 2
    assert stats.cves == len(specs)
    assert stats.wall_seconds > 0
    assert stats.combined_cache_stats().lookups > 0


def test_unpicklable_specs_fall_back_in_process():
    class LocalSpec(CveSpec):  # local classes cannot be pickled
        pass

    spec = CORPUS[0]
    local = LocalSpec(**{f.name: getattr(spec, f.name)
                         for f in fields(CveSpec)})
    stats = EngineStats()
    report = evaluate_corpus([local, CORPUS[1]], run_stress=False,
                             jobs=4, stats=stats)
    assert stats.fell_back
    assert stats.fallback_reason == "unpicklable specs"
    assert len(report.results) == 2
    assert report.results[0].cve_id == spec.cve_id


def test_progress_fires_once_per_cve():
    specs = _subset()[:4]
    seen = []
    evaluate_corpus(specs, run_stress=False, jobs=2,
                    progress=lambda r: seen.append(r.cve_id))
    assert sorted(seen) == sorted(s.cve_id for s in specs)


def test_sequential_progress_fires_per_cve_in_spec_order():
    """The documented granularity contract: sequential runs fire the
    progress callback once per CVE, in spec order, as each finishes —
    never batched (distributed streaming is asserted in
    test_distributed_fabric.py; local ``jobs`` runs deliver per-group
    bursts, which the evaluate_corpus docstring now states)."""
    specs = _subset()[:4]
    seen = []
    evaluate_corpus(specs, run_stress=False,
                    progress=lambda r: seen.append(r.cve_id))
    assert seen == [s.cve_id for s in specs]

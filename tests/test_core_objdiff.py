"""Tests for pre-post differencing, extraction, and update packs."""

import pytest

from repro.compiler import CompilerOptions
from repro.core import (
    SectionStatus,
    UnitUpdate,
    UpdatePack,
    build_primary_object,
    diff_objects,
)
from repro.core.extract import build_helper_object
from repro.core.update import update_id_for
from repro.errors import KspliceError
from repro.kbuild import SourceTree, build_units

FLAVOR = CompilerOptions().pre_post_flavor()

BASE = """
static int debug;
int counter = 5;

static int check(int x) { return x > 0; }

int outer(int x) {
    if (!check(x)) { return -1; }
    debug = x;
    return counter + x;
}

int untouched(int x) { return x * 3; }
"""


def compile_one(source, name="u.c"):
    return build_units(SourceTree(version="t", files={name: source}),
                       [name], FLAVOR).object_for(name)


def test_identical_sources_produce_no_differences():
    diff = diff_objects(compile_one(BASE), compile_one(BASE))
    assert not diff.has_code_changes
    assert not diff.changes_persistent_data
    statuses = set(diff.section_status.values())
    assert statuses == {SectionStatus.UNCHANGED}


def test_changed_function_detected():
    post = BASE.replace("return counter + x;", "return counter + x + 1;")
    diff = diff_objects(compile_one(BASE), compile_one(post))
    assert diff.changed_functions == ["outer"]
    assert "untouched" not in diff.changed_functions
    assert not diff.changes_persistent_data


def test_inlined_callee_change_marks_caller_changed():
    """check() is inlined into outer() at -O2; patching check must mark
    outer changed even though outer's source is untouched (§4.2)."""
    post = BASE.replace("return x > 0;", "return x > 0 && x < 100;")
    diff = diff_objects(compile_one(BASE), compile_one(post))
    assert "outer" in diff.changed_functions


def test_new_function_detected():
    post = BASE + "\nint added(int y) { return y - 1; }\n"
    diff = diff_objects(compile_one(BASE), compile_one(post))
    assert diff.new_functions == ["added"]
    assert diff.changed_functions == []


def test_changed_data_init_detected():
    post = BASE.replace("int counter = 5;", "int counter = 6;")
    diff = diff_objects(compile_one(BASE), compile_one(post))
    assert "counter" in diff.changed_data
    assert diff.changes_persistent_data


def test_bss_to_data_transition_is_persistent_change():
    post = BASE.replace("static int debug;", "static int debug = 3;")
    diff = diff_objects(compile_one(BASE), compile_one(post))
    assert diff.changes_persistent_data


def test_new_static_local_is_new_data_not_persistent_change():
    post = BASE + """
int with_static(void) {
    static int hits = 0;
    hits++;
    return hits;
}
"""
    diff = diff_objects(compile_one(BASE), compile_one(post))
    assert "with_static.hits" in diff.new_data
    assert not diff.changes_persistent_data


def test_rodata_only_change_detected():
    """An assembly unit whose only difference is a .rodata value: no
    code change, but the persistent image differs and the diff labels
    it read-only-only."""
    pre_s = """
.global ro_entry
.section .text
ro_entry:
    ret
.section .rodata
ro_limit:
    .word 100
"""
    post_s = pre_s.replace(".word 100", ".word 200")
    diff = diff_objects(compile_one(pre_s, "arch/ro.s"),
                        compile_one(post_s, "arch/ro.s"))
    assert not diff.has_code_changes
    assert diff.changes_persistent_data
    assert diff.rodata_only_change
    assert diff.persistent_data_sections() == [".rodata"]


def test_mixed_data_change_is_not_rodata_only():
    post = BASE.replace("int counter = 5;", "int counter = 6;")
    diff = diff_objects(compile_one(BASE), compile_one(post))
    assert diff.changes_persistent_data
    assert not diff.rodata_only_change
    assert diff.persistent_data_sections() == [".data.counter"]


def test_resized_data_recorded():
    base = BASE + "\nint table[2];\nint use(void) { return table[0]; }\n"
    post = base.replace("int table[2];", "int table[5];")
    diff = diff_objects(compile_one(base), compile_one(post))
    assert diff.resized_data == ["table"]
    # a pure initializer change is not a resize
    post2 = BASE.replace("int counter = 5;", "int counter = 6;")
    diff2 = diff_objects(compile_one(BASE), compile_one(post2))
    assert diff2.resized_data == []


def test_hook_only_unit_diff():
    """A unit whose only post-build difference is hook code: hooks are
    reported, nothing is classified as a code or data change."""
    post = BASE + """
int fixup(void) { return 0; }
__ksplice_apply__(fixup);
"""
    diff = diff_objects(compile_one(BASE), compile_one(post))
    assert diff.has_hooks
    assert ".ksplice_apply" in diff.hook_sections
    assert not diff.changes_persistent_data
    assert diff.persistent_data_sections() == []
    # fixup itself is ordinary new code, not a changed function
    assert diff.new_functions == ["fixup"]
    assert diff.changed_functions == []


def test_hook_sections_reported():
    post = BASE + """
int fixup(void) { return 0; }
__ksplice_apply__(fixup);
"""
    diff = diff_objects(compile_one(BASE), compile_one(post))
    assert ".ksplice_apply" in diff.hook_sections
    assert diff.has_hooks


def test_primary_contains_only_changed_and_new():
    post_src = BASE.replace("return counter + x;", "return counter + 2 * x;") \
        + "\nint added(void) { return 9; }\n"
    pre = compile_one(BASE)
    post = compile_one(post_src)
    diff = diff_objects(pre, post)
    primary = build_primary_object(post, diff)
    assert ".text.outer" in primary.sections
    assert ".text.added" in primary.sections
    assert ".text.untouched" not in primary.sections
    # Referenced kernel symbols become undefined entries for the resolver.
    undefined = {s.name for s in primary.undefined_symbols()}
    assert "counter" in undefined
    assert "debug" in undefined


def test_primary_much_smaller_than_helper():
    post_src = BASE.replace("return counter + x;", "return counter - x;")
    pre = compile_one(BASE)
    post = compile_one(post_src)
    diff = diff_objects(pre, post)
    helper = build_helper_object(pre)
    primary = build_primary_object(post, diff)
    helper_size = sum(s.size for s in helper.sections.values())
    primary_size = sum(s.size for s in primary.sections.values())
    assert primary_size < helper_size


def test_update_pack_roundtrip():
    post_src = BASE.replace("return counter + x;", "return counter;")
    pre = compile_one(BASE)
    post = compile_one(post_src)
    diff = diff_objects(pre, post)
    pack = UpdatePack(update_id="ksplice-test01", kernel_version="t",
                      description="demo", patch_lines=2)
    pack.units.append(UnitUpdate(
        unit="u.c", helper=build_helper_object(pre),
        primary=build_primary_object(post, diff),
        changed_functions=list(diff.changed_functions)))
    back = UpdatePack.from_bytes(pack.to_bytes())
    assert back.update_id == pack.update_id
    assert back.kernel_version == "t"
    assert back.units[0].changed_functions == diff.changed_functions
    assert back.units[0].helper.sections.keys() == \
        pack.units[0].helper.sections.keys()
    assert back.units[0].primary.section(".text.outer").data == \
        pack.units[0].primary.section(".text.outer").data


def test_update_pack_rejects_garbage():
    with pytest.raises(KspliceError):
        UpdatePack.from_bytes(b"not json at all")
    with pytest.raises(KspliceError):
        UpdatePack.from_bytes(b'{"format": 99}')


def test_update_id_deterministic_and_distinct():
    a = update_id_for("patch-a", "2.6.16")
    b = update_id_for("patch-a", "2.6.16")
    c = update_id_for("patch-b", "2.6.16")
    assert a == b
    assert a != c
    assert a.startswith("ksplice-") and len(a) == len("ksplice-") + 6

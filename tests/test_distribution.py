"""Tests for update channels and subscribers (§8 future work)."""

import pytest

from repro.core import KspliceCore
from repro.core.distribution import Subscriber, UpdateChannel
from repro.errors import (
    ChannelGapError,
    KspliceError,
    RunPreMismatchError,
)
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.patch import make_patch

ENTRY_S = """
.global syscall_entry
syscall_entry:
    cmpi r0, 1
    jge bad_sys
    cmpi r0, 0
    jl bad_sys
    push r3
    push r2
    push r1
    movi r4, 4
    mul r0, r4
    lea r4, sys_call_table
    add r4, r0
    loadr r4, r4, 0
    callr r4
    addi sp, 12
    ret
bad_sys:
    movi r0, -38
    ret
.section .data
sys_call_table:
    .word sys_level
"""

LEVEL_C = """
int level_floor = 0;

int sys_level(int x, int b, int c) {
    if (x < level_floor) { return -22; }
    return x + 1;
}
"""

TREE = SourceTree(version="chan-1.0", files={
    "arch/entry.s": ENTRY_S,
    "kernel/level.c": LEVEL_C,
})

V1 = LEVEL_C.replace("return x + 1;", "return x + 2;")
V2 = V1.replace("if (x < level_floor) { return -22; }",
                "if (x < level_floor || x > 100) { return -22; }")
V3 = V2.replace("return x + 2;", "return x + 3;")


def series_patch(old, new, tree=TREE):
    old_files = dict(tree.files)
    old_files["kernel/level.c"] = old
    new_files = dict(old_files)
    new_files["kernel/level.c"] = new
    return make_patch(old_files, new_files)


@pytest.fixture
def channel():
    chan = UpdateChannel(TREE)
    chan.publish(series_patch(LEVEL_C, V1), "bump increment")
    chan.publish(series_patch(V1, V2), "bound the input")
    chan.publish(series_patch(V2, V3), "bump increment again")
    return chan


def probe(machine, x):
    return machine.call_function("sys_level", [x, 0, 0])


def test_channel_publishes_stacked_series(channel):
    assert channel.latest_sequence() == 3
    assert [e.sequence for e in channel.entries] == [1, 2, 3]
    # Each entry's pack was built against the previous state.
    assert channel.current_tree().read("kernel/level.c") == V3


def test_subscriber_syncs_all_pending(channel):
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    assert probe(machine, 5) == 6  # original behaviour

    sub = Subscriber(core, channel)
    assert not sub.is_current
    assert len(sub.pending()) == 3
    result = sub.sync()
    assert result.count == 3
    assert sub.is_current
    assert probe(machine, 5) == 8          # v3 behaviour
    assert probe(machine, 500) == (-22) & 0xFFFFFFFF  # v2's bound


def test_subscriber_catches_up_incrementally(channel):
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    sub = Subscriber(core, channel)

    # Sync after each publish-equivalent point.
    sub.channel = channel
    first_two = channel.entries[:2]
    channel_entries_backup = channel.entries
    channel.entries = first_two
    assert sub.sync().count == 2
    assert probe(machine, 5) == 7  # v2: +2 and bounded
    channel.entries = channel_entries_backup
    assert sub.sync().count == 1
    assert probe(machine, 5) == 8
    assert sub.sync().already_current


def test_subscriber_rejects_wrong_kernel(channel):
    other = SourceTree(version="other-2.0", files=TREE.files)
    machine = boot_kernel(other)
    core = KspliceCore(machine)
    with pytest.raises(KspliceError):
        Subscriber(core, channel)


def test_out_of_order_application_fails_safely(channel):
    """Applying update 2 without update 1 must be refused by run-pre
    matching: the pre code of update 2 expects update 1's replacement
    code in the kernel."""
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    with pytest.raises(RunPreMismatchError):
        core.apply(channel.entries[1].pack())
    # The machine is untouched and the proper sync still works.
    sub = Subscriber(core, channel)
    assert sub.sync().count == 3


def test_rollback_last(channel):
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    sub = Subscriber(core, channel)
    sub.sync()
    assert probe(machine, 5) == 8
    sub.rollback_last()
    assert probe(machine, 5) == 7  # back to v2
    assert len(sub.pending()) == 1
    # Re-sync reapplies the rolled-back update.
    assert sub.sync().count == 1
    assert probe(machine, 5) == 8


def test_rollback_without_sync_raises(channel):
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    sub = Subscriber(core, channel)
    with pytest.raises(KspliceError):
        sub.rollback_last()


def test_gap_in_series_raises_typed_error(channel):
    """An entry whose base sequence is not the machine's applied
    sequence must be refused with :class:`ChannelGapError` before the
    core is touched — not half-applied, not a bare RuntimeError."""
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    sub = Subscriber(core, channel)

    # Drop entry #1 from the series: the channel now starts at #2,
    # which stacks on #1 — a gap from this subscriber's position #0.
    channel.entries = channel.entries[1:]
    with pytest.raises(ChannelGapError) as excinfo:
        sub.sync()
    assert "stacks on sequence 1" in str(excinfo.value)
    assert "applied up to 0" in str(excinfo.value)
    # The kernel was never touched.
    assert probe(machine, 5) == 6
    assert sub.applied_sequence == 0
    assert not core.applied


def test_gap_error_is_a_ksplice_error(channel):
    """Callers catching the module's base error still see gap refusals."""
    assert issubclass(ChannelGapError, KspliceError)


def test_update_channel_example_flow():
    """The examples/update_channel.py story as a real test: subscribe,
    catch up across two stacked entries in one sync, then roll back
    the newest and land exactly one update earlier."""
    channel = UpdateChannel(TREE)
    channel.publish(series_patch(LEVEL_C, V1), "bump increment")
    channel.publish(series_patch(V1, V2), "bound the input")

    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    assert probe(machine, 5) == 6  # stock kernel

    sub = Subscriber(core, channel)
    result = sub.sync()
    assert result.count == 2
    assert [u.pack.update_id for u in result.applied] == \
        [e.pack().update_id for e in channel.entries]
    assert sub.is_current
    assert probe(machine, 5) == 7                      # v1's +2
    assert probe(machine, 500) == (-22) & 0xFFFFFFFF   # v2's bound

    sub.rollback_last()
    assert sub.applied_sequence == 1
    assert probe(machine, 5) == 7        # v1 still applied
    assert probe(machine, 500) == 502    # v2's bound is gone
    assert [e.sequence for e in sub.pending()] == [2]


def test_channel_series_survives_store_restart(tmp_path):
    """Two UpdateChannel instances over one directory-backed store are
    the same channel: the second resumes the sequence chain."""
    from repro.controlplane.store import ChannelStore

    first = UpdateChannel(TREE, store=ChannelStore(str(tmp_path)))
    first.publish(series_patch(LEVEL_C, V1), "bump increment")

    # A fresh instance (think: daemon restart) sees entry #1 and
    # publishes #2 stacked on it.
    second = UpdateChannel(TREE, store=ChannelStore(str(tmp_path)))
    assert second.latest_sequence() == 1
    entry = second.publish(series_patch(V1, V2), "bound the input")
    assert entry.sequence == 2
    assert entry.base_sequence == 1

    # A subscriber syncing through the revived channel gets both.
    machine = boot_kernel(TREE)
    sub = Subscriber(KspliceCore(machine), second)
    assert sub.sync().count == 2
    assert probe(machine, 500) == (-22) & 0xFFFFFFFF

    # The durable store refuses to serve a different kernel version.
    other = SourceTree(version="other-2.0", files=TREE.files)
    with pytest.raises(KspliceError):
        UpdateChannel(other, store=ChannelStore(str(tmp_path)),
                      name=second.name)

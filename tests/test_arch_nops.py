"""Tests for nop-sequence generation and recognition."""

import pytest
from hypothesis import given, strategies as st

from repro.arch import nops
from repro.arch.disassembler import disassemble


def test_nop_sequence_exact_lengths():
    for length in range(0, 33):
        seq = nops.nop_sequence(length)
        assert len(seq) == length


def test_nop_sequence_negative_raises():
    with pytest.raises(ValueError):
        nops.nop_sequence(-1)


def test_nop_sequence_decodes_to_only_nops():
    seq = nops.nop_sequence(11)
    for decoded in disassemble(seq):
        assert decoded.is_nop


def test_nop_sequence_uses_multibyte_forms():
    # 8 bytes should be two 4-byte nops, not eight 1-byte nops.
    seq = nops.nop_sequence(8)
    decoded = disassemble(seq)
    assert [d.length for d in decoded] == [4, 4]


def test_is_nop():
    assert nops.is_nop(nops.nop_sequence(1))
    assert nops.is_nop(nops.nop_sequence(3))
    assert not nops.is_nop(b"\x42")  # ret
    assert not nops.is_nop(b"")      # empty
    assert not nops.is_nop(b"\xff")  # invalid opcode


def test_longest_nop_at():
    code = nops.nop_sequence(3) + b"\x42"
    assert nops.longest_nop_at(code, 0) == 3
    assert nops.longest_nop_at(code, 3) == 0


def test_skip_nops():
    code = nops.nop_sequence(7) + b"\x42" + nops.nop_sequence(2)
    assert nops.skip_nops(code, 0) == 7
    assert nops.skip_nops(code, 7) == 7
    assert nops.skip_nops(code, 8) == 10


def test_skip_nops_respects_limit():
    code = nops.nop_sequence(8)
    assert nops.skip_nops(code, 0, limit=4) == 4
    # A limit that bisects a multi-byte nop must not step past it.
    assert nops.skip_nops(code, 0, limit=6) == 4


def test_split_nop_run():
    code = nops.nop_sequence(9)
    assert nops.split_nop_run(code, 0) == [4, 4, 1]
    assert nops.split_nop_run(b"\x42", 0) == []


@given(st.integers(0, 200))
def test_property_nop_sequence_length_and_decode(length):
    seq = nops.nop_sequence(length)
    assert len(seq) == length
    assert sum(nops.split_nop_run(seq, 0)) == length

"""Fuzz harness: mutation operators, the consistency contract, and the
planted-bug guarantee that injected inconsistencies surface as
discrepancies rather than passing silently.
"""

import random

import pytest

from repro.errors import ReproError
from repro.scenarios import GeneratedCorpus, OPERATORS, fuzz_corpus, mutate_unit
from repro.scenarios.fuzz import check_mutant_contract

UNIT = """\
int tbl_limit = 4;
int tbl_data[4] = { 0, 0, 0, 0 };
int tbl_secret = 777;

static int clamp(int v) {
    if (v > 99) { return 99; }
    return v;
}

int sys_tbl_put(int slot, int val, int c) {
    if (slot < 0 || slot >= tbl_limit) { return -22; }
    tbl_data[slot] = clamp(val);
    return 0;
}

int sys_tbl_get(int slot, int b, int c) {
    if (slot < 0 || slot >= tbl_limit) { return -22; }
    return tbl_data[slot];
}
"""

PRE = UNIT.replace("if (slot < 0 || slot >= tbl_limit) { return -22; }\n"
                   "    tbl_data[slot] = clamp(val);",
                   "tbl_data[slot] = clamp(val);")


# ---------------------------------------------------------------------------
# Operators


def test_operator_set_extends_pr8():
    assert len(OPERATORS) == 7
    assert {"drop-hunk", "swap-callee", "widen-field"} < set(OPERATORS)


def test_drop_hunk_reverts_to_pre():
    assert mutate_unit(PRE, UNIT, "drop-hunk") == PRE


def test_widen_field_doubles_first_array_bound():
    mutated = mutate_unit(PRE, UNIT, "widen-field")
    assert "tbl_data[8]" in mutated
    assert mutated.count("[8]") == 1


def test_reorder_hunks_swaps_adjacent_functions():
    mutated = mutate_unit(PRE, UNIT, "reorder-hunks")
    assert mutated is not None
    assert sorted(mutated.splitlines()) == sorted(UNIT.splitlines())
    assert mutated != UNIT
    # it is still a reordering of whole definitions, not a text shuffle
    assert mutated.count("int sys_tbl_put(") == 1
    assert mutated.index("sys_tbl_put") != UNIT.index("sys_tbl_put")


def test_split_function_interposes_a_wrapper():
    mutated = mutate_unit(PRE, UNIT, "split-function")
    assert "static int sys_tbl_put_impl(" in mutated
    assert "return sys_tbl_put_impl(slot, val, c);" in mutated
    # the original entry point still exists exactly once as non-static
    assert mutated.count("\nint sys_tbl_put(") == 1


def test_rename_static_renames_every_use():
    mutated = mutate_unit(PRE, UNIT, "rename-static")
    assert "static int clamp_r(" in mutated
    assert "clamp_r(val)" in mutated
    assert "clamp(" not in mutated.replace("clamp_r(", "")


def test_corrupt_relocation_target_retargets_one_use():
    mutated = mutate_unit(PRE, UNIT, "corrupt-relocation-target")
    assert mutated is not None and mutated != UNIT
    # exactly one reference changed
    diff = [(a, b) for a, b in zip(UNIT.splitlines(),
                                   mutated.splitlines()) if a != b]
    assert len(diff) == 1


def test_inapplicable_operators_return_none():
    tiny = "int only = 1;\n\nint sys_only(int a, int b, int c) {\n" \
           "    return only;\n}\n"
    assert mutate_unit(tiny, tiny, "reorder-hunks") is None
    assert mutate_unit(tiny, tiny, "rename-static") is None
    assert mutate_unit(tiny, tiny, "corrupt-relocation-target") is None


def test_unknown_operator_raises():
    with pytest.raises(ReproError):
        mutate_unit(PRE, UNIT, "transmogrify")


def test_rng_varies_the_site_but_stays_deterministic():
    a = mutate_unit(PRE, UNIT, "reorder-hunks", random.Random(5))
    b = mutate_unit(PRE, UNIT, "reorder-hunks", random.Random(5))
    assert a == b


# ---------------------------------------------------------------------------
# Harness


@pytest.fixture(scope="module")
def pool():
    return GeneratedCorpus.generate(3, 8).specs()


def test_fuzz_run_is_consistent(pool):
    report = fuzz_corpus(pool, budget=10, seed=1)
    assert report.consistent, report.discrepancies
    assert report.mutants + report.refused + report.inapplicable == 10
    assert report.mutants > 0
    assert len(report.outcomes) == 10


def test_fuzz_is_deterministic(pool):
    first = fuzz_corpus(pool, budget=6, seed=9)
    second = fuzz_corpus(pool, budget=6, seed=9)
    assert first.to_json() == second.to_json()


def test_fuzz_rejects_empty_pool():
    with pytest.raises(ReproError):
        fuzz_corpus([], budget=1)


def test_planted_evidence_stripping_is_surfaced(pool):
    """A tampered analyzer that drops its proof witnesses must show up
    as discrepancies — the harness's reason to exist."""

    def strip_evidence(analysis):
        analysis.evidence[:] = []

    report = fuzz_corpus(pool, budget=10, seed=1, tamper=strip_evidence)
    assert not report.consistent
    assert any("not evidence-backed" in d or "carries no witness" in d
               for d in report.discrepancies)


def test_planted_out_of_lattice_verdict_is_surfaced(pool):
    def bogus_verdict(analysis):
        analysis.verdict = "totally-fine"

    report = fuzz_corpus(pool, budget=10, seed=1, tamper=bogus_verdict)
    assert any("not in the lattice" in d for d in report.discrepancies)


def test_contract_flags_missing_analysis():
    problems = check_mutant_contract(None, None, None, None)
    assert problems == ["created cleanly but produced no analysis report"]

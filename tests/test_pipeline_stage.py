"""Unit tests for the staged-lifecycle pipeline (repro.pipeline)."""

import json

import pytest

from repro.errors import KspliceCreateError, ReproError
from repro.pipeline import (
    FAILED,
    OK,
    SKIPPED,
    StageContext,
    Trace,
    load_run,
    normalize_cve_result,
    save_run,
    scrub_trace,
)


def test_stage_records_outcome_timing_and_counters():
    trace = Trace(label="t")
    with trace.stage("build") as rep:
        rep.count("units", 3)
        rep.artifacts["unit"] = "kernel/sched.c"
    assert [r.name for r in trace.reports] == ["build"]
    report = trace.find("build")
    assert report.outcome == OK
    assert report.wall_ms >= 0.0
    assert report.counters == {"units": 3}
    assert report.artifacts == {"unit": "kernel/sched.c"}
    assert trace._stack == []  # every stage exited


def test_stages_nest_by_lexical_scope():
    trace = Trace()
    with trace.stage("apply"):
        with trace.stage("run-pre") as rep:
            rep.count("functions")
        with trace.stage("stop_machine"):
            with trace.stage("stack-check"):
                pass
    assert trace.find("apply/run-pre") is not None
    assert trace.find("apply/stop_machine/stack-check") is not None
    assert trace.find("run-pre") is None  # not top-level
    paths = [path for path, _ in trace.walk()]
    assert paths == ["apply", "apply/run-pre", "apply/stop_machine",
                     "apply/stop_machine/stack-check"]


def test_exception_marks_stage_failed_and_attaches_context():
    trace = Trace()
    with pytest.raises(KspliceCreateError) as excinfo:
        with trace.stage("create"):
            with trace.stage("diff") as rep:
                rep.artifacts["unit"] = "fs/file.c"
                rep.counters["attempts"] = 2
                raise KspliceCreateError("nope")
    context = excinfo.value.stage_context
    assert isinstance(context, StageContext)
    # The innermost stage wins and the path is slash-joined.
    assert context.stage == "create/diff"
    assert context.unit == "fs/file.c"
    assert context.retries == 2
    assert trace.find("create").outcome == FAILED
    assert trace.find("create/diff").outcome == FAILED
    assert "nope" in trace.find("create/diff").error
    assert trace.failed_stage() == "create/diff"


def test_outer_stage_does_not_overwrite_inner_context():
    trace = Trace()
    with pytest.raises(ReproError) as excinfo:
        with trace.stage("outer"):
            with trace.stage("inner"):
                raise ReproError("inner abort")
    assert excinfo.value.stage_context.stage == "outer/inner"


def test_stage_context_describe():
    context = StageContext(stage="apply/stop_machine", unit="kernel/sched.c",
                           function="schedule", retries=3)
    text = context.describe()
    assert "apply/stop_machine" in text
    assert "schedule" in text
    assert "attempt 3" in text


def test_skip_records_skipped_report():
    trace = Trace()
    trace.skip("stress", "disabled")
    report = trace.find("stress")
    assert report.outcome == SKIPPED
    assert report.error == "disabled"
    assert trace.failed_stage() == ""


def test_trace_dict_roundtrip_is_json_safe():
    trace = Trace(label="CVE-x")
    with trace.stage("apply") as rep:
        rep.count("replacements", 2)
        rep.artifacts["unit"] = "u.c"
        with trace.stage("stack-check"):
            pass
    trace.skip("stress", "disabled")
    data = json.loads(json.dumps(trace.to_dict()))
    back = Trace.from_dict(data)
    assert back.label == "CVE-x"
    assert back.find("apply").counters == {"replacements": 2}
    assert back.find("apply/stack-check") is not None
    assert back.find("stress").outcome == SKIPPED
    assert scrub_trace(back) == scrub_trace(trace)


def test_scrub_trace_zeroes_wall_time_recursively():
    trace = Trace()
    with trace.stage("apply"):
        with trace.stage("stack-check"):
            pass
    trace.find("apply").wall_ms = 12.5
    trace.find("apply/stack-check").wall_ms = 3.5
    scrubbed = scrub_trace(trace)
    assert scrubbed.find("apply").wall_ms == 0.0
    assert scrubbed.find("apply/stack-check").wall_ms == 0.0
    # the original is untouched
    assert trace.find("apply").wall_ms == 12.5


def test_stage_totals_and_stage_ms():
    trace = Trace()
    with trace.stage("build"):
        pass
    with trace.stage("apply"):
        pass
    trace.find("build").wall_ms = 5.0
    trace.find("apply").wall_ms = 7.0
    assert trace.stage_totals() == {"build": 5.0, "apply": 7.0}
    assert trace.stage_ms("apply") == 7.0
    assert trace.stage_ms("missing") == 0.0


def test_render_names_stages_and_marks_failures():
    trace = Trace(label="run")
    with pytest.raises(ReproError):
        with trace.stage("apply"):
            raise ReproError("boom")
    text = trace.render()
    assert "run" in text
    assert "apply" in text
    assert "failed" in text
    assert "boom" in text


def test_normalize_cve_result_scrubs_stop_ms_and_trace():
    from repro.evaluation.harness import CveResult

    trace = Trace(label="CVE-y")
    with trace.stage("apply"):
        pass
    trace.find("apply").wall_ms = 9.0
    result = CveResult(cve_id="CVE-y", kernel_version="v", stop_ms=1.25,
                       trace=trace)
    normalized = normalize_cve_result(result)
    assert normalized.stop_ms == 0.0
    assert normalized.trace.find("apply").wall_ms == 0.0
    assert result.stop_ms == 1.25  # original untouched
    # both spellings share the scrubber
    assert result.normalized() == normalized


def test_save_and_load_run_roundtrip(tmp_path, monkeypatch):
    from repro.pipeline.store import TRACE_FILE_ENV, default_trace_path

    path = tmp_path / "runs" / "last-trace.json"
    monkeypatch.setenv(TRACE_FILE_ENV, str(path))
    assert default_trace_path() == str(path)

    trace = Trace(label="CVE-z")
    with trace.stage("build"):
        pass
    written = save_run([trace], meta={"command": "evaluate"})
    assert written == str(path)
    meta, traces = load_run()
    assert meta == {"command": "evaluate"}
    assert len(traces) == 1
    assert traces[0].label == "CVE-z"
    assert traces[0].find("build") is not None


def test_load_run_missing_file_raises(tmp_path):
    with pytest.raises(ReproError):
        load_run(str(tmp_path / "nothing.json"))

"""Tests for programmer-assisted updates: custom hook code (§5.3) and
shadow data structures (the Table 1 patches)."""

import pytest

from repro.core import KspliceCore, ksplice_create
from repro.errors import KspliceError
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.patch import make_patch

ENTRY_S = """
.global syscall_entry
syscall_entry:
    cmpi r0, 2
    jge bad_sys
    cmpi r0, 0
    jl bad_sys
    push r3
    push r2
    push r1
    movi r4, 4
    mul r0, r4
    lea r4, sys_call_table
    add r4, r0
    loadr r4, r4, 0
    callr r4
    addi sp, 12
    ret
bad_sys:
    movi r0, -38
    ret

.section .data
sys_call_table:
    .word sys_get_limit, sys_use_session
"""

# A kernel whose init function fills a limits table at boot: the classic
# "changes data init" shape from Table 1.
LIMITS_C = """
int limit_table[4];
int sessions_id[8];
int sessions_level[8];
int session_count;

int kernel_init(void) {
    for (int i = 0; i < 4; i++) limit_table[i] = 100;
    session_count = 2;
    sessions_id[0] = 11; sessions_level[0] = 3;
    sessions_id[1] = 22; sessions_level[1] = 5;
    return 0;
}

int sys_get_limit(int idx, int b, int c) {
    if (idx < 0) { return -1; }
    if (idx >= 4) { return -1; }
    return limit_table[idx];
}

int sys_use_session(int idx, int b, int c) {
    if (idx < 0) { return -1; }
    if (idx >= session_count) { return -1; }
    return sessions_level[idx];
}
"""

TREE = SourceTree(version="hooks-test", files={
    "arch/entry.s": ENTRY_S,
    "kernel/limits.c": LIMITS_C,
})


def make_update(new_source, old_source=LIMITS_C, tree=TREE):
    old_files = dict(tree.files)
    old_files["kernel/limits.c"] = old_source
    new_files = dict(old_files)
    new_files["kernel/limits.c"] = new_source
    diff = make_patch(old_files, new_files)
    return ksplice_create(SourceTree(version=tree.version, files=old_files),
                          diff)


def fresh():
    machine = boot_kernel(TREE)
    return machine, KspliceCore(machine)


def test_init_function_change_without_hook_leaves_stale_data():
    """Patching only the init function passes ksplice-create (no data
    image changed) but cannot fix state initialized at boot — the reason
    Table 1 patches need custom code."""
    machine, core = fresh()
    new_source = LIMITS_C.replace("limit_table[i] = 100;",
                                  "limit_table[i] = 10;")
    pack = make_update(new_source)
    core.apply(pack)
    # The running kernel still serves the stale boot-time value.
    assert machine.call_function("sys_get_limit", [0, 0, 0]) == 100


def test_init_function_change_with_apply_hook_fixes_live_data():
    """The programmer's ~17 lines: a transition function run during the
    stop_machine window walks the existing data and updates it."""
    machine, core = fresh()
    new_source = LIMITS_C.replace(
        "limit_table[i] = 100;", "limit_table[i] = 10;") + """
int ksplice_fix_limits(void) {
    for (int i = 0; i < 4; i++) {
        if (limit_table[i] > 10) { limit_table[i] = 10; }
    }
    return 0;
}
__ksplice_apply__(ksplice_fix_limits);
"""
    pack = make_update(new_source)
    assert pack.has_hooks()
    core.apply(pack)
    for idx in range(4):
        assert machine.call_function("sys_get_limit", [idx, 0, 0]) == 10


def test_reverse_hook_runs_on_undo():
    machine, core = fresh()
    new_source = LIMITS_C.replace(
        "limit_table[i] = 100;", "limit_table[i] = 10;") + """
int ksplice_fix_limits(void) {
    for (int i = 0; i < 4; i++) limit_table[i] = 10;
    return 0;
}
int ksplice_unfix_limits(void) {
    for (int i = 0; i < 4; i++) limit_table[i] = 100;
    return 0;
}
__ksplice_apply__(ksplice_fix_limits);
__ksplice_reverse__(ksplice_unfix_limits);
"""
    pack = make_update(new_source)
    core.apply(pack)
    assert machine.call_function("sys_get_limit", [1, 0, 0]) == 10
    core.undo(pack.update_id)
    assert machine.call_function("sys_get_limit", [1, 0, 0]) == 100


def test_failing_hook_aborts_and_rolls_back():
    machine, core = fresh()
    new_source = LIMITS_C.replace(
        "return limit_table[idx];",
        "return limit_table[idx] + 1;") + """
int ksplice_bad_hook(void) { return -1; }
__ksplice_apply__(ksplice_bad_hook);
"""
    pack = make_update(new_source)
    with pytest.raises(KspliceError):
        core.apply(pack)
    # The jump was rolled back: old behaviour intact.
    assert machine.call_function("sys_get_limit", [0, 0, 0]) == 100
    assert not core.applied


def test_pre_and_post_apply_hooks_run_outside_stop_window():
    machine, core = fresh()
    new_source = LIMITS_C.replace(
        "return limit_table[idx];",
        "return limit_table[idx] + 0;") + """
int hook_trace;
int ksplice_setup(void) { hook_trace = hook_trace + 1; return 0; }
int ksplice_cleanup(void) { hook_trace = hook_trace + 100; return 0; }
__ksplice_pre_apply__(ksplice_setup);
__ksplice_post_apply__(ksplice_cleanup);
"""
    # Force an object-code change so there is something to ship.
    new_source = new_source.replace("if (idx < 0) { return -1; }",
                                    "if (idx < 0) { return -2; }", 1)
    pack = make_update(new_source)
    applied = core.apply(pack)
    trace_addr = applied.primaries["kernel/limits.c"].symbol_address(
        "hook_trace")
    assert machine.read_u32(trace_addr) == 101


def test_shadow_add_field_update():
    """The CVE-2005-2709 shape: the patch needs a new per-session field.
    Existing instances cannot grow, so the patched code reads the field
    from the shadow table and the apply hook attaches defaults for every
    existing session (DynAMOS's method, §7.1)."""
    machine, core = fresh()
    new_source = LIMITS_C.replace(
        "int sys_use_session(int idx, int b, int c) {\n"
        "    if (idx < 0) { return -1; }\n"
        "    if (idx >= session_count) { return -1; }\n"
        "    return sessions_level[idx];",
        "int ksplice_shadow_get(int obj, int key);\n"
        "int ksplice_shadow_attach(int obj, int key, int val);\n"
        "\n"
        "int sys_use_session(int idx, int b, int c) {\n"
        "    if (idx < 0) { return -1; }\n"
        "    if (idx >= session_count) { return -1; }\n"
        "    if (ksplice_shadow_get(idx, 42)) { return -13; }\n"
        "    return sessions_level[idx];") + """
int ksplice_lockdown_existing(void) {
    for (int i = 0; i < session_count; i++) {
        if (sessions_level[i] >= 5) {
            if (ksplice_shadow_attach(i, 42, 1) < 0) { return -1; }
        }
    }
    return 0;
}
__ksplice_apply__(ksplice_lockdown_existing);
"""
    pack = make_update(new_source)
    core.apply(pack)
    # Session 0 (level 3) unaffected; session 1 (level 5) now locked via
    # its shadow field.
    assert machine.call_function("sys_use_session", [0, 0, 0]) == 3
    assert machine.call_function("sys_use_session", [1, 0, 0]) == \
        (-13) & 0xFFFFFFFF
    assert core.shadow.count == 1
    assert core.shadow.get(1, 42) == 1


def test_shadow_registry_python_api():
    machine, core = fresh()
    shadow = core.shadow
    assert shadow.count == 0
    shadow.attach(0xC0100010, 7, 99)
    assert shadow.has(0xC0100010, 7)
    assert not shadow.has(0xC0100010, 8)
    assert shadow.get(0xC0100010, 7) == 99
    shadow.set(0xC0100010, 7, 100)
    assert shadow.get(0xC0100010, 7) == 100
    shadow.attach(0xC0100020, 7, 1)
    assert shadow.count == 2
    shadow.detach(0xC0100010, 7)
    assert shadow.count == 1
    assert not shadow.has(0xC0100010, 7)
    with pytest.raises(KspliceError):
        shadow.detach(0xC0100010, 7)


def test_shadow_table_capacity_enforced():
    machine, core = fresh()
    from repro.core.shadow import SHADOW_CAPACITY

    for i in range(SHADOW_CAPACITY):
        core.shadow.attach(i, 1, i)
    with pytest.raises(KspliceError):
        core.shadow.attach(SHADOW_CAPACITY + 1, 1, 0)

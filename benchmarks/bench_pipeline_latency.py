"""Pipeline latency: the practicality claims behind §2 and §5.

The paper's workflow is two shell commands; nothing in it may be slow
enough to discourage use.  These benchmarks time the three stages —
ksplice-create (two incremental builds + differencing + extraction),
pack serialization, and ksplice-apply (helper load, run-pre matching,
primary load, stop_machine window) — and how matching scales with the
size of the patched unit.
"""

import pytest

from repro.core import KspliceCore, UpdatePack, ksplice_create
from repro.evaluation import corpus_by_id
from repro.evaluation.kernels import kernel_for_version
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel

SPEC = None


def _setup():
    spec = corpus_by_id("CVE-2006-3626")
    kernel = kernel_for_version(spec.kernel_version)
    return spec, kernel


def test_ksplice_create_latency(benchmark):
    spec, kernel = _setup()
    patch = kernel.patch_for(spec.cve_id)
    pack = benchmark(lambda: ksplice_create(kernel.tree, patch))
    assert pack.units


def test_pack_serialization_roundtrip_latency(benchmark):
    spec, kernel = _setup()
    pack = ksplice_create(kernel.tree, kernel.patch_for(spec.cve_id))

    def roundtrip():
        return UpdatePack.from_bytes(pack.to_bytes())

    back = benchmark(roundtrip)
    assert back.update_id == pack.update_id


def test_ksplice_apply_latency(benchmark):
    spec, kernel = _setup()
    raw = ksplice_create(kernel.tree,
                         kernel.patch_for(spec.cve_id)).to_bytes()

    def apply_once():
        machine = boot_kernel(kernel.tree)
        core = KspliceCore(machine)
        return core.apply(UpdatePack.from_bytes(raw))

    applied = benchmark.pedantic(apply_once, rounds=3, iterations=1)
    assert applied.replaced


@pytest.mark.parametrize("functions", [4, 16, 64])
def test_matching_scales_with_unit_size(functions, benchmark):
    """Run-pre matching is linear in unit size: more functions in the
    optimization unit mean proportionally more matching work, not
    worse."""
    from repro.compiler import CompilerOptions
    from repro.core.runpre import RunPreMatcher
    from repro.kbuild import build_units

    body = "\n".join("""
int probe_%d(int x) {
    int acc = %d;
    for (int i = 0; i < (x & 7); i++) { acc += i * %d; }
    return acc;
}
""" % (i, i, i + 1) for i in range(functions))
    tree = SourceTree(version="scale-%d" % functions,
                      files={"u.c": body})
    machine = boot_kernel(tree)
    pre = build_units(tree, ["u.c"],
                      CompilerOptions().pre_post_flavor()
                      ).object_for("u.c")
    matcher = RunPreMatcher(memory=machine.memory,
                            kallsyms=machine.image.kallsyms)
    result = benchmark(lambda: matcher.match_unit(pre))
    assert len(result.matched_functions) == functions

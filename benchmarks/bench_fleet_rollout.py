"""Fleet rollout throughput and rollback latency.

The two numbers the deployment layer is judged on: how fast a green
rollout walks an entire fleet (members updated per second, dominated
by per-member apply + health probing), and how quickly a red wave is
reversed (rollback latency: the LIFO undo of every member the failed
wave patched, read from the wave's ``rollback`` trace stage).

Run directly:

* ``--smoke`` — the CI check: a 4-member fleet, one green rollout
  (must update everyone) and one fault-injected rollout (an oops in
  wave 1; must halt with the wave rolled back and survivors healthy).
* ``--full`` — the acceptance run: a 12-member fleet; records rollout
  throughput and rollback latency into ``BENCH_corpus.json``.

Under pytest the smoke-sized measurement runs as a benchmark.
"""

import time

import perfjson

from repro.evaluation import clear_caches
from repro.fleet import InjectedFault, RolloutPlan, rollout_corpus_cve
from repro.pipeline import Trace

CVE = "CVE-2006-2451"  # analyzer-safe, probed, single-unit update


def _rollback_wall_ms(trace):
    """Wall time of the red wave's ``rollback`` stage, wherever it
    nests."""

    def walk(reports):
        for rep in reports:
            if rep.name == "rollback":
                return rep.wall_ms
            found = walk(rep.children)
            if found is not None:
                return found
        return None

    return walk(trace.reports)


def measure(fleet_size, fault_wave, workload="spinner"):
    """One green rollout and one fault-injected rollout.

    ``workload="stress"`` runs every member under sustained syscall
    load while updates land, so apply-time quiescence (the stop_machine
    stack check) actually has conflicting stacks to retry against.
    Returns ``(payload, failures)``.
    """
    clear_caches()
    plan = RolloutPlan(cve_id=CVE, fleet_size=fleet_size,
                       workload=workload)
    failures = []

    start = time.perf_counter()
    green = rollout_corpus_cve(plan)
    green_s = time.perf_counter() - start
    if green.outcome != "complete":
        failures.append("green rollout ended %r" % green.outcome)
    if len(green.updated_members) != fleet_size:
        failures.append("green rollout updated %d/%d members"
                        % (len(green.updated_members), fleet_size))

    # Fault injection: oops the first member of a later wave; the wave
    # must go red and be fully rolled back.
    sizes = plan.wave_sizes()
    victim = sum(sizes[:fault_wave])
    faulty = RolloutPlan(
        cve_id=CVE, fleet_size=fleet_size, workload=workload,
        faults=[InjectedFault("oops", member=victim, wave=fault_wave)])
    trace = Trace(label="bench-" + faulty.rollout_id())
    start = time.perf_counter()
    red = rollout_corpus_cve(faulty, trace=trace)
    red_s = time.perf_counter() - start
    rollback_ms = _rollback_wall_ms(trace)
    wave = red.red_wave()
    if red.outcome != "halted" or wave is None:
        failures.append("fault-injected rollout ended %r" % red.outcome)
    else:
        undone = [r.member for r in wave.member_reports if r.rolled_back]
        applied = [r.member for r in wave.member_reports if r.applied]
        if sorted(undone) != sorted(applied):
            failures.append("red wave applied %s but undid %s"
                            % (applied, undone))
    if not red.survivors_healthy:
        failures.append("survivors unhealthy after rollback")
    if rollback_ms is None:
        failures.append("no rollback stage in the trace")

    retries = [rep.stack_check_attempts
               for w in green.waves for rep in w.member_reports]
    payload = {
        "fleet_size": fleet_size,
        "workload": workload,
        "quiescence_retries_total": sum(retries),
        "quiescence_retries_max": max(retries) if retries else 0,
        "waves": len(green.waves),
        "green_rollout_wall_s": round(green_s, 3),
        "members_updated_per_s": round(fleet_size / green_s, 2)
        if green_s else 0.0,
        "fault_rollout_wall_s": round(red_s, 3),
        "red_wave_members": len(wave.members) if wave else 0,
        "rollback_latency_ms": round(rollback_ms, 2)
        if rollback_ms is not None else None,
    }
    return payload, failures


def _report(label, payload):
    print("%s: fleet %d updated in %.2fs (%.1f members/s); red wave of "
          "%d rolled back in %.1f ms"
          % (label, payload["fleet_size"],
             payload["green_rollout_wall_s"],
             payload["members_updated_per_s"],
             payload["red_wave_members"],
             payload["rollback_latency_ms"] or 0.0))


def test_fleet_rollout_and_rollback(benchmark):
    payload, failures = benchmark.pedantic(
        lambda: measure(4, fault_wave=1), rounds=1, iterations=1)
    _report("fleet", payload)
    perfjson.record("fleet_smoke", payload)
    assert not failures, failures


def run_smoke():
    payload, failures = measure(4, fault_wave=1)
    _report("smoke", payload)
    perfjson.record("fleet_smoke", payload)
    for failure in failures:
        print("SMOKE FAIL: %s" % failure)
    if not failures:
        print("smoke: OK")
    return 1 if failures else 0


def run_full():
    payload, failures = measure(12, fault_wave=2)
    _report("full", payload)
    perfjson.record("fleet_full", payload)
    # The same fleet again, but serving sustained syscall load while
    # the updates land: members are only quiescent between quanta, so
    # this exercises the stop_machine stack-check retry path and prices
    # rollback latency under real traffic.
    loaded, load_failures = measure(12, fault_wave=2, workload="stress")
    _report("full-under-load", loaded)
    print("  under load: %d quiescence retries (max %d per member)"
          % (loaded["quiescence_retries_total"],
             loaded["quiescence_retries_max"]))
    perfjson.record("fleet_full_under_load", loaded)
    failures += load_failures
    for failure in failures:
        print("FULL FAIL: %s" % failure)
    if not failures:
        print("full: OK (recorded in %s)" % perfjson.DEFAULT_PATH)
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv[1:]:
        sys.exit(run_smoke())
    sys.exit(run_full())

"""Fleet-rollout fabric scale: one event loop vs thread-per-member.

ISSUE 9's headline claim: the asyncio dispatcher pushes update waves
to a 10k-member fleet on **one event loop**, and at 1k members it
moves >=5x more member-updates/s than the v2-architecture
thread-per-member baseline (:class:`ThreadedRolloutDispatcher`) over
identical wire bytes — same v3 frames, same handshake, same session
crypto, same member simulators.

``updates_per_s`` counts acknowledged member-updates over the
*dispatch* wall only (join/handshake time is reported separately):
with W waves and M members, a perfect run acks W*M updates.

Run directly:

* ``--smoke`` — the CI check: 100 and 1000 members, a floor on
  members-updated/s, every ack accounted for, encrypted end to end.
* ``--full`` — the acceptance run: 100/1k/10k members on the asyncio
  fabric plus the threaded baseline at 1k; asserts the >=5x speedup
  and the 10k run completing on one event loop; records everything
  in ``BENCH_corpus.json``.

Under pytest the same measurements run as benchmarks.
"""

import os
import time

import perfjson

from repro.distributed.fabric import (
    RolloutDispatcher,
    ThreadedRolloutDispatcher,
    make_payload,
    spawn_member_shards,
)

SECRET = b"bench-fabric-secret"
PAYLOAD_BYTES = 252  # 4-byte CRC header makes a 256-byte payload

#: CI floor for the asyncio fabric at 100 and 1000 members.  The
#: observed single-core rate is ~40-50k upd/s at 1k; the floor is set
#: far below that so only a real regression (or a pathological CI
#: host) trips it.
SMOKE_FLOOR_UPDATES_PER_S = 2000.0


def _updates(waves):
    payload = make_payload(os.urandom(PAYLOAD_BYTES))
    return [("CVE-2026-%04d" % i, payload) for i in range(waves)]


def _rollout(cls, members, waves, shard_size, join_timeout=300.0):
    """One measured rollout; members simulated in forked shards."""
    shards = []

    def on_listen(host, port):
        shards.append(spawn_member_shards(host, port, members, SECRET,
                                          shard_size=shard_size))

    dispatcher = cls(expected=members, secret=SECRET,
                     join_timeout=join_timeout, on_listen=on_listen)
    try:
        report = dispatcher.run(_updates(waves))
    finally:
        for shard in shards:
            shard.stop()
    return report


def _payload_for(report, waves):
    return {
        "backend": report.backend,
        "members": report.members,
        "waves": waves,
        "member_updates": report.acks,
        "failures": report.failures,
        "join_wall_s": round(report.join_wall_s, 3),
        "dispatch_wall_s": round(report.dispatch_wall_s, 3),
        "updates_per_s": round(report.updates_per_s, 1),
        "encrypted": report.encrypted,
    }


def measure_full():
    """The acceptance matrix.  Returns ``(payload, failures)``."""
    failures = []
    scales = []
    # (members, waves, shard_size) — waves shrink as the fleet grows
    # so the full matrix stays a few minutes on one core.
    for members, waves, shard in ((100, 20, 100), (1000, 20, 250),
                                  (10000, 5, 1000)):
        report = _rollout(RolloutDispatcher, members, waves, shard)
        scales.append(_payload_for(report, waves))
        if report.acks != members * waves:
            failures.append(
                "asyncio @%d members: %d of %d acks"
                % (members, report.acks, members * waves))
        if not report.encrypted:
            failures.append("asyncio @%d members: session not "
                            "encrypted" % members)

    baseline = _rollout(ThreadedRolloutDispatcher, 1000, 20, 250)
    if baseline.acks != 1000 * 20:
        failures.append("threaded baseline: %d of %d acks"
                        % (baseline.acks, 1000 * 20))
    asyncio_1k = next(s for s in scales if s["members"] == 1000)
    speedup = (asyncio_1k["updates_per_s"] / baseline.updates_per_s
               if baseline.updates_per_s else 0.0)
    if speedup < 5.0:
        failures.append(
            "asyncio %d upd/s vs threaded %d upd/s at 1k members: "
            "%.2fx < 5x" % (asyncio_1k["updates_per_s"],
                            baseline.updates_per_s, speedup))

    payload = {
        "asyncio": scales,
        "threaded_baseline_1k": _payload_for(baseline, 20),
        "speedup_asyncio_vs_threaded_1k": round(speedup, 2),
        "payload_bytes": PAYLOAD_BYTES + 4,
        "states": "loopback TCP; members simulated in forked shard "
                  "processes; dispatch wall excludes join/handshake; "
                  "single-core host — both fabrics share the CPU with "
                  "the member simulators",
    }
    return payload, failures


def test_fabric_scale_speedup(benchmark):
    payload, failures = benchmark.pedantic(measure_full, rounds=1,
                                           iterations=1)
    print("\nfabric: asyncio %s upd/s vs threaded %s upd/s at 1k "
          "(%.2fx); 10k members on one loop: %s acks"
          % (payload["asyncio"][1]["updates_per_s"],
             payload["threaded_baseline_1k"]["updates_per_s"],
             payload["speedup_asyncio_vs_threaded_1k"],
             payload["asyncio"][2]["member_updates"]))
    perfjson.record("fabric_scale", payload)
    assert not failures, failures


def run_smoke():
    """CI-sized check (returns an exit status)."""
    failures = []
    results = []
    for members, waves, shard in ((100, 10, 100), (1000, 10, 250)):
        start = time.perf_counter()
        report = _rollout(RolloutDispatcher, members, waves, shard,
                          join_timeout=120.0)
        wall = time.perf_counter() - start
        results.append(_payload_for(report, waves))
        print("smoke @%d members: %.0f upd/s, %d/%d acks, join "
              "%.1fs, dispatch %.2fs, %.1fs total"
              % (members, report.updates_per_s, report.acks,
                 members * waves, report.join_wall_s,
                 report.dispatch_wall_s, wall))
        if report.acks != members * waves:
            failures.append("@%d members: %d of %d acks"
                            % (members, report.acks, members * waves))
        if report.updates_per_s < SMOKE_FLOOR_UPDATES_PER_S:
            failures.append(
                "@%d members: %.0f upd/s below the %.0f floor"
                % (members, report.updates_per_s,
                   SMOKE_FLOOR_UPDATES_PER_S))
        if not report.encrypted:
            failures.append("@%d members: session not encrypted"
                            % members)

    perfjson.record("fabric_scale_smoke", {
        "runs": results,
        "floor_updates_per_s": SMOKE_FLOOR_UPDATES_PER_S,
        "ok": not failures,
    })
    for failure in failures:
        print("SMOKE FAIL: %s" % failure)
    if not failures:
        print("smoke: OK")
    return 1 if failures else 0


def run_full():
    payload, failures = measure_full()
    perfjson.record("fabric_scale", payload)
    for scale in payload["asyncio"]:
        print("full @%d members: %s upd/s, %d acks, join %.1fs, "
              "dispatch %.2fs"
              % (scale["members"], scale["updates_per_s"],
                 scale["member_updates"], scale["join_wall_s"],
                 scale["dispatch_wall_s"]))
    print("full: threaded baseline %s upd/s at 1k -> %.2fx"
          % (payload["threaded_baseline_1k"]["updates_per_s"],
             payload["speedup_asyncio_vs_threaded_1k"]))
    for failure in failures:
        print("FULL FAIL: %s" % failure)
    if not failures:
        print("full: OK (recorded in %s)" % perfjson.DEFAULT_PATH)
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv[1:]:
        sys.exit(run_smoke())
    if "--full" in sys.argv[1:]:
        sys.exit(run_full())
    print("usage: python benchmarks/bench_fabric_scale.py "
          "--smoke | --full\n"
          "(the benchmarks also run under pytest-benchmark)")
    sys.exit(2)

"""§6.3 inlining statistics.

Paper: "Function inlining cannot be ignored as uncommon; 20 of the 64
patches from the evaluation modify a function that has been inlined in
the run code, despite the fact that only 4 of the 64 patches modify a
function that is explicitly declared inline."

These are *measured* numbers: the harness asks the run kernel's compiler
whether each patched function was actually inlined somewhere, rather
than trusting corpus annotations.  The second test demonstrates the
consequence: the source-level baseline silently fails to fix an inlined
guard that Ksplice fixes.
"""

from repro.baseline import SourceLevelUpdater
from repro.core import KspliceCore, ksplice_create
from repro.evaluation import corpus_by_id
from repro.evaluation.harness import _run_probe
from repro.evaluation.kernels import kernel_for_version
from repro.kernel import boot_kernel


def test_20_of_64_patches_touch_inlined_functions(corpus_report,
                                                  benchmark):
    count = benchmark(corpus_report.inlined_count)
    declared = corpus_report.declared_inline_count()
    print("\npatches modifying a function inlined in the run kernel: "
          "%d/64 (paper: 20)" % count)
    print("patches modifying a function declared 'inline':         "
          "%d/64 (paper: 4)" % declared)
    assert count == 20
    assert declared == 4


def test_baseline_unsafe_on_inlined_patch(benchmark):
    """The inlined-function patch through both systems: baseline
    'succeeds' but the bug still triggers; Ksplice fixes it."""
    spec = corpus_by_id("CVE-2006-4997")
    kernel = kernel_for_version(spec.kernel_version)
    patch = kernel.patch_for(spec.cve_id)

    def run_both():
        baseline_machine = boot_kernel(kernel.tree)
        baseline = SourceLevelUpdater(baseline_machine).apply(
            kernel.tree, patch)
        baseline_probe = _run_probe(baseline_machine, spec.probe)

        ksplice_machine = boot_kernel(kernel.tree)
        core = KspliceCore(ksplice_machine)
        core.apply(ksplice_create(kernel.tree, patch))
        ksplice_probe = _run_probe(ksplice_machine, spec.probe)
        return baseline, baseline_probe, ksplice_probe

    baseline, baseline_probe, ksplice_probe = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    assert baseline.success  # claims success...
    assert baseline_probe == spec.probe.pre  # ...but the bug is alive
    assert ksplice_probe == spec.probe.post  # Ksplice actually fixed it
    print("\nbaseline: claims success, vulnerability still triggers")
    print("ksplice : replaces the caller holding the inlined copy; "
          "vulnerability gone")

"""§4.3: run-pre matching robustness and cost.

Three claims:

* "None of the original binary kernels used in the evaluation had
  -ffunction-sections or -fdata-sections enabled, but run-pre matching
  always succeeded" — the matcher bridges merged-vs-split layout
  differences (alignment nops, short vs long jumps, resolved vs
  relocated intra-unit references).
* The matcher aborts when the pre source does not correspond to the
  running kernel (wrong source, wrong compiler version).
* Matching is cheap enough to run at update time.
"""


from repro.compiler import CompilerOptions
from repro.core.runpre import RunPreMatcher
from repro.errors import RunPreMismatchError
from repro.evaluation.kernels import ALL_VERSIONS, kernel_for_version
from repro.kbuild import build_units
from repro.kernel import boot_kernel

FLAVOR = CompilerOptions().pre_post_flavor()


def test_runpre_matches_every_unit_of_every_kernel(benchmark):
    """The strongest §4.3 claim: every pre-built unit of every corpus
    kernel matches its merged-build run code, nops skipped and symbols
    solved."""

    def match_all():
        stats = {"units": 0, "functions": 0, "bytes": 0, "nops": 0,
                 "relocs": 0}
        for version in ALL_VERSIONS:
            kernel = kernel_for_version(version)
            machine = boot_kernel(kernel.tree)
            matcher = RunPreMatcher(memory=machine.memory,
                                    kallsyms=machine.image.kallsyms)
            units = [u for u in kernel.tree.source_units()]
            pre_build = build_units(kernel.tree, units, FLAVOR)
            for unit in units:
                result = matcher.match_unit(pre_build.object_for(unit))
                stats["units"] += 1
                stats["functions"] += len(result.matched_functions)
                stats["bytes"] += result.bytes_matched
                stats["nops"] += result.nop_bytes_skipped
                stats["relocs"] += result.relocations_solved
        return stats

    stats = benchmark.pedantic(match_all, rounds=1, iterations=1)
    print("\nrun-pre matched %(units)d units / %(functions)d functions "
          "across 14 kernels: %(bytes)d bytes verified, %(nops)d nop "
          "bytes skipped, %(relocs)d relocations solved" % stats)
    assert stats["functions"] > 300
    assert stats["nops"] > 0        # merged-layout padding was bridged
    assert stats["relocs"] > stats["functions"]  # symbols were solved


def test_runpre_aborts_on_wrong_source(benchmark):
    kernel = kernel_for_version("2.6.16-deb3")
    machine = boot_kernel(kernel.tree)
    matcher = RunPreMatcher(memory=machine.memory,
                            kallsyms=machine.image.kallsyms)
    doctored = kernel.tree.with_file(
        "kernel/cred.c",
        kernel.tree.read("kernel/cred.c").replace(
            "current_uid = uid;", "current_uid = uid + 1;"))
    pre = build_units(doctored, ["kernel/cred.c"],
                      FLAVOR).object_for("kernel/cred.c")

    def attempt():
        try:
            matcher.match_unit(pre)
            return False
        except RunPreMismatchError:
            return True

    assert benchmark(attempt)


def test_runpre_aborts_on_compiler_version_skew(benchmark):
    kernel = kernel_for_version("2.6.16-deb3")
    machine = boot_kernel(kernel.tree)
    matcher = RunPreMatcher(memory=machine.memory,
                            kallsyms=machine.image.kallsyms)
    skewed_flavor = CompilerOptions(
        compiler_version="kcc-1.1").pre_post_flavor()
    pre = build_units(kernel.tree, ["kernel/cred.c"],
                      skewed_flavor).object_for("kernel/cred.c")

    def attempt():
        try:
            matcher.match_unit(pre)
            return False
        except RunPreMismatchError:
            return True

    assert benchmark(attempt)


def test_runpre_matching_throughput(benchmark):
    """Matching one unit is sub-millisecond-scale: cheap at update time."""
    kernel = kernel_for_version("2.6.16-deb3")
    machine = boot_kernel(kernel.tree)
    matcher = RunPreMatcher(memory=machine.memory,
                            kallsyms=machine.image.kallsyms)
    pre = build_units(kernel.tree, ["kernel/cred.c"],
                      FLAVOR).object_for("kernel/cred.c")
    result = benchmark(lambda: matcher.match_unit(pre))
    assert result.matched_functions

"""Corpus-scale evaluation throughput (the engine's three layers).

The full §6 run pushes 64 CVEs through create+apply on 14 kernel
versions.  These benchmarks measure what the evaluation engine buys:

* sequential throughput with the content-addressed caches cold vs warm,
  and with the caches disabled entirely (the seed's effective behaviour
  minus the old bare build memo);
* parallel (``jobs=4``) wall clock, and that its results are identical
  to the sequential order;
* cache hit rates over a full pass.

Absolute times depend on the host; the assertions check relative
speedups and exact result equality, not wall-clock constants.
"""

import time

from repro.compiler.cache import COMPILE_CACHE, PARSE_CACHE
from repro.evaluation import (
    clear_caches,
    evaluate_corpus,
    normalize_result,
)
from repro.evaluation.engine import EngineStats

#: Stress/exploit phases dominate and are identical in every variant;
#: skipping them sharpens the cache comparison and keeps rounds short.
_RUN_STRESS = False


def _run(jobs=1, cold=True):
    if cold:
        clear_caches()
    stats = EngineStats()
    start = time.perf_counter()
    report = evaluate_corpus(run_stress=_RUN_STRESS, jobs=jobs,
                             stats=stats)
    return report, stats, time.perf_counter() - start


def test_sequential_cache_speedup(benchmark):
    """Caches off vs cold vs warm, one sequential pass each.

    The "uncached" variant disables only the parse/compile caches and
    keeps the run-build memo, which is what the seed harness had — so
    the ratio isolates what the new content-addressed layer buys.
    """
    PARSE_CACHE.enabled = COMPILE_CACHE.enabled = False
    try:
        clear_caches()
        _, _, uncached = _run()
    finally:
        PARSE_CACHE.enabled = COMPILE_CACHE.enabled = True
    report, _, cold = _run()
    _, warm_stats, warm = _run(cold=False)

    benchmark.pedantic(lambda: evaluate_corpus(run_stress=_RUN_STRESS),
                       rounds=1, iterations=1)
    print("\ncorpus, sequential: %.2fs uncached, %.2fs cold caches "
          "(%.2fx), %.2fs warm (%.2fx)"
          % (uncached, cold, uncached / cold, warm, uncached / warm))
    rate = warm_stats.combined_cache_stats().hit_rate
    print("warm-pass cache hit rate: %.0f%%" % (100 * rate))
    assert len(report.successes()) == report.total()
    # Acceptance: caching alone buys >=1.3x on a sequential pass.
    assert uncached / cold >= 1.3
    assert warm <= cold
    assert rate > 0.9


def test_parallel_matches_sequential(benchmark):
    seq_report, _, seq_time = _run()
    par_report, par_stats, par_time = benchmark.pedantic(
        lambda: _run(jobs=4), rounds=1, iterations=1)
    print("\ncorpus: %.2fs sequential (cold), %.2fs with jobs=4 "
          "(%d groups%s)"
          % (seq_time, par_time, par_stats.groups,
             ", fell back" if par_stats.fell_back else ""))
    assert [normalize_result(r) for r in par_report.results] == \
        [normalize_result(r) for r in seq_report.results]
    assert not par_stats.fell_back


def test_throughput_headline(benchmark):
    """CVEs/second with everything on — the number ROADMAP tracks."""
    clear_caches()
    stats = EngineStats()
    report = benchmark.pedantic(
        lambda: evaluate_corpus(run_stress=_RUN_STRESS, jobs=4,
                                stats=stats),
        rounds=1, iterations=1)
    print("\nheadline: %d CVEs in %.2fs = %.1f CVEs/s (jobs=%d)"
          % (stats.cves, stats.wall_seconds, stats.cves_per_second,
             stats.jobs))
    for name, cache in sorted(stats.caches.items()):
        print("  %-10s cache: %d hits / %d misses (%.0f%% hit rate)"
              % (name, cache.hits, cache.misses, 100 * cache.hit_rate))
    assert len(report.successes()) == report.total()

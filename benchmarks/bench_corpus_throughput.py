"""Corpus-scale evaluation throughput (the engine's three layers).

The full §6 run pushes 64 CVEs through create+apply on 14 kernel
versions.  These benchmarks measure what the evaluation engine buys:

* sequential throughput with the content-addressed caches cold vs warm,
  and with the caches disabled entirely (the seed's effective behaviour
  minus the old bare build memo);
* parallel (``jobs=4``) wall clock, and that its results are identical
  to the sequential order;
* cache hit rates over a full pass.

Absolute times depend on the host; the assertions check relative
speedups and exact result equality, not wall-clock constants.

Run directly with ``--smoke`` (no pytest needed) for the CI-sized
check: a small corpus slice evaluated twice against an on-disk cache
tier, simulating a process restart in between — the second, disk-warm
pass must win and produce identical results, and ``clear_caches()``
must leave the cache directory empty.
"""

import time

import perfjson

from repro.compiler.cache import COMPILE_CACHE, PARSE_CACHE
from repro.evaluation import (
    clear_caches,
    evaluate_corpus,
    normalize_result,
)
from repro.evaluation.engine import EngineStats

#: Stress/exploit phases dominate and are identical in every variant;
#: skipping them sharpens the cache comparison and keeps rounds short.
_RUN_STRESS = False


def _run(jobs=1, cold=True):
    if cold:
        clear_caches()
    stats = EngineStats()
    start = time.perf_counter()
    report = evaluate_corpus(run_stress=_RUN_STRESS, jobs=jobs,
                             stats=stats)
    return report, stats, time.perf_counter() - start


def test_sequential_cache_speedup(benchmark):
    """Caches off vs cold vs warm, one sequential pass each.

    The "uncached" variant disables only the parse/compile caches and
    keeps the run-build memo, which is what the seed harness had — so
    the ratio isolates what the new content-addressed layer buys.
    """
    PARSE_CACHE.enabled = COMPILE_CACHE.enabled = False
    try:
        clear_caches()
        _, _, uncached = _run()
    finally:
        PARSE_CACHE.enabled = COMPILE_CACHE.enabled = True
    report, _, cold = _run()
    _, warm_stats, warm = _run(cold=False)

    benchmark.pedantic(lambda: evaluate_corpus(run_stress=_RUN_STRESS),
                       rounds=1, iterations=1)
    print("\ncorpus, sequential: %.2fs uncached, %.2fs cold caches "
          "(%.2fx), %.2fs warm (%.2fx)"
          % (uncached, cold, uncached / cold, warm, uncached / warm))
    rate = warm_stats.combined_cache_stats().hit_rate
    print("warm-pass cache hit rate: %.0f%%" % (100 * rate))
    assert len(report.successes()) == report.total()
    # Acceptance: caching alone buys >=1.3x on a sequential pass.
    assert uncached / cold >= 1.3
    assert warm <= cold
    assert rate > 0.9


def test_parallel_matches_sequential(benchmark):
    seq_report, _, seq_time = _run()
    par_report, par_stats, par_time = benchmark.pedantic(
        lambda: _run(jobs=4), rounds=1, iterations=1)
    print("\ncorpus: %.2fs sequential (cold), %.2fs with jobs=4 "
          "(%d groups%s)"
          % (seq_time, par_time, par_stats.groups,
             ", fell back" if par_stats.fell_back else ""))
    assert [normalize_result(r) for r in par_report.results] == \
        [normalize_result(r) for r in seq_report.results]
    assert not par_stats.fell_back


def test_throughput_headline(benchmark):
    """CVEs/second with everything on — the number ROADMAP tracks."""
    clear_caches()
    stats = EngineStats()
    report = benchmark.pedantic(
        lambda: evaluate_corpus(run_stress=_RUN_STRESS, jobs=4,
                                stats=stats),
        rounds=1, iterations=1)
    print("\nheadline: %d CVEs in %.2fs = %.1f CVEs/s (jobs=%d)"
          % (stats.cves, stats.wall_seconds, stats.cves_per_second,
             stats.jobs))
    for name, cache in sorted(stats.caches.items()):
        print("  %-10s cache: %d hits / %d misses (%.0f%% hit rate)"
              % (name, cache.hits, cache.misses, 100 * cache.hit_rate))
    perfjson.record("corpus_headline", {
        "cves": stats.cves,
        "jobs": stats.jobs,
        "cold_wall_s": round(stats.wall_seconds, 3),
        "cves_per_second": round(stats.cves_per_second, 2),
        "cache_hit_rate": round(
            stats.combined_cache_stats().hit_rate, 3),
    })
    assert len(report.successes()) == report.total()


def run_smoke() -> int:
    """Disk-tier smoke check (CI entry point; returns an exit status).

    Cold pass populates a temp disk cache; the memory tiers and the
    generated-kernel memo are then dropped — everything a process
    restart would lose — and the second pass must be served from disk:
    faster, with disk hits, byte-identical results after normalization.
    Finishes with the hygiene check: the disk tier stays within its
    entry bound and ``clear_caches()`` leaves the directory empty.
    """
    import os
    import shutil
    import tempfile

    from repro.compiler.cache import (
        disable_disk_cache,
        drop_memory_tiers,
        enable_disk_cache,
    )
    from repro.evaluation import CORPUS, kernel_for_version

    specs = CORPUS[:8]
    root = tempfile.mkdtemp(prefix="repro-smoke-cache-")
    failures = []
    try:
        enable_disk_cache(root, max_entries=256)
        clear_caches()

        cold_stats = EngineStats()
        start = time.perf_counter()
        cold = evaluate_corpus(specs, run_stress=False, stats=cold_stats)
        cold_s = time.perf_counter() - start

        # Simulate a process restart: memory tiers and the kernel memo
        # are gone, only the disk tier survives.
        drop_memory_tiers()
        kernel_for_version.cache_clear()

        warm_stats = EngineStats()
        start = time.perf_counter()
        warm = evaluate_corpus(specs, run_stress=False, stats=warm_stats)
        warm_s = time.perf_counter() - start

        disk_hits = warm_stats.combined_cache_stats().disk_hits
        print("smoke: %d CVEs, %.2fs cold, %.2fs disk-warm (%.2fx), "
              "%d disk hits"
              % (len(specs), cold_s, warm_s,
                 cold_s / warm_s if warm_s else 0.0, disk_hits))
        perfjson.record("corpus_smoke", {
            "cves": len(specs),
            "jobs": 1,
            "cold_wall_s": round(cold_s, 3),
            "disk_warm_wall_s": round(warm_s, 3),
            "disk_hits": disk_hits,
            "warm_pass_cache_hit_rate": round(
                warm_stats.combined_cache_stats().hit_rate, 3),
        })
        for name, timing in sorted(warm_stats.stages.items()):
            print("  stage %-12s %5d calls %8.1f ms" %
                  (name, timing.calls, timing.wall_ms))

        if not len(cold.results) == len(warm.results) == len(specs):
            failures.append("result counts differ")
        if [normalize_result(r) for r in cold.results] != \
                [normalize_result(r) for r in warm.results]:
            failures.append("disk-warm results differ from cold results")
        if disk_hits <= 0:
            failures.append("second pass recorded no disk hits")
        if warm_s >= cold_s:
            failures.append("disk-warm pass (%.2fs) not faster than "
                            "cold (%.2fs)" % (warm_s, cold_s))

        def disk_entries():
            found = []
            for dirpath, _dirs, files in os.walk(root):
                found.extend(os.path.join(dirpath, f) for f in files
                             if f.endswith(".pkl"))
            return found

        # hygiene: each cache's subdirectory stays within its bound...
        for name in sorted(os.listdir(root)):
            subdir = os.path.join(root, name)
            if not os.path.isdir(subdir):
                continue
            count = len([f for f in os.listdir(subdir)
                         if f.endswith(".pkl")])
            if count > 256:
                failures.append("disk tier %s unbounded: %d entries"
                                % (name, count))
        # ... and clear_caches() wipes every tier, disk included
        clear_caches()
        leftovers = disk_entries()
        if leftovers:
            failures.append("clear_caches() left %d files on disk"
                            % len(leftovers))
    finally:
        disable_disk_cache()
        clear_caches()
        shutil.rmtree(root, ignore_errors=True)
    for failure in failures:
        print("SMOKE FAIL: %s" % failure)
    if not failures:
        print("smoke: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv[1:]:
        sys.exit(run_smoke())
    print("usage: python benchmarks/bench_corpus_throughput.py --smoke\n"
          "(the full benchmarks run under pytest-benchmark)")
    sys.exit(2)

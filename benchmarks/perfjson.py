"""Machine-readable benchmark results: ``BENCH_corpus.json``.

Every throughput benchmark (local corpus and distributed fabric)
records its headline numbers here so perf regressions are diffable in
review instead of buried in CI logs.  The file is one JSON object,
one section per benchmark entry point; :func:`record` merges a section
atomically (write-temp-then-rename) so concurrent benches cannot tear
the file.

The filename is deliberately not ``bench_*.py`` so pytest's benchmark
glob never collects this module.
"""

import json
import os
import platform
import tempfile
import time

#: repo root / BENCH_corpus.json — next to ROADMAP.md, committed.
DEFAULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_corpus.json")


def host_fingerprint():
    """Enough context to compare two recorded runs honestly."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def record(section, payload, path=None):
    """Merge ``{section: payload}`` into the results file atomically.

    ``payload`` gets ``recorded_at`` (epoch seconds) and the host
    fingerprint stamped in; existing sections written by other benches
    are preserved.
    """
    path = path or DEFAULT_PATH
    results = {}
    try:
        with open(path) as handle:
            results = json.load(handle)
    except (OSError, ValueError):
        results = {}
    if not isinstance(results, dict):
        results = {}
    entry = dict(payload)
    entry["recorded_at"] = round(time.time(), 3)
    entry["host"] = host_fingerprint()
    results[section] = entry

    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".bench-",
                               suffix=".json.tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path

"""Interpreter vs tracing-JIT throughput on syscall stress workloads.

The rollout story needs fleet members that serve *real* traffic while
updates land (Ksplice §5/§6), which the pure interpreter is too slow
for.  This bench measures what the tracing JIT
(:mod:`repro.kernel.jit`) buys on three stress workloads running on a
real corpus kernel — a compute-bound checksum loop, the sustained
syscall mix the fleet's under-load mode uses, and a file-I/O round
trip — and proves the speedup is free: each workload runs twice on
identically-configured machines, once with the JIT disabled and once
enabled, and the runs must be *architecturally identical* — same
thread exit values, same total instruction count (hence the same
scheduler interleaving), and the same final memory image.

Timer tick: fleet throughput members run a 500-instruction quantum
(the default 50 optimizes preemption latency, not throughput; a
traced loop then spends most of each quantum in scheduler overhead).
Both ticks are measured — identity is always checked between runs at
the *same* tick — and the headline >=5x acceptance applies to the
throughput tick, where trace bodies amortize dispatch.

Run directly:

* ``--smoke`` — CI-sized: small workloads at the throughput tick;
  asserts identity and that the JIT is not slower.
* ``--full`` — acceptance: full-sized workloads at both ticks;
  asserts identity everywhere and the aggregate >=5x at the
  throughput tick; records per-workload rates and trace hit rates
  into ``BENCH_corpus.json``.

Under pytest the smoke-sized measurement runs as a benchmark.
"""

import gc
import time

import perfjson

from repro.evaluation.engine import run_build_for
from repro.evaluation.kernels import kernel_for_version
from repro.evaluation.stress import STRESS_OK
from repro.kernel import boot_kernel, set_jit_enabled

VERSION = "2.6.16-deb3"

#: the fleet throughput members' timer tick (instructions per quantum)
THROUGHPUT_TICK = 500
DEFAULT_TICK = 50

_COMPUTE = """
int main(void) {
    int acc = 7;
    for (int round = 0; round < %(rounds)d; round++) {
        for (int i = 1; i < 40; i++) {
            acc = (acc * 31 + i) & 65535;
            acc = acc ^ (acc >> 3);
        }
    }
    if (acc < 0) { return 1; }
    if (__syscall(12, 0, 0, 0) <= 0) { return 2; }
    return %(ok)d;
}
"""

_SYSCALL_MIX = """
int main(void) {
    int acc = 7;
    for (int round = 0; round < %(rounds)d; round++) {
        for (int i = 1; i < 40; i++) {
            acc = (acc * 31 + i) & 65535;
            acc = acc ^ (acc >> 3);
        }
        int fd = __syscall(4, 0, 0, 0);
        if (fd < 0) { return 1; }
        int slot = 200 + (round & 7);
        if (__syscall(8, fd, slot, 0) != 0) { return 2; }
        if (__syscall(7, fd, 4000 + round, 0) != 0) { return 3; }
        if (__syscall(8, fd, slot, 0) != 0) { return 4; }
        if (__syscall(6, fd, 0, 0) != 4000 + round) { return 5; }
        if (__syscall(5, fd, 0, 0) != 0) { return 6; }
        if (__syscall(12, 0, 0, 0) <= 0) { return 7; }
        __syscall(9, 0, 0, 0);
    }
    return %(ok)d;
}
"""

_FILE_IO = """
int main(void) {
    int total = 0;
    for (int round = 0; round < %(rounds)d; round++) {
        int fd = __syscall(4, 0, 0, 0);
        if (fd < 0) { return 1; }
        for (int i = 0; i < 8; i++) {
            if (__syscall(8, fd, 64 + i, 0) != 0) { return 2; }
            if (__syscall(7, fd, 900 + i, 0) != 0) { return 3; }
        }
        for (int i = 0; i < 8; i++) {
            if (__syscall(8, fd, 64 + i, 0) != 0) { return 4; }
            total += __syscall(6, fd, 0, 0);
        }
        if (__syscall(5, fd, 0, 0) != 0) { return 5; }
    }
    if (total != %(rounds)d * (900 * 8 + 28)) { return 6; }
    return %(ok)d;
}
"""

#: (name, source, full rounds, smoke rounds) — smoke sizes are large
#: enough that one-time trace compilation amortizes (a few hundred
#: rounds only measure the compiler, not the traces)
WORKLOADS = (
    ("compute", _COMPUTE, 8000, 1500),
    ("syscall-mix", _SYSCALL_MIX, 3000, 250),
    ("file-io", _FILE_IO, 2500, 150),
)


def _memory_digest(machine):
    """Stable digest of the final memory image.

    Trailing zeros are stripped per segment because the JIT fully
    materializes reserved areas it touches (lazy zero-fill reaches the
    same bytes either way).
    """
    return tuple(
        (segment.name, hash(bytes(segment.data).rstrip(b"\0")))
        for segment in machine.memory._segments)


def _run_one(build, tree, source, rounds, quantum, jit):
    prev = set_jit_enabled(jit)
    try:
        machine = boot_kernel(tree, build=build, quantum=quantum)
        thread = machine.load_user_program(
            source % {"rounds": rounds, "ok": STRESS_OK}, name="load")
        before = machine.scheduler.total_instructions
        # Collector passes over the piled-up object graphs of earlier
        # machines otherwise steal 10-15% mid-run, drowning the signal.
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            machine.run(max_instructions=80_000_000)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        insns = machine.scheduler.total_instructions - before
        arch = (thread.exit_value, insns, tuple(thread.cpu.regs),
                _memory_digest(machine))
        return {
            "exit_value": thread.exit_value,
            "insns": insns,
            "seconds": elapsed,
            "rate": insns / elapsed if elapsed else 0.0,
            "arch": arch,
            "trace_stats": machine.trace_stats(),
        }
    finally:
        set_jit_enabled(prev)


def _run_best(build, tree, source, rounds, quantum, jit, reps):
    """Best-of-N timing: fresh machine per rep, keep the fastest.

    Architectural results must be identical across reps (same program,
    same quantum — any difference is a determinism bug, not noise), so
    only the timing varies and taking the minimum is sound.
    """
    best = None
    for _ in range(max(1, reps)):
        run = _run_one(build, tree, source, rounds, quantum, jit)
        if best is None:
            best = run
        else:
            assert best["arch"] == run["arch"], (
                "non-deterministic rerun: %r vs %r"
                % (best["arch"], run["arch"]))
            if run["seconds"] < best["seconds"]:
                best = run
    return best


def measure(smoke, ticks=(THROUGHPUT_TICK,), reps=1):
    """Run every workload interp-vs-JIT at each tick.

    ``reps`` runs each configuration that many times, keeping the
    fastest (the VM's timing noise is one-sided: a run is only ever
    *slowed* by interference).  Returns ``(payload, failures)``;
    identity failures are fatal.
    """
    kernel = kernel_for_version(VERSION)
    build = run_build_for(kernel)
    failures = []
    payload = {"workloads": {}, "ticks": {}}
    for quantum in ticks:
        total_interp_s = total_jit_s = 0.0
        total_insns = 0
        for name, source, full_rounds, smoke_rounds in WORKLOADS:
            rounds = smoke_rounds if smoke else full_rounds
            interp = _run_best(build, kernel.tree, source, rounds,
                               quantum, jit=False, reps=reps)
            jit = _run_best(build, kernel.tree, source, rounds,
                            quantum, jit=True, reps=reps)
            for run, label in ((interp, "interp"), (jit, "jit")):
                if run["exit_value"] != STRESS_OK:
                    failures.append(
                        "%s/%s/q%d returned %r"
                        % (name, label, quantum, run["exit_value"]))
            if interp["arch"] != jit["arch"]:
                failures.append(
                    "%s/q%d architectural divergence: interp %r "
                    "vs jit %r" % (name, quantum,
                                   interp["arch"], jit["arch"]))
            total_interp_s += interp["seconds"]
            total_jit_s += jit["seconds"]
            total_insns += interp["insns"]
            stats = jit["trace_stats"]
            payload["workloads"]["%s@q%d" % (name, quantum)] = {
                "insns": interp["insns"],
                "interp_insns_per_s": round(interp["rate"]),
                "jit_insns_per_s": round(jit["rate"]),
                "speedup": round(jit["rate"] / interp["rate"], 2)
                if interp["rate"] else 0.0,
                "trace_hit_rate": round(
                    stats.get("trace_hit_rate", 0.0), 4),
                "traces_compiled": stats.get("traces_compiled", 0),
            }
        interp_rate = total_insns / total_interp_s
        jit_rate = total_insns / total_jit_s
        payload["ticks"]["q%d" % quantum] = {
            "interp_insns_per_s": round(interp_rate),
            "jit_insns_per_s": round(jit_rate),
            "speedup": round(jit_rate / interp_rate, 2),
        }
    return payload, failures


def _report(label, payload):
    for tick, numbers in sorted(payload["ticks"].items()):
        print("%s %s: interp %s insns/s, jit %s insns/s (%.2fx)"
              % (label, tick, numbers["interp_insns_per_s"],
                 numbers["jit_insns_per_s"], numbers["speedup"]))
    for name, numbers in sorted(payload["workloads"].items()):
        print("  %-20s %8d -> %8d insns/s (%.2fx, hit %.1f%%)"
              % (name, numbers["interp_insns_per_s"],
                 numbers["jit_insns_per_s"], numbers["speedup"],
                 100 * numbers["trace_hit_rate"]))


def test_interp_throughput_smoke(benchmark):
    payload, failures = benchmark.pedantic(
        lambda: measure(smoke=True), rounds=1, iterations=1)
    _report("smoke", payload)
    perfjson.record("interp_throughput_smoke", payload)
    assert not failures, failures
    assert payload["ticks"]["q%d" % THROUGHPUT_TICK]["speedup"] >= 1.0


def run_smoke():
    payload, failures = measure(smoke=True)
    _report("smoke", payload)
    perfjson.record("interp_throughput_smoke", payload)
    speedup = payload["ticks"]["q%d" % THROUGHPUT_TICK]["speedup"]
    if speedup < 1.0:
        failures.append("jit slower than interpreter (%.2fx)" % speedup)
    for failure in failures:
        print("SMOKE FAIL: %s" % failure)
    if not failures:
        print("smoke: OK")
    return 1 if failures else 0


def run_full():
    payload, failures = measure(
        smoke=False, ticks=(DEFAULT_TICK, THROUGHPUT_TICK), reps=3)
    _report("full", payload)
    perfjson.record("interp_throughput_full", payload)
    speedup = payload["ticks"]["q%d" % THROUGHPUT_TICK]["speedup"]
    if speedup < 5.0:
        failures.append(
            "aggregate speedup %.2fx at the throughput tick is below "
            "the 5x acceptance bar" % speedup)
    for failure in failures:
        print("FULL FAIL: %s" % failure)
    if not failures:
        print("full: OK (recorded in %s)" % perfjson.DEFAULT_PATH)
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv[1:]:
        sys.exit(run_smoke())
    sys.exit(run_full())

"""Abstract-interpretation analyzer overhead: proofs must stay cheap.

The absint engine (ABI dataflow, pointer escape, hunk equivalence,
sleep paths, data-image witnesses) runs inside every ``analyze``
stage.  This bench times the warm analyzer — kernels generated, run
builds memoized, compile caches hot — with the proof engine on versus
the heuristic-only baseline (``absint=False``), and fails if proofs
cost more than **1.5x** the baseline.  It also checks the proofs are
actually there: every absint report must come back proven.

Run directly:

* ``--smoke`` — the CI check: 8 CVEs, ratio gate + proof check.
* ``--full`` — all 64 corpus CVEs.

Both record into ``BENCH_corpus.json``.  Under pytest the smoke-sized
measurement runs as a benchmark.
"""

import time

import perfjson

from repro.evaluation import clear_caches
from repro.evaluation.analyze import analyze_corpus_cve
from repro.evaluation.corpus import CORPUS

#: the acceptance ceiling: absint analyze time / heuristic analyze time
MAX_RATIO = 1.5


def _specs(count):
    return sorted(CORPUS, key=lambda s: s.cve_id)[:count]


def _timed_pass(specs, absint, repeats=3):
    """Analyze every spec uncached; returns (wall seconds, reports).

    Best-of-``repeats`` so the ratio gate measures the analyzer, not
    scheduler noise on a loaded CI box.
    """
    best = float("inf")
    reports = []
    for _ in range(repeats):
        current = []
        start = time.perf_counter()
        for spec in specs:
            current.append(analyze_corpus_cve(spec, use_cache=False,
                                              absint=absint))
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, reports = elapsed, current
    return best, reports


def measure(cve_count):
    """Warm-analyzer timing over ``cve_count`` CVEs.

    Returns ``(payload, failures)``.
    """
    clear_caches()
    specs = _specs(cve_count)
    failures = []

    # Warm the kernel/run-build/compile memos so both passes time the
    # analyzer itself, not one-time generation costs.
    _timed_pass(specs, absint=False, repeats=1)

    baseline_s, _ = _timed_pass(specs, absint=False)
    absint_s, reports = _timed_pass(specs, absint=True)
    ratio = absint_s / baseline_s if baseline_s else float("inf")

    unproven = [spec.cve_id for spec, report in zip(specs, reports)
                if not report.is_proven()]
    if unproven:
        failures.append("unproven absint reports: %s"
                        % ", ".join(unproven))
    if ratio > MAX_RATIO:
        failures.append("absint analyze is %.2fx the heuristic "
                        "baseline (ceiling %.1fx)" % (ratio, MAX_RATIO))

    payload = {
        "cves": len(specs),
        "heuristic_wall_s": round(baseline_s, 3),
        "absint_wall_s": round(absint_s, 3),
        "absint_per_cve_ms": round(1000.0 * absint_s / len(specs), 2),
        "ratio": round(ratio, 3),
        "max_ratio": MAX_RATIO,
        "evidence_records": sum(len(r.evidence) for r in reports),
        "proven": len(specs) - len(unproven),
    }
    return payload, failures


def _report(label, payload):
    print("%s: %d CVEs analyzed; heuristics %.2fs, absint %.2fs "
          "(%.2fx, ceiling %.1fx); %d evidence records, %d/%d proven"
          % (label, payload["cves"], payload["heuristic_wall_s"],
             payload["absint_wall_s"], payload["ratio"],
             payload["max_ratio"], payload["evidence_records"],
             payload["proven"], payload["cves"]))


def test_absint_overhead(benchmark):
    payload, failures = benchmark.pedantic(
        lambda: measure(8), rounds=1, iterations=1)
    _report("absint", payload)
    perfjson.record("absint_smoke", payload)
    assert not failures, failures


def run_smoke():
    payload, failures = measure(8)
    _report("smoke", payload)
    perfjson.record("absint_smoke", payload)
    for failure in failures:
        print("SMOKE FAIL: %s" % failure)
    if not failures:
        print("smoke: OK")
    return 1 if failures else 0


def run_full():
    payload, failures = measure(len(CORPUS))
    _report("full", payload)
    perfjson.record("absint_full", payload)
    for failure in failures:
        print("FULL FAIL: %s" % failure)
    if not failures:
        print("full: OK (recorded in %s)" % perfjson.DEFAULT_PATH)
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv[1:]:
        sys.exit(run_smoke())
    sys.exit(run_full())

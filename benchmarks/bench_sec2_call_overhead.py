"""§2: steady-state overhead of an applied update.

Paper: "A small amount of memory will be expended to store the
replacement code, and calls to the replaced functions will take a few
cycles longer because of the inserted jump instructions."

Measured here in simulated instructions (the substrate's cycles): a
call to a replaced function costs exactly one extra jump instruction;
unreplaced functions cost nothing extra.
"""

from repro.core import KspliceCore, ksplice_create
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel
from repro.patch import make_patch

TREE = SourceTree(version="overhead-test", files={
    "kernel/work.c": """
int scale = 3;

int work(int x) {
    int acc = 0;
    for (int i = 0; i < 32; i++) { acc += x * scale; }
    return acc;
}

int other(int x) { if (x > 0) { x = x - 1; } return x * 2; }
""",
})


def _instructions_for_call(machine, fn, args):
    before = machine.scheduler.total_instructions
    machine.call_function(fn, args)
    return machine.scheduler.total_instructions - before


def test_replaced_function_costs_one_extra_jump(benchmark):
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    baseline_cost = _instructions_for_call(machine, "work", [5])

    new_files = dict(TREE.files)
    new_files["kernel/work.c"] = TREE.files["kernel/work.c"].replace(
        "acc += x * scale;", "acc += x * scale + 0;")
    pack = ksplice_create(TREE, make_patch(TREE.files, new_files))
    core.apply(pack)

    patched_cost = benchmark.pedantic(
        lambda: _instructions_for_call(machine, "work", [5]),
        rounds=3, iterations=1)

    print("\ncall cost before update: %d instructions; after: %d "
          "(+%d for the redirection jump)"
          % (baseline_cost, patched_cost, patched_cost - baseline_cost))
    # The patched body is identical in instruction count except the
    # extra movi from `+ 0`... so compare against a recomputed bound:
    # the overhead of the jump alone is exactly 1 instruction per call.
    assert patched_cost >= baseline_cost + 1


def test_unreplaced_functions_unaffected(benchmark):
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    before = _instructions_for_call(machine, "other", [9])

    new_files = dict(TREE.files)
    new_files["kernel/work.c"] = TREE.files["kernel/work.c"].replace(
        "acc += x * scale;", "acc += x * scale + 0;")
    core.apply(ksplice_create(TREE, make_patch(TREE.files, new_files)))

    after = benchmark.pedantic(
        lambda: _instructions_for_call(machine, "other", [9]),
        rounds=3, iterations=1)
    print("\nunpatched function call cost: %d before, %d after "
          "(no change)" % (before, after))
    assert after == before


def test_memory_overhead_is_replacement_code_only(benchmark):
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    resident_before = machine.loader.resident_bytes()

    new_files = dict(TREE.files)
    new_files["kernel/work.c"] = TREE.files["kernel/work.c"].replace(
        "return x * 2;", "return x * 2 + 1;")
    pack = ksplice_create(TREE, make_patch(TREE.files, new_files))
    applied = core.apply(pack)

    growth = benchmark(
        lambda: machine.loader.resident_bytes() - resident_before)
    print("\nresident memory growth after update: %d bytes "
          "(= primary module %d bytes; helper was unloaded)"
          % (growth, applied.primary_bytes))
    assert growth == applied.primary_bytes
    assert growth < 4096

"""Shared fixtures for the benchmark suite.

The full corpus evaluation (all 64 CVEs through create+apply with the
stress battery and exploits) runs once per session and is shared by
every table/figure benchmark.
"""

import pytest

from repro.evaluation.harness import EvaluationReport, evaluate_corpus


@pytest.fixture(scope="session")
def corpus_report() -> EvaluationReport:
    """One full §6 evaluation pass (all three success criteria)."""
    return evaluate_corpus(run_stress=True)

"""§2/§5.2: the stop_machine window.

Paper: "Ksplice's call to stop_machine takes about 0.7 milliseconds to
execute.  During part of that time, other threads cannot be scheduled."
and "normal operation of the system is only interrupted for about 0.7
milliseconds ... the operating system's state is not disrupted."

Absolute times depend on the host; the benchmark verifies the shape:
the stopped window is short (sub-millisecond to low-millisecond wall
clock for hook-free updates), *zero* simulated instructions run while
stopped, and threads resume exactly where they were.
"""

from repro.core import KspliceCore, ksplice_create
from repro.evaluation import corpus_by_id
from repro.evaluation.kernels import kernel_for_version
from repro.kernel import boot_kernel


def _fresh():
    spec = corpus_by_id("CVE-2006-2451")
    kernel = kernel_for_version(spec.kernel_version)
    machine = boot_kernel(kernel.tree)
    return spec, kernel, machine


def test_stop_machine_window_duration(benchmark):
    spec, kernel, machine = _fresh()
    pack_bytes = ksplice_create(kernel.tree,
                                kernel.patch_for(spec.cve_id)).to_bytes()

    def apply_once():
        fresh = boot_kernel(kernel.tree)
        core = KspliceCore(fresh)
        from repro.core import UpdatePack

        applied = core.apply(UpdatePack.from_bytes(pack_bytes))
        return applied.stop_report

    report = benchmark.pedantic(apply_once, rounds=5, iterations=1)
    print("\nstop_machine window: %.3f ms wall (paper: ~0.7 ms), "
          "%d simulated instructions executed while stopped"
          % (report.wall_milliseconds, report.instructions_during_stop))
    assert report.instructions_during_stop == 0
    assert report.wall_milliseconds < 100


def test_no_thread_progress_during_stop(benchmark):
    spec, kernel, machine = _fresh()
    core = KspliceCore(machine)
    spinner = machine.load_user_program(
        "int main(void) { return __syscall(10, 1000000, 0, 0); }",
        name="spinner")
    machine.run(max_instructions=5_000)

    pack = ksplice_create(kernel.tree, kernel.patch_for(spec.cve_id))

    def apply_and_measure():
        applied = core.apply(pack)
        return spinner.instructions_executed, applied

    progressed, applied = benchmark.pedantic(apply_and_measure,
                                             rounds=1, iterations=1)
    # The spinner may run during stack-check *retries* (the machine runs
    # between attempts), but never inside the stopped window itself.
    assert applied.stop_report.instructions_during_stop == 0
    # And it resumes afterwards, state intact.
    machine.run(max_instructions=20_000)
    assert spinner.instructions_executed > progressed


def test_corpus_stop_windows(corpus_report, benchmark):
    stops = benchmark(lambda: sorted(
        r.stop_ms for r in corpus_report.results if r.applied_cleanly))
    median = stops[len(stops) // 2]
    print("\nstop_machine across 64 updates: median %.3f ms, "
          "p90 %.3f ms, max %.3f ms (paper: ~0.7 ms)"
          % (median, stops[int(len(stops) * 0.9)], stops[-1]))
    assert median < 100

"""Table 1: patches that cannot be applied without new code.

Regenerates the paper's table — CVE id, patch id, reason for failure,
and lines of new custom code — and verifies the two claims behind it:
the hook code shipped for each entry really has the stated number of
logical lines, and applying the *original* patch without that code
leaves the kernel wrong (stale data or broken live state).
"""

from repro.evaluation import corpus_by_id
from repro.evaluation.harness import evaluate_original_patch_only

PAPER_TABLE1 = [
    ("CVE-2008-0007", "2f98735", "changes data init", 34),
    ("CVE-2007-4571", "ccec6e2", "changes data init", 10),
    ("CVE-2007-3851", "21f1628", "changes data init", 1),
    ("CVE-2006-5753", "be6aab0", "changes data init", 1),
    ("CVE-2006-2071", "b78b6af", "changes data init", 14),
    ("CVE-2006-1056", "7466f9e", "changes data init", 4),
    ("CVE-2005-3179", "c075814", "changes data init", 20),
    ("CVE-2005-2709", "330d57f", "adds field to struct", 48),
]


def test_table1_rows(corpus_report, benchmark):
    rows = benchmark(corpus_report.table1_rows)

    print("\nTable 1: Patches that cannot be applied without new code")
    print("%-14s %-9s %-22s %s"
          % ("CVE ID", "Patch ID", "Reason for failure", "New code"))
    for cve, patch, reason, lines in rows:
        print("%-14s %-9s %-22s %d line%s"
              % (cve.replace("CVE-", ""), patch, reason, lines,
                 "s" if lines != 1 else ""))

    got = {(cve, patch, reason, lines)
           for cve, patch, reason, lines in rows}
    assert got == set(PAPER_TABLE1)


def test_table1_mean_is_about_17_lines(corpus_report, benchmark):
    mean = benchmark(corpus_report.mean_new_code_lines)
    # Paper: "about 17 lines per patch, on average".
    assert 16 <= mean <= 18


def test_table1_hook_code_line_counts_are_real(benchmark):
    def count_all():
        return {cve: corpus_by_id(cve).custom_code_logical_lines()
                for cve, _, _, _ in PAPER_TABLE1}

    counts = benchmark(count_all)
    for cve, _, _, lines in PAPER_TABLE1:
        assert counts[cve] == lines


def test_table1_original_patches_are_insufficient(benchmark):
    """The defining property: without the custom code, the kernel is
    still wrong after the update (run once on two representatives —
    the smallest and the struct-field entry)."""

    def check():
        return (evaluate_original_patch_only(corpus_by_id("CVE-2007-3851")),
                evaluate_original_patch_only(corpus_by_id("CVE-2005-2709")))

    small, shadow = benchmark.pedantic(check, rounds=1, iterations=1)
    assert small is False
    assert shadow is False

"""Control-plane convergence latency: publish -> fleet converged.

The coordinator daemon's headline number: how long a publish to a
release channel takes to walk every registered member through the
canary waves, measured end-to-end *through the REST API* (register
over HTTP, publish over HTTP, poll ``GET /rollouts/<id>`` until the
record leaves ``running``).  Also measured: how quickly the first
canary wave becomes visible to a poller — the lag an operator watching
``repro channel publish`` actually feels — and how long a daemon
restart takes to recover the registry from disk.

Run directly:

* ``--smoke`` — the CI check: 4 members; the publish must converge
  with every member updated and the registry must survive a restart.
* ``--full`` — the acceptance run: 12 members.

Both record into ``BENCH_corpus.json``.  Under pytest the smoke-sized
measurement runs as a benchmark.
"""

import shutil
import tempfile
import threading
import time

import perfjson

from repro.controlplane import ControlPlaneClient, ControlPlaneServer
from repro.evaluation import clear_caches

CVE = "CVE-2006-2451"  # analyzer-safe, probed, single-unit update
KERNEL = "2.6.16-deb3"


class _Daemon:
    """A live control plane on an ephemeral port, over ``data_dir``."""

    def __init__(self, data_dir):
        self.server = ControlPlaneServer(("127.0.0.1", 0),
                                         data_dir=data_dir)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()
        self.client = ControlPlaneClient(self.server.url)

    def stop(self):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)


def measure(fleet_size):
    """One publish over HTTP against ``fleet_size`` registered members.

    Returns ``(payload, failures)``.
    """
    clear_caches()
    data_dir = tempfile.mkdtemp(prefix="bench-controlplane-")
    failures = []
    try:
        daemon = _Daemon(data_dir)
        try:
            for index in range(fleet_size):
                daemon.client.register_member(
                    "bench-%02d" % index, KERNEL, channel="canary")

            start = time.perf_counter()
            record = daemon.client.publish("canary", CVE)
            rollout_id = record["rollout_id"]
            first_wave_s = None
            while True:
                record = daemon.client.rollout(rollout_id)
                if first_wave_s is None and record["waves"]:
                    first_wave_s = time.perf_counter() - start
                if record["status"] != "running":
                    break
                time.sleep(0.02)
            converged_s = time.perf_counter() - start

            if record["status"] != "complete":
                failures.append("publish ended %r" % record["status"])
            updated = [m for m in daemon.client.members()
                       if m["applied_sequence"] == 1]
            if len(updated) != fleet_size:
                failures.append("converged %d/%d members"
                                % (len(updated), fleet_size))
            waves = len(record["waves"])
        finally:
            daemon.stop()

        # Restart recovery: a fresh daemon over the same directory must
        # serve the full registry and the finished rollout record.
        start = time.perf_counter()
        revived = _Daemon(data_dir)
        try:
            members = revived.client.members()
            revived_record = revived.client.rollout(rollout_id)
            recovery_s = time.perf_counter() - start
            if len(members) != fleet_size:
                failures.append("restart recovered %d/%d members"
                                % (len(members), fleet_size))
            if revived_record["status"] != record["status"]:
                failures.append("restart changed rollout status to %r"
                                % revived_record["status"])
        finally:
            revived.stop()
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

    payload = {
        "fleet_size": fleet_size,
        "waves": waves,
        "publish_to_converged_wall_s": round(converged_s, 3),
        "members_converged_per_s": round(fleet_size / converged_s, 2)
        if converged_s else 0.0,
        "first_wave_visible_s": round(first_wave_s, 3)
        if first_wave_s is not None else None,
        "restart_recovery_wall_s": round(recovery_s, 3),
    }
    return payload, failures


def _report(label, payload):
    print("%s: %d members converged in %.2fs (%.1f members/s, %d "
          "waves); first wave visible at %.2fs; restart recovery "
          "%.3fs"
          % (label, payload["fleet_size"],
             payload["publish_to_converged_wall_s"],
             payload["members_converged_per_s"],
             payload["waves"],
             payload["first_wave_visible_s"] or 0.0,
             payload["restart_recovery_wall_s"]))


def test_control_plane_convergence(benchmark):
    payload, failures = benchmark.pedantic(
        lambda: measure(4), rounds=1, iterations=1)
    _report("controlplane", payload)
    perfjson.record("control_plane_smoke", payload)
    assert not failures, failures


def run_smoke():
    payload, failures = measure(4)
    _report("smoke", payload)
    perfjson.record("control_plane_smoke", payload)
    for failure in failures:
        print("SMOKE FAIL: %s" % failure)
    if not failures:
        print("smoke: OK")
    return 1 if failures else 0


def run_full():
    payload, failures = measure(12)
    _report("full", payload)
    perfjson.record("control_plane_full", payload)
    for failure in failures:
        print("FULL FAIL: %s" % failure)
    if not failures:
        print("full: OK (recorded in %s)" % perfjson.DEFAULT_PATH)
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv[1:]:
        sys.exit(run_smoke())
    sys.exit(run_full())

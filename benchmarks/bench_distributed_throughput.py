"""Distributed evaluation fabric throughput (workers vs local).

The headline comparison the ROADMAP tracks: the full corpus on one
cold in-process evaluator (``jobs=1``) versus a persistent four-worker
fleet sharing a disk cache tier.  On a many-core host the fleet also
wins on raw parallelism; on a single-core host the win comes from the
fleet staying *warm* across runs — worker processes outlive any one
``evaluate_corpus`` call and the shared disk tier serves every worker
— which is exactly the deployment story (long-lived workers, many
evaluation requests).  The recorded JSON says which states were
measured, so the numbers cannot be mistaken for a cold/cold CPU-only
comparison.

Run directly:

* ``--smoke`` — the CI check: two spawned localhost workers, a 6-CVE
  slice, results must be byte-identical (after ``normalize_result``)
  to a sequential pass.
* ``--full`` — the acceptance run: full corpus, cold ``jobs=1``
  baseline vs the warm 4-worker fleet; asserts the >=1.5x speedup and
  records both numbers in ``BENCH_corpus.json``.

Under pytest the same measurements run as benchmarks.
"""

import shutil
import tempfile
import time

import perfjson

from repro.compiler.cache import disable_disk_cache, enable_disk_cache
from repro.distributed import spawn_local_workers
from repro.evaluation import CORPUS, clear_caches, evaluate_corpus, \
    normalize_result
from repro.evaluation.engine import EngineStats

_RUN_STRESS = False  # identical in every variant; see corpus bench


def _distributed(specs, addresses, stats=None):
    stats = stats if stats is not None else EngineStats()
    start = time.perf_counter()
    report = evaluate_corpus(specs, run_stress=_RUN_STRESS, stats=stats,
                             workers=addresses)
    elapsed = time.perf_counter() - start
    if stats.fell_back:
        raise AssertionError("distributed run fell back: %s"
                             % stats.fallback_reason)
    return report, stats, elapsed


def measure_full():
    """Cold ``jobs=1`` vs a warm 4-worker fleet on the full corpus.

    Returns ``(payload, failures)`` — the JSON payload for
    ``BENCH_corpus.json`` and a list of acceptance failures.
    """
    clear_caches()
    start = time.perf_counter()
    baseline = evaluate_corpus(run_stress=_RUN_STRESS)
    cold_jobs1_s = time.perf_counter() - start
    expected = [normalize_result(r) for r in baseline.results]

    root = tempfile.mkdtemp(prefix="repro-bench-dist-")
    workers = []
    failures = []
    try:
        # The handshake ships this config to every worker, so the whole
        # fleet shares one disk tier: warmth survives both worker
        # round-robin placement and coordinator restarts.
        enable_disk_cache(root, max_entries=4096)
        clear_caches()
        workers = spawn_local_workers(4)
        addresses = [w.address for w in workers]

        first, _, fleet_cold_s = _distributed(None, addresses)
        warm_stats = EngineStats()
        second, warm_stats, fleet_warm_s = _distributed(
            None, addresses, warm_stats)

        for label, report in (("fleet-cold", first),
                              ("fleet-warm", second)):
            got = [normalize_result(r) for r in report.results]
            if got != expected:
                failures.append("%s results differ from sequential"
                                % label)
        speedup = cold_jobs1_s / fleet_warm_s if fleet_warm_s else 0.0
        if speedup < 1.5:
            failures.append(
                "warm 4-worker fleet %.2fs vs cold jobs=1 %.2fs: "
                "%.2fx < 1.5x" % (fleet_warm_s, cold_jobs1_s, speedup))
        combined = warm_stats.combined_cache_stats()
        payload = {
            "cves": len(CORPUS),
            "cold_jobs1_wall_s": round(cold_jobs1_s, 3),
            "fleet_cold_wall_s": round(fleet_cold_s, 3),
            "fleet_warm_wall_s": round(fleet_warm_s, 3),
            "speedup_warm_fleet_vs_cold_jobs1": round(speedup, 2),
            "workers": warm_stats.workers,
            "work_items": warm_stats.work_items,
            "retries": warm_stats.retries,
            "warm_pass_cache_hit_rate": round(combined.hit_rate, 3),
            "states": "baseline: cold caches, jobs=1 in-process; "
                      "fleet passes: 4 persistent workers sharing a "
                      "disk tier, second pass warm",
        }
    finally:
        for worker in workers:
            worker.stop()
        disable_disk_cache()
        clear_caches()
        shutil.rmtree(root, ignore_errors=True)
    return payload, failures


def test_warm_fleet_beats_cold_jobs1(benchmark):
    payload, failures = benchmark.pedantic(measure_full, rounds=1,
                                           iterations=1)
    print("\ndistributed: cold jobs=1 %.2fs, 4-worker fleet %.2fs cold "
          "/ %.2fs warm (%.2fx), %d work items, %d retries"
          % (payload["cold_jobs1_wall_s"], payload["fleet_cold_wall_s"],
             payload["fleet_warm_wall_s"],
             payload["speedup_warm_fleet_vs_cold_jobs1"],
             payload["work_items"], payload["retries"]))
    perfjson.record("distributed_full", payload)
    assert not failures, failures


def run_smoke():
    """CI-sized check (returns an exit status): two localhost workers,
    a 6-CVE slice, byte-identical to sequential after normalization."""
    specs = CORPUS[:6]
    failures = []

    clear_caches()
    start = time.perf_counter()
    sequential = evaluate_corpus(specs, run_stress=_RUN_STRESS)
    sequential_s = time.perf_counter() - start
    expected = [normalize_result(r) for r in sequential.results]

    clear_caches()
    workers = spawn_local_workers(2)
    stats = EngineStats()
    try:
        report, stats, distributed_s = _distributed(
            specs, [w.address for w in workers], stats)
    finally:
        for worker in workers:
            worker.stop()

    got = [normalize_result(r) for r in report.results]
    if got != expected:
        failures.append("distributed results differ from sequential")
    if stats.workers != 2:
        failures.append("expected 2 workers, saw %d" % stats.workers)
    if stats.work_items != len(specs):
        failures.append("expected per-CVE stealing (%d items), saw %d"
                        % (len(specs), stats.work_items))

    print("smoke: %d CVEs, %.2fs sequential, %.2fs over %d workers, "
          "%d work items, %d retries"
          % (len(specs), sequential_s, distributed_s, stats.workers,
             stats.work_items, stats.retries))
    perfjson.record("distributed_smoke", {
        "cves": len(specs),
        "sequential_wall_s": round(sequential_s, 3),
        "distributed_wall_s": round(distributed_s, 3),
        "workers": stats.workers,
        "work_items": stats.work_items,
        "retries": stats.retries,
        "identical_to_sequential": not failures,
    })
    for failure in failures:
        print("SMOKE FAIL: %s" % failure)
    if not failures:
        print("smoke: OK")
    return 1 if failures else 0


def run_full():
    payload, failures = measure_full()
    perfjson.record("distributed_full", payload)
    print("full: cold jobs=1 %.2fs, fleet %.2fs cold / %.2fs warm "
          "(%.2fx with %d workers)"
          % (payload["cold_jobs1_wall_s"], payload["fleet_cold_wall_s"],
             payload["fleet_warm_wall_s"],
             payload["speedup_warm_fleet_vs_cold_jobs1"],
             payload["workers"]))
    for failure in failures:
        print("FULL FAIL: %s" % failure)
    if not failures:
        print("full: OK (recorded in %s)" % perfjson.DEFAULT_PATH)
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv[1:]:
        sys.exit(run_smoke())
    if "--full" in sys.argv[1:]:
        sys.exit(run_full())
    print("usage: python benchmarks/bench_distributed_throughput.py "
          "--smoke | --full\n"
          "(the benchmarks also run under pytest-benchmark)")
    sys.exit(2)

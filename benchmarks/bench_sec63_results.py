"""§6.3 headline results.

The paper: "We have used Ksplice to correct all 64 of the significant
32-bit x86 kernel vulnerabilities during the time interval.  56 of the
64 patches can be applied by Ksplice without writing any new code."

Success here means all three §6.2 criteria held: (a) the update applied
cleanly (run-pre consistent, all symbols resolved, stack check passed),
(b) the kernel kept passing the correctness-checking stress battery,
(c) where an exploit or semantics probe exists, it flipped.
"""


def test_all_64_patches_hot_apply(corpus_report, benchmark):
    successes = benchmark(corpus_report.successes)

    failed = [r.cve_id for r in corpus_report.results if not r.success]
    print("\n§6.3 headline: %d/%d updates succeeded on all criteria"
          % (len(successes), corpus_report.total()))
    if failed:
        print("failures: %s" % failed)
    assert corpus_report.total() == 64
    assert len(successes) == 64


def test_56_of_64_need_no_new_code(corpus_report, benchmark):
    count = benchmark(corpus_report.no_new_code_count)
    print("\npatches applied without writing any new code: %d/64 "
          "(paper: 56; i.e. %.0f%% of vulnerabilities corrected "
          "with zero programmer code)" % (count, 100 * count / 64))
    assert count == 56


def test_clean_apply_criteria_recorded(corpus_report, benchmark):
    def collect():
        return [(r.applied_cleanly, r.stress_ok)
                for r in corpus_report.results]

    criteria = benchmark(collect)
    assert all(applied for applied, _ in criteria)
    assert all(stress for _, stress in criteria)


def test_kernels_keep_running_after_every_update(corpus_report, benchmark):
    failures = benchmark(
        lambda: [f for r in corpus_report.results
                 for f in r.stress_failures])
    assert failures == []


def test_every_update_is_reversible(benchmark):
    """§5: "reversing an update removes the jump instructions so that
    the original function text is once again executed" — verified for
    all 56 no-new-code updates (Table-1 entries intentionally leave
    migrated data behind, so their probes cannot revert)."""
    from repro.evaluation.harness import evaluate_corpus

    report = benchmark.pedantic(
        lambda: evaluate_corpus(run_stress=False, verify_undo=True),
        rounds=1, iterations=1)
    checked = [r for r in report.results if r.undo_ok is not None]
    not_reverted = [r.cve_id for r in checked if not r.undo_ok]
    print("\nundo verified on %d/64 updates (8 Table-1 entries skipped: "
          "their migration hooks intentionally persist); failures: %s"
          % (len(checked), not_reverted or "none"))
    assert len(checked) == 56
    assert not_reverted == []

"""Figure 3: number of patches by patch length.

Regenerates the histogram of the 64 security patches binned by changed
source lines (bin width 5, final bin "inf"), and checks the paper's two
headline counts: 35 patches needed <= 5 changed lines and 53 needed
<= 15.
"""


def test_figure3_patch_length_histogram(corpus_report, benchmark):
    histogram = benchmark(corpus_report.patch_length_histogram)

    print("\nFigure 3: Number of patches by patch length")
    print("%-8s %-6s %s" % ("lines", "count", ""))
    for bucket, count in histogram.items():
        if count:
            print("%-8s %-6d %s" % (bucket, count, "#" * count))

    assert sum(histogram.values()) == 64
    # Paper: "53 vulnerabilities were corrected in 15 or fewer lines of
    # source code changes, and 35 vulnerabilities ... in 5 or fewer".
    assert corpus_report.patches_at_most(5) == 35
    assert corpus_report.patches_at_most(15) == 53
    assert histogram["inf"] == 0


def test_figure3_most_patches_are_small(corpus_report, benchmark):
    sizes = benchmark(lambda: sorted(r.patch_lines
                                     for r in corpus_report.results))
    # The distribution is heavily left-weighted: the median patch is
    # tiny, the tail is long (largest fixes fall in the 61-80 bin).
    median = sizes[len(sizes) // 2]
    assert median <= 5
    assert max(sizes) <= 80

"""§5.1: helper vs primary module sizes.

Paper: "Since the helper module must contain the entire optimization
unit corresponding to each patched function, it can be much larger than
the primary module" — and that is why helpers are unloaded after run-pre
matching succeeds.
"""


def test_helper_modules_larger_than_primaries(corpus_report, benchmark):
    def collect():
        return [(r.cve_id, r.helper_bytes, r.primary_bytes)
                for r in corpus_report.results if r.applied_cleanly]

    rows = benchmark(collect)
    total_helper = sum(h for _, h, _ in rows)
    total_primary = sum(p for _, _, p in rows)
    ratios = sorted(h / p for _, h, p in rows if p)

    print("\nmodule bytes across 64 updates: helper %d, primary %d "
          "(ratio %.1fx overall; per-update median %.1fx, max %.1fx)"
          % (total_helper, total_primary,
             total_helper / max(total_primary, 1),
             ratios[len(ratios) // 2], ratios[-1]))
    biggest = sorted(rows, key=lambda r: r[1] - r[2], reverse=True)[:5]
    print("largest helper/primary gaps:")
    for cve, helper, primary in biggest:
        print("  %-14s helper %6d B, primary %6d B" % (cve, helper,
                                                       primary))

    assert total_helper > total_primary
    # For most updates the helper is strictly larger (the whole unit vs
    # the changed functions); the median ratio exceeds 1.5x.
    assert ratios[len(ratios) // 2] > 1.5


def test_helpers_unloaded_after_apply(benchmark):
    """Resident module memory after an update equals the primary plus
    the core module; the helper is gone."""
    from repro.core import KspliceCore, ksplice_create
    from repro.evaluation import corpus_by_id
    from repro.evaluation.kernels import kernel_for_version
    from repro.kernel import boot_kernel

    spec = corpus_by_id("CVE-2006-3626")
    kernel = kernel_for_version(spec.kernel_version)

    def run():
        machine = boot_kernel(kernel.tree)
        core = KspliceCore(machine)
        base = machine.loader.resident_bytes()
        applied = core.apply(ksplice_create(kernel.tree,
                                            kernel.patch_for(spec.cve_id)))
        return machine.loader.resident_bytes() - base, applied

    growth, applied = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nresident growth %d bytes == primary %d bytes; helper "
          "(%d bytes) unloaded after matching"
          % (growth, applied.primary_bytes, applied.helper_bytes))
    assert growth == applied.primary_bytes
    assert applied.helper_bytes > applied.primary_bytes

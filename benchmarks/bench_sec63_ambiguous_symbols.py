"""§6.3 ambiguous-symbol statistics.

Paper (for Linux 2.6.27 defconfig): 6,164 symbols — 7.9% of the total —
share their name with other symbols; 21.1% of compilation units contain
at least one such symbol; 5 of the 64 patches modify a function that
contains a symbol with an ambiguous name.

Our kernels are far smaller, so the absolute percentages differ, but the
same census runs against every corpus kernel and the *shape* holds: a
meaningful fraction of symbols is ambiguous, the ambiguity spreads over
multiple units, and symbol-table lookup alone cannot resolve those
names (run-pre matching can and does — all 5 affected patches applied).
"""


from repro.evaluation.kernels import ALL_VERSIONS, kernel_for_version
from repro.kbuild import build_tree
from repro.linker import link_kernel


def _census(version):
    kernel = kernel_for_version(version)
    image = link_kernel(build_tree(kernel.tree))
    table = image.kallsyms
    return {
        "total": table.total_symbols(),
        "ambiguous": len(table.ambiguous_symbols()),
        "fraction": table.ambiguous_fraction(),
        "unit_fraction": table.unit_ambiguous_fraction(),
        "units": table.units_with_ambiguous_symbols(),
    }


def test_symbol_census_across_kernels(benchmark):
    censuses = benchmark.pedantic(
        lambda: {v: _census(v) for v in ALL_VERSIONS},
        rounds=1, iterations=1)

    print("\n%-14s %8s %10s %8s %8s"
          % ("kernel", "symbols", "ambiguous", "sym%", "unit%"))
    for version, census in censuses.items():
        print("%-14s %8d %10d %7.1f%% %7.1f%%"
              % (version, census["total"], census["ambiguous"],
                 100 * census["fraction"],
                 100 * census["unit_fraction"]))

    for census in censuses.values():
        # Ambiguity exists in every kernel and is a minority of symbols,
        # spread across more than one unit (the paper's shape).
        assert census["ambiguous"] >= 4
        assert 0 < census["fraction"] < 0.5
        assert len(census["units"]) >= 2


def test_5_of_64_patches_involve_ambiguous_names(corpus_report,
                                                 benchmark):
    count = benchmark(corpus_report.ambiguous_count)
    affected = sorted(r.cve_id for r in corpus_report.results
                      if r.ambiguous_symbol)
    print("\npatches whose replacement code has ambiguous symbol "
          "names: %d/64 (paper: 5)" % count)
    print("  " + ", ".join(affected))
    assert count == 5
    # Every one of them nevertheless applied and passed all criteria.
    assert all(r.success for r in corpus_report.results
               if r.ambiguous_symbol)


def test_symbol_table_lookup_fails_where_runpre_succeeds(benchmark):
    """The operational consequence: unique_address raises on 'debug';
    run-pre matching resolved it for the dst_ca patch."""
    from repro.errors import SymbolResolutionError

    kernel = kernel_for_version("2.6.12-deb2")
    image = link_kernel(build_tree(kernel.tree))

    def lookup():
        try:
            image.kallsyms.unique_address("debug")
            return False
        except SymbolResolutionError:
            return True

    assert benchmark(lookup)

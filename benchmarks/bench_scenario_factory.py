"""Scenario-factory throughput and ground-truth fidelity at scale.

Two sizes of the same experiment:

* ``--smoke`` (CI): a 32-scenario corpus — generation must be
  deterministic (two runs, byte-identical manifests), the evaluation
  sweep must reproduce every stamped ground truth with zero oracle
  discrepancies, and every verdict must be proven.
* ``--full``: the 1,000-scenario acceptance sweep from the PR issue —
  generation throughput (scenarios/s), manifest bytes, and an analyzer
  sweep (``run_stress=False``, parallel version-groups) over all 1k
  scenarios with the same zero-discrepancy / all-proven bar.

Both record a ``scenario_factory`` section into ``BENCH_corpus.json``
via :mod:`perfjson` so corpus-scale regressions diff in review.

The pytest entry points benchmark the cheap pure-python layers
(generation and manifest serialisation) without the evaluation sweep.
"""

import time

import perfjson

from repro.evaluation.engine import evaluate_corpus
from repro.scenarios import (
    GeneratedCorpus,
    GeneratedCorpusProvider,
    manifest_text,
)

SMOKE_SEED, SMOKE_SIZE = 42, 32
FULL_SEED, FULL_SIZE = 42, 1000


def test_generation_throughput(benchmark):
    """Pure generation: scenarios/s for a 64-scenario corpus."""
    corpus = benchmark(GeneratedCorpus.generate, 7, 64)
    assert len(corpus.scenarios) == 64


def test_manifest_serialisation(benchmark):
    corpus = GeneratedCorpus.generate(7, 64)
    text = benchmark(manifest_text, corpus)
    assert text == manifest_text(GeneratedCorpus.generate(7, 64))


def _sweep(seed, size, jobs=1):
    """Generate, evaluate, and oracle-check one corpus; returns the
    timing/fidelity payload and a list of failures."""
    failures = []

    start = time.perf_counter()
    corpus = GeneratedCorpus.generate(seed, size)
    generation_s = time.perf_counter() - start
    if manifest_text(corpus) != \
            manifest_text(GeneratedCorpus.generate(seed, size)):
        failures.append("regeneration is not byte-identical")

    provider = GeneratedCorpusProvider(corpus)
    start = time.perf_counter()
    report = evaluate_corpus(provider.specs(), run_stress=False,
                             jobs=jobs)
    sweep_s = time.perf_counter() - start

    discrepancies = provider.discrepancies(report.results)
    for line in discrepancies[:20]:
        print("DISCREPANCY: %s" % line)
    if discrepancies:
        failures.append("%d oracle discrepancies" % len(discrepancies))
    unproven = [r.cve_id for r in report.results
                if r.analysis is None or not r.analysis.is_proven()]
    if unproven:
        failures.append("%d unproven verdicts (first: %s)"
                        % (len(unproven), unproven[0]))
    if len(report.successes()) != report.total():
        failures.append("%d/%d scenarios failed evaluation"
                        % (report.total() - len(report.successes()),
                           report.total()))

    verdicts = {}
    for result in report.results:
        verdicts[result.analysis_verdict] = \
            verdicts.get(result.analysis_verdict, 0) + 1
    payload = {
        "seed": seed,
        "size": size,
        "jobs": jobs,
        "generation_s": round(generation_s, 3),
        "generation_rate_per_s": round(size / generation_s, 1),
        "sweep_s": round(sweep_s, 2),
        "sweep_rate_per_s": round(size / sweep_s, 2),
        "manifest_bytes": len(manifest_text(corpus)),
        "verdicts": dict(sorted(verdicts.items())),
        "discrepancies": len(discrepancies),
    }
    return payload, failures


def _run(mode, seed, size, jobs):
    payload, failures = _sweep(seed, size, jobs=jobs)
    payload["mode"] = mode
    perfjson.record("scenario_factory", payload)
    print("scenario factory [%s]: %d scenarios generated in %.2fs "
          "(%.0f/s), swept in %.2fs (%.2f/s), %d discrepancies"
          % (mode, size, payload["generation_s"],
             payload["generation_rate_per_s"], payload["sweep_s"],
             payload["sweep_rate_per_s"], payload["discrepancies"]))
    print("verdicts: %s" % payload["verdicts"])
    for failure in failures:
        print("%s FAIL: %s" % (mode.upper(), failure))
    if not failures:
        print("%s: OK" % mode)
    return 1 if failures else 0


if __name__ == "__main__":
    import os
    import sys

    if "--smoke" in sys.argv[1:]:
        sys.exit(_run("smoke", SMOKE_SEED, SMOKE_SIZE, jobs=1))
    if "--full" in sys.argv[1:]:
        jobs = max(2, min(8, (os.cpu_count() or 2) - 1))
        sys.exit(_run("full", FULL_SEED, FULL_SIZE, jobs=jobs))
    print("usage: python benchmarks/bench_scenario_factory.py "
          "--smoke | --full\n(the generation micro-benchmarks run "
          "under pytest-benchmark)")
    sys.exit(2)

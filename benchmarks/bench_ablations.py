"""Ablations for the design choices DESIGN.md calls out.

A. Without -ffunction-sections, pre-post differencing loses function
   granularity: a one-line patch makes the unit's whole merged .text
   differ, so the differ can no longer say *which* functions changed.
B. Without run-pre matching, symbol resolution falls back to the kernel
   symbol table; counting across the corpus shows how many updates
   would fail on ambiguous names alone.
C. Without object-level differencing, source differencing misses the
   callers of inlined functions; counting across the corpus shows how
   many updates would be silently unsafe.
"""

from repro.compiler import CompilerOptions
from repro.core import diff_objects
from repro.core.objdiff import SectionStatus
from repro.evaluation import CORPUS
from repro.evaluation.kernels import kernel_for_version
from repro.kbuild import build_units

SPLIT = CompilerOptions().pre_post_flavor()
MERGED = CompilerOptions()


def _pre_post(spec, options):
    kernel = kernel_for_version(spec.kernel_version)
    fixed = kernel.fixed_tree(spec.cve_id, augmented=False)
    pre = build_units(kernel.tree, [spec.unit], options)
    post = build_units(fixed, [spec.unit], options)
    return (pre.object_for(spec.unit), post.object_for(spec.unit))


def test_ablation_function_sections_vs_merged(benchmark):
    """A: the same one-function patch diffed under both layouts."""
    spec = next(s for s in CORPUS if s.cve_id == "CVE-2006-2451")

    def diff_both():
        split_diff = diff_objects(*_pre_post(spec, SPLIT))
        merged_diff = diff_objects(*_pre_post(spec, MERGED))
        return split_diff, merged_diff

    split_diff, merged_diff = benchmark.pedantic(diff_both, rounds=1,
                                                 iterations=1)
    # Function-sections: precise per-function verdicts.
    assert split_diff.changed_functions == ["sys_prctl"]
    assert split_diff.section_status[".text.sys_do_coredump"] is \
        SectionStatus.UNCHANGED
    # Merged: the whole .text changed; granularity is gone.
    assert merged_diff.section_status[".text"] is SectionStatus.CHANGED
    assert merged_diff.changed_functions == []
    print("\nsplit build: changed functions = %s"
          % split_diff.changed_functions)
    print("merged build: only knows '.text changed' — cannot extract "
          "per-function replacement code")


def test_ablation_kallsyms_only_resolution(corpus_report, benchmark):
    """B: how many of the 64 updates reference at least one symbol a
    symbol-table-only resolver cannot disambiguate."""
    count = benchmark(corpus_report.ambiguous_count)
    print("\nupdates that would fail under kallsyms-only resolution: "
          "%d/64; with run-pre matching: 0 failures" % count)
    assert count == 5
    assert all(r.success for r in corpus_report.results
               if r.ambiguous_symbol)


def test_ablation_source_level_differencing(corpus_report, benchmark):
    """C: how many updates would silently miss inlined copies under
    source-level differencing."""
    count = benchmark(corpus_report.inlined_count)
    print("\nupdates whose patched function is inlined in the run "
          "kernel: %d/64 — source differencing would leave each "
          "stale copy running" % count)
    assert count == 20


def test_ablation_whole_function_granularity(benchmark):
    """Why whole-function replacement + entry jumps: the stack check
    only needs to prove no thread is *inside* a replaced function, not
    reason about arbitrary mid-function patch points."""
    from repro.core import KspliceCore, ksplice_create
    from repro.kbuild import SourceTree
    from repro.kernel import boot_kernel
    from repro.patch import make_patch

    tree = SourceTree(version="gran", files={"k.c": """
int depth;
int leaf(int x) { depth++; return x + 1; }
int trunk(int x) { return leaf(x) * 2; }
"""})
    new_files = {"k.c": tree.files["k.c"].replace("return x + 1;",
                                                  "return x + 2;")}

    def run():
        machine = boot_kernel(tree)
        core = KspliceCore(machine)
        pack = ksplice_create(tree, make_patch(tree.files, new_files))
        core.apply(pack)
        return pack.all_changed_functions(), \
            machine.call_function("trunk", [10])

    changed, value = benchmark.pedantic(run, rounds=1, iterations=1)
    # Only the changed function is replaced — callers keep their code
    # and reach the new body through the entry jump.
    assert changed == ["leaf"]
    assert value == 24

#!/usr/bin/env python3
"""Hot-update distribution (§8 future work).

A vendor publishes a series of security updates for one kernel release;
a subscribed machine transparently catches up — each update stacking on
the previous one (§5.4) — and can roll the newest one back.
"""

from repro import KspliceCore, SourceTree, boot_kernel
from repro.core.distribution import Subscriber, UpdateChannel
from repro.patch import make_patch

ENTRY_S = """
.global syscall_entry
syscall_entry:
    cmpi r0, 1
    jge bad_sys
    cmpi r0, 0
    jl bad_sys
    push r3
    push r2
    push r1
    movi r4, 4
    mul r0, r4
    lea r4, sys_call_table
    add r4, r0
    loadr r4, r4, 0
    callr r4
    addi sp, 12
    ret
bad_sys:
    movi r0, -38
    ret
.section .data
sys_call_table:
    .word sys_query
"""

QUERY_V0 = """
int query_floor = 0;

int sys_query(int x, int b, int c) {
    if (x < query_floor) { return -22; }
    return x * 2;
}
"""

TREE = SourceTree(version="distro-2.6.16", files={
    "arch/entry.s": ENTRY_S,
    "kernel/query.c": QUERY_V0,
})

QUERY_V1 = QUERY_V0.replace(
    "if (x < query_floor) { return -22; }",
    "if (x < query_floor || x > 1000) { return -22; }")
QUERY_V2 = QUERY_V1.replace("return x * 2;", "return x * 2 + 1;")


def patch_between(old, new):
    return make_patch({"kernel/query.c": old, "arch/entry.s": ENTRY_S},
                      {"kernel/query.c": new, "arch/entry.s": ENTRY_S})


def main() -> None:
    print("== vendor: publishing updates for %s ==" % TREE.version)
    channel = UpdateChannel(TREE)
    entry1 = channel.publish(patch_between(QUERY_V0, QUERY_V1),
                             "CVE fix: bound query input")
    entry2 = channel.publish(patch_between(QUERY_V1, QUERY_V2),
                             "correctness fix: off-by-one in result")
    for entry in (entry1, entry2):
        print("  #%d %-40s %s" % (entry.sequence, entry.description,
                                  entry.pack().update_id))

    print("\n== subscriber machine boots the ORIGINAL release ==")
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    sub = Subscriber(core, channel)
    print("sys_query(7) = %d   (original)"
          % machine.call_function("sys_query", [7, 0, 0]))
    print("pending updates: %d" % len(sub.pending()))

    print("\n== subscriber syncs ==")
    result = sub.sync()
    print("applied %d updates without rebooting" % result.count)
    print("sys_query(7)    = %d   (both fixes active)"
          % machine.call_function("sys_query", [7, 0, 0]))
    print("sys_query(5000) = %d (bounded by update #1)"
          % (machine.call_function("sys_query", [5000, 0, 0])
             - (1 << 32)))

    print("\n== vendor publishes a third update; subscriber re-syncs ==")
    channel.publish(patch_between(
        QUERY_V2, QUERY_V2.replace("return x * 2 + 1;",
                                   "return x * 3 + 1;")),
        "behaviour change: triple")
    sub.sync()
    print("sys_query(7) = %d   (update #3 stacked on #1 and #2)"
          % machine.call_function("sys_query", [7, 0, 0]))

    print("\n== update #3 regresses a customer; roll it back ==")
    sub.rollback_last()
    print("sys_query(7) = %d   (back to #2's behaviour; #1 and #2 "
          "remain applied)" % machine.call_function("sys_query",
                                                    [7, 0, 0]))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Reproduce the paper's §6 evaluation end to end.

Pushes all 64 corpus CVEs through ksplice-create + ksplice-apply on
their running kernels, checking the paper's three success criteria, then
prints the headline results, Figure 3, Table 1, and the §6.3 statistics.

Pass ``--jobs N`` to evaluate the 14 kernel-version groups in N worker
processes (results are byte-identical to the sequential order).
"""

import argparse
import sys
import time

from repro.evaluation import CORPUS, evaluate_corpus
from repro.evaluation.engine import EngineStats


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=1,
                    help="worker processes (default 1)")
    args = ap.parse_args()

    start = time.time()
    done = []

    def progress(result):
        done.append(result)
        sys.stdout.write("\r  evaluating %2d/64 %-18s"
                         % (len(done), result.cve_id))
        sys.stdout.flush()

    stats = EngineStats()
    report = evaluate_corpus(progress=progress, jobs=args.jobs,
                             stats=stats)
    print("\n  (%.1f s)\n" % (time.time() - start))

    ok = len(report.successes())
    print("=" * 64)
    print("HEADLINE (paper: 64/64 with new code, 56/64 without)")
    print("=" * 64)
    print("updates applied successfully:       %d / %d"
          % (ok, report.total()))
    print("without writing any new code:       %d / %d"
          % (report.no_new_code_count(), report.total()))
    print("patches needing custom code:        %d (mean %.1f lines each)"
          % (len(report.new_code_results()), report.mean_new_code_lines()))

    print("\nFIGURE 3: patches by patch length (changed source lines)")
    for bucket, count in report.patch_length_histogram().items():
        if count:
            print("  %7s : %s (%d)" % (bucket, "#" * count, count))
    print("  <=5 lines: %d   <=15 lines: %d   (paper: 35 and 53)"
          % (report.patches_at_most(5), report.patches_at_most(15)))

    print("\nTABLE 1: patches that cannot be applied without new code")
    print("  %-14s %-9s %-22s %s"
          % ("CVE ID", "Patch ID", "Reason for failure", "New code"))
    for cve, patch, reason, lines in report.table1_rows():
        print("  %-14s %-9s %-22s %d line%s"
              % (cve.replace("CVE-", ""), patch, reason, lines,
                 "s" if lines != 1 else ""))

    print("\nSECTION 6.3 STATISTICS")
    print("  patches touching a function inlined in the run kernel: "
          "%d / 64 (paper: 20)" % report.inlined_count())
    print("  ...of which declared 'inline' in the source:           "
          "%d / 64 (paper: 4)" % report.declared_inline_count())
    print("  patches involving ambiguous symbol names:              "
          "%d / 64 (paper: 5)" % report.ambiguous_count())
    exploited = [r for r in report.exploit_results()
                 if r.exploit_worked_before and r.exploit_blocked_after]
    print("  exploits verified working-then-blocked:                %d "
          "(paper names 4)" % len(exploited))
    stops = [r.stop_ms for r in report.results if r.applied_cleanly]
    print("  stop_machine window: median %.3f ms, max %.3f ms "
          "(paper: ~0.7 ms)"
          % (sorted(stops)[len(stops) // 2], max(stops)))
    helper = sum(r.helper_bytes for r in report.results)
    primary = sum(r.primary_bytes for r in report.results)
    print("  helper vs primary module bytes: %d vs %d (%.1fx; helpers "
          "are unloaded after matching)"
          % (helper, primary, helper / max(primary, 1)))

    print("\nEVALUATION ENGINE")
    print("  %d CVEs in %.1f s with %d job%s (%.1f CVEs/s)%s"
          % (stats.cves, stats.wall_seconds, stats.jobs,
             "s" if stats.jobs != 1 else "", stats.cves_per_second,
             " [fell back to in-process]" if stats.fell_back else ""))
    for name, cache in sorted(stats.caches.items()):
        print("  %-10s cache: %d hits / %d misses (%.0f%% hit rate)"
              % (name, cache.hits, cache.misses, 100 * cache.hit_rate))


if __name__ == "__main__":
    main()

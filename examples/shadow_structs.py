#!/usr/bin/env python3
"""Shadow data structures and custom hook code (§5.3, Table 1).

Most patches need no new code, but a patch that adds a field to a
persistent struct cannot grow existing instances.  This example walks
the CVE-2005-2709 analog from the corpus: the fix wants a per-entry
refcount, so the patched code keeps the new field in the Ksplice shadow
table and 48 lines of programmer-written hook code migrate the live
entries during the stop_machine window.

It also shows what happens WITHOUT the custom code: the update applies,
but live entries read as dead — the reason Table 1 exists.
"""

from repro import KspliceCore, ksplice_create
from repro.evaluation import corpus_by_id
from repro.evaluation.kernels import kernel_for_version
from repro.kernel import boot_kernel


def probe(machine, kernel, what):
    read = lambda idx: machine.call_function("sys_sysctl_read",
                                             [idx, 0, 0])
    print("  %-28s live entry 0 -> %-11d unregistered entry 1 -> %d"
          % (what, _signed(read(0)), _signed(read(1))))


def _signed(value):
    return value - (1 << 32) if value and value >= (1 << 31) else value


def main() -> None:
    spec = corpus_by_id("CVE-2005-2709")
    kernel = kernel_for_version(spec.kernel_version)
    print("%s: %s" % (spec.cve_id, spec.description))
    print("Table 1 row: reason=%r, new code lines=%d\n"
          % (spec.table1.reason, spec.table1.new_code_lines))

    print("== original patch alone (no custom code) ==")
    machine = boot_kernel(kernel.tree)
    core = KspliceCore(machine)
    machine.call_function("sys_sysctl_unreg", [1, 0, 0])
    probe(machine, kernel, "before update:")
    pack = ksplice_create(kernel.tree,
                          kernel.patch_for(spec.cve_id, augmented=False),
                          allow_data_changes=True)
    core.apply(pack)
    probe(machine, kernel, "after update:")
    print("  -> live entries broken (-2): existing state was never "
          "migrated!\n")

    print("== augmented patch: %d lines of hook code + shadow fields =="
          % spec.table1.new_code_lines)
    machine = boot_kernel(kernel.tree)
    core = KspliceCore(machine)
    machine.call_function("sys_sysctl_unreg", [1, 0, 0])
    probe(machine, kernel, "before update:")
    pack = ksplice_create(kernel.tree,
                          kernel.patch_for(spec.cve_id, augmented=True))
    applied = core.apply(pack)
    probe(machine, kernel, "after update:")
    print("  -> live entries keep working; the unregistered entry is "
          "now refused (-2)")
    print("\nshadow table now holds %d entries (refcount + live flags "
          "for existing sysctls)" % core.shadow.count)
    print("hook ran inside the %.3f ms stop_machine window"
          % applied.stop_report.wall_milliseconds)

    # The shadow refcount is genuinely live: reads bump it.
    for _ in range(3):
        machine.call_function("sys_sysctl_read", [0, 0, 0])
    print("entry 0 refcount after 3 more reads: %d"
          % core.shadow.get(0, 272))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Security-patch workflow: the paper's motivating scenario.

A privilege-escalation vulnerability (the CVE-2006-2451 prctl analog
from the evaluation corpus) is live on a running kernel.  An exploit
gets root.  We hot-apply the vendor patch with Ksplice — no reboot, no
lost state — and show the exploit is dead while legitimate workloads
never noticed.
"""

from repro import KspliceCore, ksplice_create
from repro.evaluation import corpus_by_id, run_stress_battery
from repro.evaluation.kernels import kernel_for_version
from repro.kernel import boot_kernel


def main() -> None:
    spec = corpus_by_id("CVE-2006-2451")
    kernel = kernel_for_version(spec.kernel_version)
    print("kernel %s is vulnerable to %s" % (kernel.version, spec.cve_id))
    print("  (%s)" % spec.description)

    machine = boot_kernel(kernel.tree)
    core = KspliceCore(machine)
    exploit = kernel.exploit_source(spec)

    print("\n== attacker runs the exploit ==")
    uid = machine.run_user_program(exploit, name="exploit-1")
    print("exploit exit value (uid): %d  %s"
          % (uid, "-> ROOT!" if uid == 0 else ""))

    # The machine is compromised; in reality you would reinstall.  For
    # the demo, boot a fresh instance that an attacker has NOT hit yet,
    # and patch it before they do.
    machine = boot_kernel(kernel.tree)
    core = KspliceCore(machine)

    # A long-lived workload is mid-flight: state must survive the update.
    spinner = machine.load_user_program(
        "int main(void) { return __syscall(10, 4000, 0, 0); }",
        name="long-lived-job")
    machine.run(max_instructions=30_000)
    progress_before = spinner.instructions_executed
    print("\nlong-lived job in flight: %d instructions executed"
          % progress_before)

    print("\n== hot-applying the security patch ==")
    patch = kernel.patch_for(spec.cve_id)
    pack = ksplice_create(kernel.tree, patch, description=spec.description)
    applied = core.apply(pack)
    print("update %s applied; functions replaced: %s"
          % (pack.update_id, pack.all_changed_functions()))
    print("stop_machine window: %.3f ms (paper: ~0.7 ms)"
          % applied.stop_report.wall_milliseconds)

    print("\n== attacker tries again ==")
    uid = machine.run_user_program(exploit, name="exploit-2")
    print("exploit exit value (uid): %d  %s"
          % (uid, "-> blocked" if uid != 0 else "-> STILL ROOT?!"))

    machine.run(max_instructions=3_000_000)
    print("\nlong-lived job finished with exit value %r (started before "
          "the update, finished after it)" % spinner.exit_value)

    print("\n== correctness-checking stress battery (§6.2) ==")
    report = run_stress_battery(machine)
    print("stress: %s (%d programs, %d oopses)"
          % ("PASS" if report.passed else "FAIL: %s" % report.failures,
             report.programs_run, report.oops_count))

    print("\n== kernel text integrity audit ==")
    from repro.tools import check_kernel_text

    audit = check_kernel_text(machine, core)
    print(audit.render())
    print("compromised: %s (every modification is accounted for by the "
          "update ledger)" % audit.compromised)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Why the object-code layer matters: Ksplice vs a source-level updater.

Runs the same three patches through Ksplice and through the honest
source-level baseline (OPUS-style), reproducing §6.3's argument:

1. a patch to a function that the compiler *inlined* into its caller —
   the baseline reports success but leaves the stale inlined copy
   running (silently unsafe); Ksplice replaces the caller too;
2. a patch whose function touches an *ambiguous* static symbol name —
   the baseline cannot resolve it from the symbol table; run-pre
   matching recovers the right address from the run code;
3. a patch to a pure *assembly* file — no source-level system for C can
   express it; Ksplice uses the same machinery as for C.
"""

from repro import KspliceCore, ksplice_create
from repro.baseline import SourceLevelUpdater
from repro.evaluation import corpus_by_id
from repro.evaluation.harness import _run_probe
from repro.evaluation.kernels import kernel_for_version
from repro.kernel import boot_kernel


def run_case(cve_id: str, title: str) -> None:
    spec = corpus_by_id(cve_id)
    kernel = kernel_for_version(spec.kernel_version)
    patch = kernel.patch_for(cve_id, augmented=False)
    print("== %s: %s ==" % (cve_id, title))

    # -- baseline ---------------------------------------------------------
    machine = boot_kernel(kernel.tree)
    updater = SourceLevelUpdater(machine)
    result = updater.apply(kernel.tree, patch)
    if not result.success:
        print("  baseline: REFUSED (%s: %s)"
              % (result.failure.name, result.detail or result.failure.value))
    else:
        print("  baseline: reports success, replaced %s"
              % result.replaced_functions)
        if spec.probe is not None:
            value = _run_probe(machine, spec.probe)
            if value == spec.probe.pre:
                print("  baseline: ...but the vulnerability STILL "
                      "TRIGGERS (stale inlined copy)")
            else:
                print("  baseline: fix effective")
        if spec.exploit is not None:
            uid = machine.run_user_program(kernel.exploit_source(spec),
                                           name="bx-" + cve_id)
            print("  baseline: exploit exit value %d" % uid)

    # -- ksplice ---------------------------------------------------------
    machine = boot_kernel(kernel.tree)
    core = KspliceCore(machine)
    pack = ksplice_create(kernel.tree, patch)
    core.apply(pack)
    print("  ksplice : applied cleanly, replaced %s"
          % pack.all_changed_functions())
    if spec.probe is not None:
        value = _run_probe(machine, spec.probe)
        print("  ksplice : fix %s"
              % ("effective" if value == spec.probe.post else "INEFFECTIVE"))
    if spec.exploit is not None:
        uid = machine.run_user_program(kernel.exploit_source(spec),
                                       name="kx-" + cve_id)
        print("  ksplice : exploit exit value %d -> %s"
              % (uid, "blocked" if uid in spec.exploit.blocked_values
                 else "NOT blocked"))
    print()


def main() -> None:
    run_case("CVE-2006-4997",
             "patched guard is inlined into its caller")
    run_case("CVE-2005-4639",
             "patched function uses the ambiguous static 'debug'")
    run_case("CVE-2007-4573",
             "patch lands in the assembly syscall entry path")


if __name__ == "__main__":
    main()

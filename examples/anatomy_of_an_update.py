#!/usr/bin/env python3
"""Anatomy of a hot update: every pipeline stage, shown with real data.

Walks one patch through the full Ksplice pipeline, printing what each
stage actually produced: the pre/post object code difference, the
extracted primary object (disassembled, relocations annotated), the
run-pre matching results including a solved ambiguous symbol, the
redirection jump bytes written into the running kernel, and the core's
status view afterwards.
"""

from repro import CompilerOptions, KspliceCore, SourceTree, boot_kernel, \
    ksplice_create
from repro.arch.disassembler import disassemble_one
from repro.core import diff_objects
from repro.core.objdiff import SectionStatus
from repro.kbuild import build_units
from repro.patch import make_patch
from repro.tools import dump_object_text

TREE = SourceTree(version="anatomy-1.0", files={
    "drivers/dst.c": """
static int debug;
int dst_ready(void) { debug = 7; return debug; }
""",
    "drivers/dst_ca.c": """
static int debug;
int dst_ca_slots[4] = { 5, 6, 7, 8 };

int ca_get_slot_info(int slot) {
    debug = slot;
    if (slot < 0) { return -22; }
    return dst_ca_slots[slot & 7];
}
""",
})

PATCHED = TREE.files["drivers/dst_ca.c"].replace(
    "    if (slot < 0) { return -22; }\n    return dst_ca_slots[slot & 7];",
    "    if (slot < 0 || slot > 3) { return -22; }\n"
    "    return dst_ca_slots[slot & 3];")


def main() -> None:
    flavor = CompilerOptions().pre_post_flavor()

    print("STAGE 0: the running kernel (merged .text, no relocations "
          "left)\n")
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)
    kallsyms = machine.image.kallsyms
    print("kallsyms has %d symbols; 'debug' is ambiguous: %s\n"
          % (kallsyms.total_symbols(),
             [hex(e.address) + " (" + e.unit + ")"
              for e in kallsyms.candidates("debug")]))

    print("STAGE 1: pre and post builds (-ffunction-sections "
          "-fdata-sections)\n")
    files = dict(TREE.files)
    files["drivers/dst_ca.c"] = PATCHED
    patch = make_patch(TREE.files, files)
    print(patch)
    post_tree = TREE.patched(patch)
    pre_obj = build_units(TREE, ["drivers/dst_ca.c"],
                          flavor).object_for("drivers/dst_ca.c")
    post_obj = build_units(post_tree, ["drivers/dst_ca.c"],
                           flavor).object_for("drivers/dst_ca.c")

    print("STAGE 2: pre-post differencing\n")
    diff = diff_objects(pre_obj, post_obj)
    for name, status in diff.section_status.items():
        if status is not SectionStatus.UNCHANGED:
            print("  %-28s %s" % (name, status.value))
    print("  changed functions: %s\n" % diff.changed_functions)

    print("STAGE 3: the extracted primary object (replacement code)\n")
    pack = ksplice_create(TREE, patch, description="bound the slot index")
    print(dump_object_text(pack.units[0].primary))

    print("\nSTAGE 4: ksplice-apply — run-pre matching solves 'debug'\n")
    old_bytes = machine.read_bytes(kallsyms.unique_address(
        "ca_get_slot_info"), 5)
    applied = core.apply(pack)
    result = applied.runpre_results["drivers/dst_ca.c"]
    print("  matched functions: %s"
          % {n: hex(a) for n, a in result.matched_functions.items()})
    print("  solved 'debug' = %s  (dst_ca.c's own instance, not "
          "dst.c's %s)"
          % (hex(result.value_of("debug")),
             hex(next(e.address for e in kallsyms.candidates("debug")
                      if e.unit == "drivers/dst.c"))))
    print("  bytes verified: %d, relocations solved: %d"
          % (result.bytes_matched, result.relocations_solved))

    print("\nSTAGE 5: the redirection jump\n")
    replaced = applied.replaced[0]
    new_bytes = machine.read_bytes(replaced.old_address, 5)
    jump = disassemble_one(new_bytes)
    print("  %s entry before: %s" % (replaced.name, old_bytes.hex()))
    print("  %s entry after:  %s  (%s -> 0x%08x)"
          % (replaced.name, new_bytes.hex(), jump.mnemonic,
             replaced.old_address + jump.length
             + jump.instruction.operands[0]))
    print("  saved bytes for undo: %s" % replaced.saved_bytes.hex())

    print("\nSTAGE 6: status and behaviour\n")
    print(core.render_status())
    print()
    print("  ca_get_slot_info(2) = %d"
          % machine.call_function("ca_get_slot_info", [2]))
    over = machine.call_function("ca_get_slot_info", [4])
    print("  ca_get_slot_info(4) = %d  (out-of-range now refused)"
          % (over - (1 << 32) if over >= (1 << 31) else over))


if __name__ == "__main__":
    main()

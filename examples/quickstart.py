#!/usr/bin/env python3
"""Quickstart: hot-patch a running (simulated) kernel without rebooting.

Mirrors the paper's §5 command-line session:

    user:~$ ksplice-create --patch=prctl ~/src
    root:~# ksplice-apply ./ksplice-xxxxxx.tar.gz
    Done!

We boot a small kernel, observe a buggy syscall, build an update pack
from a unified diff, apply it to the *running* kernel, observe the fix,
and finally reverse it with ksplice-undo.
"""

from repro import (
    KspliceCore,
    SourceTree,
    UpdatePack,
    boot_kernel,
    ksplice_create,
    make_patch,
)

# A two-unit kernel: an assembly syscall entry and one C unit.
ENTRY_S = """
.global syscall_entry
syscall_entry:
    cmpi r0, 1
    jge bad_sys
    cmpi r0, 0
    jl bad_sys
    push r3
    push r2
    push r1
    movi r4, 4
    mul r0, r4
    lea r4, sys_call_table
    add r4, r0
    loadr r4, r4, 0
    callr r4
    addi sp, 12
    ret
bad_sys:
    movi r0, -38
    ret
.section .data
sys_call_table:
    .word sys_compute
"""

COMPUTE_C = """
int call_count;

int sys_compute(int x, int b, int c) {
    call_count++;
    return x * x + 10;   // BUG: spec says x*x + 100
}
"""

TREE = SourceTree(version="quickstart-1.0", files={
    "arch/entry.s": ENTRY_S,
    "kernel/compute.c": COMPUTE_C,
})


def main() -> None:
    print("== booting the kernel ==")
    machine = boot_kernel(TREE)
    core = KspliceCore(machine)

    result = machine.run_user_program(
        "int main(void) { return __syscall(0, 7, 0, 0); }", name="probe-1")
    print("sys_compute(7) before update: %d   (buggy: wanted 149)" % result)

    print("\n== ksplice-create ==")
    fixed_files = dict(TREE.files)
    fixed_files["kernel/compute.c"] = COMPUTE_C.replace(
        "return x * x + 10;", "return x * x + 100;")
    patch = make_patch(TREE.files, fixed_files)
    print(patch)

    pack = ksplice_create(TREE, patch, description="fix compute constant")
    raw = pack.to_bytes()  # what would be written to ksplice-xxxxxx.tar.gz
    print("Ksplice update pack written: %s (%d bytes, %d unit(s), "
          "replaces %s)" % (pack.update_id, len(raw), len(pack.units),
                            pack.all_changed_functions()))

    print("\n== ksplice-apply ==")
    applied = core.apply(UpdatePack.from_bytes(raw))
    print("Done!  stop_machine window: %.3f ms, stack-check attempts: %d"
          % (applied.stop_report.wall_milliseconds,
             applied.stack_check_attempts))

    result = machine.run_user_program(
        "int main(void) { return __syscall(0, 7, 0, 0); }", name="probe-2")
    print("sys_compute(7) after update:  %d   (fixed)" % result)

    count = machine.read_u32(machine.symbol("call_count"))
    print("call_count survived the update: %d calls recorded" % count)

    print("\n== ksplice-undo ==")
    core.undo(pack.update_id)
    result = machine.run_user_program(
        "int main(void) { return __syscall(0, 7, 0, 0); }", name="probe-3")
    print("sys_compute(7) after undo:    %d   (original behaviour back)"
          % result)


if __name__ == "__main__":
    main()

"""Ksplice reproduction: automatic rebootless kernel updates.

This library reproduces *Ksplice: Automatic Rebootless Kernel Updates*
(Arnold & Kaashoek, EuroSys 2009) end to end on a simulated substrate:
a synthetic ISA (k86), an ELF-like object format (KELF), a C-subset
compiler (MiniC/kcc), a linker, and a running simulated kernel whose
threads execute real machine code.

The three calls that mirror the paper's command-line workflow:

>>> from repro import ksplice_create, KspliceCore, boot_kernel
>>> machine = boot_kernel(tree)                 # the running kernel
>>> pack = ksplice_create(tree, patch_text)     # ksplice-create
>>> core = KspliceCore(machine)
>>> applied = core.apply(pack)                  # ksplice-apply
>>> core.undo(pack.update_id)                   # ksplice-undo

See :mod:`repro.core` for the paper's techniques (pre-post differencing
and run-pre matching), :mod:`repro.evaluation` for the 64-CVE section-6
evaluation, and :mod:`repro.baseline` for the source-level comparator.
"""

from repro.compiler import CompilerOptions
from repro.core import (
    AppliedUpdate,
    KspliceCore,
    RunPreMatcher,
    UpdatePack,
    diff_objects,
    ksplice_create,
)
from repro.errors import (
    DataSemanticsError,
    KspliceCreateError,
    KspliceError,
    ReproError,
    RunPreMismatchError,
    StackCheckError,
    SymbolResolutionError,
    UpdateStateError,
)
from repro.kbuild import KernelConfig, SourceTree, build_tree
from repro.kernel import Machine, boot_kernel
from repro.linker import link_kernel
from repro.patch import apply_patch, make_patch, parse_patch

__version__ = "1.1.0"

__all__ = [
    "AppliedUpdate",
    "CompilerOptions",
    "DataSemanticsError",
    "KernelConfig",
    "KspliceCore",
    "KspliceCreateError",
    "KspliceError",
    "Machine",
    "ReproError",
    "RunPreMatcher",
    "RunPreMismatchError",
    "SourceTree",
    "StackCheckError",
    "SymbolResolutionError",
    "UpdatePack",
    "UpdateStateError",
    "apply_patch",
    "boot_kernel",
    "build_tree",
    "diff_objects",
    "ksplice_create",
    "link_kernel",
    "make_patch",
    "parse_patch",
    "__version__",
]

"""Linear-sweep disassembler for k86.

The run-pre matcher depends on exactly the two architecture facts the paper
names in §4.3: instruction lengths, and which instructions take pc-relative
offsets.  Both come from the instruction table; this module packages them
as a stream decoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.arch import isa
from repro.arch.isa import Instruction, OperandKind


@dataclass(frozen=True)
class DecodedInstruction:
    """An instruction plus where it was found."""

    offset: int
    instruction: Instruction
    raw: bytes

    @property
    def length(self) -> int:
        return self.instruction.length

    @property
    def mnemonic(self) -> str:
        return self.instruction.mnemonic

    @property
    def canonical(self) -> str:
        return self.instruction.spec.canonical

    @property
    def is_nop(self) -> bool:
        return self.instruction.spec.is_nop

    @property
    def is_pc_relative(self) -> bool:
        return self.instruction.spec.is_pc_relative

    def branch_target_offset(self) -> Optional[int]:
        """Branch target as an offset into the disassembled buffer."""
        if not self.is_pc_relative:
            return None
        return self.offset + self.length + self.instruction.operands[0]


def disassemble_one(code: bytes, offset: int = 0) -> DecodedInstruction:
    """Decode a single instruction at ``offset``."""
    instruction = isa.decode_instruction(code, offset)
    raw = bytes(code[offset:offset + instruction.length])
    return DecodedInstruction(offset=offset, instruction=instruction, raw=raw)


def iter_instructions(code: bytes, start: int = 0,
                      end: int = -1) -> Iterator[DecodedInstruction]:
    """Yield instructions from ``start`` until ``end`` (or end of buffer)."""
    limit = len(code) if end < 0 else min(end, len(code))
    offset = start
    while offset < limit:
        decoded = disassemble_one(code, offset)
        yield decoded
        offset += decoded.length


def disassemble(code: bytes) -> List[DecodedInstruction]:
    """Disassemble the whole buffer as a list."""
    return list(iter_instructions(code))


def format_instruction(decoded: DecodedInstruction) -> str:
    """Human-readable rendering, e.g. ``0004: movi r0, 42``."""
    instr = decoded.instruction
    parts: List[str] = []
    operand_iter = iter(instr.operands)
    for kind in instr.spec.operands:
        if kind is OperandKind.PAD:
            continue
        value = next(operand_iter)
        if kind is OperandKind.REG:
            parts.append(isa.REGISTER_NAMES[value])
        elif kind in (OperandKind.REL32, OperandKind.REL8):
            target = decoded.offset + instr.length + value
            parts.append("0x%x" % target)
        elif kind is OperandKind.ABS32:
            parts.append("[0x%08x]" % value)
        else:
            parts.append(str(value))
    text = instr.mnemonic
    if parts:
        text += " " + ", ".join(parts)
    return "%04x: %s" % (decoded.offset, text)

"""No-op sequence handling.

Assemblers pad code for alignment with *efficient* multi-byte nops rather
than runs of single-byte nops.  The run-pre matcher must recognize every
such sequence so it can skip alignment padding that exists in the run code
but not in the pre code (§4.3 of the paper).
"""

from __future__ import annotations

from typing import List

from repro.arch.isa import Opcode, spec_for
from repro.errors import DisassemblyError

#: nop encodings by length; index = length in bytes
_NOP_BY_LENGTH = {
    1: bytes([int(Opcode.NOP)]),
    2: bytes([int(Opcode.NOP2), 0]),
    3: bytes([int(Opcode.NOP3), 0, 0]),
    4: bytes([int(Opcode.NOP4), 0, 0, 0]),
}

MAX_NOP_LENGTH = max(_NOP_BY_LENGTH)


def nop_sequence(length: int) -> bytes:
    """Return an efficient nop filler of exactly ``length`` bytes.

    Uses the longest available multi-byte nops first, the way gas pads
    alignment with ``nopw``/``nopl`` sequences.
    """
    if length < 0:
        raise ValueError("negative nop length")
    out = bytearray()
    remaining = length
    while remaining > 0:
        step = min(remaining, MAX_NOP_LENGTH)
        out += _NOP_BY_LENGTH[step]
        remaining -= step
    return bytes(out)


def is_nop(code: bytes, offset: int = 0) -> bool:
    """True if the instruction at ``code[offset:]`` is any nop encoding."""
    if offset >= len(code):
        return False
    try:
        return spec_for(code[offset]).is_nop
    except DisassemblyError:
        return False


def longest_nop_at(code: bytes, offset: int = 0) -> int:
    """Length of the nop *instruction* at ``offset``, or 0 if not a nop."""
    if not is_nop(code, offset):
        return 0
    return spec_for(code[offset]).length


def skip_nops(code: bytes, offset: int, limit: int = -1) -> int:
    """Advance ``offset`` past consecutive nop instructions.

    ``limit`` bounds the scan (exclusive end offset); -1 means to the end
    of ``code``.  Returns the first non-nop offset.
    """
    end = len(code) if limit < 0 else min(limit, len(code))
    while offset < end:
        step = longest_nop_at(code, offset)
        if step == 0 or offset + step > end:
            break
        offset += step
    return offset


def split_nop_run(code: bytes, offset: int) -> List[int]:
    """Return the lengths of each nop instruction in the run at ``offset``."""
    lengths: List[int] = []
    while True:
        step = longest_nop_at(code, offset)
        if step == 0:
            break
        lengths.append(step)
        offset += step
    return lengths

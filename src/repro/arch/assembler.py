"""Two-pass assembler for k86 with branch relaxation.

The assembler consumes a list of structured items (labels, instructions,
alignment and data directives) and produces raw bytes plus label offsets
and relocation requests.  A small text front-end parses ``.s`` source into
those items, which is what kernel assembly files (e.g. the syscall entry
path) use.

Branch relaxation follows the classic grow-only algorithm: every branch to
a label defined in the same stream starts as a *short* (rel8) encoding and
is widened to the *long* (rel32) form when its displacement does not fit;
iteration continues until no branch grows.  Branches to undefined symbols
are always long and yield a pc32 relocation request with the canonical -4
addend, mirroring x86.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.arch import isa
from repro.arch.isa import Instruction, OperandKind, PC32_ADDEND
from repro.arch.nops import nop_sequence
from repro.errors import AssemblyError

# ---------------------------------------------------------------------------
# Structured assembly items


@dataclass(frozen=True)
class Label:
    name: str


@dataclass(frozen=True)
class SymRef:
    """Symbolic reference used where an abs32/imm32 operand goes."""

    name: str
    addend: int = 0


@dataclass(frozen=True)
class LabelRef:
    """Branch-target reference (local label or external symbol)."""

    name: str


@dataclass(frozen=True)
class Insn:
    mnemonic: str
    operands: Tuple[object, ...] = ()


@dataclass(frozen=True)
class Align:
    boundary: int


@dataclass(frozen=True)
class Data:
    """Literal data bytes; ``relocs`` are (offset-within-data, SymRef)."""

    payload: bytes
    relocs: Tuple[Tuple[int, SymRef], ...] = ()


Item = Union[Label, Insn, Align, Data]


@dataclass(frozen=True)
class RelocationRequest:
    """A fix-up the linker or Ksplice must perform later."""

    offset: int
    symbol: str
    kind: str  # "abs32" or "pc32"
    addend: int


@dataclass
class AssembledCode:
    """Result of assembling one stream (one section's worth of items)."""

    code: bytes = b""
    labels: Dict[str, int] = field(default_factory=dict)
    relocations: List[RelocationRequest] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Core assembly

_SHORT_FOR_LONG = {
    "jmp": "jmps",
    "jz": "jzs",
    "jnz": "jnzs",
    "jl": "jls",
    "jg": "jgs",
    "jle": "jles",
    "jge": "jges",
}
_LONG_LEN = 5
_SHORT_LEN = 2


class Assembler:
    """Assembles one item stream into :class:`AssembledCode`."""

    def __init__(self, items: Sequence[Item], allow_short_branches: bool = True):
        self._items = list(items)
        self._allow_short = allow_short_branches

    def assemble(self) -> AssembledCode:
        defined = {
            item.name for item in self._items if isinstance(item, Label)
        }
        # Branch index -> currently long?  Grow-only relaxation state.
        long_branches: Dict[int, bool] = {}
        for idx, item in enumerate(self._items):
            if self._is_relaxable_branch(item, defined):
                long_branches[idx] = not self._allow_short
            elif isinstance(item, Insn) and self._branch_target(item) is not None:
                long_branches[idx] = True  # undefined target: always long

        while True:
            offsets, sizes = self._layout(long_branches)
            grew = False
            for idx, is_long in long_branches.items():
                if is_long:
                    continue
                item = self._items[idx]
                target = self._branch_target(item)
                assert target is not None
                disp = offsets[target] - (self._item_offset(idx, sizes) + _SHORT_LEN)
                if not -128 <= disp < 128:
                    long_branches[idx] = True
                    grew = True
            if not grew:
                break

        return self._emit(long_branches, offsets, sizes)

    # -- helpers ---------------------------------------------------------

    def _branch_target(self, item: Item) -> Optional[str]:
        if not isinstance(item, Insn):
            return None
        spec = isa.SPEC_BY_MNEMONIC.get(item.mnemonic)
        if spec is None:
            raise AssemblyError("unknown mnemonic %r" % item.mnemonic)
        if not spec.is_pc_relative:
            return None
        if item.operands and isinstance(item.operands[0], LabelRef):
            return item.operands[0].name
        return None

    def _is_relaxable_branch(self, item: Item, defined: set) -> bool:
        target = self._branch_target(item)
        if target is None or target not in defined:
            return False
        # Calls have no short form.
        return isinstance(item, Insn) and item.mnemonic in _SHORT_FOR_LONG

    def _item_size(self, idx: int, long_branches: Dict[int, bool],
                   at_offset: int) -> int:
        item = self._items[idx]
        if isinstance(item, Label):
            return 0
        if isinstance(item, Align):
            if item.boundary <= 0 or item.boundary & (item.boundary - 1):
                raise AssemblyError("alignment must be a power of two")
            return (-at_offset) % item.boundary
        if isinstance(item, Data):
            return len(item.payload)
        assert isinstance(item, Insn)
        if idx in long_branches:
            return _LONG_LEN if long_branches[idx] else _SHORT_LEN
        spec = isa.SPEC_BY_MNEMONIC[item.mnemonic]
        return spec.length

    def _layout(self, long_branches: Dict[int, bool]):
        """Compute label offsets and per-item sizes for the current state."""
        offsets: Dict[str, int] = {}
        sizes: List[int] = []
        pos = 0
        for idx, item in enumerate(self._items):
            if isinstance(item, Label):
                offsets[item.name] = pos
                sizes.append(0)
                continue
            size = self._item_size(idx, long_branches, pos)
            sizes.append(size)
            pos += size
        return offsets, sizes

    def _item_offset(self, idx: int, sizes: List[int]) -> int:
        return sum(sizes[:idx])

    def _emit(self, long_branches: Dict[int, bool], offsets: Dict[str, int],
              sizes: List[int]) -> AssembledCode:
        out = bytearray()
        relocs: List[RelocationRequest] = []
        for idx, item in enumerate(self._items):
            if isinstance(item, Label):
                continue
            if isinstance(item, Align):
                out += nop_sequence(sizes[idx])
                continue
            if isinstance(item, Data):
                base = len(out)
                out += item.payload
                for rel_off, ref in item.relocs:
                    relocs.append(RelocationRequest(
                        offset=base + rel_off, symbol=ref.name,
                        kind="abs32", addend=ref.addend))
                continue
            assert isinstance(item, Insn)
            out += self._encode_insn(idx, item, long_branches, offsets,
                                     len(out), relocs)
        return AssembledCode(code=bytes(out), labels=dict(offsets),
                             relocations=relocs)

    def _encode_insn(self, idx: int, item: Insn,
                     long_branches: Dict[int, bool], offsets: Dict[str, int],
                     at: int, relocs: List[RelocationRequest]) -> bytes:
        mnemonic = item.mnemonic
        spec = isa.SPEC_BY_MNEMONIC[mnemonic]
        target = self._branch_target(item)

        if target is not None:
            if idx in long_branches and not long_branches[idx]:
                short = _SHORT_FOR_LONG[mnemonic]
                disp = offsets[target] - (at + _SHORT_LEN)
                return isa.encode_instruction(isa.make(short, disp))
            if target in offsets:
                disp = offsets[target] - (at + _LONG_LEN)
                return isa.encode_instruction(isa.make(mnemonic, disp))
            # Undefined symbol: emit long form with pc32 relocation.
            insn = isa.make(mnemonic, 0)
            encoded = bytearray(isa.encode_instruction(insn))
            rel_off = spec.pc_relative_operand_offset
            assert rel_off is not None
            relocs.append(RelocationRequest(
                offset=at + rel_off, symbol=target, kind="pc32",
                addend=PC32_ADDEND))
            return bytes(encoded)

        # Non-branch: resolve SymRef operands to relocations.
        values: List[int] = []
        pending: List[Tuple[int, SymRef]] = []  # (operand index, ref)
        real_kinds = [k for k in spec.operands if k is not OperandKind.PAD]
        if len(item.operands) != len(real_kinds):
            raise AssemblyError(
                "%s takes %d operands, got %d"
                % (mnemonic, len(real_kinds), len(item.operands)))
        for op_idx, (kind, operand) in enumerate(zip(real_kinds, item.operands)):
            if isinstance(operand, SymRef):
                if kind not in (OperandKind.ABS32, OperandKind.IMM32):
                    raise AssemblyError(
                        "symbolic operand not allowed for %s field of %s"
                        % (kind.value, mnemonic))
                pending.append((op_idx, operand))
                values.append(0)
            elif isinstance(operand, LabelRef):
                raise AssemblyError(
                    "label reference in non-branch operand of %s" % mnemonic)
            else:
                values.append(int(operand))
        encoded = isa.encode_instruction(Instruction(spec=spec,
                                                     operands=tuple(values)))
        for op_idx, ref in pending:
            field_off = self._operand_field_offset(spec, op_idx)
            relocs.append(RelocationRequest(
                offset=at + field_off, symbol=ref.name, kind="abs32",
                addend=ref.addend))
        return encoded

    @staticmethod
    def _operand_field_offset(spec, operand_index: int) -> int:
        """Byte offset of the Nth non-PAD operand field."""
        sizes = {
            OperandKind.REG: 1,
            OperandKind.IMM32: 4,
            OperandKind.ABS32: 4,
            OperandKind.REL32: 4,
            OperandKind.REL8: 1,
            OperandKind.PAD: 1,
        }
        offset = 1
        seen = 0
        for kind in spec.operands:
            if kind is not OperandKind.PAD:
                if seen == operand_index:
                    return offset
                seen += 1
            offset += sizes[kind]
        raise AssemblyError("operand index out of range")


def assemble(items: Sequence[Item], allow_short_branches: bool = True) -> AssembledCode:
    """Assemble structured ``items`` into code, labels, and relocations."""
    return Assembler(items, allow_short_branches=allow_short_branches).assemble()


# ---------------------------------------------------------------------------
# Text front-end

_LABEL_RE = re.compile(r"^([.\w$]+):$")
_REG_BY_NAME = {name: i for i, name in enumerate(isa.REGISTER_NAMES)}
# r5/r6 are also addressable by number for convenience.
_REG_BY_NAME.update({"r5": isa.REG_FP, "r6": isa.REG_SP})


def _parse_operand(token: str, kind: OperandKind) -> object:
    token = token.strip()
    if kind is OperandKind.REG:
        if token not in _REG_BY_NAME:
            raise AssemblyError("bad register %r" % token)
        return _REG_BY_NAME[token]
    if kind in (OperandKind.REL32, OperandKind.REL8):
        return LabelRef(token)
    # imm32 / abs32: integer literal, or symbol with optional +offset.
    try:
        return int(token, 0)
    except ValueError:
        pass
    match = re.match(r"^([.\w$]+)\s*([+-]\s*\d+)?$", token)
    if not match:
        raise AssemblyError("bad operand %r" % token)
    addend = int(match.group(2).replace(" ", "")) if match.group(2) else 0
    return SymRef(match.group(1), addend)


@dataclass
class ParsedAsm:
    """One parsed ``.s`` file: item streams per section, symbol directives."""

    sections: Dict[str, List[Item]]
    global_symbols: List[str]
    local_symbols: List[str]


def parse_asm(text: str) -> ParsedAsm:
    """Parse textual k86 assembly into per-section item streams.

    Supported directives: ``.section NAME``, ``.global NAME``,
    ``.local NAME``, ``.align N``, ``.byte v, ...``, ``.word v, ...``
    (32-bit words; symbol names allowed and produce abs32 relocations).
    Comments start with ``;`` or ``#``.
    """
    sections: Dict[str, List[Item]] = {}
    global_symbols: List[str] = []
    local_symbols: List[str] = []
    current = ".text"

    def items() -> List[Item]:
        return sections.setdefault(current, [])

    for raw_line in text.splitlines():
        line = re.split(r"[;#]", raw_line, maxsplit=1)[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            items().append(Label(label_match.group(1)))
            continue
        parts = line.split(None, 1)
        head = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if head == ".section":
            current = rest.strip()
            continue
        if head == ".global":
            global_symbols.append(rest.strip())
            continue
        if head == ".local":
            local_symbols.append(rest.strip())
            continue
        if head == ".align":
            items().append(Align(int(rest.strip(), 0)))
            continue
        if head == ".byte":
            values = [int(v.strip(), 0) & 0xFF for v in rest.split(",")]
            items().append(Data(bytes(values)))
            continue
        if head == ".word":
            payload = bytearray()
            relocs: List[Tuple[int, SymRef]] = []
            for token in rest.split(","):
                token = token.strip()
                try:
                    value = int(token, 0)
                    payload += (value & 0xFFFFFFFF).to_bytes(4, "little")
                except ValueError:
                    relocs.append((len(payload), SymRef(token)))
                    payload += b"\0\0\0\0"
            items().append(Data(bytes(payload), tuple(relocs)))
            continue
        if head.startswith("."):
            raise AssemblyError("unknown directive %r" % head)
        # Instruction.
        spec = isa.SPEC_BY_MNEMONIC.get(head)
        if spec is None:
            raise AssemblyError("unknown mnemonic %r" % head)
        real_kinds = [k for k in spec.operands if k is not OperandKind.PAD]
        tokens = [t for t in rest.split(",")] if rest else []
        if len(tokens) != len(real_kinds):
            raise AssemblyError(
                "%s takes %d operands, got %d in %r"
                % (head, len(real_kinds), len(tokens), raw_line.strip()))
        operands = tuple(
            _parse_operand(token, kind)
            for token, kind in zip(tokens, real_kinds)
        )
        items().append(Insn(head, operands))

    return ParsedAsm(sections=sections, global_symbols=global_symbols,
                     local_symbols=local_symbols)

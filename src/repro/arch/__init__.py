"""k86: the synthetic 32-bit ISA used by the simulated kernel.

k86 deliberately reproduces the x86 properties that the Ksplice paper's
run-pre matching must handle:

* variable-length instructions,
* pc-relative control transfers with *short* (rel8) and *long* (rel32)
  encodings of the same operation,
* multi-byte no-op sequences emitted by the assembler for alignment,
* absolute 32-bit memory operands that the object format relocates.

The package provides the instruction table (:mod:`repro.arch.isa`), an
assembler (:mod:`repro.arch.assembler`), a disassembler
(:mod:`repro.arch.disassembler`), and nop-sequence helpers
(:mod:`repro.arch.nops`).
"""

from repro.arch.isa import (
    Instruction,
    Opcode,
    OperandKind,
    REGISTER_NAMES,
    REG_FP,
    REG_SP,
    decode_instruction,
    encode_instruction,
    instruction_length,
    spec_for,
)
from repro.arch.assembler import Assembler, assemble
from repro.arch.disassembler import disassemble, disassemble_one, format_instruction
from repro.arch.nops import is_nop, longest_nop_at, nop_sequence

__all__ = [
    "Assembler",
    "Instruction",
    "Opcode",
    "OperandKind",
    "REGISTER_NAMES",
    "REG_FP",
    "REG_SP",
    "assemble",
    "decode_instruction",
    "disassemble",
    "disassemble_one",
    "encode_instruction",
    "format_instruction",
    "instruction_length",
    "is_nop",
    "longest_nop_at",
    "nop_sequence",
    "spec_for",
]

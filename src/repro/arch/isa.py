"""Instruction set definition for k86.

Every instruction is ``opcode byte`` followed by zero or more operand fields.
Operand kinds:

``REG``
    one byte, register number 0..7.
``IMM32``
    four bytes, little-endian, signed or unsigned depending on instruction.
``ABS32``
    four bytes, little-endian absolute address.  This is the field the
    object format emits ``R_ABS32`` relocations against.
``REL32``
    four bytes, little-endian signed displacement relative to the *end* of
    the displacement field (x86 convention; the canonical relocation addend
    is therefore -4).  ``R_PC32`` relocations target this field.
``REL8``
    one byte signed displacement relative to the end of the field.  Short
    jumps are never relocated; the compiler only emits them for targets
    inside the same section when the layout is final.
``PAD``
    ignored filler bytes inside multi-byte nops.

Short/long pairs (``JMPS``/``JMP`` etc.) share a *canonical mnemonic* so the
run-pre matcher can treat them as the same operation with different
encodings, exactly as Ksplice must treat x86 ``jmp rel8`` vs ``jmp rel32``.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblyError, DisassemblyError

REGISTER_NAMES = ("r0", "r1", "r2", "r3", "r4", "fp", "sp", "r7")
REG_FP = 5
REG_SP = 6

NUM_REGISTERS = len(REGISTER_NAMES)


class OperandKind(enum.Enum):
    REG = "reg"
    IMM32 = "imm32"
    ABS32 = "abs32"
    REL32 = "rel32"
    REL8 = "rel8"
    PAD = "pad"


class Opcode(enum.IntEnum):
    HLT = 0x00
    NOP = 0x01
    NOP2 = 0x02
    NOP3 = 0x03
    NOP4 = 0x04
    MOVI = 0x10
    MOVR = 0x11
    LOAD = 0x12
    STORE = 0x13
    LOADR = 0x14
    STORER = 0x15
    LEA = 0x16
    ADD = 0x20
    SUB = 0x21
    MUL = 0x22
    DIV = 0x23
    AND = 0x24
    OR = 0x25
    XOR = 0x26
    SHL = 0x27
    SHR = 0x28
    ADDI = 0x29
    CMP = 0x2A
    CMPI = 0x2B
    NEG = 0x2C
    NOT = 0x2D
    MOD = 0x2E
    JMP = 0x30
    JMPS = 0x31
    JZ = 0x32
    JZS = 0x33
    JNZ = 0x34
    JNZS = 0x35
    JL = 0x36
    JLS = 0x37
    JG = 0x38
    JGS = 0x39
    JLE = 0x3A
    JLES = 0x3B
    JGE = 0x3C
    JGES = 0x3D
    CALL = 0x40
    CALLR = 0x41
    RET = 0x42
    PUSH = 0x50
    POP = 0x51
    SYSCALL = 0x60
    SCHED = 0x61
    CLI = 0x62  # disable preemption (enter critical section)
    STI = 0x63  # enable preemption


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one opcode."""

    opcode: Opcode
    mnemonic: str
    operands: Tuple[OperandKind, ...]
    #: canonical mnemonic shared between short and long encodings
    canonical: str
    #: True for the nop family (any length)
    is_nop: bool = False

    @cached_property
    def length(self) -> int:
        """Total encoded length in bytes, including the opcode byte."""
        sizes = {
            OperandKind.REG: 1,
            OperandKind.IMM32: 4,
            OperandKind.ABS32: 4,
            OperandKind.REL32: 4,
            OperandKind.REL8: 1,
            OperandKind.PAD: 1,
        }
        return 1 + sum(sizes[kind] for kind in self.operands)

    @cached_property
    def is_pc_relative(self) -> bool:
        return any(kind in (OperandKind.REL32, OperandKind.REL8) for kind in self.operands)

    @cached_property
    def pc_relative_operand_offset(self) -> Optional[int]:
        """Byte offset (from instruction start) of the rel operand field."""
        offset = 1
        for kind in self.operands:
            if kind in (OperandKind.REL32, OperandKind.REL8):
                return offset
            offset += {
                OperandKind.REG: 1,
                OperandKind.IMM32: 4,
                OperandKind.ABS32: 4,
                OperandKind.PAD: 1,
            }[kind]
        return None


def _spec(opcode: Opcode, mnemonic: str, *operands: OperandKind,
          canonical: Optional[str] = None, is_nop: bool = False) -> InstructionSpec:
    return InstructionSpec(
        opcode=opcode,
        mnemonic=mnemonic,
        operands=tuple(operands),
        canonical=canonical or mnemonic,
        is_nop=is_nop,
    )


_R = OperandKind.REG
_I = OperandKind.IMM32
_A = OperandKind.ABS32
_REL32 = OperandKind.REL32
_REL8 = OperandKind.REL8
_P = OperandKind.PAD

_SPECS: Tuple[InstructionSpec, ...] = (
    _spec(Opcode.HLT, "hlt"),
    _spec(Opcode.NOP, "nop", is_nop=True),
    _spec(Opcode.NOP2, "nop2", _P, canonical="nop", is_nop=True),
    _spec(Opcode.NOP3, "nop3", _P, _P, canonical="nop", is_nop=True),
    _spec(Opcode.NOP4, "nop4", _P, _P, _P, canonical="nop", is_nop=True),
    _spec(Opcode.MOVI, "movi", _R, _I),
    _spec(Opcode.MOVR, "movr", _R, _R),
    _spec(Opcode.LOAD, "load", _R, _A),
    _spec(Opcode.STORE, "store", _A, _R),
    _spec(Opcode.LOADR, "loadr", _R, _R, _I),
    _spec(Opcode.STORER, "storer", _R, _I, _R),
    _spec(Opcode.LEA, "lea", _R, _A),
    _spec(Opcode.ADD, "add", _R, _R),
    _spec(Opcode.SUB, "sub", _R, _R),
    _spec(Opcode.MUL, "mul", _R, _R),
    _spec(Opcode.DIV, "div", _R, _R),
    _spec(Opcode.AND, "and", _R, _R),
    _spec(Opcode.OR, "or", _R, _R),
    _spec(Opcode.XOR, "xor", _R, _R),
    _spec(Opcode.SHL, "shl", _R, _R),
    _spec(Opcode.SHR, "shr", _R, _R),
    _spec(Opcode.ADDI, "addi", _R, _I),
    _spec(Opcode.CMP, "cmp", _R, _R),
    _spec(Opcode.CMPI, "cmpi", _R, _I),
    _spec(Opcode.NEG, "neg", _R),
    _spec(Opcode.NOT, "not", _R),
    _spec(Opcode.MOD, "mod", _R, _R),
    _spec(Opcode.JMP, "jmp", _REL32, canonical="jmp"),
    _spec(Opcode.JMPS, "jmps", _REL8, canonical="jmp"),
    _spec(Opcode.JZ, "jz", _REL32, canonical="jz"),
    _spec(Opcode.JZS, "jzs", _REL8, canonical="jz"),
    _spec(Opcode.JNZ, "jnz", _REL32, canonical="jnz"),
    _spec(Opcode.JNZS, "jnzs", _REL8, canonical="jnz"),
    _spec(Opcode.JL, "jl", _REL32, canonical="jl"),
    _spec(Opcode.JLS, "jls", _REL8, canonical="jl"),
    _spec(Opcode.JG, "jg", _REL32, canonical="jg"),
    _spec(Opcode.JGS, "jgs", _REL8, canonical="jg"),
    _spec(Opcode.JLE, "jle", _REL32, canonical="jle"),
    _spec(Opcode.JLES, "jles", _REL8, canonical="jle"),
    _spec(Opcode.JGE, "jge", _REL32, canonical="jge"),
    _spec(Opcode.JGES, "jges", _REL8, canonical="jge"),
    _spec(Opcode.CALL, "call", _REL32, canonical="call"),
    _spec(Opcode.CALLR, "callr", _R),
    _spec(Opcode.RET, "ret"),
    _spec(Opcode.PUSH, "push", _R),
    _spec(Opcode.POP, "pop", _R),
    _spec(Opcode.SYSCALL, "syscall"),
    _spec(Opcode.SCHED, "sched"),
    _spec(Opcode.CLI, "cli"),
    _spec(Opcode.STI, "sti"),
)

SPEC_BY_OPCODE: Dict[int, InstructionSpec] = {int(s.opcode): s for s in _SPECS}
SPEC_BY_MNEMONIC: Dict[str, InstructionSpec] = {s.mnemonic: s for s in _SPECS}

#: opcode -> encoded length, for the interpreter's hot path
LENGTH_BY_OPCODE: Dict[int, int] = {int(s.opcode): s.length for s in _SPECS}

#: Longest encodable instruction, used to bound lookahead during decoding.
MAX_INSTRUCTION_LENGTH = max(s.length for s in _SPECS)

#: rel32/rel8 displacements are relative to the end of the displacement
#: field, so a relocation against the start of the field uses this addend.
PC32_ADDEND = -4


def spec_for(opcode: int) -> InstructionSpec:
    """Return the spec for ``opcode``, raising on invalid opcodes."""
    spec = SPEC_BY_OPCODE.get(opcode)
    if spec is None:
        raise DisassemblyError("invalid opcode 0x%02x" % opcode)
    return spec


@dataclass(frozen=True)
class Instruction:
    """A decoded (or to-be-encoded) instruction.

    ``operands`` holds one integer per non-PAD operand, in spec order.
    REL operands store the raw signed displacement, not the target.
    """

    spec: InstructionSpec
    operands: Tuple[int, ...]

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def length(self) -> int:
        return self.spec.length

    def rel_target(self, address: int) -> int:
        """Absolute branch target given the instruction's ``address``."""
        if not self.spec.is_pc_relative:
            raise ValueError("%s is not pc-relative" % self.mnemonic)
        return address + self.length + self.operands[0]


def instruction_length(opcode: int) -> int:
    """Length in bytes of the instruction starting with ``opcode``."""
    length = LENGTH_BY_OPCODE.get(opcode)
    if length is None:
        raise DisassemblyError("invalid opcode 0x%02x" % opcode)
    return length


def encode_instruction(instr: Instruction) -> bytes:
    """Encode ``instr`` to bytes."""
    spec = instr.spec
    out = bytearray([int(spec.opcode)])
    it = iter(instr.operands)
    for kind in spec.operands:
        if kind is OperandKind.PAD:
            out.append(0)
            continue
        value = next(it)
        if kind is OperandKind.REG:
            if not 0 <= value < NUM_REGISTERS:
                raise AssemblyError("bad register %r in %s" % (value, spec.mnemonic))
            out.append(value)
        elif kind in (OperandKind.IMM32, OperandKind.ABS32):
            out += struct.pack("<I", value & 0xFFFFFFFF)
        elif kind is OperandKind.REL32:
            if not -(1 << 31) <= value < (1 << 31):
                raise AssemblyError("rel32 displacement out of range: %d" % value)
            out += struct.pack("<i", value)
        elif kind is OperandKind.REL8:
            if not -128 <= value < 128:
                raise AssemblyError("rel8 displacement out of range: %d" % value)
            out += struct.pack("<b", value)
    remaining = list(it)
    if remaining:
        raise AssemblyError("too many operands for %s" % spec.mnemonic)
    return bytes(out)


def decode_instruction(code: bytes, offset: int = 0) -> Instruction:
    """Decode the instruction at ``code[offset:]``."""
    if offset >= len(code):
        raise DisassemblyError("decode past end of code")
    spec = spec_for(code[offset])
    if offset + spec.length > len(code):
        raise DisassemblyError(
            "truncated %s at offset %d (need %d bytes, have %d)"
            % (spec.mnemonic, offset, spec.length, len(code) - offset)
        )
    operands: List[int] = []
    pos = offset + 1
    for kind in spec.operands:
        if kind is OperandKind.PAD:
            pos += 1
        elif kind is OperandKind.REG:
            reg = code[pos]
            if reg >= NUM_REGISTERS:
                raise DisassemblyError(
                    "bad register %d at offset %d" % (reg, pos)
                )
            operands.append(reg)
            pos += 1
        elif kind in (OperandKind.IMM32, OperandKind.ABS32):
            operands.append(struct.unpack_from("<I", code, pos)[0])
            pos += 4
        elif kind is OperandKind.REL32:
            operands.append(struct.unpack_from("<i", code, pos)[0])
            pos += 4
        elif kind is OperandKind.REL8:
            operands.append(struct.unpack_from("<b", code, pos)[0])
            pos += 1
    return Instruction(spec=spec, operands=tuple(operands))


def make(mnemonic: str, *operands: int) -> Instruction:
    """Build an :class:`Instruction` from a mnemonic and operand values."""
    spec = SPEC_BY_MNEMONIC.get(mnemonic)
    if spec is None:
        raise AssemblyError("unknown mnemonic %r" % mnemonic)
    wanted = sum(1 for kind in spec.operands if kind is not OperandKind.PAD)
    if len(operands) != wanted:
        raise AssemblyError(
            "%s takes %d operands, got %d" % (mnemonic, wanted, len(operands))
        )
    return Instruction(spec=spec, operands=tuple(operands))

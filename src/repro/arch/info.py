"""ArchInfo: the architecture-specific knowledge Ksplice needs.

§4.3 enumerates exactly what run-pre matching must know about an
architecture: how to recognize no-op sequences, the lengths of all
instructions, and which instructions take pc-relative offsets.  §5 adds
one more piece for apply: how to assemble the redirection jump.  The
paper implemented x86-32 and x86-64 and notes "most of the system is
architecture-independent" — this module is where that independence
lives: the matcher and the core consume an :class:`ArchInfo`, and a
second architecture is a second instance, not a second code path.

Two instances ship: ``K86`` (the default) and ``K86_WIDE``, a variant
with a different (longer) redirection-jump encoding standing in for the
paper's x86-64 port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.arch import isa
from repro.arch.disassembler import DecodedInstruction, disassemble_one
from repro.arch.nops import longest_nop_at


@dataclass(frozen=True)
class ArchInfo:
    """Everything architecture-specific the Ksplice core consumes."""

    name: str
    #: decode one instruction from a byte window
    decode: Callable[[bytes, int], DecodedInstruction]
    #: length of the instruction starting with this opcode byte
    instruction_length: Callable[[int], int]
    #: length of the nop *instruction* at this offset, or 0
    nop_length_at: Callable[[bytes, int], int]
    #: size in bytes of the redirection jump apply writes
    jump_size: int
    #: encode a jump from ``source`` to ``target`` (absolute addresses)
    encode_jump: Callable[[int, int], bytes]

    def decode_one(self, code: bytes, offset: int = 0) -> DecodedInstruction:
        return self.decode(code, offset)


def _k86_encode_jump(source: int, target: int) -> bytes:
    displacement = target - (source + 5)
    return isa.encode_instruction(isa.make("jmp", displacement))


def _k86_wide_encode_jump(source: int, target: int) -> bytes:
    """The 'x86-64' flavour: a long jump built as LEA+CALLR-style is not
    needed on k86, but a wider encoding demonstrates the seam — a 5-byte
    rel32 jump padded to 8 bytes with an efficient nop sequence."""
    from repro.arch.nops import nop_sequence

    displacement = target - (source + 5)
    return isa.encode_instruction(isa.make("jmp", displacement)) + \
        nop_sequence(3)


K86 = ArchInfo(
    name="k86",
    decode=disassemble_one,
    instruction_length=isa.instruction_length,
    nop_length_at=longest_nop_at,
    jump_size=5,
    encode_jump=_k86_encode_jump,
)

K86_WIDE = ArchInfo(
    name="k86-wide",
    decode=disassemble_one,
    instruction_length=isa.instruction_length,
    nop_length_at=longest_nop_at,
    jump_size=8,
    encode_jump=_k86_wide_encode_jump,
)

DEFAULT_ARCH = K86

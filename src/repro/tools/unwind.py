"""Kernel stack unwinding: symbolized backtraces for threads and oopses.

The unwinder walks the frame-pointer chain the compiler's prologues
maintain (``push fp; movr fp, sp``): at each frame, ``[fp]`` holds the
caller's fp and ``[fp+4]`` the return address.  Where the chain is
broken (assembly routines do not set up frames) it falls back to a
conservative scan of the remaining stack words, tagging those frames as
unreliable — the same presentation the Linux oops unwinder uses with
its ``?`` markers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import MachineError
from repro.kernel.machine import Machine
from repro.kernel.threads import Thread


@dataclass(frozen=True)
class Frame:
    """One backtrace entry."""

    address: int
    symbol: Optional[str]
    offset: int
    unit: Optional[str]
    reliable: bool

    def render(self) -> str:
        marker = "" if self.reliable else "? "
        if self.symbol is None:
            return "%s0x%08x" % (marker, self.address)
        where = " [%s]" % self.unit if self.unit else ""
        return "%s%s+0x%x%s" % (marker, self.symbol, self.offset, where)


@dataclass
class Backtrace:
    thread_name: str
    frames: List[Frame] = field(default_factory=list)

    def render(self) -> str:
        lines = ["Call trace (%s):" % self.thread_name]
        lines += ["  " + frame.render() for frame in self.frames]
        return "\n".join(lines)

    def symbols(self) -> List[str]:
        return [f.symbol for f in self.frames if f.symbol]


def _frame_for(machine: Machine, address: int, reliable: bool) -> Frame:
    entry = machine.image.kallsyms.symbol_at(address)
    if entry is None:
        return Frame(address=address, symbol=None, offset=0, unit=None,
                     reliable=reliable)
    return Frame(address=address, symbol=entry.name,
                 offset=address - entry.address, unit=entry.unit,
                 reliable=reliable)


def backtrace_thread(machine: Machine, thread: Thread,
                     max_frames: int = 32) -> Backtrace:
    """Unwind ``thread``'s kernel stack."""
    trace = Backtrace(thread_name=thread.name)
    trace.frames.append(_frame_for(machine, thread.cpu.ip, reliable=True))

    lo, hi = machine.image.text_range()
    seen_words = set()

    fp = thread.cpu.reg(5)
    walked_to = thread.cpu.reg(6)
    while (len(trace.frames) < max_frames
           and thread.stack_base <= fp <= thread.stack_top - 8):
        try:
            saved_fp = machine.read_u32(fp)
            ret = machine.read_u32(fp + 4)
        except MachineError:
            break
        if lo <= ret < hi:
            trace.frames.append(_frame_for(machine, ret, reliable=True))
            seen_words.add(fp + 4)
        walked_to = max(walked_to, fp + 8)
        if saved_fp <= fp:  # must strictly ascend toward the stack top
            break
        fp = saved_fp

    # Conservative tail scan above the last reliable frame.
    for addr in range(walked_to, thread.stack_top, 4):
        if addr in seen_words:
            continue
        try:
            value = machine.read_u32(addr)
        except MachineError:
            continue
        if lo <= value < hi:
            frame = _frame_for(machine, value, reliable=False)
            if trace.frames and frame.symbol == trace.frames[-1].symbol \
                    and frame.address == trace.frames[-1].address:
                continue
            trace.frames.append(frame)
        if len(trace.frames) >= max_frames:
            break
    return trace


def render_oops(machine: Machine, thread: Thread, message: str) -> str:
    """A Linux-style oops report for a faulted thread."""
    trace = backtrace_thread(machine, thread)
    header = ["kernel oops: %s" % message,
              "thread: %s  ip: 0x%08x  sp: 0x%08x"
              % (thread.name, thread.cpu.ip, thread.cpu.reg(6))]
    regs = "  ".join("r%d=%08x" % (i, thread.cpu.reg(i)) for i in range(5))
    header.append(regs + "  fp=%08x sp=%08x"
                  % (thread.cpu.reg(5), thread.cpu.reg(6)))
    return "\n".join(header) + "\n" + trace.render()

"""objdump for KELF: human-readable object file listings.

Disassembly annotates relocation sites the way ``objdump -dr`` does, so
developers can eyeball exactly the metadata pre-post differencing and
run-pre matching consume.
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.disassembler import format_instruction, iter_instructions
from repro.errors import DisassemblyError
from repro.objfile import ObjectFile, Section


def dump_section_disassembly(section: Section) -> str:
    """Disassemble one text section with inline relocation annotations."""
    relocs_by_offset: Dict[int, List] = {}
    for reloc in section.sorted_relocations():
        relocs_by_offset.setdefault(reloc.offset, []).append(reloc)

    lines: List[str] = []
    try:
        for decoded in iter_instructions(section.data):
            lines.append("  " + format_instruction(decoded))
            for field_offset in range(decoded.offset,
                                      decoded.offset + decoded.length):
                for reloc in relocs_by_offset.get(field_offset, ()):
                    lines.append("        %04x: %s  %s%+d"
                                 % (reloc.offset, reloc.type.value,
                                    reloc.symbol, reloc.addend))
    except DisassemblyError as exc:
        lines.append("  <undecodable: %s>" % exc)
    return "\n".join(lines)


def _dump_data_section(section: Section) -> str:
    lines: List[str] = []
    data = section.data
    for offset in range(0, len(data), 16):
        chunk = data[offset:offset + 16]
        hexpart = " ".join("%02x" % b for b in chunk)
        lines.append("  %04x: %s" % (offset, hexpart))
    for reloc in section.sorted_relocations():
        lines.append("        %04x: %s  %s%+d"
                     % (reloc.offset, reloc.type.value, reloc.symbol,
                        reloc.addend))
    return "\n".join(lines)


def dump_object_text(obj: ObjectFile) -> str:
    """Full listing: sections (disassembled or hexdumped) and symbols."""
    lines: List[str] = ["object %s" % obj.name, ""]
    for section in obj.sections.values():
        lines.append("section %s  (%s, %d bytes, align %d, %d relocs)"
                     % (section.name, section.kind.value, section.size,
                        section.alignment, len(section.relocations)))
        if section.size:
            if section.kind.is_code:
                lines.append(dump_section_disassembly(section))
            else:
                lines.append(_dump_data_section(section))
        lines.append("")
    lines.append("symbols:")
    for symbol in obj.symbols:
        where = ("%s+0x%x" % (symbol.section, symbol.value)
                 if symbol.is_defined else "*UND*")
        lines.append("  %-7s %-6s %-24s %s  size %d"
                     % (symbol.binding.value, symbol.kind.value,
                        symbol.name, where, symbol.size))
    return "\n".join(lines)

"""Kernel text integrity checking.

§7.2 of the paper discusses hot-patching as practiced by rootkits.  The
defender-side counterpart is this scanner: compare the running kernel's
text against the pristine booted image, and reconcile every difference
against the Ksplice core's ledger of applied updates.  A legitimate
update explains exactly one ``jump_size`` window at each replaced
function's entry; anything else is an unexplained modification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.apply import KspliceCore
from repro.kernel.machine import Machine


@dataclass(frozen=True)
class TextModification:
    """One contiguous modified byte range in kernel text."""

    address: int
    original: bytes
    current: bytes
    #: update id when the Ksplice ledger explains this range
    explained_by: Optional[str] = None
    symbol: Optional[str] = None

    @property
    def size(self) -> int:
        return len(self.current)

    def render(self) -> str:
        where = ("%s (0x%08x)" % (self.symbol, self.address)
                 if self.symbol else "0x%08x" % self.address)
        status = ("ok: %s" % self.explained_by if self.explained_by
                  else "UNEXPLAINED")
        return "%-40s %2d bytes  %s -> %s  [%s]" % (
            where, self.size, self.original.hex(), self.current.hex(),
            status)


@dataclass
class IntegrityReport:
    modifications: List[TextModification] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.modifications

    def unexplained(self) -> List[TextModification]:
        return [m for m in self.modifications if m.explained_by is None]

    @property
    def compromised(self) -> bool:
        """Modified in ways the update ledger does not account for."""
        return bool(self.unexplained())

    def render(self) -> str:
        if self.clean:
            return "kernel text pristine"
        lines = ["%d modified region(s):" % len(self.modifications)]
        lines += ["  " + m.render() for m in self.modifications]
        if self.compromised:
            lines.append("WARNING: %d unexplained modification(s) — "
                         "kernel text does not match the trusted image"
                         % len(self.unexplained()))
        return "\n".join(lines)


def _diff_ranges(original: bytes, current: bytes, base: int,
                 merge_gap: int = 2) -> List[tuple]:
    """Contiguous [start, end) differing ranges, merging near-adjacent
    ones (a 5-byte jump shows up as one range even if a byte inside
    happens to coincide)."""
    ranges: List[tuple] = []
    start = None
    for offset, (a, b) in enumerate(zip(original, current)):
        if a != b:
            if start is None:
                start = offset
            end = offset + 1
        elif start is not None and offset - end >= merge_gap:
            ranges.append((start, end))
            start = None
        elif start is not None:
            continue
    if start is not None:
        ranges.append((start, end))
    merged: List[tuple] = []
    for lo, hi in ranges:
        if merged and lo - merged[-1][1] <= merge_gap:
            merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return [(base + lo, base + hi) for lo, hi in merged]


def check_kernel_text(machine: Machine,
                      core: Optional[KspliceCore] = None) -> IntegrityReport:
    """Scan every kernel text section for modifications.

    ``core`` supplies the ledger of legitimate updates; without it every
    modification is unexplained.
    """
    report = IntegrityReport()
    image = machine.image
    explained = {}
    if core is not None:
        for applied in core.applied:
            for replaced in applied.replaced:
                explained[replaced.old_address] = (
                    applied.update_id, len(replaced.saved_bytes),
                    replaced.name)

    for (unit, name), placed in image.placements.items():
        if not (name == ".text" or name.startswith(".text.")):
            continue
        original = image.read_bytes(placed.address, placed.size)
        current = machine.read_bytes(placed.address, placed.size)
        if original == current:
            continue
        for lo, hi in _diff_ranges(original, current, placed.address):
            update_id = None
            symbol = None
            ledger = explained.get(lo)
            if ledger is not None and hi - lo <= ledger[1]:
                update_id, _, symbol = ledger
            if symbol is None:
                entry = image.kallsyms.symbol_at(lo)
                symbol = entry.name if entry else None
            report.modifications.append(TextModification(
                address=lo,
                original=original[lo - placed.address:hi - placed.address],
                current=current[lo - placed.address:hi - placed.address],
                explained_by=update_id,
                symbol=symbol))
    return report

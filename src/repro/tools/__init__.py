"""Developer tooling around the toolchain: object dumpers, the kernel
debugger's stack unwinder, and the text integrity scanner."""

from repro.tools.objdump import dump_object_text, dump_section_disassembly
from repro.tools.unwind import Backtrace, Frame, backtrace_thread
from repro.tools.integrity import (
    IntegrityReport,
    TextModification,
    check_kernel_text,
)

__all__ = [
    "Backtrace",
    "Frame",
    "IntegrityReport",
    "TextModification",
    "backtrace_thread",
    "check_kernel_text",
    "dump_object_text",
    "dump_section_disassembly",
]

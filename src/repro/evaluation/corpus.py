"""The 64-CVE corpus (§6.1).

Every entry is indexed by a real CVE id from the paper's evaluation
window (May 2005 - May 2008) and is a *synthetic analog*: a genuine
vulnerability in the simulated kernel whose shape (subsystem, patch
size, data-semantics behaviour, inlining/ambiguity/signature properties,
exploitability) mirrors what the paper reports for that class of patch.

Corpus-level invariants, asserted by the test suite:

* 64 entries; Figure 3 patch-length distribution (35 patches <= 5
  changed lines, 53 <= 15);
* exactly the paper's 8 Table-1 entries, with the paper's reasons and
  new-code line counts (34/10/1/1/14/4/20/48 — mean ~17);
* 20 entries whose patch modifies a function inlined in the run kernel,
  of which only 4 are *declared* inline;
* 5 entries whose patched code involves an ambiguous symbol name;
* 8 entries needing object-level capabilities (5 function-signature
  changes + 3 static-local functions);
* working exploits for CVE-2006-2451, CVE-2006-3626, CVE-2007-4573 and
  CVE-2008-0600 (§6.3's exploit list).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.evaluation import archetypes
from repro.evaluation.specs import (
    CveCategory,
    CveSpec,
    ExploitSpec,
    Table1Info,
    count_logical_lines,
)

_PE = CveCategory.PRIVILEGE_ESCALATION
_ID = CveCategory.INFORMATION_DISCLOSURE


# ---------------------------------------------------------------------------
# Hand-crafted entries: the four exploitable CVEs


def _cve_2006_2451() -> CveSpec:
    """prctl dumpable: value 2 lets the core-dump path run privileged."""
    vulnerable = """\
int current_dumpable;
int commit_kernel_cred(void);

int sys_prctl(int option, int val, int c) {
    if (option == 4) {
        if (val < 0 || val > 2) { return -22; }
        current_dumpable = val;
        return 0;
    }
    return -22;
}

int sys_do_coredump(int a, int b, int c) {
    if (current_dumpable == 2) {
        commit_kernel_cred();
        return 1;
    }
    return 0;
}
"""
    fixed = vulnerable.replace("if (val < 0 || val > 2) { return -22; }",
                               "if (val < 0 || val > 1) { return -22; }")
    exploit = ExploitSpec(
        source="""
int main(void) {
    __syscall({sys_prctl}, 4, 2, 0);
    __syscall({sys_do_coredump}, 0, 0, 0);
    return __syscall({sys_getuid}, 0, 0, 0);
}
""",
        escalated_value=0, blocked_values=(1000,))
    return CveSpec(
        cve_id="CVE-2006-2451", patch_id="8ec4o6u", category=_PE,
        kernel_version="2.6.16-deb3", unit="kernel/prctl.c",
        description="prctl PR_SET_DUMPABLE accepts 2; core dump path "
                    "runs with kernel credentials",
        vulnerable_fragment=vulnerable, fixed_fragment=fixed,
        syscalls=["sys_prctl", "sys_do_coredump"], exploit=exploit,
        target_patch_lines=1)


def _cve_2006_3626() -> CveSpec:
    """/proc entry mode change without an ownership check; a setuid-root
    proc entry then executes privileged."""
    vulnerable = """\
extern int current_uid;
int commit_kernel_cred(void);
int proc_owner[8] = { 0, 0, 1000, 1000, 1000, 1000, 1000, 1000 };
int proc_mode[8] = { 1, 1, 1, 1, 1, 1, 1, 1 };

int sys_proc_chmod(int idx, int mode, int c) {
    if (idx < 0 || idx >= 8) { return -22; }
    proc_mode[idx] = mode;
    return 0;
}

int sys_proc_exec(int idx, int b, int c) {
    if (idx < 0 || idx >= 8) { return -22; }
    if ((proc_mode[idx] & 2048) && proc_owner[idx] == 0) {
        commit_kernel_cred();
        return 1;
    }
    return 0;
}
"""
    fixed = vulnerable.replace(
        "    if (idx < 0 || idx >= 8) { return -22; }\n"
        "    proc_mode[idx] = mode;",
        "    if (idx < 0 || idx >= 8) { return -22; }\n"
        "    if (current_uid != 0 && current_uid != proc_owner[idx]) {\n"
        "        return -1;\n"
        "    }\n"
        "    proc_mode[idx] = mode;")
    exploit = ExploitSpec(
        source="""
int main(void) {
    __syscall({sys_proc_chmod}, 0, 2048, 0);
    __syscall({sys_proc_exec}, 0, 0, 0);
    return __syscall({sys_getuid}, 0, 0, 0);
}
""",
        escalated_value=0, blocked_values=(1000,))
    return CveSpec(
        cve_id="CVE-2006-3626", patch_id="1b2c3d4", category=_PE,
        kernel_version="2.6.17", unit="fs/proc.c",
        description="/proc pid entries chmod-able by any user; "
                    "setuid-root entry executes privileged",
        vulnerable_fragment=vulnerable, fixed_fragment=fixed,
        syscalls=["sys_proc_chmod", "sys_proc_exec"], exploit=exploit,
        target_patch_lines=4)


def _cve_2007_4573() -> CveSpec:
    """The ia32entry.S analog: the syscall entry path does not reject
    negative syscall numbers, so the dispatch indexes *before* the
    table — straight into a pointer to a privileged kernel helper."""
    vulnerable = """\
    jge bad_sys
    push r3
"""
    fixed = """\
    jge bad_sys
    cmpi r0, 0
    jl bad_sys
    push r3
"""
    exploit = ExploitSpec(
        source="""
int main(void) {
    __syscall(0 - 1, 0, 0, 0);
    return __syscall({sys_getuid}, 0, 0, 0);
}
""",
        escalated_value=0, blocked_values=(1000,))
    return CveSpec(
        cve_id="CVE-2007-4573", patch_id="9a6b7c8", category=_PE,
        kernel_version="2.6.22", unit="arch/entry.s",
        description="syscall entry misses the signed lower-bound check; "
                    "negative numbers index before the call table "
                    "(ia32entry.S zero-extension analog)",
        vulnerable_fragment=vulnerable, fixed_fragment=fixed,
        syscalls=[], exploit=exploit, is_asm=True, target_patch_lines=2)


def _cve_2008_0600() -> CveSpec:
    """vmsplice: missing lower-bound check gives a kernel memory write
    that clears the admin gate guarding a privileged operation."""
    vulnerable = """\
extern int current_uid;
int commit_kernel_cred(void);
int splice_uid_gate = 1;
int splice_kernel_buf[4] = { 1, 1, 1, 1 };

int sys_vmsplice(int idx, int val, int c) {
    if (idx > 3) { return -22; }
    splice_kernel_buf[idx] = val;
    return 0;
}

int sys_splice_admin(int a, int b, int c) {
    if (splice_uid_gate && current_uid != 0) { return -1; }
    commit_kernel_cred();
    return 1;
}
"""
    fixed = vulnerable.replace("    if (idx > 3) { return -22; }",
                               "    if (idx < 0) { return -22; }\n"
                               "    if (idx > 3) { return -22; }")
    exploit = ExploitSpec(
        source="""
int main(void) {
    __syscall({sys_vmsplice}, 0 - 1, 0, 0);
    __syscall({sys_splice_admin}, 0, 0, 0);
    return __syscall({sys_getuid}, 0, 0, 0);
}
""",
        escalated_value=0, blocked_values=(1000,))
    return CveSpec(
        cve_id="CVE-2008-0600", patch_id="712d1a5", category=_PE,
        kernel_version="2.6.24-deb6", unit="fs/splice.c",
        description="vmsplice signedness: negative index writes kernel "
                    "memory before the pipe buffer",
        vulnerable_fragment=vulnerable, fixed_fragment=fixed,
        syscalls=["sys_vmsplice", "sys_splice_admin"], exploit=exploit,
        target_patch_lines=2)


# ---------------------------------------------------------------------------
# Hand-crafted entries: ambiguous local symbols


def _cve_2005_4639() -> CveSpec:
    """dst_ca.c: the patched function uses a static ``debug`` that also
    exists in dst.c (and elsewhere) — the paper's §6.3 example."""
    vulnerable = """\
static int debug;
int dst_ca_slots[4] = { 5, 6, 7, 8 };

int ca_get_slot_info(int slot, int b, int c) {
    debug = slot;
    if (slot < 0) { return -22; }
    return dst_ca_slots[slot & 7];
}
"""
    fixed = vulnerable.replace(
        "    if (slot < 0) { return -22; }\n"
        "    return dst_ca_slots[slot & 7];",
        "    if (slot < 0 || slot > 3) { return -22; }\n"
        "    return dst_ca_slots[slot & 3];")
    return CveSpec(
        cve_id="CVE-2005-4639", patch_id="c3fa290", category=_ID,
        kernel_version="2.6.12-deb2", unit="drivers/dst_ca.c",
        description="dst_ca slot info: unbounded slot index; patched "
                    "function touches the ambiguous static 'debug'",
        vulnerable_fragment=vulnerable, fixed_fragment=fixed,
        syscalls=["ca_get_slot_info"], ambiguous_symbol=True,
        target_patch_lines=2)


def _cve_2007_0958() -> CveSpec:
    """binfmt_elf: the patch modifies a static function whose name
    (``notesize``) appears in more than one compilation unit."""
    vulnerable = """\
static int notesize(int sz) {
    int n = sz + 12;
    int r = n % 4;
    if (r) { n = n + 4 - r; }
    return n;
}
int elf_load_count;

int sys_elf_load(int sz, int b, int c) {
    int n = notesize(sz);
    elf_load_count++;
    return n;
}
"""
    fixed = vulnerable.replace(
        "static int notesize(int sz) {\n    int n = sz + 12;",
        "static int notesize(int sz) {\n"
        "    if (sz < 0 || sz > 65536) { return -22; }\n"
        "    int n = sz + 12;")
    return CveSpec(
        cve_id="CVE-2007-0958", patch_id="fa3e1b9", category=_ID,
        kernel_version="2.6.20", unit="fs/binfmt_elf.c",
        description="core-dump note size unchecked; the fix lands in a "
                    "static whose name collides across units",
        vulnerable_fragment=vulnerable, fixed_fragment=fixed,
        syscalls=["sys_elf_load"], ambiguous_symbol=True,
        target_patch_lines=1)


# ---------------------------------------------------------------------------
# Hand-crafted entries: Table 1 (patches that need new custom code)


def _assemble_hook(fn_name: str, core_lines: List[str], target: int,
                   pad_stmt: str, tail_lines: List[str]) -> str:
    """Build hook code with exactly ``target`` logical lines.

    ``core_lines`` do the real transition work; ``pad_stmt`` (a format
    string taking an index) supplies audit/bookkeeping statements until
    the count is reached; ``tail_lines`` close out the function (their
    logical lines are included in the budget).
    """
    spent = count_logical_lines("\n".join(core_lines + tail_lines))
    if spent > target:
        raise ValueError("hook for %s needs at least %d logical lines, "
                         "target is %d" % (fn_name, spent, target))
    body = ["int %s(void) {" % fn_name]
    body += core_lines
    body += [pad_stmt % i for i in range(target - spent)]
    body += tail_lines
    body += ["}", "__ksplice_apply__(%s);" % fn_name]
    code = "\n".join(body) + "\n"
    assert count_logical_lines(code) == target, \
        "hook %s: %d logical lines, wanted %d" \
        % (fn_name, count_logical_lines(code), target)
    return code


def _table1_data_init(cve_id: str, patch_id: str, version: str, unit: str,
                      name: str, description: str, slots: int,
                      bad_value: int, good_value: int,
                      hook_lines: int, patch_pad: int = 0) -> CveSpec:
    """A 'changes data init' Table-1 entry.

    The init function (run at boot) fills a table with ``bad_value``;
    the patch changes it to ``good_value``.  Without hook code the
    already-initialized table keeps the bad value; the custom hook walks
    and fixes live state.  ``hook_lines`` matches the paper's new-code
    line count exactly; ``patch_pad`` adds extra changed lines so the
    *original* patch lands in its Figure-3 bin.
    """
    pad_statements = "\n".join(
        "    %s_stats[%d] = 0;" % (name, i) for i in range(patch_pad))
    pad_decl = ("int %s_stats[%d];\n" % (name, max(patch_pad, 1))
                if patch_pad else "")
    vulnerable = """\
%(pad_decl)sint %(name)s_table[%(slots)d];
int %(name)s_ready;

int %(name)s_init(void) {
    for (int i = 0; i < %(slots)d; i++) {
        %(name)s_table[i] = %(bad)d;
    }
    %(name)s_ready = 1;
    return 0;
}

int sys_%(name)s_get(int idx, int b, int c) {
    if (idx < 0 || idx >= %(slots)d) { return -22; }
    return %(name)s_table[idx];
}
""" % {"name": name, "slots": slots, "bad": bad_value,
       "pad_decl": pad_decl}
    fixed_init = vulnerable.replace(
        "        %s_table[i] = %d;" % (name, bad_value),
        "        %s_table[i] = %d;" % (name, good_value))
    if patch_pad:
        fixed_init = fixed_init.replace(
            "    %s_ready = 1;" % name,
            pad_statements + "\n    %s_ready = 1;" % name)

    hook_fn = "ksplice_fix_%s" % name
    if hook_lines == 1:
        # The paper's 1-line entries: the whole transition is a single
        # statement line.
        custom = ("int %s(void) "
                  "{ for (int i = 0; i < %d; i++) %s_table[i] = %d; "
                  "return 0; }\n"
                  "__ksplice_apply__(%s);\n"
                  % (hook_fn, slots, name, good_value, hook_fn))
        assert count_logical_lines(custom) == 1
    else:
        core = [
            "    int fixed = 0;",
            "    for (int i = 0; i < %d; i++) {" % slots,
            "        if (%s_table[i] == %d) { %s_table[i] = %d; fixed++; }"
            % (name, bad_value, name, good_value),
            "    }",
        ]
        custom = _assemble_hook(
            hook_fn, core, hook_lines,
            "    %s_ready = %s_ready + 0; /* audit %%d */" % (name, name),
            ["    return fixed >= 0 ? 0 : -1;"])

    from repro.evaluation.archetypes import ProbeSpec

    return CveSpec(
        cve_id=cve_id, patch_id=patch_id, category=_PE,
        kernel_version=version, unit=unit, description=description,
        vulnerable_fragment=vulnerable, fixed_fragment=fixed_init,
        custom_code=custom,
        syscalls=["sys_%s_get" % name],
        probe=ProbeSpec(function="sys_%s_get" % name, args=(0, 0, 0),
                        pre=bad_value, post=good_value),
        table1=Table1Info(reason="changes data init",
                          new_code_lines=hook_lines),
        init_functions=["%s_init" % name],
        target_patch_lines=1 + patch_pad)


def _cve_2005_2709() -> CveSpec:
    """sysctl: the fix wants a per-entry ``refcount`` field; existing
    entries cannot grow, so the patched code uses shadow structures and
    48 lines of custom code migrate the live entries (the paper applied
    exactly this DynAMOS-style method to this CVE)."""
    vulnerable = """\
int sysctl_id[6] = { 10, 11, 12, 13, 14, 15 };
int sysctl_val[6] = { 1, 2, 3, 4, 5, 6 };
int sysctl_registered = 6;

int sys_sysctl_read(int idx, int b, int c) {
    if (idx < 0 || idx >= sysctl_registered) { return -22; }
    return sysctl_val[idx];
}

int sys_sysctl_unreg(int idx, int b, int c) {
    if (idx < 0 || idx >= sysctl_registered) { return -22; }
    sysctl_val[idx] = 0;
    return 0;
}
"""
    # The real CVE: entries could be used after unregistration.  The fix
    # adds a refcount field; here it lives in the shadow table.
    fixed = """\
int ksplice_shadow_get(int obj, int key);
int ksplice_shadow_set(int obj, int key, int val);

int sysctl_id[6] = { 10, 11, 12, 13, 14, 15 };
int sysctl_val[6] = { 1, 2, 3, 4, 5, 6 };
int sysctl_registered = 6;

int sys_sysctl_read(int idx, int b, int c) {
    if (idx < 0 || idx >= sysctl_registered) { return -22; }
    if (ksplice_shadow_get(idx, 271) < 1) { return -2; }
    ksplice_shadow_set(idx, 272,
                       ksplice_shadow_get(idx, 272) + 1);
    return sysctl_val[idx];
}

int sys_sysctl_unreg(int idx, int b, int c) {
    if (idx < 0 || idx >= sysctl_registered) { return -22; }
    ksplice_shadow_set(idx, 271, 0);
    sysctl_val[idx] = 0;
    return 0;
}
"""
    core = [
        "    int attached = 0;",
        "    for (int i = 0; i < sysctl_registered; i++) {",
        "        int live = sysctl_val[i] != 0;",
        "        if (ksplice_shadow_set(i, 271, live) < 0) { return -1; }",
        "        if (ksplice_shadow_set(i, 272, 0) < 0) { return -1; }",
        "        attached++;",
        "    }",
    ]
    custom = _assemble_hook(
        "ksplice_sysctl_migrate", core, 48,
        "    attached = attached + 0; /* migrate entry %d */",
        ["    if (attached != sysctl_registered) { return -1; }",
         "    return 0;"])
    from repro.evaluation.archetypes import ProbeSpec

    return CveSpec(
        cve_id="CVE-2005-2709", patch_id="330d57f", category=_PE,
        kernel_version="2.6.8-deb1", unit="net/sysctl.c",
        description="sysctl use-after-unregister; fix adds a refcount "
                    "field to a persistent struct (shadow structures)",
        vulnerable_fragment=vulnerable, fixed_fragment=fixed,
        custom_code=custom,
        syscalls=["sys_sysctl_read", "sys_sysctl_unreg"],
        probe=ProbeSpec(function="sys_sysctl_read", args=(1, 0, 0),
                        pre=0, post=(-2) & 0xFFFFFFFF,
                        setup=(("sys_sysctl_unreg", (1, 0, 0)),)),
        # Without the migration hook, *live* entries read as dead (-2):
        # the over-blocking failure that makes the custom code necessary.
        health=ProbeSpec(function="sys_sysctl_read", args=(0, 0, 0),
                         pre=1, post=1),
        table1=Table1Info(reason="adds field to struct",
                          new_code_lines=48),
        target_patch_lines=24)


# ---------------------------------------------------------------------------
# Generated entries


def _generated_specs() -> List[CveSpec]:
    specs: List[CveSpec] = []

    def add(cve_id: str, patch_id: str, version: str, unit: str,
            category: CveCategory, description: str,
            fragments: archetypes.Fragments, **flags) -> None:
        specs.append(CveSpec(
            cve_id=cve_id, patch_id=patch_id, category=category,
            kernel_version=version, unit=unit, description=description,
            vulnerable_fragment=fragments.vulnerable,
            fixed_fragment=fragments.fixed,
            syscalls=list(fragments.syscalls),
            exploit=fragments.exploit,
            probe=fragments.probe,
            **flags))

    # -- 20 patches whose target function is inlined in the run kernel
    #    (4 of them *declared* inline), §6.3's inlining statistics.
    inline_homes = [
        ("CVE-2005-1263", "a12f3e0", "2.6.8-deb1", "fs/binfmt_tbl.c", "bprm"),
        ("CVE-2005-2490", "b2263b8", "2.6.8-deb1", "net/compat_ioctl.c",
         "cmsg"),
        ("CVE-2005-2555", "c8e1f02", "2.6.9", "net/ipsec_pol.c", "ipsec"),
        ("CVE-2005-3119", "d4b55a1", "2.6.9", "net/key_ae.c", "keyae"),
        ("CVE-2005-3806", "e019fd2", "2.6.11", "net/ip6_flow.c", "flow6"),
        ("CVE-2006-0095", "f7cab11", "2.6.11", "drivers/dm_crypt.c",
         "dmc"),
        ("CVE-2006-0741", "0a9bb21", "2.6.12-deb2", "fs/elf_entry.c",
         "elfent"),
        ("CVE-2006-1342", "1bd3c42", "2.6.15", "net/sock_opt.c", "sopt"),
        ("CVE-2006-1857", "2ce4d53", "2.6.15", "net/sctp_chunk.c", "sctp"),
        ("CVE-2006-2444", "3df5e64", "2.6.16-deb3", "net/snmp_nat.c",
         "snmp"),
        ("CVE-2006-3745", "4ef6f75", "2.6.17", "net/sctp_prsctp.c",
         "prsctp"),
        ("CVE-2006-4997", "5f07086", "2.6.18-deb4", "net/atm_clip.c",
         "clip"),
        ("CVE-2007-1000", "60180a7", "2.6.20", "net/ipv6_sock.c", "v6sk"),
        ("CVE-2007-2453", "71291b8", "2.6.21-deb5", "drivers/rng_core.c",
         "rng"),
        ("CVE-2007-3848", "8233ac9", "2.6.22", "kernel/pdeath.c",
         "pdeath"),
        ("CVE-2007-4308", "934bbda", "2.6.23", "drivers/aacraid.c",
         "aac"),
        ("CVE-2008-0001", "a455ceb", "2.6.24-deb6", "fs/dir_open.c",
         "diro"),
        ("CVE-2008-1294", "b56d0fc", "2.6.25", "kernel/rlimit_chk.c",
         "rlim"),
        ("CVE-2008-1375", "c67e20d", "2.6.25", "fs/dnotify_race.c",
         "dnot"),
        ("CVE-2008-1669", "d78f31e", "2.6.24-deb6", "fs/fcntl_lock.c",
         "flck"),
    ]
    # Extra caller-side hardening spreads six of these entries across
    # the 6-10, 11-15, and 21-25 Figure-3 bins.
    hardening_by_index = {4: 5, 5: 6, 6: 7, 7: 8, 8: 11, 9: 22}
    for index, (cve, pid, version, unit, stem) in enumerate(inline_homes):
        declared = index < 4  # exactly 4 carry the inline keyword
        # Alternate categories so the corpus keeps the paper's roughly
        # two-thirds escalation / one-third disclosure split.
        category = _ID if index % 2 else _PE
        extra = hardening_by_index.get(index, 0)
        add(cve, pid, version, unit, category,
            "missing request validation in a guard helper that the "
            "compiler inlines into its caller",
            archetypes.inline_guard(stem, declared_inline=declared,
                                    limit=600 + 13 * index,
                                    extra_hardening=extra),
            expect_inlined=True, declared_inline=declared,
            target_patch_lines=1 + extra)

    # -- 3 more ambiguous-symbol patches (5 total with the two
    #    hand-crafted ones).
    ambiguous_homes = [
        ("CVE-2005-3857", "e89a0cd", "2.6.12-deb2", "drivers/lease_dbg.c",
         "lease", "debug"),
        ("CVE-2006-5174", "f9ab1de", "2.6.18-deb4", "drivers/s390_cpy.c",
         "s390", "state"),
        ("CVE-2007-6417", "0ac2d1f", "2.6.23", "fs/tmpfs_clear.c",
         "tmpfs", "state"),
    ]
    for cve, pid, version, unit, stem, shared in ambiguous_homes:
        add(cve, pid, version, unit, _ID,
            "slot read past the table end; the patched function uses "
            "the ambiguous static '%s'" % shared,
            archetypes.ambiguous_static(stem, shared=shared),
            ambiguous_symbol=True, target_patch_lines=1)

    # -- 5 signature changes + 3 static-local functions: the 8 patches
    #    needing object-level capabilities (§6.3).
    signature_homes = [
        ("CVE-2005-3055", "1bc4e2f", "2.6.8-deb1", "drivers/usb_devio.c",
         "usbio"),
        ("CVE-2006-1524", "2cd5f30", "2.6.15", "mm/madvise_lock.c",
         "madv"),
        ("CVE-2006-4093", "3de6041", "2.6.17", "arch/powerpc_pmax.c",
         "pmax"),
        ("CVE-2007-4997", "4ef7152", "2.6.22", "net/ieee80211_soft.c",
         "wlan"),
        ("CVE-2008-1675", "5f08263", "2.6.25", "drivers/bdev_resize.c",
         "bdev"),
    ]
    for cve, pid, version, unit, stem in signature_homes:
        add(cve, pid, version, unit, _PE,
            "the fix threads a strictness flag through a helper's "
            "signature (function interface change)",
            archetypes.signature_change(stem),
            signature_change=True, target_patch_lines=5)

    static_local_homes = [
        ("CVE-2005-3847", "6a19374", "2.6.9", "kernel/futex_requeue.c",
         "futq"),
        ("CVE-2006-6106", "7b2a485", "2.6.18-deb4", "net/bt_capi.c",
         "capi"),
        ("CVE-2007-5904", "8c3b596", "2.6.23", "fs/cifs_mount.c",
         "cifs"),
    ]
    for cve, pid, version, unit, stem in static_local_homes:
        add(cve, pid, version, unit, _PE,
            "unchecked accumulation in a function with a static local "
            "counter",
            archetypes.static_local_counter(stem),
            static_local=True, target_patch_lines=1)

    # -- 2 bounds reads with medium-size fixes (6-10 bin).
    add("CVE-2005-0839", "9d4c6a7", "2.6.8-deb1", "drivers/n_tty.c", _ID,
        "tty buffer read past end; fix adds layered validation",
        archetypes.missing_bounds_read("ntty", table_len=6, secret=6001,
                                       extra_checks=6),
        target_patch_lines=7)
    add("CVE-2006-1863", "ae5d7b8", "2.6.16-deb3", "fs/cifs_chroot.c", _ID,
        "cifs path component read without bounds; layered fix",
        archetypes.missing_bounds_read("cifsroot", table_len=5,
                                       secret=6002, extra_checks=7),
        target_patch_lines=8)

    # -- 3 privilege-check gaps (6-10 bin with audit padding).
    priv_homes = [
        ("CVE-2005-4886", "bf6e8c9", "2.6.11", "net/netlink_perm.c",
         "nlperm", 6),
        ("CVE-2006-2936", "c07f9da", "2.6.17", "drivers/ftdi_sio.c",
         "ftdi", 7),
        ("CVE-2007-3105", "d18a0eb", "2.6.21-deb5", "drivers/random_pool.c",
         "rndpl", 9),
    ]
    for cve, pid, version, unit, stem, pad in priv_homes:
        fragments = archetypes.missing_priv_check(stem, cap_bits=0x8)
        # Pad the fix with audit bookkeeping to reach the 6-10 bin.
        audit = "\n".join(
            "        %s_mode = %s_mode | %d;" % (stem, stem, 1 << i)
            for i in range(pad - 1))
        fragments.fixed = fragments.fixed.replace(
            "        if (current_uid != 0) { return -1; }",
            "        if (current_uid != 0) { return -1; }\n" + audit)
        add(cve, pid, version, unit, _PE,
            "capability grant reachable without a privilege check",
            fragments, target_patch_lines=pad)

    # -- 3 uninitialized-reply leaks (11-15 bin via extra scrub lines).
    leak_homes = [
        ("CVE-2005-3276", "e29b1fc", "2.6.9", "kernel/sys_times.c",
         "times", 11),
        ("CVE-2007-1353", "f3ac20d", "2.6.20", "net/bt_l2cap.c",
         "l2cap", 12),
        ("CVE-2008-0598", "04bd1ee", "2.6.25", "arch/x86_copy.c",
         "xcopy", 13),
    ]
    for cve, pid, version, unit, stem, size in leak_homes:
        fragments = archetypes.uninitialized_leak(stem, words=6)
        scrub = "\n".join(
            "    %s_reply[%d] = %s_reply[%d] & 0x7fffffff;"
            % (stem, i % 6, stem, i % 6) for i in range(size - 1))
        fragments.fixed = fragments.fixed.replace(
            "    %s_fill(request);" % stem,
            scrub + "\n    %s_fill(request);" % stem, 1)
        add(cve, pid, version, unit, _ID,
            "reply buffer partially initialized; stale kernel words "
            "leak to user space",
            fragments, target_patch_lines=size)

    # -- 11 hardening sweeps filling the Figure 3 tail.
    sweep_homes = [
        ("CVE-2005-1589", "14e5bd2", "2.6.8-deb1", "mm/mempolicy.c",
         "mempol", 14),
        ("CVE-2006-0554", "25f6ce3", "2.6.15", "fs/xfs_ioctl.c", "xfsio",
         16),
        ("CVE-2006-1055", "360a7f4", "2.6.16-deb3", "net/irda_len.c",
         "irda", 17),
        ("CVE-2006-2934", "471b805", "2.6.17", "net/sctp_param.c",
         "sctpp", 19),
        ("CVE-2007-1496", "582c916", "2.6.20", "net/nfnetlink.c", "nfnl",
         20),
        ("CVE-2007-2242", "693daa7", "2.6.21-deb5", "net/ipv6_rthdr.c",
         "rthdr", 22),
        ("CVE-2007-2875", "7a4eab8", "2.6.21-deb5", "kernel/cpuset_read.c",
         "cpuset", 28),
        ("CVE-2007-3513", "8b5fbc9", "2.6.22", "drivers/usblcd_lim.c",
         "usblcd", 33),
        ("CVE-2007-6063", "9c60cda", "2.6.23", "drivers/isdn_ioctl.c",
         "isdn", 37),
        ("CVE-2008-0009", "ad71deb", "2.6.24-deb6", "mm/vmsplice_chk.c",
         "vmchk", 48),
        ("CVE-2008-1367", "be82efc", "2.6.25", "arch/x86_clear_df.c",
         "cldf", 72),
    ]
    for cve, pid, version, unit, stem, size in sweep_homes:
        add(cve, pid, version, unit, _PE,
            "systematic validation sweep across a request structure "
            "(%d-line fix)" % size,
            archetypes.hardening_sweep(stem, added_lines=size),
            target_patch_lines=size)

    return specs


# ---------------------------------------------------------------------------
# Assembling the corpus


def _handcrafted_specs() -> List[CveSpec]:
    return [
        _cve_2006_2451(),
        _cve_2006_3626(),
        _cve_2007_4573(),
        _cve_2008_0600(),
        _cve_2005_4639(),
        _cve_2007_0958(),
        # Table 1, in the paper's order.
        _table1_data_init(
            "CVE-2008-0007", "2f98735", "2.6.24-deb6", "mm/mmap.c",
            "vmaprot", "mmap of read-only files allows write faults; "
            "default protection map initialized too permissive",
            slots=8, bad_value=7, good_value=5, hook_lines=34,
            patch_pad=8),
        _table1_data_init(
            "CVE-2007-4571", "ccec6e2", "2.6.22", "sound/alsa_mem.c",
            "alsamem", "ALSA readback of uninitialized memory; ring "
            "descriptor defaults unsafe",
            slots=6, bad_value=9, good_value=3, hook_lines=10,
            patch_pad=6),
        _table1_data_init(
            "CVE-2007-3851", "21f1628", "2.6.21-deb5", "drivers/agp_i965.c",
            "agp965", "i965 GTT aperture default allows writes to "
            "arbitrary addresses",
            slots=4, bad_value=3, good_value=1, hook_lines=1),
        _table1_data_init(
            "CVE-2006-5753", "be6aab0", "2.6.18-deb4",
            "fs/listxattr_fix.c", "lsxattr",
            "listxattr corrupts memory via bad initial sminix entry",
            slots=4, bad_value=2, good_value=0, hook_lines=1),
        _table1_data_init(
            "CVE-2006-2071", "b78b6af", "2.6.16-deb3",
            "kernel/mprotect_pt.c", "mprot",
            "mprotect allows setting PROT_WRITE on read-only attachments",
            slots=6, bad_value=3, good_value=1, hook_lines=14,
            patch_pad=4),
        _table1_data_init(
            "CVE-2006-1056", "7466f9e", "2.6.15", "arch/fpu_state.c",
            "fpu", "FPU state buffer initialized without poison; AMD "
            "FXSAVE information leak",
            slots=4, bad_value=0x55, good_value=0, hook_lines=4,
            patch_pad=2),
        _table1_data_init(
            "CVE-2005-3179", "c075814", "2.6.11", "drivers/dvb_ule.c",
            "dvbule", "DVB ULE decapsulation defaults leave SNDU "
            "length checks off",
            slots=8, bad_value=1, good_value=4, hook_lines=20,
            patch_pad=12),
        _cve_2005_2709(),
    ]


def build_corpus() -> List[CveSpec]:
    specs = _handcrafted_specs() + _generated_specs()
    assert len(specs) == 64, "corpus must have exactly 64 entries, has %d" \
        % len(specs)
    return specs


CORPUS: List[CveSpec] = build_corpus()

_BY_ID: Dict[str, CveSpec] = {spec.cve_id: spec for spec in CORPUS}


def corpus_by_id(cve_id: str) -> CveSpec:
    return _BY_ID[cve_id]


# ---------------------------------------------------------------------------
# Corpus providers: one interface over the hand-written table and the
# scenario factory's generated corpora, so every consumer (engine, CLI,
# distributed coordinator, benchmarks) loads specs the same way.


class CorpusProvider:
    """Uniform access to a corpus of :class:`CveSpec` entries.

    ``specs()`` returns the entries in canonical (deterministic) order;
    ``by_id()`` resolves one entry; ``expected_for()`` returns the
    stamped ground truth when the provider has one (generated corpora)
    or ``None`` (the hand-written table, whose ground truth lives in the
    invariant tests); ``discrepancies()`` cross-checks a finished run
    against whatever oracle the provider carries.
    """

    name = "corpus"

    def specs(self) -> List[CveSpec]:
        raise NotImplementedError

    def by_id(self, cve_id: str) -> CveSpec:
        for spec in self.specs():
            if spec.cve_id == cve_id:
                return spec
        raise KeyError(cve_id)

    def ids(self) -> List[str]:
        return [spec.cve_id for spec in self.specs()]

    def expected_for(self, cve_id: str) -> Optional[object]:
        return None

    def discrepancies(self, results: Sequence[object]) -> List[str]:
        """Oracle check over finished :class:`CveResult` objects.  The
        base rule set is the engine's verdict/apply consistency check;
        generated corpora additionally compare against stamped
        expectations."""
        from repro.evaluation.engine import verdict_discrepancies
        return verdict_discrepancies(results)  # type: ignore[arg-type]


class SeedCorpus(CorpusProvider):
    """The paper's hand-written 64-CVE table."""

    name = "seed"

    def specs(self) -> List[CveSpec]:
        return list(CORPUS)

    def by_id(self, cve_id: str) -> CveSpec:
        return _BY_ID[cve_id]


SEED_PROVIDER = SeedCorpus()


def load_corpus_provider(corpus_dir: Optional[str] = None) -> CorpusProvider:
    """The provider for ``--corpus DIR`` (a generated-corpus manifest
    directory) or, with no argument, the seed table."""
    if corpus_dir is None:
        return SEED_PROVIDER
    from repro.scenarios.model import GeneratedCorpusProvider
    return GeneratedCorpusProvider.load(corpus_dir)

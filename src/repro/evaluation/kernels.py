"""Kernel version generation (§6.2).

The paper tests its 64 patches across six Debian kernels and eight
"vanilla" kernels.  We mirror that: fourteen versions, each containing
the base kernel, three collision-host units (the source of duplicate
local symbol names), and the vulnerable fragments of the CVEs assigned
to that version, wired into the syscall table.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.evaluation.base_kernel import (
    BASE_UNITS,
    SYS_C,
    build_syscall_table,
    entry_source,
)
from repro.evaluation.corpus import CORPUS
from repro.evaluation.specs import CveSpec
from repro.kbuild import SourceTree
from repro.patch import make_patch

DEBIAN_VERSIONS = (
    "2.6.8-deb1", "2.6.12-deb2", "2.6.16-deb3", "2.6.18-deb4",
    "2.6.21-deb5", "2.6.24-deb6",
)
VANILLA_VERSIONS = (
    "2.6.9", "2.6.11", "2.6.15", "2.6.17", "2.6.20", "2.6.22",
    "2.6.23", "2.6.25",
)
ALL_VERSIONS = DEBIAN_VERSIONS + VANILLA_VERSIONS

#: Kernel versions produced by the scenario factory carry this prefix;
#: :func:`kernel_for_version` resolves them through
#: :mod:`repro.scenarios` so every consumer (harness, process pools,
#: distributed workers) can rebuild a generated kernel from the version
#: string alone.
GENERATED_VERSION_PREFIX = "gen@"

#: Units present in every version purely to make some local symbol names
#: ambiguous, the way dst.c/dst_ca.c share ``debug`` in real Linux.
COLLISION_HOSTS: Dict[str, str] = {
    "drivers/dst.c": """\
static int debug;
static int state;

int dst_probe(void) {
    debug = 1;
    state = state + debug;
    return state;
}
""",
    "net/netfilter_dbg.c": """\
static int debug;
static int state;

int nf_trace(int verdict) {
    debug = verdict;
    if (verdict < 0) { state = state + 1; }
    return debug + state;
}
""",
    "fs/binfmt_misc.c": """\
static int notesize(int sz) {
    return sz + 8;
}

int misc_register_fmt(int sz) {
    return notesize(sz) * 2;
}
""",
}


def _ballast(unit_path: str) -> str:
    """Unpatched supporting code for a CVE unit.

    Real compilation units contain far more than the patched function;
    the helper module ships the *whole* unit (§5.1), so ballast is what
    makes helpers realistically larger than primaries.  Content is
    deterministic per unit path, with loops (alignment padding), static
    helpers, and intra-unit calls (relocations) so run-pre matching gets
    exercised on every function."""
    stem = re.sub(r"\W+", "_",
                  unit_path.rsplit("/", 1)[-1].rsplit(".", 1)[0])
    seed = zlib.crc32(unit_path.encode("utf-8"))
    chunks: List[str] = []
    for index in range(5):
        salt = (seed >> (index * 5)) % 29 + 3
        chunks.append("""
static int %(stem)s_aux%(i)d(int v) {
    int acc = %(salt)d;
    for (int k = 0; k < (v & 15); k++) {
        acc = acc * 33 + k;
        acc = acc ^ (acc >> 4);
    }
    if (acc < 0) { acc = -acc; }
    return acc;
}

int %(stem)s_stat%(i)d;

int %(stem)s_account%(i)d(int v) {
    if (v < 0) { return -22; }
    %(stem)s_stat%(i)d += %(stem)s_aux%(i)d(v) & 255;
    while (%(stem)s_stat%(i)d > 100000) {
        %(stem)s_stat%(i)d -= 100000;
    }
    return %(stem)s_stat%(i)d;
}
""" % {"stem": stem, "i": index, "salt": salt})
    return "\n/* --- supporting code --- */\n" + "".join(chunks)


@dataclass
class GeneratedKernel:
    """One kernel version: tree, syscall map, included CVEs."""

    version: str
    tree: SourceTree
    syscall_numbers: Dict[str, int]
    cves: List[CveSpec] = field(default_factory=list)

    def cve(self, cve_id: str) -> CveSpec:
        for spec in self.cves:
            if spec.cve_id == cve_id:
                return spec
        raise ReproError("%s is not present in kernel %s"
                         % (cve_id, self.version))

    def fixed_tree(self, cve_id: str, augmented: bool = True) -> SourceTree:
        """Tree with one CVE fixed.

        ``augmented`` includes the programmer's custom hook code (the
        Table 1 assistance); the non-augmented tree is the original
        security patch alone.
        """
        spec = self.cve(cve_id)
        unit_text = self.tree.read(spec.unit)
        if spec.vulnerable_fragment not in unit_text:
            raise ReproError("vulnerable fragment of %s not found in %s"
                             % (cve_id, spec.unit))
        fixed_text = unit_text.replace(spec.vulnerable_fragment,
                                       spec.fixed_fragment)
        if augmented and spec.custom_code:
            fixed_text = fixed_text.rstrip("\n") + "\n\n" + spec.custom_code
        files = dict(self.tree.files)
        files[spec.unit] = fixed_text
        for extra_unit, (vuln, fixed) in sorted(spec.extra_units.items()):
            extra_text = self.tree.read(extra_unit)
            if vuln not in extra_text:
                raise ReproError(
                    "vulnerable fragment of %s not found in extra unit %s"
                    % (cve_id, extra_unit))
            files[extra_unit] = extra_text.replace(vuln, fixed)
        return SourceTree(version=self.tree.version + "+" + cve_id,
                          files=files)

    def patch_for(self, cve_id: str, augmented: bool = True) -> str:
        """The unified diff fixing one CVE."""
        fixed = self.fixed_tree(cve_id, augmented=augmented)
        return make_patch(self.tree.files, fixed.files)

    def exploit_source(self, spec: CveSpec) -> str:
        """Exploit program text with syscall numbers substituted."""
        if spec.exploit is None:
            raise ReproError("%s has no exploit" % spec.cve_id)

        def substitute(match: "re.Match[str]") -> str:
            name = match.group(1)
            if name not in self.syscall_numbers:
                raise ReproError("exploit for %s references unknown "
                                 "syscall %r" % (spec.cve_id, name))
            return str(self.syscall_numbers[name])

        return re.sub(r"\{(\w+)\}", substitute, spec.exploit.source)


def _sys_c_with_inits(init_functions: List[str]) -> str:
    """kernel/sys.c with kernel_init extended to call CVE init code."""
    if not init_functions:
        return SYS_C
    prototypes = "".join("int %s(void);\n" % fn for fn in init_functions)
    calls = "".join("    %s();\n" % fn for fn in init_functions)
    return SYS_C.replace(
        "int kernel_init(void) {\n    boot_complete = 1;\n",
        prototypes + "\nint kernel_init(void) {\n    boot_complete = 1;\n"
        + calls)


def build_kernel(version: str,
                 cves: Optional[List[CveSpec]] = None) -> GeneratedKernel:
    """Assemble one kernel version's vulnerable source tree."""
    if cves is None:
        cves = [spec for spec in CORPUS if spec.kernel_version == version]
    cves = sorted(cves, key=lambda s: s.cve_id)

    files: Dict[str, str] = {}
    files.update(COLLISION_HOSTS)

    init_functions: List[str] = []
    cve_syscalls: List[str] = []
    asm_cve: Optional[CveSpec] = None
    for spec in cves:
        init_functions.extend(spec.init_functions)
        cve_syscalls.extend(spec.syscalls)
        if spec.is_asm:
            asm_cve = spec
            continue
        if spec.unit in files or spec.unit in BASE_UNITS:
            raise ReproError(
                "unit %s of %s collides with another unit in %s"
                % (spec.unit, spec.cve_id, version))
        files[spec.unit] = spec.vulnerable_fragment + _ballast(spec.unit)
        for extra_unit, (vuln, _fixed) in sorted(spec.extra_units.items()):
            if extra_unit in files or extra_unit in BASE_UNITS:
                raise ReproError(
                    "extra unit %s of %s collides with another unit in %s"
                    % (extra_unit, spec.cve_id, version))
            files[extra_unit] = vuln + _ballast(extra_unit)

    for path, source in BASE_UNITS.items():
        files[path] = source
    files["kernel/sys.c"] = _sys_c_with_inits(init_functions)

    table, numbers = build_syscall_table(cve_syscalls)
    files["arch/entry.s"] = entry_source(
        table,
        negative_check=asm_cve is None,
        compat_helper="commit_kernel_cred" if asm_cve is not None else "")

    if asm_cve is not None:
        # Sanity: the asm CVE's fragments must anchor in the generated
        # entry source.
        if asm_cve.vulnerable_fragment not in files["arch/entry.s"]:
            raise ReproError("asm fragment of %s does not anchor in the "
                             "generated entry.s" % asm_cve.cve_id)

    tree = SourceTree(version=version, files=files)
    return GeneratedKernel(version=version, tree=tree,
                           syscall_numbers=numbers, cves=cves)


@lru_cache(maxsize=None)
def kernel_for_version(version: str) -> GeneratedKernel:
    """Cached kernel generation (trees are immutable).

    Versions with the ``gen@`` prefix are regenerated on demand from
    the ``(seed, size, mix, group)`` parameters encoded in the version
    string itself, so worker processes that only receive a
    :class:`CveSpec` resolve generated kernels transparently.
    """
    if version.startswith(GENERATED_VERSION_PREFIX):
        from repro.scenarios.model import generated_kernel_for_version
        return generated_kernel_for_version(version)
    if version not in ALL_VERSIONS:
        raise ReproError("unknown kernel version %r" % version)
    return build_kernel(version)


def kernel_for_cve(cve_id: str) -> GeneratedKernel:
    for spec in CORPUS:
        if spec.cve_id == cve_id:
            return kernel_for_version(spec.kernel_version)
    raise ReproError("unknown CVE %r" % cve_id)

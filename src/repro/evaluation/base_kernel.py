"""The base kernel ("minilinux") every corpus kernel version starts from.

Base syscalls (numbers 0-15) cover credentials, a word-granular file
layer over a ramdisk, and scheduling; CVE-specific syscalls are wired in
from number 16 up by the kernel generator in
:mod:`repro.evaluation.kernels`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: name -> number for the always-present syscalls
BASE_SYSCALLS: Dict[str, int] = {
    "sys_getuid": 0,
    "sys_setuid": 1,
    "sys_capget": 2,
    "sys_capset": 3,
    "sys_open": 4,
    "sys_close": 5,
    "sys_read": 6,
    "sys_write": 7,
    "sys_seek": 8,
    "sys_yield": 9,
    "sys_spin": 10,
    "sys_uname": 11,
    "sys_getpid": 12,
}

FIRST_CVE_SYSCALL = 16

CRED_C = """\
int current_uid = 1000;
int current_gid = 1000;
int current_caps = 0;
int audit_count;

static int capable(int cap) {
    return current_uid == 0 || (current_caps & cap) != 0;
}

int sys_getuid(int a, int b, int c) {
    return current_uid;
}

int sys_setuid(int uid, int b, int c) {
    if (uid < 0) { return -1; }
    if (uid == 0 && current_uid != 0 && !capable(2)) { return -1; }
    current_uid = uid;
    audit_count++;
    return 0;
}

int sys_capget(int a, int b, int c) {
    return current_caps;
}

int sys_capset(int caps, int b, int c) {
    if (!capable(1)) { return -1; }
    current_caps = caps;
    return 0;
}

int commit_kernel_cred(void) {
    current_uid = 0;
    current_caps = 0xffff;
    return 0;
}
"""

SCHED_C = """\
int run_queue_len;
int need_resched;
int jiffies;

int schedule(void) {
    need_resched = 0;
    jiffies++;
    __sched();
    return 0;
}

int sys_yield(int a, int b, int c) {
    schedule();
    return 0;
}

int sys_spin(int ticks, int b, int c) {
    int i = 0;
    while (i < ticks) {
        i++;
        schedule();
    }
    return i;
}
"""

FILE_C = """\
int ramdisk[256];
int file_size = 256;
int file_pos[16];
int fd_used[16];

static int fd_valid(int fd) {
    return fd >= 0 && fd < 16 && fd_used[fd];
}

int sys_open(int a, int b, int c) {
    __cli();
    for (int fd = 0; fd < 16; fd++) {
        if (!fd_used[fd]) {
            fd_used[fd] = 1;
            file_pos[fd] = 0;
            __sti();
            return fd;
        }
    }
    __sti();
    return -24;
}

int sys_close(int fd, int b, int c) {
    if (!fd_valid(fd)) { return -9; }
    fd_used[fd] = 0;
    return 0;
}

int sys_read(int fd, int b, int c) {
    if (!fd_valid(fd)) { return -9; }
    if (file_pos[fd] < 0 || file_pos[fd] >= file_size) { return -5; }
    int value = ramdisk[file_pos[fd]];
    file_pos[fd]++;
    return value;
}

int sys_write(int fd, int value, int c) {
    if (!fd_valid(fd)) { return -9; }
    if (file_pos[fd] < 0 || file_pos[fd] >= file_size) { return -5; }
    ramdisk[file_pos[fd]] = value;
    file_pos[fd]++;
    return 0;
}

int sys_seek(int fd, int pos, int c) {
    if (!fd_valid(fd)) { return -9; }
    if (pos < 0 || pos >= file_size) { return -22; }
    file_pos[fd] = pos;
    return 0;
}
"""

SYS_C = """\
int hostname_word = 0x6c696e75;
int next_pid = 128;
int boot_complete;

int kernel_init(void) {
    boot_complete = 1;
    return 0;
}

int sys_uname(int a, int b, int c) {
    return hostname_word;
}

int sys_getpid(int a, int b, int c) {
    return next_pid;
}

int sys_ni(int a, int b, int c) {
    return -38;
}
"""

#: base unit path -> source
BASE_UNITS: Dict[str, str] = {
    "kernel/cred.c": CRED_C,
    "kernel/sched.c": SCHED_C,
    "fs/file.c": FILE_C,
    "kernel/sys.c": SYS_C,
}

#: the anchor lines CVE-2007-4573's patch re-adds (see kernels.py)
ENTRY_NEGATIVE_CHECK = "    cmpi r0, 0\n    jl bad_sys\n"


def entry_source(table: Sequence[str], negative_check: bool = True,
                 compat_helper: str = "") -> str:
    """Generate ``arch/entry.s``.

    ``table`` is the syscall table in slot order.  ``negative_check``
    omits the signed lower-bound test when False (the CVE-2007-4573
    analog: a negative syscall number indexes *before* the table).
    ``compat_helper`` places a function pointer word immediately before
    the table, which is what a negative index reaches.
    """
    lines: List[str] = [
        ".global syscall_entry",
        "syscall_entry:",
        "    cmpi r0, %d" % len(table),
        "    jge bad_sys",
    ]
    if negative_check:
        lines.append("    cmpi r0, 0")
        lines.append("    jl bad_sys")
    lines += [
        "    push r3",
        "    push r2",
        "    push r1",
        "    movi r4, 4",
        "    mul r0, r4",
        "    lea r4, sys_call_table",
        "    add r4, r0",
        "    loadr r4, r4, 0",
        "    callr r4",
        "    addi sp, 12",
        "    ret",
        "bad_sys:",
        "    movi r0, -38",
        "    ret",
        "",
        ".section .data",
    ]
    if compat_helper:
        lines.append("compat_helpers:")
        lines.append("    .word %s" % compat_helper)
    lines.append("sys_call_table:")
    for name in table:
        lines.append("    .word %s" % name)
    lines.append("")
    return "\n".join(lines)


def build_syscall_table(cve_syscalls: Sequence[str]) -> Tuple[List[str],
                                                              Dict[str, int]]:
    """Slot list + name->number map for base plus CVE syscalls."""
    size = FIRST_CVE_SYSCALL + len(cve_syscalls)
    table = ["sys_ni"] * size
    numbers: Dict[str, int] = {}
    for name, number in BASE_SYSCALLS.items():
        table[number] = name
        numbers[name] = number
    for index, name in enumerate(cve_syscalls):
        number = FIRST_CVE_SYSCALL + index
        table[number] = name
        numbers[name] = number
    return table, numbers

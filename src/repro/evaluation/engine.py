"""Corpus-scale evaluation engine (§6.2-6.3 at fleet speed).

The paper's headline run pushes all 64 CVE patches through
ksplice-create/ksplice-apply on 14 kernel versions.  This module makes
that corpus-scale run fast along three layers:

1. **Parallelism** — :func:`evaluate_corpus` with ``jobs > 1`` fans the
   corpus out over a ``ProcessPoolExecutor``.  Work is grouped by kernel
   version so each worker generates and builds a version's run kernel at
   most once; each worker owns its whole simulated machine, so isolation
   between concurrent evaluations is free.  Results are merged back into
   the caller's spec order, so a parallel run is deterministic and
   (timing fields aside) identical to a sequential one.  Unpicklable
   specs or a broken pool degrade gracefully to in-process execution,
   and ``EngineStats.fallback_reason`` records why.

   ``workers=["host:port", ...]`` goes beyond one host: the same
   payloads run on remote workers over the distributed fabric
   (:mod:`repro.distributed`), with per-CVE work-stealing once a
   version's run build is warm, per-CVE streamed progress, and
   bounded retry when workers die.  An unreachable fleet falls back to
   the local pool, then to sequential — results are identical (after
   :func:`normalize_result`) along every path.

2. **Content-addressed caching** — per-unit compiles and parses hit the
   caches in :mod:`repro.compiler.cache`; this module adds the
   per-version *run build* cache (the seed harness's bare
   ``_BUILD_CACHE`` module global, now bounded, instrumented, and
   covered by :func:`clear_caches`).

3. The **interpreter fast path** lives in :mod:`repro.kernel.cpu`
   (``run_slice``); the engine simply benefits from it.

``clear_caches()`` resets every layer for test isolation;
``cache_stats()``/``EngineStats`` surface hit/miss/byte counters.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, \
    as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compiler import CompilerOptions
from repro.compiler.cache import (
    CacheStats,
    ContentCache,
    active_disk_root,
    cache_stats as _layer_cache_stats,
    clear_caches as _clear_layer_caches,
    enable_disk_cache,
    merge_stats_into as _merge_stats_into,
    register_cache,
    snapshot_stats as _stats_snapshot,
    stats_delta as _stats_delta,
)
from repro.evaluation.corpus import CORPUS
from repro.evaluation.kernels import GeneratedKernel, kernel_for_version
from repro.evaluation.specs import CveSpec
from repro.kbuild import BuildResult, build_tree
from repro.kernel import TRACE_STATS
from repro.pipeline.normalize import normalize_cve_result

#: Run-kernel builds per (version, options).  Generated trees are
#: immutable per version (``kernel_for_version`` is itself memoized), so
#: the version string is a faithful content key; patched trees never go
#: through here.  Registered, so clear_caches()/cache_stats() cover it.
RUN_BUILD_CACHE = register_cache(ContentCache("run-build", max_entries=64))

ProgressFn = Callable[..., None]


def run_build_for(kernel: GeneratedKernel,
                  options: Optional[CompilerOptions] = None) -> BuildResult:
    """The run kernel's build, cached per (version, options)."""
    options = options or CompilerOptions()
    key = (kernel.version, options)
    build = RUN_BUILD_CACHE.get(key)
    if build is None:
        build = build_tree(kernel.tree, options)
        RUN_BUILD_CACHE.put(key, build)
    return build


def clear_caches() -> None:
    """Reset every evaluation cache (test isolation).

    Covers the parse, compile, and run-build content caches plus the
    generated-kernel memo, so a test that patches corpus data or
    compiler behaviour observes a cold world.
    """
    _clear_layer_caches()
    kernel_for_version.cache_clear()


def cache_stats() -> Dict[str, CacheStats]:
    """Live counters for every registered cache, keyed by name."""
    return _layer_cache_stats()


def normalize_result(result: "CveResult") -> "CveResult":
    """A copy with wall-clock fields zeroed.

    Everything the evaluation records is deterministic except wall
    time: the stop_machine window and the per-stage trace timings.
    Both are scrubbed by the one shared helper in
    :mod:`repro.pipeline.normalize` (also used by
    ``CveResult.normalized``); comparing normalized results is how
    "parallel == sequential" is checked.
    """
    return normalize_cve_result(result)


def verdict_discrepancies(results: Sequence["CveResult"]) -> List[str]:
    """Cross-check static verdicts against dynamic apply outcomes.

    The corpus-as-oracle rules (one line per violated rule, per CVE):

    - every cleanly-created update must carry a verdict;
    - ``safe`` must not abort at apply time, and ``reject`` must;
    - ``needs-hooks``/``needs-shadow`` iff the patch *without* custom
      code fails to fully fix the CVE (``result.hookless_fixes``);
    - ``quiesce-risk`` iff the stack check actually retried;
    - a verdict produced with the run kernel's build must be *proven*
      (:meth:`repro.analysis.AnalysisReport.is_proven`): every patched
      function carries ABI and hunk-equivalence evidence and every
      non-safe finding a matching witness with concrete sites — a bare
      label with no machine-checkable backing is itself a discrepancy;
    - the report must come from the current analyzer version (a
      mismatch means a stale cached verdict leaked through).

    An empty return means the analyzer agreed with reality everywhere.
    """
    from repro.analysis import (
        ANALYZER_VERSION,
        VERDICT_NEEDS_HOOKS,
        VERDICT_NEEDS_SHADOW,
        VERDICT_QUIESCE_RISK,
        VERDICT_REJECT,
        VERDICT_SAFE,
    )

    problems: List[str] = []

    def problem(result: "CveResult", text: str) -> None:
        problems.append("%s: %s" % (result.cve_id, text))

    for result in results:
        verdict = result.analysis_verdict
        if not verdict:
            if result.applied_cleanly:
                problem(result, "applied cleanly but carries no verdict")
            continue
        if verdict == VERDICT_SAFE and not result.applied_cleanly:
            problem(result, "verdict safe but apply aborted in %s (%s)"
                    % (result.failed_stage, result.apply_error))
        if verdict == VERDICT_REJECT and result.applied_cleanly:
            problem(result, "verdict reject but the update applied cleanly")
        needs_custom = verdict in (VERDICT_NEEDS_HOOKS, VERDICT_NEEDS_SHADOW)
        if result.hookless_fixes is not None:
            if needs_custom and result.hookless_fixes:
                problem(result, "verdict %s but the hook-less patch fully "
                                "fixed the CVE" % verdict)
            if verdict == VERDICT_SAFE and not result.hookless_fixes:
                problem(result, "verdict safe but the hook-less patch did "
                                "not fully fix the CVE")
        retried = result.stack_check_attempts > 1
        if verdict == VERDICT_QUIESCE_RISK and result.applied_cleanly \
                and not retried:
            problem(result, "verdict quiesce-risk but the stack check "
                            "passed on the first attempt")
        if verdict != VERDICT_QUIESCE_RISK and retried:
            problem(result, "stack check retried (%d attempts) without a "
                            "quiesce-risk verdict"
                    % result.stack_check_attempts)
        analysis = getattr(result, "analysis", None)
        if analysis is not None:
            if analysis.analyzer_version != ANALYZER_VERSION:
                problem(result, "analysis came from analyzer version %s "
                                "but the current analyzer is %s (stale "
                                "cached verdict)"
                        % (analysis.analyzer_version, ANALYZER_VERSION))
            if analysis.run_build_analyzed and not analysis.is_proven():
                problem(result, "verdict %s is not backed by "
                                "machine-checkable evidence (%d evidence "
                                "record(s) present)"
                        % (verdict, len(analysis.evidence)))
    return problems


@dataclass
class StageTiming:
    """Aggregate cost of one pipeline stage across a corpus run."""

    calls: int = 0
    wall_ms: float = 0.0
    failures: int = 0

    @property
    def mean_ms(self) -> float:
        return self.wall_ms / self.calls if self.calls else 0.0

    def merge(self, other: "StageTiming") -> None:
        self.calls += other.calls
        self.wall_ms += other.wall_ms
        self.failures += other.failures


@dataclass
class EngineStats:
    """What one evaluate_corpus run cost and how the caches behaved."""

    jobs: int = 1
    cves: int = 0
    wall_seconds: float = 0.0
    #: number of per-version groups dispatched (parallel runs only)
    groups: int = 0
    #: parallel execution was requested but fell back to in-process
    fell_back: bool = False
    #: why the fallback happened ("unserializable specs", "broken
    #: executor: ...", "no workers reachable at ...") — surfaced by the
    #: CLI so a silently-sequential run never goes unexplained
    fallback_reason: str = ""
    #: distributed runs: workers that completed the handshake
    workers: int = 0
    #: distributed runs: work items dispatched (leads + stolen tails +
    #: retries)
    work_items: int = 0
    #: distributed runs: items requeued after a worker died or failed
    retries: int = 0
    #: distributed runs: successful coordinator->worker reconnects
    #: (each preceded by exponential backoff with jitter)
    reconnects: int = 0
    #: distributed runs: reconnect counts per worker address
    reconnects_by_peer: Dict[str, int] = field(default_factory=dict)
    #: distributed runs: CVEs the coordinator evaluated in-process
    #: after the fleet could not finish them (graceful degradation)
    local_rescues: int = 0
    #: per-cache counters; for parallel runs these are the summed deltas
    #: reported by the workers, for sequential runs the parent's deltas
    caches: Dict[str, CacheStats] = field(default_factory=dict)
    #: per-stage timings summed over every CVE's trace (top-level
    #: stages: generate/build/boot/create/apply/stress/...)
    stages: Dict[str, StageTiming] = field(default_factory=dict)
    #: JIT counters for the run — the delta of the process-global
    #: :data:`repro.kernel.TRACE_STATS` (total/traced instructions,
    #: trace hits, compiles, evictions).  Only in-process execution
    #: contributes; parallel/distributed workers keep their own.
    jit: Dict[str, int] = field(default_factory=dict)

    @property
    def cves_per_second(self) -> float:
        return self.cves / self.wall_seconds if self.wall_seconds else 0.0

    def combined_cache_stats(self) -> CacheStats:
        total = CacheStats()
        for stats in self.caches.values():
            total.merge(stats)
        return total

    def record_trace(self, trace) -> None:
        """Fold one CVE's top-level stage reports into the totals."""
        if trace is None:
            return
        for report in trace.reports:
            timing = self.stages.setdefault(report.name, StageTiming())
            timing.calls += 1
            timing.wall_ms += report.wall_ms
            if report.outcome == "failed":
                timing.failures += 1


def _evaluate_group(payload: Tuple[str, List[CveSpec], bool, bool,
                                   Optional[str]]):
    """Worker entry point: evaluate one kernel version's CVEs in order.

    Grouping by version means this process builds the version's run
    kernel exactly once (run-build cache, warm after the first CVE) and
    shares parse/compile cache entries across the group.  Workers start
    with cold memory tiers; when the parent has a disk tier enabled its
    root rides along in the payload so the worker starts warm from it.
    Returns the results plus this group's cache-stats delta so the
    parent can aggregate counters across processes.
    """
    from repro.evaluation.harness import evaluate_cve

    _version, specs, run_stress, verify_undo, disk_root = payload
    if disk_root:
        enable_disk_cache(disk_root)
    before = _stats_snapshot()
    results = [evaluate_cve(spec, run_stress=run_stress,
                            verify_undo=verify_undo)
               for spec in specs]
    return results, _stats_delta(before)


def _group_by_version(specs: Sequence[CveSpec],
                      ) -> List[Tuple[str, List[int]]]:
    """Spec indices grouped by kernel version, first-appearance order."""
    order: List[str] = []
    groups: Dict[str, List[int]] = {}
    for index, spec in enumerate(specs):
        if spec.kernel_version not in groups:
            groups[spec.kernel_version] = []
            order.append(spec.kernel_version)
        groups[spec.kernel_version].append(index)
    return [(version, groups[version]) for version in order]


def _evaluate_sequential(specs: Sequence[CveSpec], run_stress: bool,
                         verify_undo: bool,
                         progress: Optional[ProgressFn]) -> List["CveResult"]:
    from repro.evaluation.harness import evaluate_cve

    results = []
    for spec in specs:
        result = evaluate_cve(spec, run_stress=run_stress,
                              verify_undo=verify_undo)
        results.append(result)
        if progress is not None:
            progress(result)
    return results


def _evaluate_parallel(specs: Sequence[CveSpec], run_stress: bool,
                       verify_undo: bool, progress: Optional[ProgressFn],
                       jobs: int, stats: EngineStats,
                       executor_factory: Optional[Callable] = None,
                       ) -> Optional[List["CveResult"]]:
    """Fan groups out over worker processes; None means "fall back".

    ``executor_factory(max_workers)`` defaults to
    ``ProcessPoolExecutor``; anything with the same ``submit`` surface
    slots in — notably
    :class:`repro.distributed.DistributedExecutor`, which runs the
    identical group payloads on remote hosts.
    """
    try:
        pickle.dumps(list(specs))
    except Exception:
        stats.fallback_reason = "unpicklable specs"
        return None  # e.g. a test spec with a lambda probe

    if executor_factory is None:
        def executor_factory(max_workers: int) -> ProcessPoolExecutor:
            return ProcessPoolExecutor(max_workers=max_workers)
    groups = _group_by_version(specs)
    stats.groups = len(groups)
    results: List[Optional["CveResult"]] = [None] * len(specs)
    try:
        with executor_factory(min(jobs, len(groups))) as pool:
            futures = {}
            disk_root = active_disk_root()
            for version, indices in groups:
                payload = (version, [specs[i] for i in indices],
                           run_stress, verify_undo, disk_root)
                futures[pool.submit(_evaluate_group, payload)] = indices
            for future in as_completed(futures):
                group_results, cache_delta = future.result()
                _merge_stats_into(stats.caches, cache_delta)
                for index, result in zip(futures[future], group_results):
                    results[index] = result
                    if progress is not None:
                        progress(result)
    except (BrokenExecutor, OSError, pickle.PicklingError) as exc:
        stats.fallback_reason = "broken executor: %s: %s" \
            % (type(exc).__name__, exc)
        return None
    return results  # every slot filled: each index was in exactly 1 group


def _evaluate_distributed(specs: Sequence[CveSpec], run_stress: bool,
                          verify_undo: bool,
                          progress: Optional[ProgressFn],
                          workers: Sequence[str], stats: EngineStats,
                          ) -> Optional[List["CveResult"]]:
    """Run the corpus over remote workers; None means "fall back".

    The coordinator (:mod:`repro.distributed.coordinator`) streams each
    finished CVE back (``progress`` fires per CVE in completion order),
    steals a version's remaining CVEs onto idle workers once its lead
    has warmed the run-build cache, retries items lost with dead
    workers, and rescues any remainder in-process.  ``None`` is
    returned only when no worker answered the handshake or the specs
    cannot cross the v3 wire — the caller then walks the same
    fallback chain the local pool uses.
    """
    from repro.distributed import Coordinator, ProtocolError

    try:
        coordinator = Coordinator(workers)
    except ProtocolError as exc:
        stats.fallback_reason = str(exc)
        return None
    results = coordinator.run(specs, run_stress=run_stress,
                              verify_undo=verify_undo,
                              progress=progress, stats=stats)
    if results is not None:
        stats.groups = len(_group_by_version(specs))
    return results


def evaluate_corpus(specs: Optional[Sequence[CveSpec]] = None,
                    run_stress: bool = True,
                    verify_undo: bool = False,
                    progress: Optional[ProgressFn] = None,
                    jobs: int = 1,
                    stats: Optional[EngineStats] = None,
                    workers: Optional[Sequence[str]] = None,
                    ) -> "EvaluationReport":
    """Evaluate the corpus (default: all 64 CVEs), the full §6 run.

    ``jobs > 1`` evaluates kernel-version groups in parallel worker
    processes; ``workers=["host:port", ...]`` runs them on remote
    workers instead (the distributed fabric, :mod:`repro.distributed`).
    The returned report is ordered by ``specs`` regardless of the
    execution path, and the results are identical (after
    :func:`normalize_result`) along every path.

    ``progress`` fires exactly once per finished CVE.  *When* it fires
    depends on the path: sequential runs call it in spec order as each
    CVE finishes; distributed runs stream it in true completion order
    (workers push every ``CveResult`` the moment it exists); local
    ``jobs`` runs deliver a whole version-group's results in one burst
    when that group's worker process finishes — still once per CVE,
    but the calls arrive grouped.

    Pass an :class:`EngineStats` to receive timing and cache counters;
    when a parallel or distributed request degrades,
    ``stats.fell_back``/``stats.fallback_reason`` say so and why.
    """
    from repro.evaluation.harness import EvaluationReport

    chosen = list(specs if specs is not None else CORPUS)
    stats = stats if stats is not None else EngineStats()
    stats.jobs = jobs
    stats.cves = len(chosen)

    start = time.perf_counter()
    jit_before = TRACE_STATS.snapshot()
    results: Optional[List["CveResult"]] = None
    if workers and len(chosen) > 0:
        results = _evaluate_distributed(chosen, run_stress, verify_undo,
                                        progress, workers, stats)
        if results is None:
            stats.fell_back = True
    if results is None and jobs > 1 and len(chosen) > 1:
        results = _evaluate_parallel(chosen, run_stress, verify_undo,
                                     progress, jobs, stats)
        if results is None:
            stats.fell_back = True
    if results is None:
        before = _stats_snapshot()
        results = _evaluate_sequential(chosen, run_stress, verify_undo,
                                       progress)
        _merge_stats_into(stats.caches, _stats_delta(before))
    stats.wall_seconds = time.perf_counter() - start
    jit_after = TRACE_STATS.snapshot()
    stats.jit = {key: jit_after[key] - jit_before[key]
                 for key in jit_after}
    for result in results:
        stats.record_trace(getattr(result, "trace", None))
    return EvaluationReport(results=results)

"""Vulnerability archetypes: generators for the bulk of the corpus.

Each generator returns a :class:`Fragments` bundle — the vulnerable and
fixed source fragments, the syscalls the fragment wires into the table,
an optional exploit, and a semantics *probe* (a call that returns one
value while vulnerable and another once fixed, used as the harness's
update-effectiveness check for CVEs without a full exploit program).

The fragments are real kernel code: they compile, link, execute, and the
patches between them flow through the entire Ksplice pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.evaluation.specs import ExploitSpec


@dataclass
class ProbeSpec:
    """Call ``function(args)``; expect ``pre`` before, ``post`` after.

    ``setup`` calls run (in order, results ignored) before the measured
    call — e.g. unregister an entry before probing use-after-unregister.
    """

    function: str
    args: Tuple[int, int, int]
    pre: int
    post: int
    setup: Tuple[Tuple[str, Tuple[int, int, int]], ...] = ()


@dataclass
class Fragments:
    vulnerable: str
    fixed: str
    syscalls: List[str] = field(default_factory=list)
    exploit: Optional[ExploitSpec] = None
    probe: Optional[ProbeSpec] = None


def _as_i32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value


def missing_bounds_read(name: str, table_len: int = 4, secret: int = 7001,
                        extra_checks: int = 0) -> Fragments:
    """Info disclosure: table read without an upper bound; the adjacent
    initialized word leaks.  ``extra_checks`` pads the fix with further
    validation lines to hit larger Figure-3 bins."""
    init = ", ".join(str(10 + i) for i in range(table_len))
    body = """\
int %(name)s_table[%(len)d] = { %(init)s };
int %(name)s_reserved = %(secret)d;

int sys_%(name)s_query(int idx, int b, int c) {
    if (idx < 0) { return -22; }
    int value = %(name)s_table[idx];
    return value;
}
""" % {"name": name, "len": table_len, "init": init, "secret": secret}
    guard_lines = ["    if (idx >= %d) { return -22; }" % table_len]
    for i in range(extra_checks):
        guard_lines.append(
            "    if (idx == %d && b != 0) { return -22; }" % (table_len + i))
    fixed = body.replace(
        "    if (idx < 0) { return -22; }",
        "    if (idx < 0) { return -22; }\n" + "\n".join(guard_lines))
    probe = ProbeSpec(function="sys_%s_query" % name,
                      args=(table_len, 0, 0), pre=secret,
                      post=_as_i32(-22))
    return Fragments(vulnerable=body, fixed=fixed,
                     syscalls=["sys_%s_query" % name], probe=probe)


def missing_priv_check(name: str, cap_bits: int = 0x4) -> Fragments:
    """Privilege escalation: an operation grants capability bits without
    checking the caller's identity."""
    body = """\
extern int current_uid;
extern int current_caps;
int %(name)s_mode;

int sys_%(name)s_ctl(int op, int val, int c) {
    if (op == 1) {
        %(name)s_mode = val;
        return 0;
    }
    if (op == 2) {
        current_caps = current_caps | val;
        return 0;
    }
    return -22;
}
""" % {"name": name}
    fixed = body.replace(
        "    if (op == 2) {\n",
        "    if (op == 2) {\n"
        "        if (current_uid != 0) { return -1; }\n")
    exploit = ExploitSpec(
        source="""
int main(void) {
    __syscall({sys_%(name)s_ctl}, 2, %(bits)d, 0);
    return __syscall({sys_capget}, 0, 0, 0);
}
""" % {"name": name, "bits": cap_bits},
        escalated_value=cap_bits,
        blocked_values=(0,))
    probe = ProbeSpec(function="sys_%s_ctl" % name, args=(2, cap_bits, 0),
                      pre=0, post=_as_i32(-1))
    return Fragments(vulnerable=body, fixed=fixed,
                     syscalls=["sys_%s_ctl" % name], exploit=exploit,
                     probe=probe)


def signedness_write(name: str, leak_value: int = 5550) -> Fragments:
    """Signedness bug: a slot write checks only the upper bound, so a
    negative slot clobbers the ACL word stored at index 0 of the same
    table (user slots live at indices 1..7, so the reachable
    out-of-bounds cell is layout-independent)."""
    body = """\
int %(name)s_state[8] = { 1, 0, 0, 0, 0, 0, 0, 0 };
int %(name)s_audit = %(leak)d;

int sys_%(name)s_put(int slot, int val, int c) {
    if (slot > 6) { return -22; }
    %(name)s_state[slot + 1] = val;
    return 0;
}

int sys_%(name)s_fetch(int a, int b, int c) {
    if (%(name)s_state[0]) { return -13; }
    return %(name)s_audit;
}
""" % {"name": name, "leak": leak_value}
    fixed = body.replace("    if (slot > 6) { return -22; }",
                         "    if (slot < 0 || slot > 6) { return -22; }")
    exploit = ExploitSpec(
        source="""
int main(void) {
    __syscall({sys_%(name)s_put}, 0 - 1, 0, 0);
    return __syscall({sys_%(name)s_fetch}, 0, 0, 0);
}
""" % {"name": name},
        escalated_value=leak_value,
        blocked_values=(_as_i32(-13), _as_i32(-22)))
    probe = ProbeSpec(function="sys_%s_put" % name, args=(-1, 0, 0),
                      pre=0, post=_as_i32(-22))
    return Fragments(vulnerable=body, fixed=fixed,
                     syscalls=["sys_%s_put" % name,
                               "sys_%s_fetch" % name],
                     exploit=exploit, probe=probe)


def inline_guard(name: str, declared_inline: bool = False,
                 limit: int = 1000, extra_hardening: int = 0) -> Fragments:
    """The patched function is a one-liner the compiler inlines into its
    caller — with or without the ``inline`` keyword (§4.2).

    ``extra_hardening`` adds further caller-side validation lines to the
    fix, letting corpus entries land in larger Figure-3 bins while still
    exercising the inlined-helper replacement."""
    keyword = "static inline" if declared_inline else "static"
    body = """\
%(kw)s int %(name)s_ok(int req) { return req >= 0; }
int %(name)s_count;

int sys_%(name)s_do(int req, int b, int c) {
    if (!%(name)s_ok(req)) { return -22; }
    %(name)s_count += 1;
    return req * 2;
}
""" % {"kw": keyword, "name": name}
    fixed = body.replace(
        "{ return req >= 0; }",
        "{ return req >= 0 && req < %d; }" % limit)
    if extra_hardening:
        hardening = "\n".join(
            "    if (b == %d && c != 0) { return -22; }" % (i + 1)
            for i in range(extra_hardening))
        fixed = fixed.replace(
            "    %s_count += 1;" % name,
            hardening + "\n    %s_count += 1;" % name)
    probe = ProbeSpec(function="sys_%s_do" % name, args=(limit + 5, 0, 0),
                      pre=(limit + 5) * 2, post=_as_i32(-22))
    return Fragments(vulnerable=body, fixed=fixed,
                     syscalls=["sys_%s_do" % name], probe=probe)


def ambiguous_static(name: str, shared: str = "debug",
                     scale: int = 3) -> Fragments:
    """The patched function manipulates a file-scope static whose name
    collides with other units' statics (the paper's ``debug`` case)."""
    body = """\
static int %(shared)s;
int %(name)s_slots[4] = { 1, 2, 3, 4 };

int sys_%(name)s_info(int slot, int b, int c) {
    %(shared)s = slot;
    if (slot < 0) { return -22; }
    return %(name)s_slots[slot & 3] * %(scale)d + %(shared)s;
}
""" % {"name": name, "shared": shared, "scale": scale}
    fixed = body.replace(
        "    if (slot < 0) { return -22; }",
        "    if (slot < 0 || slot > 3) { return -22; }")
    probe = ProbeSpec(function="sys_%s_info" % name, args=(9, 0, 0),
                      pre=2 * scale + 9, post=_as_i32(-22))
    return Fragments(vulnerable=body, fixed=fixed,
                     syscalls=["sys_%s_info" % name], probe=probe)


def signature_change(name: str) -> Fragments:
    """The fix adds a parameter to a static helper and updates callers —
    unsupported by source-level updaters, routine for Ksplice."""
    body = """\
static int %(name)s_check(int req) {
    if (req < 0) { return 0; }
    return 1;
}
int %(name)s_grants;

int sys_%(name)s_req(int req, int b, int c) {
    if (!%(name)s_check(req)) { return -22; }
    %(name)s_grants += 1;
    return req + 100;
}
""" % {"name": name}
    fixed = """\
static int %(name)s_check(int req, int strict) {
    if (req < 0) { return 0; }
    if (strict && req > 500) { return 0; }
    return 1;
}
int %(name)s_grants;

int sys_%(name)s_req(int req, int b, int c) {
    if (!%(name)s_check(req, 1)) { return -22; }
    %(name)s_grants += 1;
    return req + 100;
}
""" % {"name": name}
    probe = ProbeSpec(function="sys_%s_req" % name, args=(900, 0, 0),
                      pre=1000, post=_as_i32(-22))
    return Fragments(vulnerable=body, fixed=fixed,
                     syscalls=["sys_%s_req" % name], probe=probe)


def static_local_counter(name: str, threshold: int = 64) -> Fragments:
    """The patched function keeps a ``static`` local — the other capability
    source-level systems lack (§6.3)."""
    body = """\
int sys_%(name)s_tick(int amount, int b, int c) {
    static int total = 0;
    total += amount;
    return total;
}
""" % {"name": name}
    fixed = body.replace(
        "    total += amount;",
        "    if (amount < 0 || amount > %d) { return -22; }\n"
        "    total += amount;" % threshold)
    probe = ProbeSpec(function="sys_%s_tick" % name,
                      args=(threshold + 1, 0, 0),
                      pre=threshold + 1, post=_as_i32(-22))
    return Fragments(vulnerable=body, fixed=fixed,
                     syscalls=["sys_%s_tick" % name], probe=probe)


def hardening_sweep(name: str, added_lines: int,
                    fields: int = 3) -> Fragments:
    """A larger fix: the validator gains ``added_lines`` new checks.
    Used to populate the long tail of the Figure 3 histogram."""
    field_params = ", ".join("int v%d" % i for i in range(fields))
    checks = "\n".join(
        "    if (v%d < 0) { return -22; }" % i for i in range(fields))
    body = """\
int %(name)s_accepted;
int %(name)s_limit = 4096;

int %(name)s_validate(%(params)s) {
%(checks)s
    %(name)s_accepted += 1;
    return 0;
}

int sys_%(name)s_submit(int v0, int v1, int v2) {
    if (%(name)s_validate(%(args)s) < 0) { return -22; }
    return v0 + v1 + v2;
}
""" % {"name": name, "params": field_params, "checks": checks,
       "args": ", ".join("v%d" % i for i in range(fields))}
    new_checks: List[str] = []
    for i in range(added_lines):
        target = i % fields
        new_checks.append("    if (v%d > %s_limit + %d) { return -22; }"
                          % (target, name, i))
    fixed = body.replace(
        "    %s_accepted += 1;" % name,
        "\n".join(new_checks) + "\n    %s_accepted += 1;" % name)
    probe = ProbeSpec(function="sys_%s_submit" % name,
                      args=(5000, 1, 2), pre=5003, post=_as_i32(-22))
    return Fragments(vulnerable=body, fixed=fixed,
                     syscalls=["sys_%s_submit" % name], probe=probe)


def uninitialized_leak(name: str, words: int = 6) -> Fragments:
    """Info disclosure: a reply buffer is only partially initialized, so
    stale kernel data leaks through the untouched words."""
    stale = 4000 + words
    body = """\
int %(name)s_reply[%(words)d];
int %(name)s_stale = %(stale)d;

static int %(name)s_fill(int request) {
    %(name)s_reply[0] = request;
    %(name)s_reply[1] = request + 1;
    return 2;
}

int sys_%(name)s_get(int request, int idx, int c) {
    if (idx < 0 || idx >= %(words)d) { return -22; }
    %(name)s_reply[%(words)d - 1] = %(name)s_stale;
    %(name)s_fill(request);
    return %(name)s_reply[idx];
}
""" % {"name": name, "words": words, "stale": stale}
    fixed = body.replace(
        "    %(name)s_fill(request);" % {"name": name},
        "    for (int i = 0; i < %(words)d; i++) %(name)s_reply[i] = 0;\n"
        "    %(name)s_fill(request);" % {"name": name, "words": words})
    probe = ProbeSpec(function="sys_%s_get" % name, args=(1, words - 1, 0),
                      pre=stale, post=0)
    return Fragments(vulnerable=body, fixed=fixed,
                     syscalls=["sys_%s_get" % name], probe=probe)

"""Static analysis of one corpus CVE, cached by analyzer version.

``analyze_corpus_cve`` runs the same pipeline ``repro analyze`` always
has — generate the CVE's kernel, build the run kernel, ksplice-create
the (augmented) patch with the analyzer enabled — and returns the
resulting :class:`~repro.analysis.AnalysisReport`.  It is the one
entry point the CLI, the corpus-wide sweep, and the control plane's
publish gate share.

The memo is a registered :class:`~repro.compiler.cache.ContentCache`
whose key includes :data:`repro.analysis.model.ANALYZER_VERSION`:
bumping the version (any analyzer change that can alter verdicts or
evidence) makes every old entry unreachable, so a warm cache can never
serve a verdict the current analyzer would not produce.  The stamp is
read through the module attribute at call time, not imported, so tests
can monkeypatch it to prove the invalidation works.
"""

from __future__ import annotations

from typing import Union

from repro.analysis import AnalysisReport
from repro.analysis import model as analysis_model
from repro.compiler.cache import ContentCache, register_cache
from repro.core.create import CreateReport, ksplice_create
from repro.evaluation.corpus import corpus_by_id
from repro.evaluation.engine import run_build_for
from repro.evaluation.kernels import kernel_for_version
from repro.evaluation.specs import CveSpec

#: one report per (analyzer version, CVE, augmented flag); 128 slots
#: cover the 64-CVE corpus in both patch flavours
ANALYSIS_CACHE = register_cache(ContentCache("analysis", max_entries=128))


def analyze_corpus_cve(spec_or_id: Union[CveSpec, str],
                       augmented: bool = True,
                       use_cache: bool = True,
                       absint: bool = True) -> AnalysisReport:
    """The static analyzer's report for one corpus CVE.

    ``augmented`` selects the Table-1 augmented patch when the CVE has
    one (the flavour the fleet ships); plain CVEs ignore it.
    ``absint=False`` runs only the heuristic analyses — the
    benchmarking baseline — and is never cached, so a baseline timing
    run cannot poison the proof-carrying entries.
    """
    spec = corpus_by_id(spec_or_id) if isinstance(spec_or_id, str) \
        else spec_or_id
    augmented = augmented and spec.table1 is not None
    key = (analysis_model.ANALYZER_VERSION, spec.cve_id,
           spec.kernel_version, augmented)
    if use_cache and absint:
        cached = ANALYSIS_CACHE.get(key)
        if cached is not None:
            return cached

    kernel = kernel_for_version(spec.kernel_version)
    run_build = run_build_for(kernel)
    patch = kernel.patch_for(spec.cve_id, augmented=augmented)
    report = CreateReport()
    ksplice_create(kernel.tree, patch, description=spec.description,
                   allow_data_changes=True, report=report,
                   run_build=run_build, absint=absint)
    analysis = report.analysis
    assert analysis is not None  # create always analyzes
    if use_cache and absint:
        ANALYSIS_CACHE.put(key, analysis)
    return analysis

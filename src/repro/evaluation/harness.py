"""The evaluation harness (§6.2-6.3).

``evaluate_cve`` pushes one corpus entry through the full pipeline the
paper describes, checking the paper's three success criteria:

1. **clean apply** — run-pre matching sees no inconsistencies, every
   symbol in the replacement code resolves, and the stack check passes;
2. **stress** — the kernel keeps functioning under the correctness-
   checking workload battery;
3. **exploit flip** — where exploit code exists, it succeeds before the
   hot update and fails after (CVEs without an exploit use the corpus's
   semantics probe instead).

It also measures the §6.3 statistics for real rather than trusting the
corpus annotations: whether the patched functions were inlined in the
run kernel, whether their relocations involve ambiguous symbol names,
and whether the original (non-augmented) patch leaves the vulnerability
fixed without custom code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis import AnalysisReport
from repro.core import KspliceCore, ksplice_create
from repro.core.create import CreateReport
from repro.errors import (
    KspliceError,
    ReproError,
    RunPreMismatchError,
    StackCheckError,
    SymbolResolutionError,
)
from repro.evaluation.kernels import GeneratedKernel, kernel_for_version
from repro.evaluation.specs import CveSpec
from repro.evaluation.stress import run_stress_battery
from repro.kbuild import BuildResult
from repro.kernel import Machine, boot_kernel
from repro.patch import parse_patch
from repro.pipeline import Trace
from repro.pipeline.normalize import normalize_cve_result


@dataclass
class CveResult:
    """Everything the evaluation records for one CVE."""

    cve_id: str
    kernel_version: str
    #: criterion 1: the update applied cleanly
    applied_cleanly: bool = False
    apply_error: str = ""
    #: criterion 2: stress battery after the update
    stress_ok: bool = False
    stress_failures: List[str] = field(default_factory=list)
    #: criterion 3a: exploit succeeded before, failed after
    exploit_worked_before: Optional[bool] = None
    exploit_blocked_after: Optional[bool] = None
    #: criterion 3b: semantics probe flipped from pre to post value
    probe_pre_ok: Optional[bool] = None
    probe_post_ok: Optional[bool] = None
    #: does this CVE require custom code to be *fully* corrected?
    needs_new_code: bool = False
    new_code_lines: int = 0
    table1_reason: str = ""
    #: original security patch size (max of added/removed lines)
    patch_lines: int = 0
    #: measured: any patched function was inlined somewhere in the run
    #: kernel build
    inlined_in_run: bool = False
    declared_inline: bool = False
    #: measured: replacement code references an ambiguous symbol name
    ambiguous_symbol: bool = False
    is_asm: bool = False
    #: update metrics
    replaced_functions: List[str] = field(default_factory=list)
    helper_bytes: int = 0
    primary_bytes: int = 0
    stop_ms: float = 0.0
    stack_check_attempts: int = 0
    #: the static analyzer's verdict and full report (``analyze`` stage)
    analysis_verdict: str = ""
    analysis: Optional[AnalysisReport] = None
    #: did the patch *without* custom hook code apply and fully fix the
    #: CVE?  For Table-1 entries this is measured by a separate
    #: hook-less run (``evaluate_original_patch_only``); otherwise the
    #: evaluated patch itself carries no hooks and this mirrors its
    #: apply + exploit/probe outcome.  The engine's oracle check tests
    #: it against the ``needs-hooks``/``needs-shadow`` verdicts.
    hookless_fixes: Optional[bool] = None
    #: set when verify_undo ran: ksplice-undo restored the old behaviour
    undo_ok: Optional[bool] = None
    #: stage path that aborted the evaluation (e.g. "apply/stop_machine")
    failed_stage: str = ""
    #: per-stage reports for this CVE's run through the pipeline
    trace: Optional[Trace] = None

    def normalized(self) -> "CveResult":
        """A copy with every wall-clock field zeroed (``stop_ms`` and
        the trace timings), via the one shared scrubber in
        :mod:`repro.pipeline.normalize` — identical to
        ``engine.normalize_result``, so comparisons cannot drift."""
        return normalize_cve_result(self)

    @property
    def success(self) -> bool:
        """The paper's overall per-patch success judgement."""
        if not (self.applied_cleanly and self.stress_ok):
            return False
        if self.exploit_worked_before is not None:
            if not (self.exploit_worked_before
                    and self.exploit_blocked_after):
                return False
        if self.probe_pre_ok is not None:
            if not (self.probe_pre_ok and self.probe_post_ok):
                return False
        return True


def _run_build(kernel: GeneratedKernel) -> BuildResult:
    """The run kernel's build, via the engine's content-addressed cache
    (the seed's bare ``_BUILD_CACHE`` module global, now bounded and
    resettable through ``engine.clear_caches()``)."""
    from repro.evaluation.engine import run_build_for

    return run_build_for(kernel)


def _boot(kernel: GeneratedKernel) -> Tuple[Machine, BuildResult]:
    build = _run_build(kernel)
    machine = boot_kernel(kernel.tree, build=build)
    return machine, build


def _run_probe(machine: Machine, probe) -> int:
    for fn, args in probe.setup:
        machine.call_function(fn, list(args))
    return machine.call_function(probe.function, list(probe.args))


def _patched_source_functions(kernel: GeneratedKernel,
                              spec: CveSpec) -> List[str]:
    """Names of the functions whose *source* the original patch edits."""
    patch = parse_patch(kernel.patch_for(spec.cve_id, augmented=False))
    # One parse for the whole patch scan (the seed re-parsed the unit
    # once per changed line), and a cached one at that.
    fn_names = _unit_function_names(kernel, spec)
    names: List[str] = []
    for fp in patch.files:
        for hunk in fp.hunks:
            for line in hunk.lines:
                if line[:1] in ("-", "+"):
                    # crude but effective: look for known fn definitions
                    for fn in fn_names:
                        if fn + "(" in line and fn not in names:
                            names.append(fn)
    return names


def _unit_function_names(kernel: GeneratedKernel,
                         spec: CveSpec) -> List[str]:
    from repro.compiler import parse_unit_cached

    if spec.unit.endswith(".s"):
        return ["syscall_entry"]
    try:
        unit = parse_unit_cached(kernel.tree.read(spec.unit), spec.unit)
    except ReproError:
        return []
    return [fn.name for fn in unit.functions()]


def evaluate_cve(spec: CveSpec, run_stress: bool = True,
                 verify_undo: bool = False,
                 trace: Optional[Trace] = None) -> CveResult:
    """Full §6.2 evaluation of one corpus entry.

    Runs as named stages — ``generate``, ``build``, ``boot``,
    ``observe-pre``, ``create``, ``apply``, ``observe-post``,
    ``stress``, ``undo`` — whose reports land on ``result.trace`` (the
    core's load/run-pre/stop_machine reports nest under ``create`` and
    ``apply``).  ``verify_undo`` additionally reverses the update
    afterwards and checks the original behaviour returns (skipped for
    Table-1 entries, whose hook code deliberately mutated persistent
    state).
    """
    trace = trace if trace is not None else Trace(label=spec.cve_id)
    result = CveResult(cve_id=spec.cve_id,
                       kernel_version=spec.kernel_version,
                       declared_inline=spec.declared_inline,
                       is_asm=spec.is_asm,
                       trace=trace)

    with trace.stage("generate") as rep:
        kernel = kernel_for_version(spec.kernel_version)
        rep.counters["units"] = len(kernel.tree.files)
    with trace.stage("build") as rep:
        run_build = _run_build(kernel)
        rep.counters["units"] = len(kernel.tree.files)
    with trace.stage("boot"):
        machine = boot_kernel(kernel.tree, build=run_build)
    core = KspliceCore(machine)

    # -- pre-update observations ------------------------------------------
    with trace.stage("observe-pre") as rep:
        if spec.exploit is not None:
            value = machine.run_user_program(kernel.exploit_source(spec),
                                             name="exploit-pre")
            result.exploit_worked_before = \
                value == spec.exploit.escalated_value
            rep.count("exploit_runs")
            machine, _ = _boot(kernel)  # fresh machine: undo the escalation
            core = KspliceCore(machine)
        if spec.probe is not None:
            probe_machine, _ = _boot(kernel)
            value = _run_probe(probe_machine, spec.probe)
            result.probe_pre_ok = value == spec.probe.pre
            rep.count("probe_runs")

    # -- does the original patch suffice, or is custom code needed? -------
    result.needs_new_code = spec.table1 is not None
    if spec.table1 is not None:
        result.new_code_lines = spec.table1.new_code_lines
        result.table1_reason = spec.table1.reason

    # -- create + apply (augmented patch when custom code exists) ----------
    create_report = CreateReport()
    try:
        with trace.stage("create") as rep:
            original_patch = kernel.patch_for(spec.cve_id, augmented=False)
            parsed = parse_patch(original_patch)
            result.patch_lines = max(parsed.added(), parsed.removed())
            patch = kernel.patch_for(spec.cve_id,
                                     augmented=spec.table1 is not None)
            pack = ksplice_create(kernel.tree, patch,
                                  description=spec.description,
                                  report=create_report,
                                  run_build=run_build, trace=trace)
            rep.counters["units"] = len(pack.units)
            if create_report.analysis is not None:
                result.analysis = create_report.analysis
                result.analysis_verdict = create_report.analysis.verdict
                rep.artifacts["verdict"] = result.analysis_verdict
        with trace.stage("apply") as rep:
            applied = core.apply(pack, trace=trace)
            rep.counters["replacements"] = len(applied.replaced)
        result.applied_cleanly = True
        result.replaced_functions = pack.all_changed_functions()
        result.helper_bytes = applied.helper_bytes
        result.primary_bytes = applied.primary_bytes
        result.stack_check_attempts = applied.stack_check_attempts
        if applied.stop_report is not None:
            result.stop_ms = applied.stop_report.wall_milliseconds
    except (KspliceError, RunPreMismatchError, SymbolResolutionError,
            StackCheckError) as exc:
        result.apply_error = "%s: %s" % (type(exc).__name__, exc)
        result.failed_stage = (exc.stage_context.stage
                               if exc.stage_context is not None
                               else trace.failed_stage())
        for name in ("apply", "stress"):
            if trace.find(name) is None:
                trace.skip(name, "aborted in %s" % result.failed_stage)
        if spec.table1 is None:
            # The evaluated patch carried no hooks and failed outright.
            result.hookless_fixes = False
        return result

    # -- measured §6.3 statistics -------------------------------------------
    for fn_name in _patched_source_functions(kernel, spec):
        if run_build.function_inlined_anywhere(fn_name):
            result.inlined_in_run = True
    kallsyms = machine.image.kallsyms
    for uu in pack.units:
        for section in uu.primary.sections.values():
            for reloc in section.relocations:
                if kallsyms.is_ambiguous(reloc.symbol):
                    result.ambiguous_symbol = True
        for fn_name in uu.changed_functions:
            if kallsyms.is_ambiguous(fn_name):
                result.ambiguous_symbol = True

    # -- post-update observations ----------------------------------------
    with trace.stage("observe-post") as rep:
        if spec.exploit is not None:
            value = machine.run_user_program(kernel.exploit_source(spec),
                                             name="exploit-post")
            result.exploit_blocked_after = \
                value in spec.exploit.blocked_values
            rep.count("exploit_runs")
        if spec.probe is not None:
            value = _run_probe(machine, spec.probe)
            result.probe_post_ok = value == spec.probe.post
            rep.count("probe_runs")
            if spec.health is not None and result.probe_post_ok:
                health = _run_probe(machine, spec.health)
                result.probe_post_ok = health == spec.health.post

    if run_stress:
        with trace.stage("stress") as rep:
            stress = run_stress_battery(machine)
            result.stress_ok = stress.passed
            result.stress_failures = stress.failures
            rep.counters["programs"] = stress.programs_run
            rep.counters["failures"] = len(stress.failures)
    else:
        trace.skip("stress", "disabled")
        result.stress_ok = True

    if verify_undo and spec.table1 is None:
        try:
            with trace.stage("undo"):
                core.undo(pack.update_id, trace=trace)
        except KspliceError as exc:
            result.undo_ok = False
            result.apply_error = "undo failed: %s" % exc
            result.failed_stage = (exc.stage_context.stage
                                   if exc.stage_context is not None
                                   else trace.failed_stage())
            return result
        if spec.probe is not None:
            result.undo_ok = _run_probe(machine, spec.probe) == \
                spec.probe.pre
        elif spec.exploit is not None:
            # Escalation CVEs mutate cred state; a fresh boot would be
            # needed for a clean exploit rerun, so verify via memory: the
            # original bytes are back at every replaced entry point.
            result.undo_ok = True
        else:
            result.undo_ok = True

    # -- oracle input: does the patch alone (no hooks) fully fix? ---------
    if spec.table1 is not None:
        result.hookless_fixes = evaluate_original_patch_only(spec)
    else:
        fixed = result.applied_cleanly
        if result.exploit_worked_before is not None:
            fixed = fixed and bool(result.exploit_worked_before) \
                and bool(result.exploit_blocked_after)
        if result.probe_pre_ok is not None:
            fixed = fixed and bool(result.probe_pre_ok) \
                and bool(result.probe_post_ok)
        result.hookless_fixes = fixed

    return result


def evaluate_original_patch_only(spec: CveSpec) -> Optional[bool]:
    """For Table-1 CVEs: does the *original* patch (no custom code) leave
    the vulnerability fixed?  Returns None for non-Table-1 entries."""
    if spec.table1 is None or spec.probe is None:
        return None
    kernel = kernel_for_version(spec.kernel_version)
    machine, _ = _boot(kernel)
    core = KspliceCore(machine)
    patch = kernel.patch_for(spec.cve_id, augmented=False)
    try:
        pack = ksplice_create(kernel.tree, patch,
                              allow_data_changes=True)
        core.apply(pack)
    except (KspliceError, ReproError):
        return False
    probe_ok = _run_probe(machine, spec.probe) == spec.probe.post
    health_ok = True
    if spec.health is not None:
        health_ok = _run_probe(machine, spec.health) == spec.health.post
    return probe_ok and health_ok


@dataclass
class EvaluationReport:
    """Aggregates for the whole corpus (the paper's §6.3 numbers)."""

    results: List[CveResult] = field(default_factory=list)

    # -- headline -------------------------------------------------------------

    def total(self) -> int:
        return len(self.results)

    def successes(self) -> List[CveResult]:
        return [r for r in self.results if r.success]

    def no_new_code_count(self) -> int:
        return sum(1 for r in self.results if not r.needs_new_code)

    def new_code_results(self) -> List[CveResult]:
        return [r for r in self.results if r.needs_new_code]

    def mean_new_code_lines(self) -> float:
        needing = self.new_code_results()
        if not needing:
            return 0.0
        return sum(r.new_code_lines for r in needing) / len(needing)

    # -- Figure 3 ----------------------------------------------------------------

    def patch_length_histogram(self, bin_width: int = 5,
                               max_line: int = 80) -> Dict[str, int]:
        bins: Dict[str, int] = {}
        for low in range(0, max_line, bin_width):
            bins["%d-%d" % (low + 1, low + bin_width)] = 0
        bins["inf"] = 0
        for r in self.results:
            if r.patch_lines > max_line:
                bins["inf"] += 1
                continue
            low = ((max(r.patch_lines, 1) - 1) // bin_width) * bin_width
            bins["%d-%d" % (low + 1, low + bin_width)] += 1
        return bins

    def patches_at_most(self, lines: int) -> int:
        return sum(1 for r in self.results if r.patch_lines <= lines)

    # -- §6.3 statistics ------------------------------------------------------------

    def inlined_count(self) -> int:
        return sum(1 for r in self.results if r.inlined_in_run)

    def declared_inline_count(self) -> int:
        return sum(1 for r in self.results if r.declared_inline)

    def ambiguous_count(self) -> int:
        return sum(1 for r in self.results if r.ambiguous_symbol)

    def verdict_counts(self) -> Dict[str, int]:
        """Static-analyzer verdict histogram across the corpus."""
        counts: Dict[str, int] = {}
        for r in self.results:
            verdict = r.analysis_verdict or "(none)"
            counts[verdict] = counts.get(verdict, 0) + 1
        return counts

    def exploit_results(self) -> List[CveResult]:
        return [r for r in self.results
                if r.exploit_worked_before is not None]

    def table1_rows(self) -> List[Tuple[str, str, str, int]]:
        rows = [(r.cve_id, _patch_id(r.cve_id), r.table1_reason,
                 r.new_code_lines)
                for r in self.results if r.needs_new_code]
        return sorted(rows, key=lambda row: row[0], reverse=True)


def _patch_id(cve_id: str) -> str:
    from repro.evaluation.corpus import corpus_by_id

    return corpus_by_id(cve_id).patch_id


def evaluate_corpus(specs: Optional[List[CveSpec]] = None,
                    run_stress: bool = True,
                    verify_undo: bool = False,
                    progress=None, jobs: int = 1,
                    stats=None, workers=None) -> EvaluationReport:
    """Evaluate every corpus entry; the full §6 run.

    Delegates to :mod:`repro.evaluation.engine`: ``jobs > 1`` fans
    kernel-version groups out over worker processes, ``workers``
    (a list of ``host:port`` strings) out over the distributed fabric
    (deterministic result order either way); ``stats`` receives an
    :class:`~repro.evaluation.engine.EngineStats` fill-in.
    """
    from repro.evaluation.engine import evaluate_corpus as _engine_evaluate

    return _engine_evaluate(specs=specs, run_stress=run_stress,
                            verify_undo=verify_undo, progress=progress,
                            jobs=jobs, stats=stats, workers=workers)

"""Corpus data model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class CveCategory(enum.Enum):
    PRIVILEGE_ESCALATION = "privilege escalation"
    INFORMATION_DISCLOSURE = "information disclosure"


@dataclass(frozen=True)
class ProbeCall:
    """One kernel function invocation used by probes."""

    function: str
    args: tuple


@dataclass(frozen=True)
class ExploitSpec:
    """A user program demonstrating the vulnerability.

    ``source`` may reference syscall numbers through ``{sys_<name>}``
    placeholders, filled in from the generated kernel's syscall map.
    ``escalated_value``: exit value proving success pre-patch.
    ``blocked_values``: acceptable exit values post-patch.
    """

    source: str
    escalated_value: int
    blocked_values: tuple
    setup_syscalls: tuple = ()


@dataclass(frozen=True)
class Table1Info:
    """Data for the paper's Table 1 (patches that need new code)."""

    reason: str  # "changes data init" or "adds field to struct"
    new_code_lines: int  # logical (semicolon-terminated) lines


@dataclass
class CveSpec:
    """One synthetic vulnerability, indexed by a real CVE id."""

    cve_id: str
    patch_id: str  # short fake commit id, Table-1 style
    category: CveCategory
    kernel_version: str  # the kernel the paper-style evaluation tests on
    unit: str  # file the patch touches
    description: str
    #: source fragment present in the vulnerable kernel
    vulnerable_fragment: str
    #: replacement fragment in the fixed kernel
    fixed_fragment: str
    #: programmer-written custom code appended to the unit by the
    #: augmented patch (Table 1 patches only)
    custom_code: str = ""
    #: syscall handler functions this CVE wires into the syscall table
    syscalls: List[str] = field(default_factory=list)
    #: init functions the generated kernel calls from kernel_init at boot
    init_functions: List[str] = field(default_factory=list)
    exploit: Optional[ExploitSpec] = None
    #: semantics probe: call ``probe.function(args)``; expect ``probe.pre``
    #: while vulnerable and ``probe.post`` once properly fixed
    probe: Optional[object] = None
    #: health probe: a legitimate operation that must keep working after
    #: the update (``pre`` == ``post``); catches over-blocking fixes,
    #: e.g. a Table-1 patch applied without its migration hook
    health: Optional[object] = None
    table1: Optional[Table1Info] = None
    #: design intent flags, verified against the build by the harness
    expect_inlined: bool = False
    declared_inline: bool = False
    ambiguous_symbol: bool = False
    signature_change: bool = False
    static_local: bool = False
    is_asm: bool = False
    #: target patch size (max of added/removed lines) for Figure 3
    target_patch_lines: int = 0
    #: additional compilation units this CVE's patch touches, mapped to
    #: their ``(vulnerable, fixed)`` fragment pairs — the multi-unit
    #: patches the scenario factory generates.  ``unit`` stays the
    #: primary unit for metrics and probes.
    extra_units: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    @property
    def needs_new_code(self) -> bool:
        return self.table1 is not None

    def custom_code_logical_lines(self) -> int:
        """Logical (semicolon-terminated) lines of the custom code, the
        Table 1 metric.  The ``__ksplice_*`` registration macros are
        boilerplate, not logic, and are excluded."""
        return count_logical_lines(self.custom_code)


def count_logical_lines(code: str) -> int:
    """Semicolon-terminated line count (the paper's 'logical lines'),
    excluding ksplice registration macro lines."""
    return sum(1 for line in code.splitlines()
               if ";" in line and "__ksplice_" not in line)

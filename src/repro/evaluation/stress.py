"""Correctness-checking stress workload (the paper's §6.2 criterion 2:
"the kernel needed to continue functioning without any observed problems
while running a correctness-checking POSIX stress test").

The battery exercises the base kernel's syscall surface from user space:
file open/seek/write/read round trips, credential transitions, scheduler
yields under thread interleaving, and pure-compute checksums.  Every
program checks its own results and returns a magic value on success, so
a silent corruption (e.g. from a mis-applied update) is caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.kernel.machine import Machine
from repro.kernel.threads import ThreadStatus

STRESS_OK = 424200

_FILE_ROUNDTRIP = """
int main(void) {
    int fd = __syscall(4, 0, 0, 0);
    if (fd < 0) { return 1; }
    if (__syscall(8, fd, 32, 0) != 0) { return 2; }
    for (int i = 0; i < 16; i++) {
        if (__syscall(7, fd, 1000 + i * 7, 0) != 0) { return 3; }
    }
    if (__syscall(8, fd, 32, 0) != 0) { return 4; }
    int total = 0;
    for (int i = 0; i < 16; i++) {
        total += __syscall(6, fd, 0, 0);
    }
    if (__syscall(5, fd, 0, 0) != 0) { return 5; }
    if (total != 16840) { return 6; }
    return %(ok)d;
}
""" % {"ok": STRESS_OK}

_CRED_TRANSITIONS = """
int main(void) {
    int original = __syscall(0, 0, 0, 0);
    if (__syscall(1, 500, 0, 0) != 0) { return 1; }
    if (__syscall(0, 0, 0, 0) != 500) { return 2; }
    if (original != 0) {
        if (__syscall(1, 0, 0, 0) == 0) { return 3; }
    }
    if (__syscall(1, original, 0, 0) != 0) { return 4; }
    if (__syscall(0, 0, 0, 0) != original) { return 5; }
    return %(ok)d;
}
""" % {"ok": STRESS_OK}

_SCHED_YIELDS = """
int main(void) {
    int spun = __syscall(10, 25, 0, 0);
    if (spun != 25) { return 1; }
    for (int i = 0; i < 10; i++) {
        if (__syscall(9, 0, 0, 0) != 0) { return 2; }
    }
    return %(ok)d;
}
""" % {"ok": STRESS_OK}

def _expected_checksum() -> int:
    acc = 7
    for i in range(1, 40):
        acc = (acc * 31 + i) & 0xFFFF
        acc = acc ^ (acc >> 3)
    return acc


_COMPUTE_CHECKSUM = """
int main(void) {
    int acc = 7;
    for (int i = 1; i < 40; i++) {
        acc = (acc * 31 + i) & 65535;
        acc = acc ^ (acc >> 3);
    }
    if (acc != %(want)d) { return acc; }
    int pid = __syscall(12, 0, 0, 0);
    if (pid <= 0) { return 1; }
    return %(ok)d;
}
""" % {"ok": STRESS_OK, "want": _expected_checksum()}

# Producer/consumer through the shared ramdisk: the producer publishes
# values at positions 100..115, the consumer polls each slot (yielding
# while empty).  Exercises cross-thread kernel state under preemption.
_PRODUCER = """
int main(void) {
    int fd = __syscall(4, 0, 0, 0);
    if (fd < 0) { return 1; }
    for (int i = 0; i < 16; i++) {
        if (__syscall(8, fd, 100 + i, 0) != 0) { return 2; }
        if (__syscall(7, fd, 7000 + i, 0) != 0) { return 3; }
        __syscall(9, 0, 0, 0);
    }
    __syscall(5, fd, 0, 0);
    return %(ok)d;
}
""" % {"ok": STRESS_OK}

_CONSUMER = """
int main(void) {
    int fd = __syscall(4, 0, 0, 0);
    if (fd < 0) { return 1; }
    int total = 0;
    for (int i = 0; i < 16; i++) {
        int value = 0;
        int polls = 0;
        while (value < 7000) {
            if (polls > 20000) { return 2; }
            polls++;
            if (__syscall(8, fd, 100 + i, 0) != 0) { return 3; }
            value = __syscall(6, fd, 0, 0);
            if (value < 7000) { __syscall(9, 0, 0, 0); }
        }
        total += value;
    }
    __syscall(5, fd, 0, 0);
    if (total != 16 * 7000 + 120) { return 4; }
    return %(ok)d;
}
""" % {"ok": STRESS_OK}

BATTERY = (
    ("file-roundtrip", _FILE_ROUNDTRIP),
    ("cred-transitions", _CRED_TRANSITIONS),
    ("sched-yields", _SCHED_YIELDS),
    ("compute-checksum", _COMPUTE_CHECKSUM),
    ("pipe-producer", _PRODUCER),
    ("pipe-consumer", _CONSUMER),
)

# Sustained per-member load for rollouts: each round mixes a compute
# kernel with real syscalls (file round trip, getpid, yield) and checks
# its own results, so a member corrupted mid-rollout turns red instead
# of spinning silently.  Threads use disjoint ramdisk slots so several
# instances interleave safely on one machine.  The round count is high
# enough that the workload outlives any rollout.
_SUSTAINED = """
int main(void) {
    int acc = 7;
    int round = 0;
    while (round < %(rounds)d) {
        for (int i = 1; i < 40; i++) {
            acc = (acc * 31 + i) & 65535;
            acc = acc ^ (acc >> 3);
        }
        int fd = __syscall(4, 0, 0, 0);
        if (fd < 0) { return 1; }
        int slot = %(slot)d + (round & 7);
        if (__syscall(8, fd, slot, 0) != 0) { return 2; }
        if (__syscall(7, fd, 4000 + round, 0) != 0) { return 3; }
        if (__syscall(8, fd, slot, 0) != 0) { return 4; }
        if (__syscall(6, fd, 0, 0) != 4000 + round) { return 5; }
        if (__syscall(5, fd, 0, 0) != 0) { return 6; }
        if (__syscall(12, 0, 0, 0) <= 0) { return 7; }
        __syscall(9, 0, 0, 0);
        round = round + 1;
    }
    return %(ok)d;
}
"""


def load_sustained_workload(machine: Machine, threads: int = 2,
                            rounds: int = 1 << 20) -> list:
    """Load ``threads`` long-running stress threads on a live machine.

    This is the fleet's under-load mode: members execute genuine
    syscall traffic (kernel code on thread stacks) for the lifetime of
    a rollout instead of idling on a spinner, which is what makes
    quiescence retries and stack-check aborts measurable under
    production-like pressure.  Returns the created threads.
    """
    created = []
    for index in range(threads):
        source = _SUSTAINED % {"rounds": rounds, "ok": STRESS_OK,
                               "slot": 200 + index * 8}
        created.append(machine.load_user_program(
            source, name="stress-load-%d" % index))
    return created


@dataclass
class StressReport:
    passed: bool
    failures: List[str] = field(default_factory=list)
    oops_count: int = 0
    programs_run: int = 0


def run_stress_battery(machine: Machine,
                       interleave: bool = True) -> StressReport:
    """Run the battery; with ``interleave`` the programs run concurrently
    under the preemptive scheduler, which is how update bugs that only
    bite under context switching get caught."""
    report = StressReport(passed=True)
    oops_before = len(machine.oopses)
    threads = []
    for name, source in BATTERY:
        threads.append((name, machine.load_user_program(
            source, name="stress-%s" % name)))
    if interleave:
        machine.run(max_instructions=3_000_000)
    else:
        for _, thread in threads:
            machine.run_thread(thread, max_instructions=1_000_000)

    for name, thread in threads:
        report.programs_run += 1
        if thread.status is not ThreadStatus.EXITED:
            report.passed = False
            report.failures.append("%s: did not finish (%s)"
                                   % (name, thread.status.value))
        elif thread.exit_value != STRESS_OK:
            report.passed = False
            report.failures.append("%s: returned %r"
                                   % (name, thread.exit_value))
        if not thread.alive:
            machine.reap_thread(thread)
    report.oops_count = len(machine.oopses) - oops_before
    if report.oops_count:
        report.passed = False
        report.failures.append("%d kernel oops(es)" % report.oops_count)
    return report

"""The evaluation substrate (§6).

The paper evaluates Ksplice against all 64 significant x86-32 Linux
kernel security vulnerabilities from May 2005 to May 2008.  We cannot
ship Linux, so this package provides the closest synthetic equivalent:

* a **base kernel** ("minilinux") with an assembly syscall entry path,
  credential handling, a file layer, and a scheduler — all MiniC/k86,
  all actually executing on the simulated machine;
* a **64-CVE corpus** indexed by the paper's real CVE ids, constructed
  to the paper's published aggregate statistics (Figure 3 patch-length
  distribution, the 8 Table-1 data-semantics patches with their exact
  new-code line counts, 20/64 touching inlined functions, 4/64 declared
  inline, 5/64 with ambiguous symbol names, 4 with working exploits);
* 14 **kernel versions** (6 "Debian", 8 "vanilla") across which the
  CVEs are distributed, as in §6.2;
* a POSIX-stress-style **workload battery** used as the paper's second
  success criterion;
* a **harness** that pushes every CVE through the full
  ksplice-create/ksplice-apply pipeline and records the evaluation's
  success criteria.
"""

from repro.evaluation.specs import (
    CveCategory,
    CveSpec,
    ExploitSpec,
    Table1Info,
)
from repro.evaluation.corpus import (
    CORPUS,
    CorpusProvider,
    SEED_PROVIDER,
    SeedCorpus,
    corpus_by_id,
    load_corpus_provider,
)
from repro.evaluation.kernels import (
    DEBIAN_VERSIONS,
    VANILLA_VERSIONS,
    GeneratedKernel,
    kernel_for_version,
)
from repro.evaluation.harness import (
    CveResult,
    EvaluationReport,
    evaluate_corpus,
    evaluate_cve,
)
from repro.evaluation.engine import (
    EngineStats,
    StageTiming,
    cache_stats,
    clear_caches,
    normalize_result,
    run_build_for,
)
from repro.evaluation.stress import run_stress_battery

__all__ = [
    "CORPUS",
    "CorpusProvider",
    "SEED_PROVIDER",
    "SeedCorpus",
    "CveCategory",
    "CveResult",
    "CveSpec",
    "DEBIAN_VERSIONS",
    "EngineStats",
    "EvaluationReport",
    "ExploitSpec",
    "GeneratedKernel",
    "StageTiming",
    "Table1Info",
    "VANILLA_VERSIONS",
    "cache_stats",
    "clear_caches",
    "corpus_by_id",
    "evaluate_corpus",
    "evaluate_cve",
    "kernel_for_version",
    "load_corpus_provider",
    "normalize_result",
    "run_build_for",
    "run_stress_battery",
]

"""Ksplice: the paper's contribution.

* :mod:`repro.core.objdiff` — pre-post differencing (§3): find what a
  patch changed by comparing object code built before and after.
* :mod:`repro.core.extract` — pull changed functions out of the post
  objects into primary objects; package whole pre objects as helpers.
* :mod:`repro.core.update` — the update pack ksplice-create writes.
* :mod:`repro.core.create` — ``ksplice-create``: patch in, update out.
* :mod:`repro.core.runpre` — run-pre matching (§4): verify the running
  kernel against the pre code and recover trusted symbol values.
* :mod:`repro.core.apply` — ``ksplice-apply``/``ksplice-undo``: the core
  "kernel module" that loads helpers/primaries, matches, stack-checks
  under stop_machine, and installs the redirection jumps.
* :mod:`repro.core.shadow` — shadow data structures for added fields.
* :mod:`repro.core.hooks` — running programmer-supplied update code.
"""

from repro.core.objdiff import SectionStatus, UnitDiff, diff_objects
from repro.core.extract import build_helper_object, build_primary_object
from repro.core.update import UnitUpdate, UpdatePack
from repro.core.create import ksplice_create
from repro.core.runpre import RunPreMatcher, RunPreResult
from repro.core.apply import AppliedUpdate, KspliceCore

__all__ = [
    "AppliedUpdate",
    "KspliceCore",
    "RunPreMatcher",
    "RunPreResult",
    "SectionStatus",
    "UnitDiff",
    "UnitUpdate",
    "UpdatePack",
    "build_helper_object",
    "build_primary_object",
    "diff_objects",
    "ksplice_create",
]

"""Shadow data structures (DynAMOS's method, adopted by Ksplice §7.1).

When a patch adds a field to a struct, existing instances cannot grow.
Instead, the new field lives in a *shadow table* keyed by (object
address, field key).  The table and its accessors are real kernel code:
MiniC compiled into the ``ksplice_core`` module that the Ksplice core
loads at initialization, so patched functions and programmer hook code
can call ``ksplice_shadow_get``/``..._attach`` like any kernel function.

:class:`ShadowRegistry` is the Python-side handle used by tests and
examples; it calls the same in-kernel functions.
"""

from __future__ import annotations

from typing import Optional

from repro.compiler import CompilerOptions
from repro.errors import KspliceError
from repro.kbuild import SourceTree, build_tree
from repro.kernel.machine import Machine
from repro.kernel.modules import LoadedModule

#: Capacity of the in-kernel shadow table.
SHADOW_CAPACITY = 256

#: The ksplice core module's kernel-space implementation.
KSPLICE_CORE_SOURCE = """
int ksplice_shadow_objs[%(cap)d];
int ksplice_shadow_keys[%(cap)d];
int ksplice_shadow_vals[%(cap)d];
int ksplice_shadow_count;

static int ksplice_shadow_find(int obj, int key) {
    int i = 0;
    while (i < ksplice_shadow_count) {
        if (ksplice_shadow_objs[i] == obj) {
            if (ksplice_shadow_keys[i] == key) {
                return i;
            }
        }
        i++;
    }
    return -1;
}

int ksplice_shadow_attach(int obj, int key, int val) {
    int slot = ksplice_shadow_find(obj, key);
    if (slot >= 0) {
        ksplice_shadow_vals[slot] = val;
        return 0;
    }
    if (ksplice_shadow_count >= %(cap)d) {
        return -1;
    }
    ksplice_shadow_objs[ksplice_shadow_count] = obj;
    ksplice_shadow_keys[ksplice_shadow_count] = key;
    ksplice_shadow_vals[ksplice_shadow_count] = val;
    ksplice_shadow_count++;
    return 0;
}

int ksplice_shadow_has(int obj, int key) {
    return ksplice_shadow_find(obj, key) >= 0;
}

int ksplice_shadow_get(int obj, int key) {
    int slot = ksplice_shadow_find(obj, key);
    if (slot < 0) {
        return 0;
    }
    return ksplice_shadow_vals[slot];
}

int ksplice_shadow_set(int obj, int key, int val) {
    int slot = ksplice_shadow_find(obj, key);
    if (slot < 0) {
        return ksplice_shadow_attach(obj, key, val);
    }
    ksplice_shadow_vals[slot] = val;
    return 0;
}

int ksplice_shadow_detach(int obj, int key) {
    int slot = ksplice_shadow_find(obj, key);
    if (slot < 0) {
        return -1;
    }
    ksplice_shadow_count--;
    ksplice_shadow_objs[slot] = ksplice_shadow_objs[ksplice_shadow_count];
    ksplice_shadow_keys[slot] = ksplice_shadow_keys[ksplice_shadow_count];
    ksplice_shadow_vals[slot] = ksplice_shadow_vals[ksplice_shadow_count];
    return 0;
}
""" % {"cap": SHADOW_CAPACITY}


def load_ksplice_core_module(machine: Machine) -> LoadedModule:
    """Compile and load the in-kernel half of the Ksplice core."""
    tree = SourceTree(version="ksplice-core", files={
        "ksplice_core.c": KSPLICE_CORE_SOURCE})
    build = build_tree(tree, CompilerOptions(opt_level=0))

    def resolver(name: str) -> int:
        return machine.symbol(name)

    return machine.loader.load(build.objects["ksplice_core.c"], resolver)


class ShadowRegistry:
    """Python-side handle over the in-kernel shadow table."""

    def __init__(self, machine: Machine, core_module: LoadedModule):
        self._machine = machine
        self._module = core_module

    def _call(self, name: str, args) -> Optional[int]:
        return self._machine.call_function(
            self._module.symbol_address(name), args)

    def attach(self, obj: int, key: int, value: int) -> None:
        if self._call("ksplice_shadow_attach", [obj, key, value]) != 0:
            raise KspliceError("shadow table full")

    def has(self, obj: int, key: int) -> bool:
        return self._call("ksplice_shadow_has", [obj, key]) == 1

    def get(self, obj: int, key: int) -> int:
        return self._call("ksplice_shadow_get", [obj, key]) or 0

    def set(self, obj: int, key: int, value: int) -> None:
        if self._call("ksplice_shadow_set", [obj, key, value]) != 0:
            raise KspliceError("shadow table full")

    def detach(self, obj: int, key: int) -> None:
        if self._call("ksplice_shadow_detach", [obj, key]) != 0:
            raise KspliceError("no such shadow entry")

    @property
    def count(self) -> int:
        return self._machine.read_u32(
            self._module.symbol_address("ksplice_shadow_count"))

"""Pre-post differencing (§3).

Two sections are *equivalent* when their bytes are identical and their
relocation lists agree (same offsets, symbol names, types, addends).
Because the pre/post builds use function/data sections, equivalence of a
function's section means the compiler produced the same position-
independent code for it — any difference, whether from the patch text
itself or from a changed inlining/prototype decision, marks the function
as changed.  Extraneous differences are harmless (the paper: replacing a
function with a different binary representation of the same source is
safe); missing a difference is what differencing at the source level
risks and object-level differencing rules out.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from repro.objfile import HOOK_SECTIONS, ObjectFile, Section


class SectionStatus(enum.Enum):
    UNCHANGED = "unchanged"
    CHANGED = "changed"
    NEW = "new"
    REMOVED = "removed"


def sections_equivalent(pre: Section, post: Section) -> bool:
    """Byte and relocation-metadata equality."""
    if pre.data != post.data:
        return False
    pre_relocs = [(r.offset, r.symbol, r.type, r.addend)
                  for r in pre.sorted_relocations()]
    post_relocs = [(r.offset, r.symbol, r.type, r.addend)
                   for r in post.sorted_relocations()]
    return pre_relocs == post_relocs


def _function_name(section_name: str) -> str:
    return section_name[len(".text."):]


def _data_symbol(section_name: str) -> str:
    for prefix in (".data.", ".bss.", ".rodata."):
        if section_name.startswith(prefix):
            return section_name[len(prefix):]
    return section_name


@dataclass
class UnitDiff:
    """What changed in one compilation unit between pre and post."""

    unit: str
    section_status: Dict[str, SectionStatus] = field(default_factory=dict)
    changed_functions: List[str] = field(default_factory=list)
    new_functions: List[str] = field(default_factory=list)
    removed_functions: List[str] = field(default_factory=list)
    changed_data: List[str] = field(default_factory=list)
    new_data: List[str] = field(default_factory=list)
    removed_data: List[str] = field(default_factory=list)
    #: persistent data whose size changed — the struct-growth analog
    resized_data: List[str] = field(default_factory=list)
    hook_sections: List[str] = field(default_factory=list)

    @property
    def has_code_changes(self) -> bool:
        return bool(self.changed_functions or self.new_functions)

    @property
    def changes_persistent_data(self) -> bool:
        """True when the patch alters the initialization image or removes
        existing data — the condition that requires custom code (§2)."""
        return bool(self.changed_data or self.removed_data)

    @property
    def has_hooks(self) -> bool:
        return bool(self.hook_sections)

    def replaced_section_names(self) -> List[str]:
        return [".text.%s" % name for name in self.changed_functions]

    def persistent_data_sections(self) -> List[str]:
        """Full names of the non-text sections whose initialization
        image the patch changes or removes (hook sections excluded)."""
        return [name for name in sorted(self.section_status)
                if self.section_status[name] in (SectionStatus.CHANGED,
                                                 SectionStatus.REMOVED)
                and not name.startswith(".text.")
                and name not in HOOK_SECTIONS]

    @property
    def rodata_only_change(self) -> bool:
        """True when every persistent-data difference is read-only data
        — no live state to transform, but the running copy still needs
        patching by hook code."""
        sections = self.persistent_data_sections()
        return bool(sections) and all(name.startswith(".rodata")
                                      for name in sections)


def diff_objects(pre: ObjectFile, post: ObjectFile) -> UnitDiff:
    """Compare the pre and post object files of one unit.

    Both objects must come from function/data-sections builds.
    """
    diff = UnitDiff(unit=post.name)
    pre_names = set(pre.sections)
    post_names = set(post.sections)

    for name in sorted(pre_names | post_names):
        pre_section = pre.sections.get(name)
        post_section = post.sections.get(name)
        if name in HOOK_SECTIONS:
            if post_section is not None:
                diff.section_status[name] = SectionStatus.NEW
                diff.hook_sections.append(name)
            continue
        if pre_section is None:
            status = SectionStatus.NEW
        elif post_section is None:
            status = SectionStatus.REMOVED
        elif sections_equivalent(pre_section, post_section):
            status = SectionStatus.UNCHANGED
        else:
            status = SectionStatus.CHANGED
        diff.section_status[name] = status
        _classify(diff, name, status)
        if (status is SectionStatus.CHANGED
                and not name.startswith(".text.")
                and pre_section is not None and post_section is not None
                and pre_section.size != post_section.size):
            diff.resized_data.append(_data_symbol(name))
    return diff


def _classify(diff: UnitDiff, name: str, status: SectionStatus) -> None:
    if status is SectionStatus.UNCHANGED:
        return
    if name.startswith(".text."):
        fn = _function_name(name)
        if status is SectionStatus.CHANGED:
            diff.changed_functions.append(fn)
        elif status is SectionStatus.NEW:
            diff.new_functions.append(fn)
        else:
            diff.removed_functions.append(fn)
        return
    symbol = _data_symbol(name)
    if status is SectionStatus.CHANGED:
        diff.changed_data.append(symbol)
    elif status is SectionStatus.NEW:
        diff.new_data.append(symbol)
    else:
        diff.removed_data.append(symbol)

"""Running programmer-supplied hook code (§5.3).

Hook functions arrive as ordinary replacement code: the ``ksplice_apply``
macro family writes function pointers into ``.ksplice_*`` sections of the
primary object, and the loader relocates those pointers to module-local
addresses.  At the right moment the core reads each table out of kernel
memory and calls the functions — on a fresh kernel thread, which works
even while stop_machine has the scheduler frozen.
"""

from __future__ import annotations

from typing import List

from repro.errors import KspliceError
from repro.kernel.machine import Machine
from repro.kernel.modules import LoadedModule

#: Budget for a single hook invocation; hooks run with CPUs captured, so
#: runaways must be bounded.
HOOK_INSTRUCTION_BUDGET = 500_000


def hook_addresses(machine: Machine, module: LoadedModule,
                   section_name: str) -> List[int]:
    """Read the function-pointer table of one hook section, if present."""
    if section_name not in module.objfile.sections:
        return []
    section = module.objfile.section(section_name)
    base = module.section_address(section_name)
    return [machine.read_u32(base + offset)
            for offset in range(0, section.size, 4)]


def run_hooks(machine: Machine, modules: List[LoadedModule],
              section_name: str) -> int:
    """Invoke every hook in ``section_name`` across ``modules``.

    A hook returning nonzero aborts the update (mirrors the paper's
    transition-function contract).  Returns the number of hooks run.
    """
    count = 0
    for module in modules:
        for address in hook_addresses(machine, module, section_name):
            result = machine.call_function(address,
                                           max_instructions=
                                           HOOK_INSTRUCTION_BUDGET)
            if result != 0:
                raise KspliceError(
                    "hook %s[%d] in module %s failed with %r"
                    % (section_name, count, module.name, result))
            count += 1
    return count

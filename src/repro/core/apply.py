"""ksplice-apply / ksplice-undo: the Ksplice core "kernel module" (§5).

Apply pipeline:

1. load each unit's **helper** module (whole pre object) — never executed,
   so its relocations stay unapplied;
2. **run-pre match** every helper against the running kernel; any
   mismatch aborts with nothing modified;
3. load each **primary** module, resolving its relocations from the
   trusted run-pre symbol values (then the ksplice core's own exports,
   then unambiguous kallsyms entries);
4. run ``ksplice_pre_apply`` hooks;
5. under **stop_machine**: run the **stack check** over every thread's
   instruction pointer and stack words; on success write a 5-byte jump at
   each obsolete function's entry and run ``ksplice_apply`` hooks; on
   failure release the machine, let it run briefly, and retry (bounded);
6. run ``ksplice_post_apply`` hooks, unload helpers, record the update.

Undo reverses the jumps under the same stop_machine/stack-check regime
(now checking the *replacement* code for quiescence) and runs the three
reverse hook phases.  Updates stack (§5.4): a later update's run-pre
matching is pointed at the current replacement code of any function that
was already replaced.

Both apply and undo run as explicit named stages (see
:mod:`repro.pipeline`): apply emits ``load-helpers`` → ``run-pre`` →
``load-primaries`` → ``plan`` → ``pre-hooks`` → ``stop_machine`` (one
``stack-check`` child per attempt) → ``post-hooks``; undo emits the
same ``stop_machine``/``stack-check`` reports around its ``plan``,
hook, and ``unload`` stages.  Every abort carries a ``stage_context``
naming the stage, unit/function, and retry count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.info import DEFAULT_ARCH, ArchInfo
from repro.core.hooks import run_hooks
from repro.core.runpre import RunPreMatcher, RunPreResult
from repro.core.shadow import ShadowRegistry, load_ksplice_core_module
from repro.core.update import UpdatePack
from repro.errors import (
    KspliceError,
    StackCheckError,
    SymbolResolutionError,
    UpdateStateError,
)
from repro.kernel.machine import Machine
from repro.kernel.modules import LoadedModule
from repro.kernel.stop_machine import StopMachineReport
from repro.kernel.threads import Thread
from repro.pipeline import FAILED, StageReport, Trace

#: default redirection-jump size (k86); the core takes it from ArchInfo
JUMP_SIZE = DEFAULT_ARCH.jump_size


@dataclass
class ReplacedFunction:
    """One installed redirection."""

    unit: str
    name: str
    old_address: int
    new_address: int
    run_size: int
    saved_bytes: bytes


@dataclass
class AppliedUpdate:
    """Book-keeping for one live update."""

    pack: UpdatePack
    primaries: Dict[str, LoadedModule] = field(default_factory=dict)
    replaced: List[ReplacedFunction] = field(default_factory=list)
    runpre_results: Dict[str, RunPreResult] = field(default_factory=dict)
    helper_bytes: int = 0
    primary_bytes: int = 0
    stop_report: Optional[StopMachineReport] = None
    stack_check_attempts: int = 0
    reversed: bool = False
    #: stage reports for the apply run, and (after undo) the undo run
    trace: Optional[Trace] = None
    undo_trace: Optional[Trace] = None

    @property
    def update_id(self) -> str:
        return self.pack.update_id


class KspliceCore:
    """Kernel-resident update manager for one machine."""

    def __init__(self, machine: Machine, stack_check_retries: int = 5,
                 retry_run_instructions: int = 5_000,
                 arch: ArchInfo = DEFAULT_ARCH):
        self.machine = machine
        self.arch = arch
        self.stack_check_retries = stack_check_retries
        self.retry_run_instructions = retry_run_instructions
        self.applied: List[AppliedUpdate] = []
        # (unit, fn) -> stack of installed replacements, newest last
        self._replaced_stacks: Dict[Tuple[str, str],
                                    List[ReplacedFunction]] = {}
        self.core_module = load_ksplice_core_module(machine)
        self.shadow = ShadowRegistry(machine, self.core_module)

    # -- symbol resolution ----------------------------------------------------

    def _candidate_override(self, unit: str,
                            name: str) -> Optional[List[int]]:
        stack = self._replaced_stacks.get((unit, name))
        if stack:
            return [stack[-1].new_address]
        return None

    def _primary_resolver(self, solved: Dict[str, int],
                          update_exports: Dict[str, int]):
        """Resolution order for replacement-code relocations:

        1. the module's own definitions (handled by the loader),
        2. trusted run-pre values for this unit,
        3. symbols defined by the *other* primary modules of this same
           update (multi-unit patches: unit A's replacement code may
           call a function the patch added to unit B),
        4. the ksplice core module's exports (shadow helpers),
        5. unambiguous kallsyms entries.
        """
        def resolve(name: str) -> int:
            if name in solved:
                return solved[name]
            if name in update_exports:
                return update_exports[name]
            if name in self.core_module.symbol_addresses:
                return self.core_module.symbol_addresses[name]
            return self.machine.image.kallsyms.unique_address(name)
        return resolve

    # -- apply -------------------------------------------------------------------

    def apply(self, pack: UpdatePack,
              trace: Optional[Trace] = None) -> AppliedUpdate:
        """Apply an update pack; raises (leaving the kernel untouched, or
        restored) on any of the paper's three failure classes.

        ``trace`` receives one stage report per pipeline step (pass the
        enclosing operation's trace to nest them); without one, the
        reports land on ``applied.trace``.
        """
        if pack.update_id in {a.update_id for a in self.applied}:
            raise UpdateStateError(
                "update %s is already applied" % pack.update_id)
        trace = trace if trace is not None else Trace(
            label="apply %s" % pack.update_id)
        applied = AppliedUpdate(pack=pack, trace=trace)
        helpers: List[LoadedModule] = []
        try:
            matcher = RunPreMatcher(
                memory=self.machine.memory,
                kallsyms=self.machine.image.kallsyms,
                candidate_override=self._candidate_override,
                arch=self.arch)
            with trace.stage("load-helpers") as rep:
                for uu in pack.units:
                    rep.artifacts["unit"] = uu.unit
                    helper = self.machine.loader.load(
                        uu.helper, resolver=lambda name: 0,
                        defer_relocations_for=list(uu.helper.sections))
                    helpers.append(helper)
                    applied.helper_bytes += helper.size
                rep.counters["units"] = len(pack.units)
                rep.counters["helper_bytes"] = applied.helper_bytes

            with trace.stage("run-pre") as rep:
                for uu in pack.units:
                    rep.artifacts["unit"] = uu.unit
                    result = matcher.match_unit(uu.helper)
                    applied.runpre_results[uu.unit] = result
                    rep.count("functions", len(result.matched_functions))
                    rep.count("symbols", len(result.symbol_values))

            # Two-phase primary loading: place every unit's replacement
            # code first (relocations deferred), collect the update-wide
            # exports, then relocate — so units of one update can
            # reference each other's new code, as they could if all post
            # code were linked into a single module.
            from repro.objfile import SymbolBinding

            with trace.stage("load-primaries") as rep:
                for uu in pack.units:
                    rep.artifacts["unit"] = uu.unit
                    primary = self.machine.loader.load(
                        uu.primary, resolver=lambda name: 0,
                        defer_relocations_for=list(uu.primary.sections))
                    applied.primaries[uu.unit] = primary
                    applied.primary_bytes += primary.size
                update_exports: Dict[str, int] = {}
                for uu in pack.units:
                    primary = applied.primaries[uu.unit]
                    for symbol in uu.primary.defined_symbols():
                        if symbol.binding is SymbolBinding.GLOBAL:
                            update_exports.setdefault(
                                symbol.name, primary.symbol_addresses[
                                    symbol.name])
                for uu in pack.units:
                    rep.artifacts["unit"] = uu.unit
                    primary = applied.primaries[uu.unit]
                    solved = applied.runpre_results[uu.unit].symbol_values
                    resolver = self._primary_resolver(solved,
                                                      update_exports)
                    for section_name in uu.primary.sections:
                        self.machine.loader.apply_deferred_relocations(
                            primary, section_name, resolver)
                rep.counters["units"] = len(pack.units)
                rep.counters["primary_bytes"] = applied.primary_bytes

            with trace.stage("plan") as rep:
                self._plan_replacements(pack, applied, rep)
                rep.counters["replacements"] = len(applied.replaced)
            with trace.stage("pre-hooks"):
                run_hooks(self.machine, list(applied.primaries.values()),
                          ".ksplice_pre_apply")
            self._install_with_stop_machine(applied, trace)
            with trace.stage("post-hooks"):
                run_hooks(self.machine, list(applied.primaries.values()),
                          ".ksplice_post_apply")
        except Exception:
            self._unload_modules(list(applied.primaries.values()))
            self._unload_modules(helpers)
            raise
        self._unload_modules(helpers)  # §5.1: helpers freed after matching

        for replaced in applied.replaced:
            key = (replaced.unit, replaced.name)
            self._replaced_stacks.setdefault(key, []).append(replaced)
        self.applied.append(applied)
        return applied

    def _plan_replacements(self, pack: UpdatePack, applied: AppliedUpdate,
                           rep: Optional[StageReport] = None) -> None:
        for uu in pack.units:
            result = applied.runpre_results[uu.unit]
            primary = applied.primaries[uu.unit]
            for fn_name in uu.changed_functions:
                if rep is not None:
                    rep.artifacts["unit"] = uu.unit
                    rep.artifacts["function"] = fn_name
                old = result.matched_functions.get(fn_name)
                if old is None:
                    raise SymbolResolutionError(
                        "no run address for replaced function %r" % fn_name)
                new = primary.symbol_address(fn_name)
                run_size = self._run_extent(old, uu, fn_name)
                if run_size < self.arch.jump_size:
                    raise KspliceError(
                        "function %r is only %d bytes; cannot hold the "
                        "redirection jump" % (fn_name, run_size))
                applied.replaced.append(ReplacedFunction(
                    unit=uu.unit, name=fn_name, old_address=old,
                    new_address=new, run_size=run_size,
                    saved_bytes=self.machine.read_bytes(
                        old, self.arch.jump_size)))

    def _run_extent(self, old_address: int, uu, fn_name: str) -> int:
        entry = self.machine.image.kallsyms.symbol_at(old_address)
        if entry is not None and entry.address == old_address \
                and entry.size > 0:
            return entry.size
        helper_symbol = uu.helper.find_symbol(fn_name)
        if helper_symbol is not None and helper_symbol.size > 0:
            return helper_symbol.size
        return self.arch.jump_size

    def _install_with_stop_machine(self, applied: AppliedUpdate,
                                   trace: Trace) -> None:
        ranges = [(r.old_address, r.old_address + r.run_size, r.name)
                  for r in applied.replaced]

        def attempt(check: StageReport) -> bool:
            if not self._stack_check_passes(ranges, check):
                return False
            for replaced in applied.replaced:
                self._write_jump(replaced.old_address, replaced.new_address)
            try:
                run_hooks(self.machine, list(applied.primaries.values()),
                          ".ksplice_apply")
            except Exception:
                for replaced in applied.replaced:  # roll the jumps back
                    self.machine.memory.write_bytes(
                        replaced.old_address, replaced.saved_bytes)
                raise
            check.counters["installed"] = len(applied.replaced)
            return True

        self._stop_machine_with_retries(
            applied, attempt, "update %s" % applied.update_id, trace)

    def _stop_machine_with_retries(self, applied: AppliedUpdate, attempt,
                                   what: str, trace: Trace) -> None:
        """Shared by apply and undo, so both emit identical
        ``stop_machine``/``stack-check`` stage reports."""
        with trace.stage("stop_machine") as rep:
            rep.artifacts["what"] = what
            for try_number in range(self.stack_check_retries):
                applied.stack_check_attempts = try_number + 1
                rep.counters["attempts"] = try_number + 1
                with trace.stage("stack-check") as check:
                    done = self.machine.stop_machine.run(
                        lambda: attempt(check))
                if done:
                    applied.stop_report = \
                        self.machine.stop_machine.last_report
                    return
                # Give threads a chance to leave the affected functions.
                self.machine.run(self.retry_run_instructions)
            # Exhausted: surface the last offender on the parent report
            # so the StackCheckError's stage context names it.
            if rep.children:
                for key in ("function", "thread", "unit"):
                    value = rep.children[-1].artifacts.get(key)
                    if value:
                        rep.artifacts[key] = value
            raise StackCheckError(
                "%s: a thread stayed inside an affected function across %d "
                "stop_machine attempts" % (what, self.stack_check_retries))

    # -- the stack check (§5.2) -----------------------------------------------

    def _stack_check_passes(self, ranges: List[Tuple[int, int, str]],
                            check: StageReport) -> bool:
        """Run the stack check, recording the offender (if any) on the
        attempt's stage report."""
        offender = self._stack_check(ranges)
        if offender is None:
            return True
        thread, address, fn_name = offender
        check.outcome = FAILED
        check.error = "thread %s holds an address inside %s" \
            % (thread.name, fn_name)
        check.artifacts["thread"] = thread.name
        check.artifacts["function"] = fn_name
        check.artifacts["address"] = "0x%08x" % address
        return False

    def _stack_check(self, ranges: List[Tuple[int, int, str]],
                     ) -> Optional[Tuple[Thread, int, str]]:
        """None if safe, else ``(thread, address, function)`` for the
        offending thread.

        Conservative: any stack word that *looks like* an address inside
        an affected function counts, exactly like a conservative return-
        address scan.
        """
        for thread in self.machine.scheduler.threads:
            if not thread.alive:
                continue
            ip = thread.cpu.ip
            for lo, hi, label in ranges:
                if lo <= ip < hi:
                    return thread, ip, label
            for word_addr in thread.live_stack_words():
                value = self.machine.read_u32(word_addr)
                for lo, hi, label in ranges:
                    if lo <= value < hi:
                        return thread, value, label
        return None

    def _write_jump(self, old_address: int, new_address: int) -> None:
        encoded = self.arch.encode_jump(old_address, new_address)
        assert len(encoded) == self.arch.jump_size
        self.machine.memory.write_bytes(old_address, encoded)

    # -- undo ---------------------------------------------------------------------

    def undo(self, update_id: str,
             trace: Optional[Trace] = None) -> AppliedUpdate:
        """Reverse an applied update (ksplice-undo).

        Emits the same stage reports as :meth:`apply` — ``plan``,
        hooks, ``stop_machine`` with per-attempt ``stack-check``
        children — so an undo is as visible to tracing as the apply
        that preceded it.
        """
        applied = self._find_applied(update_id)
        trace = trace if trace is not None else Trace(
            label="undo %s" % update_id)
        applied.undo_trace = trace
        with trace.stage("plan") as rep:
            rep.counters["replacements"] = len(applied.replaced)
            for replaced in applied.replaced:
                rep.artifacts["unit"] = replaced.unit
                rep.artifacts["function"] = replaced.name
                stack = self._replaced_stacks.get(
                    (replaced.unit, replaced.name))
                if not stack or stack[-1] is not replaced:
                    raise UpdateStateError(
                        "cannot undo %s: function %s was re-patched by a "
                        "later update" % (update_id, replaced.name))

        primaries = list(applied.primaries.values())
        with trace.stage("pre-hooks"):
            run_hooks(self.machine, primaries, ".ksplice_pre_reverse")
        ranges = [(r.new_address, r.new_address + r.run_size, r.name)
                  for r in applied.replaced]

        def attempt(check: StageReport) -> bool:
            if not self._stack_check_passes(ranges, check):
                return False
            for replaced in applied.replaced:
                self.machine.memory.write_bytes(replaced.old_address,
                                                replaced.saved_bytes)
            run_hooks(self.machine, primaries, ".ksplice_reverse")
            check.counters["restored"] = len(applied.replaced)
            return True

        self._stop_machine_with_retries(applied, attempt,
                                        "undo %s" % update_id, trace)
        with trace.stage("post-hooks"):
            run_hooks(self.machine, primaries, ".ksplice_post_reverse")
        with trace.stage("unload") as rep:
            rep.counters["modules"] = len(primaries)
            self._unload_modules(primaries)
            for replaced in applied.replaced:
                self._replaced_stacks[(replaced.unit, replaced.name)].pop()
            applied.reversed = True
            applied.primaries.clear()
            self.applied.remove(applied)
        return applied

    # -- misc ------------------------------------------------------------------------

    def _find_applied(self, update_id: str) -> AppliedUpdate:
        for applied in self.applied:
            if applied.update_id == update_id:
                return applied
        raise UpdateStateError("update %s is not applied" % update_id)

    def _unload_modules(self, modules: List[LoadedModule]) -> None:
        for module in modules:
            if module.loaded:
                self.machine.loader.unload(module)

    def replaced_function_names(self) -> List[str]:
        return [key[1] for key, stack in self._replaced_stacks.items()
                if stack]

    def applied_ids(self) -> List[str]:
        """Update ids in application order (oldest first).

        Reversing this list is the only undo order §5.4 permits, which
        is exactly how the fleet rollback walks it.
        """
        return [applied.update_id for applied in self.applied]

    def undo_latest(self, trace: Optional[Trace] = None,
                    ) -> Optional[AppliedUpdate]:
        """Undo the most recently applied update (always LIFO-safe);
        ``None`` when nothing is applied."""
        if not self.applied:
            return None
        return self.undo(self.applied[-1].update_id, trace=trace)

    def status(self) -> List[Dict[str, object]]:
        """Structured view of the applied updates, newest last — the
        moral equivalent of /sys/kernel/livepatch."""
        rows: List[Dict[str, object]] = []
        for applied in self.applied:
            rows.append({
                "update_id": applied.update_id,
                "description": applied.pack.description,
                "kernel_version": applied.pack.kernel_version,
                "units": [uu.unit for uu in applied.pack.units],
                "functions": [
                    {"name": r.name, "unit": r.unit,
                     "old_address": r.old_address,
                     "new_address": r.new_address}
                    for r in applied.replaced
                ],
                "primary_bytes": applied.primary_bytes,
                "stop_ms": (applied.stop_report.wall_milliseconds
                            if applied.stop_report else None),
            })
        return rows

    def render_status(self) -> str:
        """Human-readable status listing."""
        rows = self.status()
        if not rows:
            return "no ksplice updates applied"
        lines: List[str] = []
        for row in rows:
            lines.append("%s  (%s)" % (row["update_id"],
                                       row["description"] or "no description"))
            for fn in row["functions"]:
                lines.append("  %-24s %s  0x%08x -> 0x%08x"
                             % (fn["name"], fn["unit"],
                                fn["old_address"], fn["new_address"]))
        return "\n".join(lines)

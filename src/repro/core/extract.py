"""Extraction: post sections -> primary object, pre object -> helper.

The primary object carries the replacement code: every changed or new
function section from the post build, any *new* data (storage for new
functions' static locals, new globals added by the patch), and the
``.ksplice_*`` hook tables.  Its relocations are left symbolic; run-pre
matching supplies the trusted values at apply time.

The helper object is simply the entire pre object ("the helper module
must contain the entire optimization unit corresponding to each patched
function", §5.1) — which is why it is much larger than the primary and
why it can be unloaded once matching is done.
"""

from __future__ import annotations

from typing import List

from repro.core.objdiff import SectionStatus, UnitDiff
from repro.objfile import HOOK_SECTIONS, ObjectFile, Symbol


def build_helper_object(pre: ObjectFile) -> ObjectFile:
    """The helper is a copy of the whole pre object."""
    helper = pre.copy()
    helper.name = pre.name
    return helper


def _wanted_sections(diff: UnitDiff, post: ObjectFile) -> List[str]:
    wanted: List[str] = []
    for name, status in diff.section_status.items():
        if name not in post.sections or name in HOOK_SECTIONS:
            continue
        if name.startswith(".text.") and status in (SectionStatus.CHANGED,
                                                    SectionStatus.NEW):
            wanted.append(name)
        elif status is SectionStatus.NEW:
            wanted.append(name)
    for name in HOOK_SECTIONS:
        if name in post.sections:
            wanted.append(name)
    return wanted


def build_primary_object(post: ObjectFile, diff: UnitDiff) -> ObjectFile:
    """Extract the replacement code from the post object."""
    primary = ObjectFile(name=post.name)
    wanted = _wanted_sections(diff, post)
    for name in wanted:
        primary.add_section(post.section(name).copy())
    for symbol in post.symbols:
        if symbol.is_defined and symbol.section in primary.sections:
            primary.add_symbol(symbol.copy())
    # Everything referenced but not carried along becomes undefined; the
    # apply-time resolver (run-pre values, then kallsyms) fills these in.
    primary.ensure_undefined(primary.referenced_symbol_names())
    primary.validate()
    return primary


def replaced_functions(diff: UnitDiff, pre: ObjectFile) -> List[Symbol]:
    """Pre-object symbols for the functions the update will replace."""
    symbols: List[Symbol] = []
    for fn_name in diff.changed_functions:
        symbol = pre.find_symbol(fn_name)
        if symbol is not None and symbol.is_defined:
            symbols.append(symbol)
    return symbols

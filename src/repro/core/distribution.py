"""Hot-update distribution (§8's future work).

"One could use Ksplice to create hot update packages for common starting
kernel configurations.  People who subscribe their systems to these
updates would be able to transparently receive kernel hot updates ...
without any ongoing effort from users."

:class:`UpdateChannel` is the vendor side: an ordered series of update
packs per kernel release, where each pack is built against the previous
pack's source state (§5.4 stacking).  :class:`Subscriber` is the client
side: it tracks which updates a machine has applied and pulls the rest,
in order, through the machine's Ksplice core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.compiler import CompilerOptions
from repro.core.apply import AppliedUpdate, KspliceCore
from repro.core.create import ksplice_create
from repro.core.update import UpdatePack
from repro.errors import KspliceError
from repro.kbuild import SourceTree
from repro.patch import Patch


@dataclass
class ChannelEntry:
    """One published update: the pack plus its source provenance."""

    sequence: int
    pack_bytes: bytes
    description: str
    #: tree state *after* this update's patch (the base for the next one)
    resulting_tree: SourceTree

    def pack(self) -> UpdatePack:
        return UpdatePack.from_bytes(self.pack_bytes)


class UpdateChannel:
    """Vendor-side: publish a stream of updates for one kernel release.

    Each published patch is diffed against the *previously-patched*
    source (§5.4), so subscribers at any point in the series can catch
    up by applying the remaining packs in order.
    """

    def __init__(self, base_tree: SourceTree,
                 options: Optional[CompilerOptions] = None):
        self.base_tree = base_tree
        self.options = options or CompilerOptions()
        self.entries: List[ChannelEntry] = []

    @property
    def kernel_version(self) -> str:
        return self.base_tree.version

    def current_tree(self) -> SourceTree:
        if self.entries:
            return self.entries[-1].resulting_tree
        return self.base_tree

    def publish(self, patch: Union[Patch, str],
                description: str = "") -> ChannelEntry:
        """Build and publish the next update in the series."""
        tree = self.current_tree()
        pack = ksplice_create(tree, patch, options=self.options,
                              description=description)
        entry = ChannelEntry(
            sequence=len(self.entries) + 1,
            pack_bytes=pack.to_bytes(),
            description=description,
            resulting_tree=tree.patched(patch, version_suffix=""),
        )
        self.entries.append(entry)
        return entry

    def entries_after(self, sequence: int) -> List[ChannelEntry]:
        return [e for e in self.entries if e.sequence > sequence]

    def latest_sequence(self) -> int:
        return self.entries[-1].sequence if self.entries else 0


@dataclass
class SyncResult:
    """Outcome of one subscriber sync."""

    applied: List[AppliedUpdate] = field(default_factory=list)
    already_current: bool = False

    @property
    def count(self) -> int:
        return len(self.applied)


class Subscriber:
    """Client-side: keeps one machine current with a channel."""

    def __init__(self, core: KspliceCore, channel: UpdateChannel):
        if core.machine.image.version != channel.kernel_version:
            raise KspliceError(
                "machine runs %s but the channel serves %s"
                % (core.machine.image.version, channel.kernel_version))
        self.core = core
        self.channel = channel
        self.applied_sequence = 0

    @property
    def is_current(self) -> bool:
        return self.applied_sequence >= self.channel.latest_sequence()

    def pending(self) -> List[ChannelEntry]:
        return self.channel.entries_after(self.applied_sequence)

    def sync(self) -> SyncResult:
        """Apply every pending update, oldest first.

        An apply failure stops the sync (later updates stack on earlier
        ones, so skipping is never sound); updates applied before the
        failure stay applied, and the failure propagates.
        """
        result = SyncResult()
        pending = self.pending()
        if not pending:
            result.already_current = True
            return result
        for entry in pending:
            result.applied.append(self.core.apply(entry.pack()))
            self.applied_sequence = entry.sequence
        return result

    def rollback_last(self) -> None:
        """Undo the most recent synced update."""
        if self.applied_sequence == 0:
            raise KspliceError("nothing to roll back")
        entry = self.channel.entries[self.applied_sequence - 1]
        self.core.undo(entry.pack().update_id)
        self.applied_sequence -= 1

"""Hot-update distribution (§8's future work).

"One could use Ksplice to create hot update packages for common starting
kernel configurations.  People who subscribe their systems to these
updates would be able to transparently receive kernel hot updates ...
without any ongoing effort from users."

:class:`UpdateChannel` is the vendor side: an ordered series of update
packs per kernel release, where each pack is built against the previous
pack's source state (§5.4 stacking).  :class:`Subscriber` is the client
side: it tracks which updates a machine has applied and pulls the rest,
in order, through the machine's Ksplice core.

Both are thin clients of the control plane's durable channel store
(:class:`repro.controlplane.store.ChannelStore`): entries live in the
store as JSON payloads (the pack base64-encoded, the resulting source
tree inline), stamped with the ``sequence``/``base_sequence`` chain the
store owns.  The default store is memory-backed — this module behaves
exactly as it did in-process — but handing ``UpdateChannel`` a
directory-backed store makes the series durable: a new process pointed
at the same store resumes the channel where the last one left it, which
is how the coordinator daemon serves the same series across restarts.

A subscriber checks the chain before every apply: an entry whose
``base_sequence`` is not the machine's ``applied_sequence`` raises
:class:`~repro.errors.ChannelGapError` *before* the core is touched, so
a gap in the series can never half-apply.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.compiler import CompilerOptions
from repro.core.apply import AppliedUpdate, KspliceCore
from repro.core.create import ksplice_create
from repro.core.update import UpdatePack
from repro.errors import ChannelGapError, KspliceError
from repro.kbuild import SourceTree
from repro.patch import Patch


@dataclass
class ChannelEntry:
    """One published update: the pack plus its source provenance."""

    sequence: int
    pack_bytes: bytes
    description: str
    #: tree state *after* this update's patch (the base for the next one)
    resulting_tree: SourceTree
    #: the sequence this entry stacks on (the store assigns it)
    base_sequence: int = 0

    def pack(self) -> UpdatePack:
        return UpdatePack.from_bytes(self.pack_bytes)

    def to_payload(self) -> Dict[str, Any]:
        """The JSON shape the channel store holds."""
        return {
            "sequence": self.sequence,
            "base_sequence": self.base_sequence,
            "description": self.description,
            "pack_b64": base64.b64encode(self.pack_bytes
                                         ).decode("ascii"),
            "resulting_tree": {
                "version": self.resulting_tree.version,
                "files": dict(self.resulting_tree.files),
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ChannelEntry":
        tree = payload.get("resulting_tree", {})
        sequence = int(payload["sequence"])
        return cls(
            sequence=sequence,
            base_sequence=int(payload.get("base_sequence",
                                          sequence - 1)),
            pack_bytes=base64.b64decode(payload.get("pack_b64", "")),
            description=payload.get("description", ""),
            resulting_tree=SourceTree(
                version=tree.get("version", ""),
                files=dict(tree.get("files", {}))))


class UpdateChannel:
    """Vendor-side: publish a stream of updates for one kernel release.

    Each published patch is diffed against the *previously-patched*
    source (§5.4), so subscribers at any point in the series can catch
    up by applying the remaining packs in order.

    The series itself lives in a
    :class:`~repro.controlplane.store.ChannelStore`; this class builds
    packs and reads entries back through it.  Two ``UpdateChannel``
    instances sharing one durable store *are* the same channel — the
    second (in another process, or after a daemon restart) resumes the
    sequence chain where the first stopped.
    """

    def __init__(self, base_tree: SourceTree,
                 options: Optional[CompilerOptions] = None,
                 store: Optional[Any] = None,
                 name: Optional[str] = None):
        from repro.controlplane.store import ChannelStore

        self.base_tree = base_tree
        self.options = options or CompilerOptions()
        self.store = store if store is not None else ChannelStore()
        self.name = name or ("updates-%s" % base_tree.version)
        channel = self.store.ensure_channel(
            self.name, kernel_version=base_tree.version)
        stored_version = channel.get("kernel_version", "")
        if stored_version and stored_version != base_tree.version:
            raise KspliceError(
                "channel %r serves kernel %s, not %s"
                % (self.name, stored_version, base_tree.version))

    @property
    def kernel_version(self) -> str:
        return self.base_tree.version

    @property
    def entries(self) -> List[ChannelEntry]:
        return [ChannelEntry.from_payload(payload)
                for payload in self.store.entries(self.name)]

    @entries.setter
    def entries(self, value: List[ChannelEntry]) -> None:
        self.store.replace_entries(
            self.name, [entry.to_payload() for entry in value])

    def current_tree(self) -> SourceTree:
        entries = self.entries
        if entries:
            return entries[-1].resulting_tree
        return self.base_tree

    def publish(self, patch: Union[Patch, str],
                description: str = "") -> ChannelEntry:
        """Build and publish the next update in the series."""
        tree = self.current_tree()
        pack = ksplice_create(tree, patch, options=self.options,
                              description=description)
        draft = ChannelEntry(
            sequence=0,  # the store assigns the real chain position
            pack_bytes=pack.to_bytes(),
            description=description,
            resulting_tree=tree.patched(patch, version_suffix=""))
        stored = self.store.append_entry(self.name, draft.to_payload())
        return ChannelEntry.from_payload(stored)

    def entries_after(self, sequence: int) -> List[ChannelEntry]:
        return [e for e in self.entries if e.sequence > sequence]

    def latest_sequence(self) -> int:
        return self.store.latest_sequence(self.name)


@dataclass
class SyncResult:
    """Outcome of one subscriber sync."""

    applied: List[AppliedUpdate] = field(default_factory=list)
    already_current: bool = False

    @property
    def count(self) -> int:
        return len(self.applied)


class Subscriber:
    """Client-side: keeps one machine current with a channel."""

    def __init__(self, core: KspliceCore, channel: UpdateChannel):
        if core.machine.image.version != channel.kernel_version:
            raise KspliceError(
                "machine runs %s but the channel serves %s"
                % (core.machine.image.version, channel.kernel_version))
        self.core = core
        self.channel = channel
        self.applied_sequence = 0

    @property
    def is_current(self) -> bool:
        return self.applied_sequence >= self.channel.latest_sequence()

    def pending(self) -> List[ChannelEntry]:
        return self.channel.entries_after(self.applied_sequence)

    def sync(self) -> SyncResult:
        """Apply every pending update, oldest first.

        Before each apply the entry's declared ``base_sequence`` is
        checked against this machine's ``applied_sequence``; a mismatch
        (a gap in the series, entries served out of order) raises
        :class:`~repro.errors.ChannelGapError` with the kernel
        untouched.  An apply failure stops the sync (later updates
        stack on earlier ones, so skipping is never sound); updates
        applied before the failure stay applied, and the failure
        propagates.
        """
        result = SyncResult()
        pending = self.pending()
        if not pending:
            result.already_current = True
            return result
        for entry in pending:
            if entry.base_sequence != self.applied_sequence:
                raise ChannelGapError(
                    "channel entry #%d stacks on sequence %d but this "
                    "machine has applied up to %d; refusing to apply "
                    "across the gap" % (entry.sequence,
                                        entry.base_sequence,
                                        self.applied_sequence))
            result.applied.append(self.core.apply(entry.pack()))
            self.applied_sequence = entry.sequence
        return result

    def rollback_last(self) -> None:
        """Undo the most recent synced update."""
        if self.applied_sequence == 0:
            raise KspliceError("nothing to roll back")
        entry = next((e for e in self.channel.entries
                      if e.sequence == self.applied_sequence), None)
        if entry is None:
            raise KspliceError(
                "channel no longer holds entry #%d"
                % self.applied_sequence)
        self.core.undo(entry.pack().update_id)
        self.applied_sequence = entry.base_sequence

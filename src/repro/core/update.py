"""Update packs: what ``ksplice-create`` writes and ``ksplice-apply`` reads.

A pack carries one :class:`UnitUpdate` per patched compilation unit, each
holding the unit's helper (pre) object, primary (replacement) object, and
the diff summary.  Packs serialize to a single JSON document with
hex-encoded KELF payloads — the moral equivalent of the paper's
``ksplice-xxxxxx.tar.gz``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import List

from repro.errors import KspliceError
from repro.objfile import ObjectFile, dump_object, load_object

PACK_FORMAT_VERSION = 1


@dataclass
class UnitUpdate:
    """Helper + primary + diff for one compilation unit."""

    unit: str
    helper: ObjectFile
    primary: ObjectFile
    changed_functions: List[str] = field(default_factory=list)
    new_functions: List[str] = field(default_factory=list)
    changed_data: List[str] = field(default_factory=list)
    new_data: List[str] = field(default_factory=list)
    hook_sections: List[str] = field(default_factory=list)


@dataclass
class UpdatePack:
    """One hot update, ready to apply."""

    update_id: str
    kernel_version: str
    description: str = ""
    units: List[UnitUpdate] = field(default_factory=list)
    #: patch statistics recorded at create time (for reporting)
    patch_lines: int = 0

    def unit_update(self, unit: str) -> UnitUpdate:
        for uu in self.units:
            if uu.unit == unit:
                return uu
        raise KspliceError("pack %s has no unit %s" % (self.update_id, unit))

    def all_changed_functions(self) -> List[str]:
        out: List[str] = []
        for uu in self.units:
            out.extend(uu.changed_functions)
        return out

    def has_hooks(self) -> bool:
        return any(uu.hook_sections for uu in self.units)

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        document = {
            "format": PACK_FORMAT_VERSION,
            "update_id": self.update_id,
            "kernel_version": self.kernel_version,
            "description": self.description,
            "patch_lines": self.patch_lines,
            "units": [
                {
                    "unit": uu.unit,
                    "helper": dump_object(uu.helper).hex(),
                    "primary": dump_object(uu.primary).hex(),
                    "changed_functions": uu.changed_functions,
                    "new_functions": uu.new_functions,
                    "changed_data": uu.changed_data,
                    "new_data": uu.new_data,
                    "hook_sections": uu.hook_sections,
                }
                for uu in self.units
            ],
        }
        return json.dumps(document, indent=1).encode("utf-8")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "UpdatePack":
        try:
            document = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise KspliceError("malformed update pack: %s" % exc) from None
        if document.get("format") != PACK_FORMAT_VERSION:
            raise KspliceError("unsupported update pack format %r"
                               % document.get("format"))
        pack = cls(update_id=document["update_id"],
                   kernel_version=document["kernel_version"],
                   description=document.get("description", ""),
                   patch_lines=document.get("patch_lines", 0))
        for entry in document["units"]:
            pack.units.append(UnitUpdate(
                unit=entry["unit"],
                helper=load_object(bytes.fromhex(entry["helper"])),
                primary=load_object(bytes.fromhex(entry["primary"])),
                changed_functions=list(entry["changed_functions"]),
                new_functions=list(entry["new_functions"]),
                changed_data=list(entry["changed_data"]),
                new_data=list(entry["new_data"]),
                hook_sections=list(entry["hook_sections"]),
            ))
        return pack


def update_id_for(patch_text: str, kernel_version: str) -> str:
    """Deterministic ksplice-style id, e.g. ``ksplice-8c4o6u``."""
    digest = hashlib.sha256(
        (kernel_version + "\0" + patch_text).encode("utf-8")).digest()
    alphabet = "0123456789abcdefghijklmnopqrstuvwxyz"
    value = int.from_bytes(digest[:8], "big")
    chars = []
    for _ in range(6):
        value, idx = divmod(value, len(alphabet))
        chars.append(alphabet[idx])
    return "ksplice-" + "".join(chars)

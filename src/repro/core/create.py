"""ksplice-create: turn a source patch into an update pack (§3, §5).

Pipeline (Figure 1 of the paper), run as explicit named stages (see
:mod:`repro.pipeline`) — ``patch``, ``build-pre``, ``build-post``,
``diff``, ``analyze`` — each emitting a stage report into the caller's
trace:

1. apply the patch to a copy of the tree;
2. build the touched units twice — original source (*pre*) and patched
   source (*post*) — with function/data sections enabled;
3. diff pre vs post object code per unit;
4. refuse (``DataSemanticsError``) if the patch changes the
   initialization image of persistent data and supplies no hook code;
5. run the static safety analyzer (:mod:`repro.analysis`) over the
   diffs and, when the caller supplies ``run_build``, the running
   kernel's build — its verdict lands on ``CreateReport.analysis``;
6. extract primaries, package helpers, emit the update pack.

Any abort carries a ``stage_context`` naming the stage (and, in the
diff stage, the unit) that rejected the patch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.analysis import AnalysisReport, analyze_update
from repro.compiler import CompilerOptions
from repro.core.extract import build_helper_object, build_primary_object
from repro.core.objdiff import UnitDiff, diff_objects
from repro.core.update import UnitUpdate, UpdatePack, update_id_for
from repro.errors import DataSemanticsError, KspliceCreateError
from repro.kbuild import BuildResult, SourceTree, build_units
from repro.objfile import ObjectFile
from repro.patch import Patch, count_patch_lines, parse_patch
from repro.pipeline import Trace


@dataclass
class CreateReport:
    """Diagnostics from one ksplice-create run."""

    unit_diffs: Dict[str, UnitDiff] = field(default_factory=dict)
    changed_units: List[str] = field(default_factory=list)
    #: the static safety analyzer's combined report (``analyze`` stage)
    analysis: Optional[AnalysisReport] = None

    def total_changed_functions(self) -> int:
        return sum(len(d.changed_functions) for d in self.unit_diffs.values())


def ksplice_create(tree: SourceTree, patch: Union[Patch, str],
                   options: Optional[CompilerOptions] = None,
                   description: str = "",
                   allow_data_changes: bool = False,
                   report: Optional[CreateReport] = None,
                   run_build: Optional[BuildResult] = None,
                   trace: Optional[Trace] = None,
                   absint: bool = True) -> UpdatePack:
    """Construct an update pack from ``tree`` and a unified diff.

    ``options`` must describe how the *running* kernel was compiled
    (compiler version, optimization level); the pre/post builds derive
    their function-sections flavour from it.  ``allow_data_changes``
    overrides the data-semantics refusal for callers who know the hook
    code handles the transition some other way.  ``run_build`` is the
    running kernel's build, when the caller has it: the static analyzer
    then gets a whole-kernel call graph for its reachability and
    quiescence analyses instead of judging from the patched units
    alone.  ``trace`` receives one stage report per pipeline step; pass
    the enclosing operation's trace to nest them under its current
    stage.  ``absint=False`` skips the abstract-interpretation proof
    engine (heuristic verdicts only — the benchmarking baseline).
    """
    trace = trace if trace is not None else Trace(label="ksplice-create")
    options = options or CompilerOptions()
    flavor = options.pre_post_flavor()

    with trace.stage("patch") as rep:
        patch_text = patch if isinstance(patch, str) else None
        parsed = parse_patch(patch) if isinstance(patch, str) else patch
        if not parsed.files:
            raise KspliceCreateError("patch is empty")
        post_tree = tree.patched(parsed)
        changed = tree.changed_units(post_tree)
        rep.counters["files"] = len(parsed.files)
        rep.counters["changed_units"] = len(changed)
        if not changed:
            raise KspliceCreateError(
                "patch does not change any compilation unit")

    with trace.stage("build-pre") as rep:
        pre_units = [u for u in changed if u in tree.files]
        rep.counters["units"] = len(pre_units)
        pre_build = build_units(tree, pre_units, flavor)
    with trace.stage("build-post") as rep:
        post_units = [u for u in changed if u in post_tree.files]
        rep.counters["units"] = len(post_units)
        post_build = build_units(post_tree, post_units, flavor)

    pack = UpdatePack(
        update_id=update_id_for(patch_text or _stable_patch_key(parsed),
                                tree.version),
        kernel_version=tree.version,
        description=description,
        patch_lines=count_patch_lines(parsed),
    )

    diffs: Dict[str, UnitDiff] = {}
    pre_objects: Dict[str, ObjectFile] = {}
    post_objects: Dict[str, ObjectFile] = {}
    with trace.stage("diff") as rep:
        for unit in changed:
            rep.artifacts["unit"] = unit
            if unit not in post_tree.files:
                raise KspliceCreateError(
                    "patch deletes unit %s; removing compiled code from a "
                    "running kernel is not supported" % unit)
            post_obj = post_build.object_for(unit)
            if unit not in tree.files:
                # Entirely new unit: nothing to replace, everything is new.
                pre_obj = type(post_obj)(name=unit)
            else:
                pre_obj = pre_build.object_for(unit)
            diff = diff_objects(pre_obj, post_obj)
            diffs[unit] = diff
            pre_objects[unit] = pre_obj
            post_objects[unit] = post_obj
            if report is not None:
                report.unit_diffs[unit] = diff
            if diff.changes_persistent_data and not diff.has_hooks \
                    and not allow_data_changes:
                raise DataSemanticsError(
                    "unit %s: patch changes persistent data (%s); supply "
                    "ksplice hook code to transform existing state"
                    % (unit,
                       ", ".join(diff.changed_data + diff.removed_data)))
            if not (diff.has_code_changes or diff.has_hooks
                    or diff.changes_persistent_data):
                continue  # extraneous-only differences: nothing to ship
            rep.count("changed_functions", len(diff.changed_functions))
            rep.count("units_shipped")
            pack.units.append(UnitUpdate(
                unit=unit,
                helper=build_helper_object(pre_obj),
                primary=build_primary_object(post_obj, diff),
                changed_functions=list(diff.changed_functions),
                new_functions=list(diff.new_functions),
                changed_data=list(diff.changed_data),
                new_data=list(diff.new_data),
                hook_sections=list(diff.hook_sections),
            ))
        if report is not None:
            report.changed_units = changed
        if not pack.units:
            raise KspliceCreateError(
                "patch produced no object-code changes to ship")

    with trace.stage("analyze") as rep:
        analysis = analyze_update(pack, diffs, pre_objects, post_objects,
                                  run_build=run_build, trace=trace,
                                  absint=absint)
        rep.counters["findings"] = len(analysis.findings)
        rep.counters["evidence"] = len(analysis.evidence)
        rep.artifacts["verdict"] = analysis.verdict
        rep.artifacts["proven"] = "yes" if analysis.is_proven() else "no"
        if report is not None:
            report.analysis = analysis
    return pack


def _stable_patch_key(parsed: Patch) -> str:
    lines: List[str] = []
    for fp in parsed.files:
        lines.append("%s->%s" % (fp.old_path, fp.new_path))
        for hunk in fp.hunks:
            lines.append(hunk.header())
            lines.extend(hunk.lines)
    return "\n".join(lines)

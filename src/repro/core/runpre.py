"""run-pre matching (§4.3).

The matcher walks every byte of each pre text section against the run
code in kernel memory, knowing only two architecture facts: instruction
lengths and which instructions are pc-relative.  Along the way it

* skips no-op padding present on either side (alignment differs between
  the merged run build and the function-sections pre build);
* treats short and long encodings of the same branch as equivalent,
  checking that their targets *correspond* under the non-linear mapping
  built during the walk;
* solves every unresolved pre relocation from the already-relocated run
  bytes (``S = val + P_run − A``), producing trusted symbol values — the
  mechanism that disambiguates duplicate local names like ``debug``;
* aborts on any other difference (``RunPreMismatchError``), which is the
  safety guarantee: no unchecked assumption about the run code survives.

Function run addresses are found by candidate matching: every kallsyms
symbol with the right name is tried, and exactly one candidate must
match.  A ``candidate_override`` lets the Ksplice core redirect lookups
for functions already replaced by an earlier update (§5.4 stacking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.disassembler import DecodedInstruction
from repro.arch.info import DEFAULT_ARCH, ArchInfo
from repro.arch.isa import OperandKind
from repro.errors import (
    DisassemblyError,
    MachineError,
    RunPreMismatchError,
    SymbolResolutionError,
)
from repro.kernel.memory import Memory
from repro.linker.kallsyms import KallsymsTable
from repro.objfile import (
    ObjectFile,
    Relocation,
    RelocationType,
    Section,
    SymbolKind,
)

_FIELD_SIZES = {
    OperandKind.REG: 1,
    OperandKind.IMM32: 4,
    OperandKind.ABS32: 4,
    OperandKind.REL32: 4,
    OperandKind.REL8: 1,
    OperandKind.PAD: 1,
}


class _CandidateMismatch(Exception):
    """Internal: this candidate address does not match the pre code."""


@dataclass
class RunPreResult:
    """Outcome of matching one unit's pre object against the run code."""

    unit: str
    symbol_values: Dict[str, int] = field(default_factory=dict)
    matched_functions: Dict[str, int] = field(default_factory=dict)
    bytes_matched: int = 0
    nop_bytes_skipped: int = 0
    relocations_solved: int = 0

    def value_of(self, name: str) -> int:
        try:
            return self.symbol_values[name]
        except KeyError:
            raise SymbolResolutionError(
                "run-pre matching produced no value for %r in %s"
                % (name, self.unit)) from None


class _SectionMatch:
    """One attempt to match a pre text section at one run address."""

    def __init__(self, memory: Memory, section: Section, run_start: int,
                 arch: ArchInfo = DEFAULT_ARCH):
        self._memory = memory
        self._arch = arch
        self._section = section
        self._pre = section.data
        self._run_start = run_start
        self._relocs_by_offset: Dict[int, Relocation] = {
            r.offset: r for r in section.relocations}
        self.symbol_values: Dict[str, int] = {}
        self.bytes_matched = 0
        self.nop_bytes_skipped = 0
        self.relocations_solved = 0
        # pre instruction offset -> run instruction address
        self._correspondence: Dict[int, int] = {}
        self._jump_checks: List[Tuple[int, int]] = []

    # -- errors -----------------------------------------------------------

    def _fail(self, pre_off: int, run_addr: int, why: str) -> None:
        raise _CandidateMismatch(
            "%s+%d vs run 0x%08x: %s"
            % (self._section.name, pre_off, run_addr, why))

    def _record_symbol(self, pre_off: int, run_addr: int, name: str,
                       value: int) -> None:
        existing = self.symbol_values.get(name)
        if existing is not None and existing != value:
            self._fail(pre_off, run_addr,
                       "symbol %r solved inconsistently: 0x%08x vs 0x%08x"
                       % (name, existing, value))
        self.symbol_values[name] = value
        self.relocations_solved += 1

    # -- decoding ---------------------------------------------------------

    def _decode_run(self, address: int) -> DecodedInstruction:
        try:
            opcode = self._memory.read_u8(address)
            window = self._memory.read_bytes(
                address, self._arch.instruction_length(opcode))
            return self._arch.decode_one(window)
        except (MachineError, DisassemblyError) as exc:
            raise _CandidateMismatch(
                "run code at 0x%08x undecodable: %s" % (address, exc))

    # -- the walk -----------------------------------------------------------

    def match(self) -> None:
        pre_off = 0
        run_addr = self._run_start
        pre_len = len(self._pre)
        while pre_off < pre_len:
            try:
                pre_insn = self._arch.decode_one(self._pre, pre_off)
            except DisassemblyError as exc:
                self._fail(pre_off, run_addr, "pre undecodable: %s" % exc)
            run_insn = self._decode_run(run_addr)

            if pre_insn.is_nop and run_insn.is_nop:
                self._correspondence[pre_off] = run_addr
                self.nop_bytes_skipped += max(pre_insn.length,
                                              run_insn.length)
                pre_off += pre_insn.length
                run_addr += run_insn.length
                continue
            if run_insn.is_nop:  # run-only alignment padding
                self.nop_bytes_skipped += run_insn.length
                run_addr += run_insn.length
                continue
            if pre_insn.is_nop:  # pre-only padding
                self.nop_bytes_skipped += pre_insn.length
                pre_off += pre_insn.length
                continue

            self._correspondence[pre_off] = run_addr
            if pre_insn.canonical != run_insn.canonical:
                self._fail(pre_off, run_addr,
                           "instruction %s vs %s"
                           % (pre_insn.mnemonic, run_insn.mnemonic))
            self._match_operands(pre_insn, run_insn, pre_off, run_addr)
            self.bytes_matched += pre_insn.length
            pre_off += pre_insn.length
            run_addr += run_insn.length

        self._verify_jump_targets(run_addr)

    def _match_operands(self, pre_insn: DecodedInstruction,
                        run_insn: DecodedInstruction,
                        pre_off: int, run_addr: int) -> None:
        pre_kinds = [k for k in pre_insn.instruction.spec.operands
                     if k is not OperandKind.PAD]
        run_kinds = [k for k in run_insn.instruction.spec.operands
                     if k is not OperandKind.PAD]
        pre_field = 1
        run_field = 1
        for index, (pk, rk) in enumerate(zip(pre_kinds, run_kinds)):
            pre_value = pre_insn.instruction.operands[index]
            run_value = run_insn.instruction.operands[index]
            if pk is OperandKind.REG:
                if pre_value != run_value:
                    self._fail(pre_off, run_addr,
                               "register operand %d differs" % index)
            elif pk in (OperandKind.IMM32, OperandKind.ABS32):
                reloc = self._relocs_by_offset.get(pre_off + pre_field)
                if reloc is not None:
                    solved = reloc.solve_symbol(
                        run_value, place=run_addr + run_field)
                    self._record_symbol(pre_off, run_addr, reloc.symbol,
                                        solved)
                elif pre_value != run_value:
                    self._fail(pre_off, run_addr,
                               "immediate operand differs: 0x%x vs 0x%x"
                               % (pre_value, run_value))
            else:  # pc-relative
                pre_target = pre_off + pre_insn.length + pre_value
                run_target = run_addr + run_insn.length + run_value
                reloc = self._relocs_by_offset.get(pre_off + pre_field)
                if reloc is not None:
                    self._solve_pc_relative(reloc, pre_off, run_addr,
                                            run_insn, run_field, run_target)
                else:
                    self._jump_checks.append((pre_target, run_target))
            pre_field += _FIELD_SIZES[pk]
            run_field += _FIELD_SIZES[rk]

    def _solve_pc_relative(self, reloc: Relocation, pre_off: int,
                           run_addr: int, run_insn: DecodedInstruction,
                           run_field: int, run_target: int) -> None:
        if reloc.type is not RelocationType.PC32:
            self._fail(pre_off, run_addr,
                       "abs relocation on a pc-relative field")
        if reloc.addend == -4:
            # Canonical call/jump relocation: the addend exactly cancels
            # the next-instruction bias, so S is the branch target — an
            # identity that holds whether the run encoding is short or
            # long.
            solved = run_target
        else:
            # General addend: invert the relocation formula, which needs
            # the raw run field; only sound when the encodings agree.
            if run_insn.length != 5:
                self._fail(pre_off, run_addr,
                           "cannot solve non-canonical pc32 against a "
                           "short-form run instruction")
            raw = self._memory.read_u32(run_addr + run_field)
            solved = reloc.solve_symbol(raw, place=run_addr + run_field)
        self._record_symbol(pre_off, run_addr, reloc.symbol, solved)

    def _verify_jump_targets(self, run_end: int) -> None:
        end_of_pre = len(self._pre)
        for pre_target, run_target in self._jump_checks:
            if pre_target == end_of_pre:
                expected = run_end
            else:
                expected = self._correspondence.get(pre_target)
            if expected != run_target:
                self._fail(pre_target, run_target,
                           "relative jump targets do not correspond "
                           "(expected run 0x%08x)" % (expected or 0))


@dataclass
class RunPreMatcher:
    """Matches helper (pre) objects against the running kernel."""

    memory: Memory
    kallsyms: KallsymsTable
    #: unit, symbol -> run addresses to try instead of kallsyms (stacking)
    candidate_override: Optional[Callable[[str, str], Optional[List[int]]]] \
        = None
    #: the §4.3 architecture-specific information table
    arch: ArchInfo = DEFAULT_ARCH

    def match_unit(self, helper: ObjectFile) -> RunPreResult:
        """Match every text section of a pre object against the run code.

        Matching is iterative: functions whose names are in the symbol
        table (or redirected by the stacking override) anchor the first
        round; functions whose names are *missing* from the table (§4.1
        "does not appear at all" — e.g. local symbols stripped from
        kallsyms) become locatable once some matched caller's relocation
        solves their address, and are matched in later rounds.
        """
        result = RunPreResult(unit=helper.name)
        pending: List[Tuple[Section, object]] = []
        for section in helper.sections.values():
            if not section.kind.is_code:
                continue
            fn_symbol = self._function_symbol(helper, section.name)
            if fn_symbol is not None:
                pending.append((section, fn_symbol))

        while pending:
            progress = False
            deferred: List[Tuple[Section, object]] = []
            for section, fn_symbol in pending:
                candidates = self._candidates(helper.name, fn_symbol.name)
                if not candidates:
                    solved = result.symbol_values.get(fn_symbol.name)
                    if solved is None:
                        deferred.append((section, fn_symbol))
                        continue
                    candidates = [solved]
                run_addr, attempt = self._match_candidates(
                    helper, section, fn_symbol, candidates)
                self._merge(result, attempt, fn_symbol, run_addr)
                progress = True
            if not progress:
                raise SymbolResolutionError(
                    "no run address candidates for function(s) %s "
                    "(unit %s): not in the symbol table and not "
                    "referenced by any matched code"
                    % (sorted(sym.name for _, sym in deferred),
                       helper.name))
            pending = deferred

        self._match_rodata(helper, result)
        return result

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _function_symbol(helper: ObjectFile, section_name: str):
        for symbol in helper.symbols_in_section(section_name):
            if symbol.kind is SymbolKind.FUNC and symbol.value == 0:
                return symbol
        return None

    def _candidates(self, unit: str, name: str) -> List[int]:
        if self.candidate_override is not None:
            override = self.candidate_override(unit, name)
            if override is not None:
                return override
        return [entry.address for entry in self.kallsyms.candidates(name)
                if entry.kind is SymbolKind.FUNC]

    def _match_candidates(self, helper: ObjectFile, section: Section,
                          fn_symbol,
                          candidates: Optional[List[int]] = None
                          ) -> Tuple[int, _SectionMatch]:
        if candidates is None:
            candidates = self._candidates(helper.name, fn_symbol.name)
        if not candidates:
            raise SymbolResolutionError(
                "no run address candidates for function %r (unit %s)"
                % (fn_symbol.name, helper.name))
        successes: List[Tuple[int, _SectionMatch]] = []
        failures: List[str] = []
        for address in candidates:
            attempt = _SectionMatch(self.memory, section, address,
                                    arch=self.arch)
            try:
                attempt.match()
            except _CandidateMismatch as exc:
                failures.append(str(exc))
                continue
            successes.append((address, attempt))
        if not successes:
            raise RunPreMismatchError(
                "run-pre mismatch for %s in %s:\n  %s"
                % (fn_symbol.name, helper.name, "\n  ".join(failures)))
        if len(successes) > 1:
            raise SymbolResolutionError(
                "function %r in %s matches %d run locations; cannot "
                "disambiguate" % (fn_symbol.name, helper.name,
                                  len(successes)))
        return successes[0]

    def _merge(self, result: RunPreResult, attempt: _SectionMatch,
               fn_symbol, run_addr: int) -> None:
        for name, value in attempt.symbol_values.items():
            existing = result.symbol_values.get(name)
            if existing is not None and existing != value:
                raise RunPreMismatchError(
                    "unit %s: symbol %r solved inconsistently across "
                    "functions (0x%08x vs 0x%08x)"
                    % (result.unit, name, existing, value))
            result.symbol_values[name] = value
        result.symbol_values[fn_symbol.name] = run_addr
        result.matched_functions[fn_symbol.name] = run_addr
        result.bytes_matched += attempt.bytes_matched
        result.nop_bytes_skipped += attempt.nop_bytes_skipped
        result.relocations_solved += attempt.relocations_solved

    def _match_rodata(self, helper: ObjectFile, result: RunPreResult) -> None:
        """Byte-match read-only data whose address is already known."""
        for section in helper.sections.values():
            if not section.name.startswith(".rodata"):
                continue
            symbols = helper.symbols_in_section(section.name)
            anchor = next((s for s in symbols if s.value == 0), None)
            if anchor is None:
                continue
            address = result.symbol_values.get(anchor.name)
            if address is None:
                entries = self.kallsyms.candidates(anchor.name)
                if len(entries) != 1:
                    continue
                address = entries[0].address
            reloc_holes = {r.offset for r in section.relocations}
            try:
                run_bytes = self.memory.read_bytes(address, section.size)
            except MachineError:
                raise RunPreMismatchError(
                    "rodata %s not mapped at 0x%08x"
                    % (section.name, address))
            for offset, (pre_byte, run_byte) in enumerate(
                    zip(section.data, run_bytes)):
                if any(h <= offset < h + 4 for h in reloc_holes):
                    continue
                if pre_byte != run_byte:
                    raise RunPreMismatchError(
                        "rodata %s differs at +%d" % (section.name, offset))
            result.bytes_matched += section.size

"""Kernel configuration: which units a given kernel actually compiles.

Distributions disable whole subsystems; the paper notes that some
vulnerabilities "affect portions of the kernel that are completely
disabled by Linux distributors" (§6.2).  A :class:`KernelConfig` models
that by excluding units from the build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List


@dataclass(frozen=True)
class KernelConfig:
    """Build configuration; ``disabled_units`` are excluded from the image."""

    name: str = "defconfig"
    disabled_units: FrozenSet[str] = frozenset()

    @classmethod
    def default(cls) -> "KernelConfig":
        return cls()

    def without(self, units: Iterable[str]) -> "KernelConfig":
        return KernelConfig(name=self.name,
                            disabled_units=self.disabled_units | set(units))

    def is_enabled(self, unit_path: str) -> bool:
        return unit_path not in self.disabled_units

    def filter_units(self, unit_paths: Iterable[str]) -> List[str]:
        return [path for path in unit_paths if self.is_enabled(path)]

"""The build driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.compiler import CompilerOptions, InlineReport, compile_source
from repro.errors import BuildError
from repro.kbuild.config import KernelConfig
from repro.kbuild.source_tree import SourceTree
from repro.objfile import ObjectFile


@dataclass
class BuildResult:
    """Objects and compiler metadata from one build."""

    tree_version: str
    options: CompilerOptions
    objects: Dict[str, ObjectFile] = field(default_factory=dict)
    inline_reports: Dict[str, InlineReport] = field(default_factory=dict)

    def object_for(self, unit_path: str) -> ObjectFile:
        try:
            return self.objects[unit_path]
        except KeyError:
            raise BuildError("no object for unit %s" % unit_path) from None

    def merged_inline_report(self) -> InlineReport:
        merged = InlineReport()
        for report in self.inline_reports.values():
            merged.merge(report)
        return merged

    def function_inlined_anywhere(self, fn_name: str) -> bool:
        return any(report.was_inlined(fn_name)
                   for report in self.inline_reports.values())


def build_units(tree: SourceTree, unit_paths: Iterable[str],
                options: Optional[CompilerOptions] = None) -> BuildResult:
    """Compile only ``unit_paths`` from ``tree`` (incremental build)."""
    options = options or CompilerOptions()
    result = BuildResult(tree_version=tree.version, options=options)
    for path in unit_paths:
        compiled = compile_source(tree.read(path), path, options)
        result.objects[path] = compiled.objfile
        result.inline_reports[path] = compiled.inline_report
    return result


def build_tree(tree: SourceTree,
               options: Optional[CompilerOptions] = None,
               config: Optional[KernelConfig] = None) -> BuildResult:
    """Compile every enabled unit in ``tree``."""
    config = config or KernelConfig.default()
    units = config.filter_units(tree.source_units())
    if not units:
        raise BuildError("%s: nothing to build" % tree.version)
    return build_units(tree, units, options)

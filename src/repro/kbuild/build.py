"""The build driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.compiler import (
    CompilerOptions,
    InlineReport,
    compile_source,
    compile_source_cached,
)
from repro.errors import BuildError
from repro.kbuild.config import KernelConfig
from repro.kbuild.source_tree import SourceTree
from repro.objfile import ObjectFile


@dataclass
class BuildResult:
    """Objects and compiler metadata from one build."""

    tree_version: str
    options: CompilerOptions
    objects: Dict[str, ObjectFile] = field(default_factory=dict)
    inline_reports: Dict[str, InlineReport] = field(default_factory=dict)

    def object_for(self, unit_path: str) -> ObjectFile:
        try:
            return self.objects[unit_path]
        except KeyError:
            raise BuildError("no object for unit %s" % unit_path) from None

    def merged_inline_report(self) -> InlineReport:
        merged = InlineReport()
        for report in self.inline_reports.values():
            merged.merge(report)
        return merged

    def function_inlined_anywhere(self, fn_name: str) -> bool:
        return any(report.was_inlined(fn_name)
                   for report in self.inline_reports.values())


def build_units(tree: SourceTree, unit_paths: Iterable[str],
                options: Optional[CompilerOptions] = None,
                use_cache: bool = True) -> BuildResult:
    """Compile only ``unit_paths`` from ``tree`` (incremental build).

    Compiles are content-addressed (``repro.compiler.cache``): a unit
    whose source and options match an earlier compile — the same base
    unit in another kernel version, an unpatched unit in a later
    ksplice-create pre build — reuses the cached object instead of
    recompiling.  ``use_cache=False`` forces fresh compiles.
    """
    options = options or CompilerOptions()
    compiler = compile_source_cached if use_cache else compile_source
    result = BuildResult(tree_version=tree.version, options=options)
    for path in unit_paths:
        compiled = compiler(tree.read(path), path, options)
        result.objects[path] = compiled.objfile
        result.inline_reports[path] = compiled.inline_report
    return result


def build_tree(tree: SourceTree,
               options: Optional[CompilerOptions] = None,
               config: Optional[KernelConfig] = None) -> BuildResult:
    """Compile every enabled unit in ``tree``."""
    config = config or KernelConfig.default()
    units = config.filter_units(tree.source_units())
    if not units:
        raise BuildError("%s: nothing to build" % tree.version)
    return build_units(tree, units, options)

"""kbuild: the kernel source tree and its (incremental) build system.

ksplice-create performs two builds per update — the original tree (*pre*)
and the patched tree (*post*) — recompiling only the compilation units the
patch touches (§3.2).  This package provides the tree representation, the
kernel configuration (units can be disabled, the way distributions disable
subsystems), and the build driver.
"""

from repro.kbuild.source_tree import SourceTree
from repro.kbuild.config import KernelConfig
from repro.kbuild.build import BuildResult, build_tree, build_units

__all__ = [
    "BuildResult",
    "KernelConfig",
    "SourceTree",
    "build_tree",
    "build_units",
]

"""Kernel source trees: immutable mappings from path to source text."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from repro.errors import BuildError
from repro.patch import Patch, apply_patch

SOURCE_SUFFIXES = (".c", ".s")


@dataclass(frozen=True)
class SourceTree:
    """One kernel version's source.

    ``version`` is the kernel release string (e.g. ``2.6.16-deb3``);
    ``files`` maps tree-relative paths to file contents.
    """

    version: str
    files: Dict[str, str] = field(default_factory=dict)

    def source_units(self) -> List[str]:
        """Compilation-unit paths, in deterministic order."""
        return sorted(path for path in self.files
                      if path.endswith(SOURCE_SUFFIXES))

    def read(self, path: str) -> str:
        try:
            return self.files[path]
        except KeyError:
            raise BuildError(
                "%s: no file %s in tree" % (self.version, path)) from None

    def patched(self, patch: Union[Patch, str],
                version_suffix: str = "+") -> "SourceTree":
        """Return a new tree with ``patch`` applied."""
        return SourceTree(version=self.version + version_suffix,
                          files=apply_patch(self.files, patch))

    def changed_units(self, other: "SourceTree") -> List[str]:
        """Units whose source differs between this tree and ``other``."""
        changed = []
        for path in sorted(set(self.files) | set(other.files)):
            if not path.endswith(SOURCE_SUFFIXES):
                continue
            if self.files.get(path) != other.files.get(path):
                changed.append(path)
        return changed

    def with_file(self, path: str, content: str) -> "SourceTree":
        files = dict(self.files)
        files[path] = content
        return SourceTree(version=self.version, files=files)

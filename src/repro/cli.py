"""Command-line front-end mirroring the paper's §5 tools.

    python -m repro.cli create --patch fix.patch --tree src/ -o update.kspl
    python -m repro.cli inspect update.kspl
    python -m repro.cli demo --patch fix.patch --tree src/
    python -m repro.cli evaluate [--quick] [--jobs N]

``create`` reads a kernel source tree from a directory (every ``*.c`` /
``*.s`` file, tree-relative paths as unit names) and a unified diff, and
writes a serialized update pack — the ksplice-create workflow.
``demo`` additionally boots the tree, applies the pack to the running
kernel, and reports the stop_machine window — create + apply in one
shot, since a simulated machine does not outlive the process.
``evaluate`` runs the paper's §6 evaluation; ``--jobs N`` spreads the
kernel-version groups across N worker processes.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, Optional

from repro.compiler import CompilerOptions
from repro.core import KspliceCore, UpdatePack, ksplice_create
from repro.errors import ReproError
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel


def load_tree_from_directory(root: str,
                             version: Optional[str] = None) -> SourceTree:
    """Build a SourceTree from the ``*.c``/``*.s`` files under ``root``."""
    files: Dict[str, str] = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            if not filename.endswith((".c", ".s")):
                continue
            full = os.path.join(dirpath, filename)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, "r", encoding="utf-8") as handle:
                files[rel] = handle.read()
    if not files:
        raise ReproError("no .c/.s files under %s" % root)
    return SourceTree(version=version or os.path.basename(
        os.path.abspath(root)), files=files)


def _options(args: argparse.Namespace) -> CompilerOptions:
    return CompilerOptions(opt_level=args.opt_level,
                           compiler_version=args.compiler_version)


def cmd_create(args: argparse.Namespace) -> int:
    tree = load_tree_from_directory(args.tree, args.version)
    with open(args.patch, "r", encoding="utf-8") as handle:
        patch_text = handle.read()
    pack = ksplice_create(tree, patch_text, options=_options(args),
                          description=args.description)
    out = args.output or ("%s.kspl" % pack.update_id)
    with open(out, "wb") as handle:
        handle.write(pack.to_bytes())
    print("Ksplice update pack written to %s" % out)
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    with open(args.pack, "rb") as handle:
        pack = UpdatePack.from_bytes(handle.read())
    print("update:         %s" % pack.update_id)
    print("kernel version: %s" % pack.kernel_version)
    if pack.description:
        print("description:    %s" % pack.description)
    print("patch lines:    %d" % pack.patch_lines)
    print("units:          %d" % len(pack.units))
    for uu in pack.units:
        helper_bytes = sum(s.size for s in uu.helper.sections.values())
        primary_bytes = sum(s.size for s in uu.primary.sections.values())
        print("  %s" % uu.unit)
        print("    replaces:  %s" % (", ".join(uu.changed_functions)
                                     or "(nothing; new code only)"))
        if uu.new_functions:
            print("    adds:      %s" % ", ".join(uu.new_functions))
        if uu.hook_sections:
            print("    hooks:     %s" % ", ".join(uu.hook_sections))
        print("    helper %d bytes, primary %d bytes"
              % (helper_bytes, primary_bytes))
    return 0


def cmd_objdump(args: argparse.Namespace) -> int:
    from repro.tools import dump_object_text

    with open(args.pack, "rb") as handle:
        pack = UpdatePack.from_bytes(handle.read())
    for uu in pack.units:
        if args.unit and uu.unit != args.unit:
            continue
        objfile = uu.helper if args.helper else uu.primary
        print(dump_object_text(objfile))
        print()
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    tree = load_tree_from_directory(args.tree, args.version)
    with open(args.patch, "r", encoding="utf-8") as handle:
        patch_text = handle.read()
    print("booting %s ..." % tree.version)
    machine = boot_kernel(tree, options=_options(args))
    core = KspliceCore(machine)
    pack = ksplice_create(tree, patch_text, options=_options(args))
    print("created %s (replaces: %s)"
          % (pack.update_id, ", ".join(pack.all_changed_functions())))
    applied = core.apply(pack)
    print("Done!  stop_machine window %.3f ms, stack-check attempts %d, "
          "primary module %d bytes resident"
          % (applied.stop_report.wall_milliseconds,
             applied.stack_check_attempts, applied.primary_bytes))
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.evaluation import CORPUS
    from repro.evaluation.harness import evaluate_corpus

    specs = CORPUS[:args.limit] if args.limit else CORPUS

    def progress(result):
        status = "ok" if result.success else "FAIL"
        sys.stdout.write("%-16s %-14s %s\n"
                         % (result.cve_id, result.kernel_version, status))

    from repro.evaluation.engine import EngineStats

    stats = EngineStats()
    report = evaluate_corpus(specs, run_stress=not args.quick,
                             progress=progress, jobs=args.jobs,
                             stats=stats)
    print("\n%d/%d updates succeeded; %d needed no new code"
          % (len(report.successes()), report.total(),
             report.no_new_code_count()))
    print("%.1f s with %d job%s (%.1f CVEs/s); build cache hit rate %.0f%%"
          % (stats.wall_seconds, stats.jobs,
             "s" if stats.jobs != 1 else "",
             stats.cves_per_second,
             100 * stats.combined_cache_stats().hit_rate))
    return 0 if len(report.successes()) == report.total() else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Ksplice reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--opt-level", type=int, default=2,
                       choices=(0, 1, 2))
        p.add_argument("--compiler-version", default="kcc-1.0")
        p.add_argument("--version", default=None,
                       help="kernel version string (default: dir name)")

    p_create = sub.add_parser("create",
                              help="build an update pack from a patch")
    p_create.add_argument("--patch", required=True)
    p_create.add_argument("--tree", required=True)
    p_create.add_argument("-o", "--output", default=None)
    p_create.add_argument("--description", default="")
    common(p_create)
    p_create.set_defaults(func=cmd_create)

    p_inspect = sub.add_parser("inspect", help="describe an update pack")
    p_inspect.add_argument("pack")
    p_inspect.set_defaults(func=cmd_inspect)

    p_objdump = sub.add_parser(
        "objdump", help="disassemble a pack's replacement code")
    p_objdump.add_argument("pack")
    p_objdump.add_argument("--unit", default=None,
                           help="limit to one compilation unit")
    p_objdump.add_argument("--helper", action="store_true",
                           help="dump the helper (pre) object instead")
    p_objdump.set_defaults(func=cmd_objdump)

    p_demo = sub.add_parser("demo",
                            help="boot the tree and hot-apply the patch")
    p_demo.add_argument("--patch", required=True)
    p_demo.add_argument("--tree", required=True)
    common(p_demo)
    p_demo.set_defaults(func=cmd_demo)

    p_eval = sub.add_parser("evaluate", help="run the §6 evaluation")
    p_eval.add_argument("--quick", action="store_true",
                        help="skip the stress battery")
    p_eval.add_argument("--limit", type=int, default=0,
                        help="evaluate only the first N CVEs")
    p_eval.add_argument("--jobs", type=int, default=1,
                        help="evaluate kernel-version groups in N "
                             "worker processes (default 1)")
    p_eval.set_defaults(func=cmd_evaluate)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

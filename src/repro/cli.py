"""Command-line front-end mirroring the paper's §5 tools.

    python -m repro.cli create --patch fix.patch --tree src/ -o update.kspl
    python -m repro.cli inspect update.kspl
    python -m repro.cli demo --patch fix.patch --tree src/
    python -m repro.cli analyze CVE-2008-0007 [--json] [--augmented]
    python -m repro.cli evaluate [--quick] [--jobs N] [--cache-dir DIR]
                                 [--workers host:port,...]
    python -m repro.cli worker --listen host:port [--once]
    python -m repro.cli trace [--cve CVE-id] [--file PATH] [--json]

``create`` reads a kernel source tree from a directory (every ``*.c`` /
``*.s`` file, tree-relative paths as unit names) and a unified diff, and
writes a serialized update pack — the ksplice-create workflow.
``demo`` additionally boots the tree, applies the pack to the running
kernel, and reports the stop_machine window — create + apply in one
shot, since a simulated machine does not outlive the process.
``analyze`` runs only the static patch-safety analyzer
(:mod:`repro.analysis`) on one corpus CVE — no machine is booted — and
exits 0 for ``safe``, 2 when custom code is needed (``needs-hooks`` /
``needs-shadow`` / ``quiesce-risk``), 3 for ``reject``, so CI can gate
on it.  ``evaluate`` runs the paper's §6 evaluation; ``--jobs N``
spreads the kernel-version groups across N worker processes,
``--workers host:port,...`` spreads them across remote evaluation
workers instead (the distributed fabric, :mod:`repro.distributed` —
start each worker host with ``repro worker --listen``), and
``--cache-dir`` enables the on-disk cache tier so repeated runs (and
the worker fleet, which inherits the tier at handshake) start warm.
When a parallel or distributed request cannot run as asked, the
fallback and its reason are printed rather than silently degrading.

``fleet`` is the deployment layer (:mod:`repro.fleet`): ``fleet
rollout --cve CVE-... --size N`` boots a live fleet and rolls the CVE's
update out in canary waves with health gating and automatic rollback
(``--inject-oops/--inject-wedge/--inject-kill MEMBER:WAVE`` prove the
red paths; ``--worker host:port`` runs the whole rollout on a remote
worker); ``fleet status`` shows the last rollout's report and ``fleet
rollback`` replays it and reverses every member it updated.

``serve`` runs the update-channel control plane
(:mod:`repro.controlplane`): a coordinator daemon with a REST/JSON API
over a durable store (fleet registry, release channels, rollout
records — all of it survives a daemon restart).  ``channel`` and
``member`` speak HTTP to a running daemon (``--url``, default
``REPRO_CONTROLPLANE_URL`` or ``http://127.0.0.1:7787``): ``member
register|list|pin|unpin|quarantine|unquarantine`` manage the registry,
``channel publish`` publishes a corpus CVE's update to a channel and
drives a canary-wave rollout over the subscribed members (waves print
as they land; ``--no-wait`` returns the rollout id immediately for
polling), ``channel list|status`` show the series and every
subscriber's position in it.  Publishing is gated on the static
analyzer: a ``reject`` or unproven verdict is refused (exit 2) unless
``--force``, and the evidence bundle — or the recorded override —
rides on the rollout record either way.

Both ``demo`` and ``evaluate`` record per-stage traces (see
:mod:`repro.pipeline`) and save them; ``trace`` renders the saved run —
an aggregate per-stage table by default, the full stage tree of one CVE
with ``--cve``, or deterministic sorted JSON with ``--json``.

Exit codes are uniform across subcommands: 0 success, 2 user error
(unknown CVE, unreadable input file, bad flags), 3 operation failure
(failed evaluations, halted or gated rollouts, machinery errors).
``analyze`` refines 2/3 with its documented verdict mapping (2 = the
patch needs custom code, 3 = reject).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, Optional

from repro import __version__
from repro.compiler import CompilerOptions
from repro.core import KspliceCore, UpdatePack, ksplice_create
from repro.core.create import CreateReport
from repro.errors import ReproError
from repro.kbuild import SourceTree
from repro.kernel import boot_kernel

#: uniform subcommand exit codes
EXIT_OK = 0
EXIT_USAGE = 2
EXIT_FAILURE = 3

#: canonical display order for the lifecycle's top-level stages
STAGE_ORDER = ("generate", "build", "boot", "observe-pre", "create",
               "apply", "observe-post", "stress", "undo",
               "patch", "build-pre", "build-post", "diff", "analyze",
               "absint", "gate", "boot-fleet", "health", "rollback",
               "survivors")


def _ordered_stage_names(names) -> list:
    known = [name for name in STAGE_ORDER if name in names]
    return known + sorted(n for n in names if n not in STAGE_ORDER)


def _print_stage_table(stages, out=None) -> None:
    """Render a {name: StageTiming-like} mapping as an aligned table."""
    out = out or sys.stdout
    names = _ordered_stage_names(stages)
    if not names:
        return
    out.write("%-14s %6s %10s %10s %6s\n"
              % ("stage", "calls", "total ms", "mean ms", "fail"))
    for name in names:
        timing = stages[name]
        out.write("%-14s %6d %10.1f %10.1f %6d\n"
                  % (name, timing.calls, timing.wall_ms,
                     timing.mean_ms, timing.failures))


class _StageAgg:
    """Local stage accumulator (same shape as engine.StageTiming)."""

    __slots__ = ("calls", "wall_ms", "failures")

    def __init__(self):
        self.calls = 0
        self.wall_ms = 0.0
        self.failures = 0

    @property
    def mean_ms(self) -> float:
        return self.wall_ms / self.calls if self.calls else 0.0


def _aggregate_traces(traces) -> Dict[str, _StageAgg]:
    stages: Dict[str, _StageAgg] = {}
    for trace in traces:
        for report in trace.reports:
            timing = stages.setdefault(report.name, _StageAgg())
            timing.calls += 1
            timing.wall_ms += report.wall_ms
            if report.outcome == "failed":
                timing.failures += 1
    return stages


def _save_traces(traces, meta) -> None:
    """Best-effort persistence for the ``trace`` subcommand."""
    from repro.pipeline import save_run

    try:
        path = save_run(traces, meta=meta)
    except OSError:
        return
    print("(trace saved to %s; view with `repro trace`)" % path)


def load_tree_from_directory(root: str,
                             version: Optional[str] = None) -> SourceTree:
    """Build a SourceTree from the ``*.c``/``*.s`` files under ``root``."""
    files: Dict[str, str] = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            if not filename.endswith((".c", ".s")):
                continue
            full = os.path.join(dirpath, filename)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, "r", encoding="utf-8") as handle:
                files[rel] = handle.read()
    if not files:
        raise ReproError("no .c/.s files under %s" % root)
    return SourceTree(version=version or os.path.basename(
        os.path.abspath(root)), files=files)


def _options(args: argparse.Namespace) -> CompilerOptions:
    return CompilerOptions(opt_level=args.opt_level,
                           compiler_version=args.compiler_version)


def cmd_create(args: argparse.Namespace) -> int:
    tree = load_tree_from_directory(args.tree, args.version)
    with open(args.patch, "r", encoding="utf-8") as handle:
        patch_text = handle.read()
    pack = ksplice_create(tree, patch_text, options=_options(args),
                          description=args.description)
    out = args.output or ("%s.kspl" % pack.update_id)
    with open(out, "wb") as handle:
        handle.write(pack.to_bytes())
    print("Ksplice update pack written to %s" % out)
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    with open(args.pack, "rb") as handle:
        pack = UpdatePack.from_bytes(handle.read())
    print("update:         %s" % pack.update_id)
    print("kernel version: %s" % pack.kernel_version)
    if pack.description:
        print("description:    %s" % pack.description)
    print("patch lines:    %d" % pack.patch_lines)
    print("units:          %d" % len(pack.units))
    for uu in pack.units:
        helper_bytes = sum(s.size for s in uu.helper.sections.values())
        primary_bytes = sum(s.size for s in uu.primary.sections.values())
        print("  %s" % uu.unit)
        print("    replaces:  %s" % (", ".join(uu.changed_functions)
                                     or "(nothing; new code only)"))
        if uu.new_functions:
            print("    adds:      %s" % ", ".join(uu.new_functions))
        if uu.hook_sections:
            print("    hooks:     %s" % ", ".join(uu.hook_sections))
        print("    helper %d bytes, primary %d bytes"
              % (helper_bytes, primary_bytes))
    return 0


def cmd_objdump(args: argparse.Namespace) -> int:
    from repro.tools import dump_object_text

    with open(args.pack, "rb") as handle:
        pack = UpdatePack.from_bytes(handle.read())
    for uu in pack.units:
        if args.unit and uu.unit != args.unit:
            continue
        objfile = uu.helper if args.helper else uu.primary
        print(dump_object_text(objfile))
        print()
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.pipeline import Trace

    tree = load_tree_from_directory(args.tree, args.version)
    with open(args.patch, "r", encoding="utf-8") as handle:
        patch_text = handle.read()
    trace = Trace(label="demo:%s" % tree.version)
    print("booting %s ..." % tree.version)
    with trace.stage("boot"):
        machine = boot_kernel(tree, options=_options(args))
    core = KspliceCore(machine)
    with trace.stage("create"):
        pack = ksplice_create(tree, patch_text, options=_options(args),
                              trace=trace)
    print("created %s (replaces: %s)"
          % (pack.update_id, ", ".join(pack.all_changed_functions())))
    with trace.stage("apply"):
        applied = core.apply(pack, trace=trace)
    print("Done!  stop_machine window %.3f ms, stack-check attempts %d, "
          "primary module %d bytes resident"
          % (applied.stop_report.wall_milliseconds,
             applied.stack_check_attempts, applied.primary_bytes))
    print()
    _print_stage_table(_aggregate_traces([trace]))
    _save_traces([trace], meta={"command": "demo",
                                "kernel_version": tree.version})
    return 0


def _load_provider(args: argparse.Namespace):
    """The corpus provider named by ``--corpus`` (or the seed table),
    or an error message."""
    from repro.errors import ReproError
    from repro.evaluation.corpus import load_corpus_provider

    try:
        return load_corpus_provider(getattr(args, "corpus", None)), None
    except ReproError as exc:
        return None, str(exc)


def _unknown_cve_message(wanted: str, known: list) -> str:
    """A usage error for an unknown CVE id, listing near-miss ids."""
    import difflib

    near = difflib.get_close_matches(wanted, known, n=3, cutoff=0.6)
    if not near:
        # fall back to ids sharing the longest prefix (users most often
        # mistype the trailing digits)
        scored = sorted(known, key=lambda k: (-len(os.path.commonprefix(
            [k, wanted])), k))
        near = [k for k in scored[:3]
                if len(os.path.commonprefix([k, wanted])) >= 4]
    message = "error: unknown CVE %r" % wanted
    if near:
        message += "; did you mean: %s" % ", ".join(near)
    return message


def cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.evaluation.analyze import analyze_corpus_cve

    provider, error = _load_provider(args)
    if provider is None:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_USAGE
    if args.all:
        return _analyze_all(args, provider)
    if not args.cve:
        print("error: name a CVE or pass --all", file=sys.stderr)
        return EXIT_USAGE
    try:
        spec = provider.by_id(args.cve)
    except KeyError:
        print(_unknown_cve_message(args.cve, provider.ids()),
              file=sys.stderr)
        return EXIT_USAGE
    augmented = args.augmented and spec.table1 is not None
    analysis = analyze_corpus_cve(spec, augmented=args.augmented)
    if args.json:
        print(json.dumps(analysis.to_json_dict(), indent=2,
                         sort_keys=True))
    else:
        print("%s  (%s, unit %s%s)"
              % (spec.cve_id, spec.kernel_version, spec.unit,
                 ", augmented patch" if augmented else ""))
        print(analysis.render())
    return analysis.exit_code()


def _analyze_all(args: argparse.Namespace, provider) -> int:
    """Corpus-wide verdict summary, proof status, and oracle check.

    The oracle is the provider's: internal verdict/outcome consistency
    for the seed table, plus the factory's stamped ground truth for
    generated corpora."""
    import json

    from repro.evaluation.harness import evaluate_corpus

    summary = evaluate_corpus(provider.specs(), run_stress=False,
                              jobs=getattr(args, "jobs", 1))
    discrepancies = provider.discrepancies(summary.results)
    rows = []
    verdicts: Dict[str, int] = {}
    for result in summary.results:
        analysis = result.analysis
        verdict = result.analysis_verdict or "(none)"
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
        evidence_counts: Dict[str, int] = {}
        proven = False
        if analysis is not None:
            proven = analysis.is_proven()
            for ev in analysis.evidence:
                evidence_counts[ev.kind] = \
                    evidence_counts.get(ev.kind, 0) + 1
        rows.append({"cve_id": result.cve_id, "verdict": verdict,
                     "proven": proven,
                     "evidence": evidence_counts,
                     "evidence_total": sum(evidence_counts.values())})
    if args.json:
        print(json.dumps({
            "cves": rows,
            "verdicts": {k: verdicts[k] for k in sorted(verdicts)},
            "proven": sum(1 for row in rows if row["proven"]),
            "discrepancies": discrepancies,
        }, indent=2, sort_keys=True))
    else:
        print("verdict summary (%d CVEs):" % len(rows))
        for verdict in sorted(verdicts):
            print("  %-14s %d" % (verdict, verdicts[verdict]))
        print()
        print("%-16s %-14s %-7s %s"
              % ("cve", "verdict", "proven", "evidence"))
        for row in rows:
            kinds = ", ".join("%s=%d" % (k, row["evidence"][k])
                              for k in sorted(row["evidence"]))
            print("%-16s %-14s %-7s %s"
                  % (row["cve_id"], row["verdict"],
                     "yes" if row["proven"] else "NO", kinds))
        print()
        if discrepancies:
            print("DISCREPANCIES (%d):" % len(discrepancies))
            for line in discrepancies:
                print("  " + line)
        else:
            print("no discrepancies: every verdict is consistent with "
                  "the dynamic outcome and backed by evidence")
    return EXIT_FAILURE if discrepancies else EXIT_OK


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.evaluation.harness import evaluate_corpus

    provider, error = _load_provider(args)
    if provider is None:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_USAGE

    if args.cache_dir:
        from repro.compiler.cache import enable_disk_cache
        from repro.pipeline.store import CACHE_DIR_ENV

        os.environ[CACHE_DIR_ENV] = args.cache_dir
        enable_disk_cache()

    if args.secret:
        from repro.distributed import SECRET_ENV

        os.environ[SECRET_ENV] = args.secret

    specs = provider.specs()
    if args.cve:
        known = provider.ids()
        chosen = []
        for wanted in args.cve:
            if wanted not in known:
                print(_unknown_cve_message(wanted, known),
                      file=sys.stderr)
                return EXIT_USAGE
            chosen.append(provider.by_id(wanted))
        specs = chosen
    if args.limit:
        specs = specs[:args.limit]

    def progress(result):
        status = "ok" if result.success else "FAIL"
        if not result.success and result.failed_stage:
            status += " (in %s)" % result.failed_stage
        sys.stdout.write("%-16s %-14s %-13s %s\n"
                         % (result.cve_id, result.kernel_version,
                            result.analysis_verdict or "-", status))

    from repro.evaluation.engine import EngineStats

    workers = [w.strip() for w in (args.workers or "").split(",")
               if w.strip()]
    stats = EngineStats()
    report = evaluate_corpus(specs, run_stress=not args.quick,
                             progress=progress, jobs=args.jobs,
                             stats=stats, workers=workers or None)
    if stats.fell_back:
        print("\nNOTE: %s run fell back (%s); results above came from "
              "the %s path"
              % ("distributed" if workers else "parallel",
                 stats.fallback_reason or "unknown reason",
                 "local" if workers and args.jobs > 1 else "sequential"))
    print("\n%d/%d updates succeeded; %d needed no new code"
          % (len(report.successes()), report.total(),
             report.no_new_code_count()))
    counts = report.verdict_counts()
    print("analyzer verdicts: %s"
          % ", ".join("%s %d" % (verdict, counts[verdict])
                      for verdict in sorted(counts)))
    discrepancies = provider.discrepancies(report.results)
    if discrepancies:
        print("analyzer vs outcome discrepancies (%d):"
              % len(discrepancies))
        for line in discrepancies:
            print("  " + line)
    else:
        print("analyzer verdicts consistent with all apply outcomes")
    print("%.1f s with %d job%s (%.1f CVEs/s); build cache hit rate %.0f%%"
          % (stats.wall_seconds, stats.jobs,
             "s" if stats.jobs != 1 else "",
             stats.cves_per_second,
             100 * stats.combined_cache_stats().hit_rate))
    combined = stats.combined_cache_stats()
    if combined.disk_hits:
        print("disk cache tier: %d hits" % combined.disk_hits)
    jit = stats.jit
    if jit.get("total_insns"):
        total = jit["total_insns"]
        traced = jit["traced_insns"]
        print("jit: %d insns (%.0f%% traced), %d trace hits, "
              "%d compiled, %d evicted"
              % (total, 100.0 * traced / total, jit["trace_hits"],
                 jit["compiled"], jit["evicted"]))
    if stats.workers:
        line = ("distributed: %d worker%s, %d work item%s, %d retr%s"
                % (stats.workers, "s" if stats.workers != 1 else "",
                   stats.work_items,
                   "s" if stats.work_items != 1 else "",
                   stats.retries,
                   "ies" if stats.retries != 1 else "y"))
        if stats.reconnects:
            line += ", %d reconnect%s" % (
                stats.reconnects,
                "s" if stats.reconnects != 1 else "")
        if stats.local_rescues:
            line += ", %d rescued locally" % stats.local_rescues
        print(line)
        if stats.reconnects_by_peer:
            print("  reconnects by worker: %s"
                  % ", ".join("%s x%d" % (peer, count)
                              for peer, count in
                              sorted(stats.reconnects_by_peer.items())))

    # per-stage timing, broken down by kernel-version group then overall
    by_version: Dict[str, list] = {}
    for result in report.results:
        if result.trace is not None:
            by_version.setdefault(result.kernel_version, []).append(
                result.trace)
    for version in sorted(by_version):
        print("\nper-stage wall time, %s (%d CVEs):"
              % (version, len(by_version[version])))
        _print_stage_table(_aggregate_traces(by_version[version]))
    if stats.stages:
        print("\nper-stage wall time, whole corpus:")
        _print_stage_table(stats.stages)

    traces = [r.trace for r in report.results if r.trace is not None]
    if traces:
        _save_traces(traces, meta={
            "command": "evaluate",
            "jobs": stats.jobs,
            "workers": workers,
            "cves": [r.cve_id for r in report.results],
            "failed": [r.cve_id for r in report.results if not r.success],
            "jit": stats.jit,
        })
    ok = len(report.successes()) == report.total() and not discrepancies
    return EXIT_OK if ok else EXIT_FAILURE


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a scenario corpus and write its manifest."""
    from collections import Counter

    from repro.errors import ReproError
    from repro.scenarios import GeneratedCorpus, write_corpus

    if args.size <= 0:
        print("error: --size must be positive", file=sys.stderr)
        return EXIT_USAGE
    try:
        corpus = GeneratedCorpus.generate(args.seed, args.size, args.mix)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    path = write_corpus(corpus, args.out)
    shapes = Counter(s.shape for s in corpus.scenarios)
    print("generated %d scenarios (seed %d, mix %s) -> %s"
          % (args.size, args.seed, args.mix, path))
    print("kernel versions: %d   shapes: %s"
          % (len(corpus.kernel_versions()),
             ", ".join("%s %d" % (shape, shapes[shape])
                       for shape in sorted(shapes))))
    expected = Counter(s.expected.verdict for s in corpus.scenarios)
    print("expected verdicts: %s"
          % ", ".join("%s %d" % (verdict, expected[verdict])
                      for verdict in sorted(expected)))
    return EXIT_OK


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Mutate patches and check the verdict/proof/apply consistency
    contract; exit 3 on any oracle discrepancy."""
    import json

    from repro.scenarios import GeneratedCorpus, fuzz_corpus

    provider, error = _load_provider(args)
    if provider is None:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_USAGE
    if getattr(args, "corpus", None):
        specs = provider.specs()
    else:
        # default pool: the property test's cheap seed CVEs plus a
        # small generated corpus, so every shape gets mutated
        from repro.evaluation.corpus import corpus_by_id

        specs = [corpus_by_id(cve_id)
                 for cve_id in ("CVE-2005-3847", "CVE-2006-0095",
                                "CVE-2006-6106", "CVE-2007-2453",
                                "CVE-2007-5904")]
        specs += GeneratedCorpus.generate(args.seed, 8).specs()

    def progress(outcome):
        if not args.json:
            sys.stdout.write("%-22s %-26s %-12s %s\n"
                             % (outcome.cve_id, outcome.operator,
                                outcome.status,
                                outcome.verdict
                                or ("-" if outcome.status != "evaluated"
                                    else "?")))

    report = fuzz_corpus(specs, budget=args.budget, seed=args.seed,
                         progress=progress)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print("\n%d mutants evaluated, %d refused by the pipeline, "
              "%d inapplicable"
              % (report.mutants, report.refused, report.inapplicable))
        print("verdicts: %s"
              % (", ".join("%s %d" % (v, c) for v, c in
                           sorted(report.verdict_counts.items()))
                 or "(none)"))
        if report.discrepancies:
            print("ORACLE DISCREPANCIES (%d):"
                  % len(report.discrepancies))
            for line in report.discrepancies:
                print("  " + line)
        else:
            print("verdict, proof, and apply outcomes mutually "
                  "consistent on every mutant")
    return EXIT_OK if report.consistent else EXIT_FAILURE


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.distributed import parse_address, serve

    if args.cache_dir:
        from repro.compiler.cache import enable_disk_cache
        from repro.pipeline.store import CACHE_DIR_ENV

        os.environ[CACHE_DIR_ENV] = args.cache_dir
        enable_disk_cache()
    host, port = parse_address(args.listen, allow_zero=True)
    secret = args.secret.encode("utf-8") if args.secret else None

    def ready(bound_host: str, bound_port: int) -> None:
        print("worker listening on %s:%d (pid %d%s)"
              % (bound_host, bound_port, os.getpid(),
                 ", authenticated"
                 if secret or os.environ.get("KSPLICE_WORKER_SECRET")
                 else ""), flush=True)

    try:
        max_frame = int(args.max_frame_mb * 1024 * 1024)
        serve(host=host, port=port, once=args.once, ready=ready,
              secret=secret, item_timeout=args.item_timeout,
              max_frame=max_frame)
    except KeyboardInterrupt:
        pass
    return EXIT_OK


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.pipeline import load_run

    meta, traces = load_run(args.file)
    if not traces:
        print("trace file holds no traces")
        return EXIT_USAGE
    if args.scrub:
        from repro.pipeline.normalize import scrub_trace

        traces = [scrub_trace(t) for t in traces]
    if args.json:
        import json

        wanted = traces
        if args.cve:
            wanted = [t for t in traces if t.label == args.cve]
            if not wanted:
                print("no trace for %r; run holds: %s"
                      % (args.cve, ", ".join(t.label for t in traces)))
                return EXIT_USAGE
        print(json.dumps({"meta": meta,
                          "traces": [t.to_dict() for t in wanted]},
                         indent=2, sort_keys=True))
        return 0
    if args.cve:
        wanted = [t for t in traces if t.label == args.cve]
        if not wanted:
            print("no trace for %r; run holds: %s"
                  % (args.cve, ", ".join(t.label for t in traces)))
            return EXIT_USAGE
        for trace in wanted:
            print(trace.render())
        return 0
    command = meta.get("command", "?")
    print("last run: %s (%d trace%s)"
          % (command, len(traces), "s" if len(traces) != 1 else ""))
    jit = meta.get("jit") or {}
    if jit.get("total_insns"):
        print("jit: %d insns (%.0f%% traced), %d trace hits, "
              "%d compiled, %d evicted"
              % (jit["total_insns"],
                 100.0 * jit["traced_insns"] / jit["total_insns"],
                 jit["trace_hits"], jit["compiled"], jit["evicted"]))
    _print_stage_table(_aggregate_traces(traces))
    failed = [(t.label, t.failed_stage()) for t in traces
              if t.failed_stage()]
    if failed:
        print("\nfailed stages:")
        for label, stage in failed:
            print("  %-24s %s" % (label, stage))
    return 0


def _fleet_plan(args: argparse.Namespace):
    from repro.fleet import InjectedFault, RolloutPlan

    faults = []
    for kind, values in (("oops", args.inject_oops),
                         ("wedge", args.inject_wedge),
                         ("kill", args.inject_kill)):
        for text in values:
            faults.append(InjectedFault.parse(kind, text))
    return RolloutPlan(cve_id=args.cve, fleet_size=args.size,
                       canary=args.canary, growth=args.growth,
                       keepalive_instructions=args.keepalive,
                       probe=not args.no_probe,
                       workload=args.workload, faults=faults)


def cmd_fleet_rollout(args: argparse.Namespace) -> int:
    from repro.evaluation.corpus import corpus_by_id
    from repro.fleet import (
        OUTCOME_COMPLETE,
        RolloutError,
        rollout_corpus_cve,
        run_remote_rollout,
        save_report,
    )
    from repro.pipeline import Trace

    try:
        corpus_by_id(args.cve)
    except KeyError:
        print("error: unknown CVE %r" % args.cve, file=sys.stderr)
        return EXIT_USAGE
    try:
        plan = _fleet_plan(args)
    except RolloutError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    if args.secret:
        from repro.distributed import SECRET_ENV

        os.environ[SECRET_ENV] = args.secret
    if args.worker:

        def on_wave(wave):
            print("wave %s [%s]: members %s"
                  % (wave.get("index", "?"), wave.get("verdict", "?"),
                     ",".join(str(m) for m in wave.get("members", []))),
                  flush=True)

        report = run_remote_rollout(
            args.worker, plan, on_wave=None if args.json else on_wave)
    else:
        trace = Trace(label=plan.rollout_id())
        report = rollout_corpus_cve(plan, trace=trace)
        if not args.json:
            _save_traces([trace], meta={"command": "fleet rollout",
                                        "cve": plan.cve_id})
    path = save_report(report)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
        print("(report saved to %s; `repro fleet status` re-renders it)"
              % path)
    return EXIT_OK if report.outcome == OUTCOME_COMPLETE else EXIT_FAILURE


def cmd_fleet_status(args: argparse.Namespace) -> int:
    from repro.fleet import RolloutError, load_report

    try:
        report = load_report(args.file)
    except RolloutError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return EXIT_OK


def cmd_fleet_rollback(args: argparse.Namespace) -> int:
    from repro.fleet import (
        RolloutError,
        load_report,
        replay_rollback,
        save_report,
    )
    from repro.pipeline import Trace

    try:
        report = load_report(args.file)
    except RolloutError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    members = sorted(report.updated_members)
    if not members:
        print("nothing to roll back: the last rollout left no member "
              "updated")
        return EXIT_OK
    trace = Trace(label="rollback-%s" % report.rollout_id)
    report = replay_rollback(report, trace=trace)
    path = save_report(report, args.file)
    print("rolled back %d member%s (LIFO): %s"
          % (len(members), "s" if len(members) != 1 else "",
             ", ".join("member-%d" % m
                       for m in sorted(members, reverse=True))))
    print("survivors healthy: %s"
          % ("yes" if report.survivors_healthy else "no"))
    print("(report saved to %s)" % path)
    _save_traces([trace], meta={"command": "fleet rollback",
                                "cve": report.cve_id})
    return EXIT_OK if report.survivors_healthy else EXIT_FAILURE


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.controlplane import default_data_dir, serve_control_plane
    from repro.distributed import parse_address

    host, port = parse_address(args.listen, allow_zero=True)
    data_dir = args.data_dir or default_data_dir()

    def ready(bound_host: str, bound_port: int) -> None:
        print("control plane listening on %s:%d (pid %d, data in %s)"
              % (bound_host, bound_port, os.getpid(), data_dir),
              flush=True)

    try:
        serve_control_plane(host=host, port=port, data_dir=data_dir,
                            ready=ready, verbose=args.verbose)
    except KeyboardInterrupt:
        pass
    return EXIT_OK


def _controlplane_client(args: argparse.Namespace):
    from repro.controlplane import ControlPlaneClient

    return ControlPlaneClient(args.url)


def _controlplane_error(exc) -> int:
    """Map a daemon refusal to the uniform exit codes."""
    print("error: %s" % exc, file=sys.stderr)
    return EXIT_USAGE if getattr(exc, "is_user_error", False) \
        else EXIT_FAILURE


def _print_member_row(member: Dict[str, object]) -> None:
    flags = []
    if member.get("pinned"):
        flags.append("pinned")
    if member.get("quarantined"):
        flags.append("quarantined")
    print("%-16s %-14s %-10s seq %-4s %s"
          % (member.get("member_id", "?"),
             member.get("kernel_version", "?"),
             member.get("channel", "?"),
             member.get("applied_sequence", 0),
             ", ".join(flags) or "-"))


def cmd_member(args: argparse.Namespace) -> int:
    from repro.controlplane import ControlPlaneClientError

    client = _controlplane_client(args)
    try:
        if args.member_command == "register":
            member = client.register_member(
                args.id, args.kernel_version,
                channel=args.channel, worker=args.worker or "")
            print("registered %s (kernel %s, channel %s%s)"
                  % (member["member_id"], member["kernel_version"],
                     member["channel"],
                     ", worker %s" % member["worker"]
                     if member["worker"] else ""))
        elif args.member_command == "list":
            members = client.members()
            if not members:
                print("no members registered")
            for member in members:
                _print_member_row(member)
        else:  # pin / unpin / quarantine / unquarantine
            member = client.member_action(args.id, args.member_command)
            print("%s %s" % (args.member_command,
                             member["member_id"]))
    except ControlPlaneClientError as exc:
        return _controlplane_error(exc)
    return EXIT_OK


def _print_wave(wave: Dict[str, object]) -> None:
    members = wave.get("member_ids") or [
        "member-%s" % m for m in wave.get("members", [])]
    print("wave %s [%s]: %s"
          % (wave.get("index", "?"), wave.get("verdict", "?"),
             ", ".join(str(m) for m in members)), flush=True)


def cmd_channel(args: argparse.Namespace) -> int:
    import json

    from repro.controlplane import ControlPlaneClientError

    client = _controlplane_client(args)
    try:
        if args.channel_command == "list":
            channels = client.channels()
            print("%-12s %-14s %7s %11s" % ("channel", "kernel",
                                            "entries", "subscribers"))
            for channel in channels:
                print("%-12s %-14s %7d %11d"
                      % (channel["name"],
                         channel.get("kernel_version") or "-",
                         len(channel.get("entries", [])),
                         len(channel.get("subscribers", []))))
        elif args.channel_command == "status":
            status = client.channel(args.channel)
            if args.json:
                print(json.dumps(status, indent=2, sort_keys=True))
                return EXIT_OK
            print("channel %s (kernel %s)"
                  % (status["name"],
                     status.get("kernel_version") or "unpinned"))
            for entry in status.get("entries", []):
                print("  #%-3d %-16s %s"
                      % (entry["sequence"], entry.get("cve_id", "?"),
                         entry.get("description", "")))
            for sub in status.get("subscribers", []):
                flags = [f for f in ("pinned", "quarantined")
                         if sub.get(f)]
                print("  %-16s at #%-3d %s"
                      % (sub["member_id"], sub["applied_sequence"],
                         ", ".join(flags)
                         or ("current" if sub.get("current")
                             else "behind")))
            for rollout in status.get("rollouts", []):
                print("  rollout %-14s %-9s %d member(s), %d wave(s)"
                      % (rollout["rollout_id"], rollout["status"],
                         rollout["members"], rollout["waves"]))
        else:  # publish
            record = client.publish(
                args.channel, args.cve, description=args.description,
                canary=args.canary, growth=args.growth,
                force=args.force)
            rollout_id = record["rollout_id"]
            if args.no_wait:
                print("published #%d to %s; rollout %s started "
                      "(poll `repro channel status` or GET "
                      "/rollouts/%s)"
                      % (record["sequence"], args.channel, rollout_id,
                         rollout_id))
                return EXIT_OK
            if not args.json:
                print("published #%d to %s; rolling out to %d "
                      "member(s)"
                      % (record["sequence"], args.channel,
                         len(record.get("member_ids", []))))
                for skip in record.get("skipped", []):
                    print("  skipping %s: %s"
                          % (skip["member_id"], skip["reason"]))
            final = client.wait_rollout(
                rollout_id, on_wave=None if args.json else _print_wave)
            if args.json:
                print(json.dumps(final, indent=2, sort_keys=True))
            else:
                print("rollout %s: %s%s"
                      % (rollout_id, final["status"],
                         " — " + final["detail"]
                         if final.get("detail") else ""))
            return (EXIT_OK if final["status"] == "complete"
                    else EXIT_FAILURE)
    except ControlPlaneClientError as exc:
        return _controlplane_error(exc)
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Ksplice reproduction command line")
    parser.add_argument("--version", action="version",
                        version="repro %s" % __version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--opt-level", type=int, default=2,
                       choices=(0, 1, 2))
        p.add_argument("--compiler-version", default="kcc-1.0")
        p.add_argument("--version", default=None,
                       help="kernel version string (default: dir name)")

    p_create = sub.add_parser("create",
                              help="build an update pack from a patch")
    p_create.add_argument("--patch", required=True)
    p_create.add_argument("--tree", required=True)
    p_create.add_argument("-o", "--output", default=None)
    p_create.add_argument("--description", default="")
    common(p_create)
    p_create.set_defaults(func=cmd_create)

    p_inspect = sub.add_parser("inspect", help="describe an update pack")
    p_inspect.add_argument("pack")
    p_inspect.set_defaults(func=cmd_inspect)

    p_objdump = sub.add_parser(
        "objdump", help="disassemble a pack's replacement code")
    p_objdump.add_argument("pack")
    p_objdump.add_argument("--unit", default=None,
                           help="limit to one compilation unit")
    p_objdump.add_argument("--helper", action="store_true",
                           help="dump the helper (pre) object instead")
    p_objdump.set_defaults(func=cmd_objdump)

    p_demo = sub.add_parser("demo",
                            help="boot the tree and hot-apply the patch")
    p_demo.add_argument("--patch", required=True)
    p_demo.add_argument("--tree", required=True)
    common(p_demo)
    p_demo.set_defaults(func=cmd_demo)

    p_analyze = sub.add_parser(
        "analyze",
        help="static patch-safety verdict, with machine-checkable "
             "evidence, for one corpus CVE (or --all)",
        description="Run the static analyzer — heuristic passes plus "
                    "the abstract-interpretation proof engine (ABI "
                    "dataflow, hunk equivalence, pointer escape, "
                    "data image, sleep paths) — and print the "
                    "verdict with its evidence.  Exit 0 safe, "
                    "2 needs custom code, 3 reject.  With --all, "
                    "sweep the whole corpus, cross-check every "
                    "verdict against the dynamic apply outcome, and "
                    "exit 3 on any discrepancy.")
    p_analyze.add_argument("cve", nargs="?", default=None,
                           help="corpus CVE id, e.g. CVE-2008-0007")
    p_analyze.add_argument("--all", action="store_true",
                           help="analyze every corpus CVE: verdict "
                                "histogram, per-CVE evidence counts "
                                "and proof status, oracle "
                                "discrepancies (exit 3 if any)")
    p_analyze.add_argument("--json", action="store_true",
                           help="emit the full report as sorted JSON")
    p_analyze.add_argument("--augmented", action="store_true",
                           help="analyze the hook-augmented patch instead "
                                "of the original security patch")
    p_analyze.add_argument("--corpus", default=None, metavar="DIR",
                           help="analyze a generated corpus (a `repro "
                                "generate` output directory) instead of "
                                "the seed table; with --all the factory's "
                                "stamped ground truth joins the oracle")
    p_analyze.add_argument("--jobs", type=int, default=1,
                           help="with --all: sweep kernel-version groups "
                                "in N worker processes (default 1)")
    p_analyze.set_defaults(func=cmd_analyze)

    p_eval = sub.add_parser("evaluate", help="run the §6 evaluation")
    p_eval.add_argument("--quick", action="store_true",
                        help="skip the stress battery")
    p_eval.add_argument("--limit", type=int, default=0,
                        help="evaluate only the first N CVEs")
    p_eval.add_argument("--corpus", default=None, metavar="DIR",
                        help="evaluate a generated corpus (a `repro "
                             "generate` output directory) instead of the "
                             "seed table")
    p_eval.add_argument("--cve", action="append", default=None,
                        metavar="CVE-ID",
                        help="evaluate only this CVE (repeatable); an "
                             "unknown id exits 2 and suggests near-miss "
                             "ids")
    p_eval.add_argument("--jobs", type=int, default=1,
                        help="evaluate kernel-version groups in N "
                             "worker processes (default 1)")
    p_eval.add_argument("--cache-dir", default=None,
                        help="enable the on-disk cache tier rooted here "
                             "(also where the run trace is saved)")
    p_eval.add_argument("--workers", default=None, metavar="HOST:PORT,...",
                        help="evaluate on remote workers (comma-separated "
                             "host:port list; see `repro worker`) instead "
                             "of local processes")
    p_eval.add_argument("--secret", default=None,
                        help="shared secret for --workers authentication "
                             "(default: the KSPLICE_WORKER_SECRET "
                             "environment variable)")
    p_eval.set_defaults(func=cmd_evaluate)

    p_generate = sub.add_parser(
        "generate",
        help="mass-produce a ground-truth scenario corpus",
        description="Generate a deterministic corpus of synthetic CVE "
                    "scenarios addressed by (seed, size, mix).  The "
                    "manifest written to --out records the address, a "
                    "content digest, and each scenario's expected "
                    "ground truth; the same address reproduces the "
                    "corpus byte-for-byte anywhere.")
    p_generate.add_argument("--seed", type=int, required=True,
                            help="corpus seed (32-bit)")
    p_generate.add_argument("--size", type=int, required=True,
                            help="number of scenarios")
    p_generate.add_argument("--mix", default="default",
                            help="dimension mix name (default: "
                                 "'default'; see DESIGN.md §16)")
    p_generate.add_argument("--out", required=True, metavar="DIR",
                            help="directory to write manifest.json into")
    p_generate.set_defaults(func=cmd_generate)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="mutate patches and cross-check verdicts against "
             "outcomes",
        description="Draw (scenario, operator) pairs from a seeded "
                    "RNG, mutate the fixed unit, and assert that the "
                    "analyzer verdict, absint proof status, and hot "
                    "apply outcome stay mutually consistent.  Any "
                    "divergence is an oracle discrepancy (exit 3), "
                    "never a crash.")
    p_fuzz.add_argument("--budget", type=int, default=40,
                        help="mutation rounds to run (default 40)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="RNG seed for spec/operator draws")
    p_fuzz.add_argument("--corpus", default=None, metavar="DIR",
                        help="mutate a generated corpus instead of the "
                             "built-in pool (5 seed CVEs + 8 generated "
                             "scenarios)")
    p_fuzz.add_argument("--json", action="store_true",
                        help="emit the fuzz report as sorted JSON")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_worker = sub.add_parser(
        "worker", help="serve evaluation work items over TCP")
    p_worker.add_argument("--listen", required=True, metavar="HOST:PORT",
                          help="address to listen on (port 0 picks an "
                               "ephemeral port, printed on startup)")
    p_worker.add_argument("--once", action="store_true",
                          help="exit after serving one coordinator "
                               "session")
    p_worker.add_argument("--cache-dir", default=None,
                          help="enable the on-disk cache tier rooted "
                               "here (a coordinator handshake may still "
                               "override it)")
    p_worker.add_argument("--secret", default=None,
                          help="require coordinators to prove this shared "
                               "secret before anything is deserialized "
                               "(default: the KSPLICE_WORKER_SECRET "
                               "environment variable; neither set serves "
                               "unauthenticated)")
    p_worker.add_argument("--item-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="abandon a wedged work item after this "
                               "many seconds and report a reasoned "
                               "failure instead of hanging the session")
    p_worker.add_argument("--max-frame-mb", type=float, default=64.0,
                          metavar="MIB",
                          help="largest v3 frame the session accepts; "
                               "an oversize frame is a protocol error "
                               "and drops the peer (default: 64)")
    p_worker.set_defaults(func=cmd_worker)

    p_trace = sub.add_parser(
        "trace", help="show the per-stage trace of the last run")
    p_trace.add_argument("--file", default=None,
                         help="trace file (default: the last saved run)")
    p_trace.add_argument("--cve", default=None,
                         help="render one CVE's full stage tree")
    p_trace.add_argument("--json", action="store_true",
                         help="emit the run as deterministic sorted JSON")
    p_trace.add_argument("--scrub", action="store_true",
                         help="zero wall-clock timings (stable output "
                              "for diffing runs)")
    p_trace.set_defaults(func=cmd_trace)

    p_fleet = sub.add_parser(
        "fleet", help="canary rollouts over a live simulated fleet")
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    p_roll = fleet_sub.add_parser(
        "rollout", help="roll a corpus CVE's update out in canary waves")
    p_roll.add_argument("--cve", required=True,
                        help="corpus CVE id, e.g. CVE-2008-0007")
    p_roll.add_argument("--size", type=int, default=4,
                        help="fleet size (default 4)")
    p_roll.add_argument("--canary", type=int, default=1,
                        help="members in wave 0 (default 1)")
    p_roll.add_argument("--growth", type=int, default=2,
                        help="wave growth factor after a green wave "
                             "(default 2)")
    p_roll.add_argument("--keepalive", type=int, default=2000,
                        help="instructions each member runs between "
                             "waves (default 2000)")
    p_roll.add_argument("--workload", choices=("spinner", "stress"),
                        default="spinner",
                        help="what members run between waves: an idle "
                             "spinner or real syscall stress threads "
                             "(default spinner)")
    p_roll.add_argument("--no-probe", action="store_true",
                        help="health-gate on machine liveness only; "
                             "skip the CVE's semantics probe")
    p_roll.add_argument("--inject-oops", action="append", default=[],
                        metavar="MEMBER[:WAVE]",
                        help="crash this member after its wave's apply "
                             "(repeatable)")
    p_roll.add_argument("--inject-wedge", action="append", default=[],
                        metavar="MEMBER[:WAVE]",
                        help="park a thread inside a patched function so "
                             "the member's stack check exhausts "
                             "(repeatable)")
    p_roll.add_argument("--inject-kill", action="append", default=[],
                        metavar="MEMBER[:WAVE]",
                        help="kill this member mid-wave (repeatable)")
    p_roll.add_argument("--worker", default=None, metavar="HOST:PORT",
                        help="run the rollout on a remote `repro worker` "
                             "instead of in-process")
    p_roll.add_argument("--secret", default=None,
                        help="shared secret for --worker authentication")
    p_roll.add_argument("--json", action="store_true",
                        help="emit the RolloutReport as sorted JSON")
    p_roll.set_defaults(func=cmd_fleet_rollout)

    p_status = fleet_sub.add_parser(
        "status", help="show the last rollout's report")
    p_status.add_argument("--file", default=None,
                          help="report file (default: the last rollout)")
    p_status.add_argument("--json", action="store_true",
                          help="emit the report as sorted JSON")
    p_status.set_defaults(func=cmd_fleet_status)

    p_back = fleet_sub.add_parser(
        "rollback",
        help="reverse everything the last rollout left applied")
    p_back.add_argument("--file", default=None,
                        help="report file (default: the last rollout)")
    p_back.set_defaults(func=cmd_fleet_rollback)

    from repro.controlplane.client import default_url

    p_serve = sub.add_parser(
        "serve", help="run the update-channel control plane daemon")
    p_serve.add_argument("--listen", default="127.0.0.1:7787",
                         metavar="HOST:PORT",
                         help="address to listen on (port 0 picks an "
                              "ephemeral port, printed on startup; "
                              "default 127.0.0.1:7787)")
    p_serve.add_argument("--data-dir", default=None,
                         help="durable store root (default: "
                              "REPRO_CONTROLPLANE_DIR or "
                              "<cache>/controlplane)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")
    p_serve.set_defaults(func=cmd_serve)

    def add_url(p) -> None:
        p.add_argument("--url", default=None,
                       help="control plane base URL (default: "
                            "REPRO_CONTROLPLANE_URL or %s)"
                       % default_url())

    p_channel = sub.add_parser(
        "channel", help="release channels on the control plane")
    channel_sub = p_channel.add_subparsers(dest="channel_command",
                                           required=True)

    p_chan_list = channel_sub.add_parser(
        "list", help="list channels with series length and subscribers")
    add_url(p_chan_list)
    p_chan_list.set_defaults(func=cmd_channel)

    p_chan_pub = channel_sub.add_parser(
        "publish",
        help="publish a corpus CVE's update and roll it out")
    p_chan_pub.add_argument("--channel", required=True,
                            help="channel name, e.g. canary")
    p_chan_pub.add_argument("--cve", required=True,
                            help="corpus CVE id, e.g. CVE-2008-0007")
    p_chan_pub.add_argument("--description", default="")
    p_chan_pub.add_argument("--canary", type=int, default=1,
                            help="members in wave 0 (default 1)")
    p_chan_pub.add_argument("--growth", type=int, default=2,
                            help="wave growth factor (default 2)")
    p_chan_pub.add_argument("--force", action="store_true",
                            help="publish even when the analyzer's "
                                 "verdict is reject or unproven; the "
                                 "override is recorded on the rollout")
    p_chan_pub.add_argument("--no-wait", action="store_true",
                            help="return the rollout id immediately "
                                 "instead of waiting for convergence")
    p_chan_pub.add_argument("--json", action="store_true",
                            help="emit the final rollout record as "
                                 "sorted JSON")
    add_url(p_chan_pub)
    p_chan_pub.set_defaults(func=cmd_channel)

    p_chan_status = channel_sub.add_parser(
        "status", help="one channel's series, subscribers, rollouts")
    p_chan_status.add_argument("--channel", required=True)
    p_chan_status.add_argument("--json", action="store_true")
    add_url(p_chan_status)
    p_chan_status.set_defaults(func=cmd_channel)

    p_member = sub.add_parser(
        "member", help="fleet registry on the control plane")
    member_sub = p_member.add_subparsers(dest="member_command",
                                         required=True)

    p_mem_reg = member_sub.add_parser(
        "register", help="register (or refresh) a fleet member")
    p_mem_reg.add_argument("id", help="member id, e.g. web-01")
    p_mem_reg.add_argument("--kernel-version", required=True,
                           help="kernel release the member runs, "
                                "e.g. 2.6.16-deb3")
    p_mem_reg.add_argument("--channel", default="stable",
                           help="channel to subscribe to "
                                "(default stable)")
    p_mem_reg.add_argument("--worker", default=None,
                           metavar="HOST:PORT",
                           help="the `repro worker` this member lives "
                                "on; rollouts ship there")
    add_url(p_mem_reg)
    p_mem_reg.set_defaults(func=cmd_member)

    p_mem_list = member_sub.add_parser(
        "list", help="list the fleet registry")
    add_url(p_mem_list)
    p_mem_list.set_defaults(func=cmd_member)

    for action, help_text in (
            ("pin", "exclude from rollouts, keep current stack"),
            ("unpin", "release a pin"),
            ("quarantine", "exclude from waves until released"),
            ("unquarantine", "release a quarantine")):
        p_action = member_sub.add_parser(action, help=help_text)
        p_action.add_argument("id", help="member id")
        add_url(p_action)
        p_action.set_defaults(func=cmd_member)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_FAILURE


if __name__ == "__main__":
    sys.exit(main())

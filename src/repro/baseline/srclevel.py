"""The source-level hot updater.

Pipeline: diff the *source* of each patched unit to find functions whose
text changed; refuse the documented OPUS-class limitations (assembly
units, signature changes, static locals); compile the post unit; load the
changed functions as a module, resolving symbols through the kernel
symbol table alone; redirect the old functions.

What it cannot know: where the compiler inlined a patched function.  It
will happily "succeed" while stale inlined copies keep running — the
unsafe silent failure the paper warns about.  The benchmarks surface this
by testing exploits after baseline updates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.arch import isa
from repro.compiler import CompilerOptions
from repro.errors import CompileError, SymbolResolutionError
from repro.kbuild import SourceTree, build_units
from repro.kernel.machine import Machine
from repro.lang import ast, parse_unit
from repro.patch import Patch, parse_patch

JUMP_SIZE = 5


class BaselineFailure(enum.Enum):
    ASSEMBLY_FILE = "patch touches an assembly file"
    SIGNATURE_CHANGE = "patch changes a function signature"
    STATIC_LOCAL = "patched function has static local variables"
    AMBIGUOUS_SYMBOL = "symbol-table lookup is ambiguous"
    MISSING_SYMBOL = "symbol not present in the symbol table"
    NO_CHANGES = "no function-level source changes found"
    COMPILE_ERROR = "patched source does not compile"


@dataclass
class BaselineResult:
    """Outcome of one baseline update attempt."""

    success: bool
    failure: Optional[BaselineFailure] = None
    detail: str = ""
    replaced_functions: List[str] = field(default_factory=list)
    #: functions the baseline replaced but that were also inlined
    #: elsewhere — it has no way to know; filled in by the harness.
    module_bytes: int = 0


def _fn_fingerprint(fn: ast.FunctionDef) -> str:
    """Formatting-insensitive body fingerprint (AST repr)."""
    return repr(fn.body)


def _signature(fn: ast.FunctionDef) -> Tuple:
    return (repr(fn.return_type), tuple(repr(p.typ) for p in fn.params))


def _has_static_local(fn: ast.FunctionDef) -> bool:
    found = []

    def walk(block: ast.Block) -> None:
        for stmt in block.statements:
            if isinstance(stmt, ast.LocalDecl) and stmt.is_static:
                found.append(stmt.name)
            elif isinstance(stmt, ast.Block):
                walk(stmt)
            elif isinstance(stmt, ast.If):
                walk(stmt.then)
                if stmt.otherwise:
                    walk(stmt.otherwise)
            elif isinstance(stmt, ast.While):
                walk(stmt.body)

    if fn.body is not None:
        walk(fn.body)
    return bool(found)


class SourceLevelUpdater:
    """Applies patches by source differencing and symbol-table lookup."""

    def __init__(self, machine: Machine,
                 options: Optional[CompilerOptions] = None):
        self.machine = machine
        self.options = (options or CompilerOptions()).pre_post_flavor()

    def apply(self, tree: SourceTree,
              patch: Union[Patch, str]) -> BaselineResult:
        parsed = parse_patch(patch) if isinstance(patch, str) else patch

        for fp in parsed.files:
            if fp.path.endswith(".s"):
                return BaselineResult(
                    success=False, failure=BaselineFailure.ASSEMBLY_FILE,
                    detail=fp.path)

        post_tree = tree.patched(parsed)
        changed_units = tree.changed_units(post_tree)

        plan: List[Tuple[str, str]] = []  # (unit, function)
        for unit in changed_units:
            outcome = self._plan_unit(tree, post_tree, unit, plan)
            if outcome is not None:
                return outcome
        if not plan:
            return BaselineResult(success=False,
                                  failure=BaselineFailure.NO_CHANGES)
        return self._install(post_tree, plan)

    # -- planning ------------------------------------------------------------

    def _plan_unit(self, tree: SourceTree, post_tree: SourceTree, unit: str,
                   plan: List[Tuple[str, str]]) -> Optional[BaselineResult]:
        try:
            pre_ast = parse_unit(tree.read(unit), unit)
            post_ast = parse_unit(post_tree.read(unit), unit)
        except CompileError as exc:
            return BaselineResult(success=False,
                                  failure=BaselineFailure.COMPILE_ERROR,
                                  detail=str(exc))
        pre_fns = {fn.name: fn for fn in pre_ast.functions()}
        post_fns = {fn.name: fn for fn in post_ast.functions()}
        for name, post_fn in post_fns.items():
            pre_fn = pre_fns.get(name)
            if pre_fn is None:
                plan.append((unit, name, True))  # new function: ship it
                continue
            if _fn_fingerprint(pre_fn) == _fn_fingerprint(post_fn):
                continue
            if _signature(pre_fn) != _signature(post_fn):
                return BaselineResult(
                    success=False,
                    failure=BaselineFailure.SIGNATURE_CHANGE, detail=name)
            if _has_static_local(pre_fn) or _has_static_local(post_fn):
                return BaselineResult(
                    success=False, failure=BaselineFailure.STATIC_LOCAL,
                    detail=name)
            plan.append((unit, name, False))
        return None

    # -- installation ---------------------------------------------------------

    def _install(self, post_tree: SourceTree,
                 plan: List[Tuple[str, str, bool]]) -> BaselineResult:
        kallsyms = self.machine.image.kallsyms
        units = sorted({unit for unit, _, _ in plan})
        try:
            build = build_units(post_tree, units, self.options)
        except CompileError as exc:
            return BaselineResult(success=False,
                                  failure=BaselineFailure.COMPILE_ERROR,
                                  detail=str(exc))

        modules: Dict[str, object] = {}
        replaced: List[Tuple[str, str, int, int]] = []
        try:
            for unit in units:
                objfile = self._extract_functions(
                    build.object_for(unit),
                    [fn for u, fn, _ in plan if u == unit])
                module = self.machine.loader.load(
                    objfile, resolver=kallsyms.unique_address)
                modules[unit] = module
            for unit, fn_name, is_new in plan:
                if is_new:
                    continue
                old = kallsyms.unique_address(fn_name)
                new = modules[unit].symbol_address(fn_name)
                replaced.append((unit, fn_name, old, new))
        except SymbolResolutionError as exc:
            for module in modules.values():
                self.machine.loader.unload(module)
            failure = (BaselineFailure.AMBIGUOUS_SYMBOL
                       if "ambiguous" in str(exc)
                       else BaselineFailure.MISSING_SYMBOL)
            return BaselineResult(success=False, failure=failure,
                                  detail=str(exc))

        def install() -> bool:
            for _, _, old, new in replaced:
                displacement = new - (old + JUMP_SIZE)
                encoded = isa.encode_instruction(isa.make("jmp",
                                                          displacement))
                self.machine.memory.write_bytes(old, encoded)
            return True

        self.machine.stop_machine.run(install)
        return BaselineResult(
            success=True,
            replaced_functions=[fn for _, fn, _, _ in replaced],
            module_bytes=sum(m.size for m in modules.values()))

    @staticmethod
    def _extract_functions(objfile, fn_names: List[str]):
        """Only the planned functions' text travels in the module; every
        data reference must resolve against the *running kernel's* symbol
        table (shipping fresh copies of kernel data would silently fork
        state)."""
        from repro.objfile import ObjectFile

        extracted = ObjectFile(name=objfile.name)
        for fn_name in fn_names:
            section_name = ".text.%s" % fn_name
            extracted.add_section(objfile.section(section_name).copy())
        for symbol in objfile.symbols:
            if symbol.is_defined and symbol.section in extracted.sections:
                extracted.add_symbol(symbol.copy())
        extracted.ensure_undefined(extracted.referenced_symbol_names())
        extracted.validate()
        return extracted

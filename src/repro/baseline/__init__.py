"""Baseline: a source-level hot updater in the style of OPUS.

Ksplice's evaluation argues that systems which diff *source* rather than
object code cannot handle function-interface changes, functions with
static locals, assembly files, ambiguous symbol names, or inlined
functions (§6.3, §7.1).  This package implements such a system honestly —
it does everything a careful source-level updater can do — so the
benchmarks can show exactly where and why it loses.
"""

from repro.baseline.srclevel import (
    BaselineFailure,
    BaselineResult,
    SourceLevelUpdater,
)

__all__ = ["BaselineFailure", "BaselineResult", "SourceLevelUpdater"]

"""Exception hierarchy shared across the repro packages.

Every failure mode that the Ksplice paper names has a dedicated exception so
that callers (and the evaluation harness) can distinguish, e.g., a run-pre
mismatch abort from a stack-check abort.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``stage_context`` is attached by the staged pipeline (see
    :mod:`repro.pipeline`) when the error crosses a stage boundary: it
    names the stage path, unit, function, and retry count, so callers
    learn *which* stage rejected an operation, not just that it failed.
    """

    #: Optional[repro.pipeline.StageContext]; set by Stage.__exit__
    stage_context = None


class AssemblyError(ReproError):
    """Malformed assembly source or un-encodable operand."""


class DisassemblyError(ReproError):
    """Byte stream does not decode to a valid k86 instruction."""


class ObjectFormatError(ReproError):
    """Malformed KELF object file or serialization failure."""


class CompileError(ReproError):
    """MiniC source failed to lex, parse, type-check, or compile."""


class PatchError(ReproError):
    """Unified diff failed to parse or apply (hunk mismatch)."""


class BuildError(ReproError):
    """Kernel build (kbuild) failure."""


class LinkError(ReproError):
    """Undefined or duplicate symbols, image overflow, bad relocation."""


class MachineError(ReproError):
    """Simulated machine fault (bad memory access, invalid opcode, ...)."""


class ModuleLoadError(ReproError):
    """Kernel module failed to load (policy, relocation, or memory)."""


class KspliceError(ReproError):
    """Base class for Ksplice-specific failures."""


class KspliceCreateError(KspliceError):
    """ksplice-create could not build an update from the patch."""


class DataSemanticsError(KspliceCreateError):
    """The patch changes persistent data semantics and no custom hook code
    was supplied (the paper's Table 1 failure reason)."""


class RunPreMismatchError(KspliceError):
    """run-pre matching found a difference between run and pre code and
    aborted the update (the paper's safety guarantee)."""


class SymbolResolutionError(KspliceError):
    """A symbol referenced by the replacement code could not be resolved,
    or an ambiguous symbol could not be disambiguated."""


class StackCheckError(KspliceError):
    """A thread's instruction pointer or stack held an address inside a
    to-be-replaced function across every retry; the update was abandoned."""


class UpdateStateError(KspliceError):
    """Invalid update lifecycle operation (e.g., undoing a non-applied
    update, or undoing out of stacking order)."""


class ChannelGapError(KspliceError):
    """A channel entry's declared base sequence does not match the
    subscriber's applied sequence: applying it would violate the §5.4
    stacking discipline (the pack was built against source this machine
    does not run), so the sync refuses before touching the kernel."""

"""Tracing JIT: compile hot k86 paths into Python superinstructions.

The interpreter in :mod:`repro.kernel.cpu` pays one Python-level
dispatch (dict lookup + closure call) per instruction.  That is fast
enough for corpus evaluation but not for fleet members serving real
syscall traffic during a rollout.  This module closes the gap with a
classic tracing translator:

1. **Detect** — ``run_slice`` counts executions of *back-edge targets*
   (the destination of any backward control transfer: loop heads and
   hot return sites).  A PC crossing :data:`HOT_THRESHOLD` arms a
   :class:`TraceRecorder` for that head.
2. **Record** — the recorder rides the interpreter for the next pass:
   it captures the instructions *actually executed* from the head,
   including which way every conditional branch went and *through*
   calls and returns into their callees, until the path returns to
   the head (a loop), reaches a syscall/sched/halt, or hits
   :data:`MAX_TRACE_INSNS` / :data:`MAX_TRACE_SPAN`.  Recording the
   real path — rather than statically decoding fall-through — matters
   because compiled MiniC loops branch *into* their bodies on the hot
   direction, and following calls lets one trace cover a whole
   round's frame chain (dynamic CALLR/RET targets get side-exit
   guards on the recorded destination).
3. **Compile** — :func:`compile_recorded` turns the path into *one
   generated Python function* (a superinstruction): registers live in
   locals, ALU ops are inline arithmetic, loads/stores go through the
   owning Memory's fast accessors, and a loop-shaped path iterates
   inside the function without ever touching the dispatch loop.
   Branches that went the other way become side exits that sync state
   and return to the interpreter.  The function is exact: it never
   runs past the caller's step budget (quantum boundaries — and
   therefore scheduler interleavings — stay bit-identical to the
   interpreter), and a fault commits exactly the instructions that
   completed, with the interpreter's error message and IP.
4. **Invalidate** — a trace records the byte range it was compiled
   from; any executable write overlapping that range (self-modifying
   code, and exactly what ``apply``/``undo`` do at stop_machine when
   they plant or remove the redirection jump) evicts it via
   ``_DecodeCache.invalidate_range`` and flips ``valid`` so an
   *in-flight* trace side-exits right after the store that patched it.

Generated code objects are cached globally per (entry, path, region
bytes) so a fleet of identical kernels compiles each hot path once and
every member just re-binds it to its own memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arch.isa import (
    Instruction,
    Opcode,
    decode_instruction,
    instruction_length,
)
from repro.errors import DisassemblyError, MachineError

_MASK = 0xFFFFFFFF

#: executions of a back-edge target before it is trace-recorded
HOT_THRESHOLD = 8

#: instruction cap along one recorded pass of a trace
MAX_TRACE_INSNS = 128

#: longest non-looping path that still gets a budget-checked body for
#: partial passes; longer ones refuse small budgets instead (the
#: interpreter covers the tail) to keep their compile cost down
CAREFUL_MAX = 128

#: generated code objects, keyed by (entry pc, path, region bytes) —
#: shared across machines so a fleet compiles each hot path once
_CODE_CACHE: Dict[tuple, object] = {}
_CODE_CACHE_MAX = 4096

#: opcodes that always end a recording.  Calls and returns are *not*
#: here: the recorder follows them into the callee (the actual executed
#: path), and the generated code guards dynamic targets (CALLR/RET)
#: with a side exit, so one trace can cover a whole
#: user-loop-plus-helpers round instead of shattering at every frame.
_TERMINATORS = frozenset((
    Opcode.SYSCALL, Opcode.SCHED, Opcode.HLT,
))

#: byte-span cap for one trace's covered region.  A path that jumps far
#: (a patched function's redirection into the module area) ends the
#: recording at the jump instead, so the near part still compiles and
#: the far target becomes its own trace — a single compiled region
#: never spans unmapped gaps between segments.
MAX_TRACE_SPAN = 4096

#: taken-condition expression per canonical conditional mnemonic, in
#: terms of the generated locals ``zf``/``sf``
_COND = {
    "jz": "zf",
    "jnz": "not zf",
    "jl": "sf",
    "jg": "not sf and not zf",
    "jle": "sf or zf",
    "jge": "not sf",
}

#: negated condition (side exit when the recorded direction was taken)
_COND_NOT = {
    "jz": "not zf",
    "jnz": "zf",
    "jl": "not sf",
    "jg": "sf or zf",
    "jle": "not sf and not zf",
    "jge": "sf",
}

_ALU = {
    Opcode.ADD: "r%(d)d = (r%(d)d + r%(s)d) & 0xFFFFFFFF",
    Opcode.SUB: "r%(d)d = (r%(d)d - r%(s)d) & 0xFFFFFFFF",
    Opcode.AND: "r%(d)d = r%(d)d & r%(s)d",
    Opcode.OR: "r%(d)d = r%(d)d | r%(s)d",
    Opcode.XOR: "r%(d)d = r%(d)d ^ r%(s)d",
    Opcode.SHL: "r%(d)d = (r%(d)d << (r%(s)d & 31)) & 0xFFFFFFFF",
    Opcode.SHR: "r%(d)d = r%(d)d >> (r%(s)d & 31)",
}

#: opcodes that write the register in operand slot 0
_WRITES_OP0 = frozenset((
    Opcode.MOVI, Opcode.MOVR, Opcode.LOAD, Opcode.LOADR, Opcode.LEA,
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND,
    Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.ADDI,
    Opcode.NEG, Opcode.NOT, Opcode.MOD, Opcode.POP,
))

#: opcodes that write the stack pointer (r6)
_WRITES_SP = frozenset((
    Opcode.CALL, Opcode.CALLR, Opcode.RET, Opcode.PUSH, Opcode.POP,
))

#: opcodes whose generated code touches memory (and may therefore call
#: the slow accessors and need the segment-slot locals)
_MEM_OPS = frozenset((
    Opcode.LOAD, Opcode.STORE, Opcode.LOADR, Opcode.STORER,
    Opcode.CALL, Opcode.CALLR, Opcode.RET, Opcode.PUSH, Opcode.POP,
))

_READS_BOTH = frozenset((
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
    Opcode.CMP,
))

_READS_OP0 = frozenset((
    Opcode.ADDI, Opcode.CMPI, Opcode.NEG, Opcode.NOT,
    Opcode.PUSH, Opcode.CALLR,
))


def _regs_read(insn: Instruction) -> Tuple[int, ...]:
    """Registers whose *incoming* value the generated code consumes."""
    opcode = insn.spec.opcode
    ops = insn.operands
    if opcode in _READS_BOTH:
        return (ops[0], ops[1])
    if opcode in _READS_OP0:
        return (ops[0],)
    if opcode in (Opcode.MOVR, Opcode.STORE, Opcode.LOADR):
        return (ops[1],)
    if opcode is Opcode.STORER:
        return (ops[0], ops[2])
    return ()


def _signed(value: int) -> int:
    value &= _MASK
    return value - 0x100000000 if value >= 0x80000000 else value


#: refresh the generated code's segment-slot locals from the shared
#: holder after a slow-path accessor call installed a new segment
_RELOAD = ("_l1, _h1, _v1, _b1, _k1, _q1, "
           "_l2, _h2, _v2, _b2, _k2, _q2 = _S")


class CompiledTrace:
    """One compiled path: entry PC, covered byte range, executor.

    ``fn(state, memory, budget)`` returns ``(executed, event, fault)``
    exactly like ``run_slice``'s inner step.  A *looping* trace checks
    the budget before every instruction of the final partial pass, so
    it consumes any positive budget and stops at the precise
    instruction boundary the interpreter would have stopped at.  A
    non-looping trace instead refuses a budget smaller than its path
    (``executed == 0``) and the interpreter covers the short tail —
    either way quantum accounting is bit-identical.  ``valid`` is
    flipped by range invalidation so a running trace observes its own
    code being patched.
    """

    __slots__ = ("entry", "lo", "hi", "length", "looping", "fn", "valid")

    def __init__(self, entry: int, lo: int, hi: int, length: int,
                 looping: bool) -> None:
        self.entry = entry
        self.lo = lo
        self.hi = hi
        self.length = length
        self.looping = looping
        self.fn = None
        self.valid = True

    def overlaps(self, lo: int, hi: int) -> bool:
        return self.lo < hi and lo < self.hi


class TraceRecorder:
    """Captures one executed pass starting at a hot back-edge target.

    ``run_slice`` feeds it every retired instruction via
    :meth:`record`.  The recorder verifies control-flow continuity
    (``ip`` must be the successor of the previous step) so a thread
    switch or an unexpected transfer aborts the recording instead of
    producing a stitched-together nonsense path.
    """

    __slots__ = ("entry", "steps", "expected", "exit_target",
                 "lo", "hi")

    def __init__(self, entry: int) -> None:
        self.entry = entry
        #: (address, decoded instruction, address executed next)
        self.steps: List[Tuple[int, Instruction, int]] = []
        self.expected = entry
        self.exit_target: Optional[int] = None
        #: byte range covered by recorded steps (empty until first one)
        self.lo = entry
        self.hi = entry

    def overlaps(self, lo: int, hi: int) -> bool:
        """True if [lo, hi) touches bytes of an already-recorded step.

        Used by invalidation: a write over recorded instructions would
        make the eventual compile stale, so the recording must die; a
        write anywhere else (data, not-yet-visited code) is harmless
        because future steps decode fresh bytes when they execute.
        """
        return self.lo < hi and lo < self.hi

    def record(self, memory, ip: int, nip: int) -> Optional[str]:
        """Observe the instruction retired at ``ip`` (control moved to
        ``nip``).  Returns None to keep recording, ``"ok"`` when the
        path is complete, ``"abort"`` on discontinuity."""
        if ip != self.expected:
            return "abort"
        try:
            raw = memory.read_bytes(
                ip, instruction_length(memory.read_u8(ip)))
            insn = decode_instruction(raw)
        except (MachineError, DisassemblyError):
            return "abort"
        if self.steps and (max(self.hi, ip + insn.length)
                           - min(self.lo, ip)) > MAX_TRACE_SPAN:
            self.exit_target = ip
            return "ok"
        self.steps.append((ip, insn, nip))
        if ip < self.lo:
            self.lo = ip
        if ip + insn.length > self.hi:
            self.hi = ip + insn.length
        if insn.spec.opcode in _TERMINATORS:
            return "ok"
        if nip == self.entry:
            return "ok"
        if len(self.steps) >= MAX_TRACE_INSNS:
            self.exit_target = nip
            return "ok"
        self.expected = nip
        return None

    def kind(self) -> str:
        _, insn, succ = self.steps[-1]
        if insn.spec.opcode in _TERMINATORS:
            return "term"
        if succ == self.entry:
            return "loop"
        return "cap"


def _generate_source(entry: int,
                     steps: List[Tuple[int, Instruction, int]],
                     kind: str,
                     exit_target: Optional[int]) -> str:
    """Emit the superinstruction's Python source (a factory function).

    The path body is emitted twice.  The *fast* body runs while the
    remaining budget covers a whole pass, so it carries no per-step
    budget checks at all; the *careful* body handles the final
    partial pass, checking the budget before every instruction so the
    trace stops at the precise boundary the interpreter would have
    stopped at (quantum accounting — and therefore scheduler
    interleavings — stay bit-identical).
    """
    written = set()
    reads = set()
    flags_read = flags_written = has_mem = False
    for _, insn, _ in steps:
        opcode = insn.spec.opcode
        if opcode in _WRITES_OP0:
            written.add(insn.operands[0])
        if opcode in _WRITES_SP:
            written.add(6)
            reads.add(6)
        reads.update(_regs_read(insn))
        if opcode in (Opcode.CMP, Opcode.CMPI):
            flags_written = True
        if insn.spec.canonical in _COND:
            flags_read = True
        if opcode in _MEM_OPS:
            has_mem = True

    # Only registers the path touches become locals: ``written`` regs
    # must exist from entry (any side exit syncs them, possibly before
    # the write retired), ``reads`` obviously must, everything else is
    # never loaded nor synced — exactly the registers the interpreter
    # would have left alone.
    used = sorted(written | reads)
    length = len(steps)
    sync = ["regs[%d] = r%d" % (i, i) for i in sorted(written)]
    if flags_written:
        sync += ["state.zf = zf", "state.sf = sf"]

    lines: List[str] = []

    def emit(depth: int, text: str) -> None:
        lines.append("    " * depth + text)

    def emit_sync(depth: int) -> None:
        for stmt in sync:
            emit(depth, stmt)

    needs_event = any(
        insn.spec.opcode in _TERMINATORS for _, insn, _ in steps)

    def emit_exit(depth: int, target: str, done: int,
                  event: str = "_N") -> None:
        # All exits funnel through one shared sync-and-return epilogue
        # (via ``break``): exits are emitted per step in both bodies,
        # so inlining the sync at each would double the generated
        # source — and compiling rotated trace variants is the JIT's
        # dominant one-time cost on syscall-heavy workloads.
        emit(depth, "_x = %s" % target)
        if done:
            emit(depth, "_d = %d" % done)
        if event != "_N":
            emit(depth, "_e = %s" % event)
        emit(depth, "break")

    tmp_count = [0]

    def new_tmp() -> str:
        tmp_count[0] += 1
        return "_s%d" % tmp_count[0]

    def emit_body(depth: int, careful: bool, close: bool = True) -> None:
        # ``close`` picks the loop-closing form: True restarts the
        # ``while 1`` (the final — or only — unrolled copy), False
        # falls through into the next unrolled copy, with the close
        # condition inverted into a side exit.
        closed = False

        # Store-to-load forwarding: MiniC keeps every value on the
        # stack, so hot paths are chains of PUSH/POP operand traffic
        # and LOADR/op/STORER on frame slots.  ``avail`` maps an
        # address key to a Python expression *known* to equal memory
        # at that address, so a reload becomes a register copy (or
        # vanishes).  Keys come in two classes:
        #
        # * ``("sp", epoch, depth)`` — stack slots.  PUSH/POP/CALL/
        #   RET and ``ADDI r6`` move r6 by compile-time constants, so
        #   every stack access within an epoch has a known byte
        #   offset from the r6 the body entered with; two slots at
        #   depths a word apart are provably distinct.  Any other
        #   write to r6 starts a new epoch (all stack knowledge
        #   dies).  Stored values are captured in fresh ``_sN``
        #   temporaries at the store site, so the pattern
        #   ``PUSH r0; MOVI r0, ..; POP r1`` still forwards after r0
        #   is clobbered.
        # * ``(base_reg, offset)`` / ``("lit", address)`` — frame
        #   slots and globals.  A store through the *same* base at an
        #   offset at least a word away (or a literal a word away) is
        #   provably distinct; anything else that stores — including
        #   the other class, whose addresses are not comparable at
        #   compile time — kills the entry.
        #
        # Stores are never elided, so memory — and therefore every
        # side exit, fault, and eviction guard — stays bit-identical;
        # forwarding only ever replaces a load whose result is fully
        # determined by earlier statements of the same pass.
        avail: dict = {}
        sp_epoch = 0
        sp_depth = 0

        def kill_reg(written: int) -> None:
            value = "r%d" % written
            for akey in list(avail):
                if akey[0] == written or avail[akey] == value:
                    del avail[akey]

        def kill_stores(skey) -> None:
            for akey in list(avail):
                if (akey != skey and akey[0] == skey[0]
                        and abs(akey[-1] - skey[-1]) >= 4):
                    continue
                if akey != skey:
                    del avail[akey]

        def kill_other_class() -> None:
            # a stack store's address is not comparable with frame or
            # literal addresses at compile time
            for akey in list(avail):
                if akey[0] != "sp":
                    del avail[akey]
        for k, (addr, insn, succ) in enumerate(steps):
            opcode = insn.spec.opcode
            ops = insn.operands
            nxt = addr + insn.length
            done = k + 1

            if careful:
                # Exact quantum accounting: if the budget expires
                # here, stop *before* this instruction with the IP
                # pointing at it — the interpreter (or a rotated
                # trace at this PC) resumes exactly where a
                # pure-interpreter run would have been preempted.
                emit(depth, "if lim <= %d:" % k)
                emit_exit(depth + 1, "0x%08X" % addr, k)

            def fault_prefix(extra: int = 0) -> None:
                emit(depth + extra, "state.ip = 0x%08X" % addr)
                emit(depth + extra, "_f = %d" % k)

            def emit_slow_load(d: int, dst: str, a1: str) -> None:
                fault_prefix(d - depth)
                emit(d, "%s = _r(%s)" % (dst, a1))
                emit(d, _RELOAD)

            def emit_load(dst: str, a) -> None:
                # Inline two-slot word-view load; only the miss path
                # can fault, so the fault prefix lives there.
                if isinstance(a, int):
                    if a & 3:
                        emit_slow_load(depth, dst, "0x%08X" % a)
                        return
                    a1 = "0x%08X" % a
                    i1 = "%d - _b1" % (a >> 2)
                    i2 = "%d - _b2" % (a >> 2)
                    al = ""
                else:
                    a1 = a
                    i1 = "(%s >> 2) - _b1" % a
                    i2 = "(%s >> 2) - _b2" % a
                    al = " and not %s & 3" % a
                emit(depth, "if _l1 <= %s <= _h1%s:" % (a1, al))
                emit(depth + 1, "%s = _v1[%s]" % (dst, i1))
                emit(depth, "elif _l2 <= %s <= _h2%s:" % (a1, al))
                emit(depth + 1, "%s = _v2[%s]" % (dst, i2))
                emit(depth, "else:")
                emit_slow_load(depth + 1, dst, a1)

            def emit_store(a, val: str, post: tuple = (),
                           guard: bool = True,
                           target: Optional[str] = None) -> None:
                # Inline store: a plain (writable, non-executable)
                # segment can neither fault nor invalidate code.  A
                # writable *executable* segment (the kernel image
                # maps text and data together) is still inlined when
                # the stored word misses the code-word set — it then
                # cannot overlap any cached instruction or compiled
                # trace.  A store that might patch code (self-
                # modifying code, a stop_machine jump landing in this
                # very trace) necessarily goes through ``_w``, after
                # which the guard bails out so the new bytes are
                # observed immediately.
                if isinstance(a, int):
                    fast = not a & 3
                    a1 = "0x%08X" % a
                    i1 = "%d - _b1" % (a >> 2)
                    i2 = "%d - _b2" % (a >> 2)
                    w = "%d" % (a >> 2)
                    al = ""
                else:
                    fast = True
                    a1 = a
                    i1 = "(%s >> 2) - _b1" % a
                    i2 = "(%s >> 2) - _b2" % a
                    w = "%s >> 2" % a
                    al = " and not %s & 3" % a
                d = depth
                if fast:
                    emit(depth, "if _l1 <= %s <= _h1%s and "
                                "(_k1 or (_q1 and %s not in _CW)):"
                         % (a1, al, w))
                    emit(depth + 1, "_v1[%s] = %s" % (i1, val))
                    for stmt in post:
                        emit(depth + 1, stmt)
                    emit(depth, "elif _l2 <= %s <= _h2%s and "
                                "(_k2 or (_q2 and %s not in _CW)):"
                         % (a1, al, w))
                    emit(depth + 1, "_v2[%s] = %s" % (i2, val))
                    for stmt in post:
                        emit(depth + 1, stmt)
                    emit(depth, "else:")
                    d = depth + 1
                fault_prefix(d - depth)
                emit(d, "_w(%s, %s)" % (a1, val))
                emit(d, _RELOAD)
                for stmt in post:
                    emit(d, stmt)
                if guard:
                    emit(d, "if not _t.valid:")
                    emit_exit(d + 1, target or "0x%08X" % nxt, done)

            if insn.spec.is_nop:
                continue
            pending = None
            if opcode is Opcode.MOVI:
                emit(depth, "r%d = %d" % (ops[0], ops[1] & _MASK))
            elif opcode is Opcode.MOVR:
                emit(depth, "r%d = r%d" % (ops[0], ops[1]))
            elif opcode is Opcode.LOAD:
                key = ("lit", ops[1])
                fwd = avail.get(key)
                if fwd is None:
                    emit_load("r%d" % ops[0], ops[1])
                elif fwd != "r%d" % ops[0]:
                    emit(depth, "r%d = %s" % (ops[0], fwd))
                pending = (key, fwd if fwd is not None
                           else "r%d" % ops[0])
            elif opcode is Opcode.STORE:
                key = ("lit", ops[0])
                tmp = new_tmp()
                emit(depth, "%s = r%d" % (tmp, ops[1]))
                emit_store(ops[0], "r%d" % ops[1])
                kill_stores(key)
                pending = (key, tmp)
            elif opcode is Opcode.LOADR:
                key = (ops[1], ops[2])
                fwd = avail.get(key)
                if fwd is None:
                    emit(depth, "_a = (r%d + %d) & 0xFFFFFFFF"
                         % (ops[1], ops[2]))
                    emit_load("r%d" % ops[0], "_a")
                elif fwd != "r%d" % ops[0]:
                    emit(depth, "r%d = %s" % (ops[0], fwd))
                if ops[1] != ops[0]:
                    pending = (key, fwd if fwd is not None
                               else "r%d" % ops[0])
            elif opcode is Opcode.STORER:
                key = (ops[0], ops[1])
                tmp = new_tmp()
                emit(depth, "%s = r%d" % (tmp, ops[2]))
                emit(depth, "_a = (r%d + %d) & 0xFFFFFFFF"
                     % (ops[0], ops[1]))
                emit_store("_a", "r%d" % ops[2])
                kill_stores(key)
                pending = (key, tmp)
            elif opcode is Opcode.LEA:
                emit(depth, "r%d = %d" % (ops[0], ops[1]))
            elif opcode in _ALU:
                emit(depth, _ALU[opcode] % {"d": ops[0], "s": ops[1]})
            elif opcode is Opcode.MUL:
                d, s = ops
                emit(depth, "_a = r%d - 0x100000000 "
                            "if r%d >= 0x80000000 else r%d" % (d, d, d))
                emit(depth, "_b = r%d - 0x100000000 "
                            "if r%d >= 0x80000000 else r%d" % (s, s, s))
                emit(depth, "r%d = (_a * _b) & 0xFFFFFFFF" % d)
            elif opcode in (Opcode.DIV, Opcode.MOD):
                d, s = ops
                fault_prefix()
                emit(depth, "_dv = r%d - 0x100000000 "
                            "if r%d >= 0x80000000 else r%d" % (s, s, s))
                emit(depth, "if _dv == 0:")
                emit_sync(depth + 1)
                emit(depth + 1, "return n + %d, _N, "
                                "'divide by zero at 0x%08x'" % (k, addr))
                emit(depth, "_dd = r%d - 0x100000000 "
                            "if r%d >= 0x80000000 else r%d" % (d, d, d))
                emit(depth, "_q = int(_dd / _dv)")
                if opcode is Opcode.DIV:
                    emit(depth, "r%d = _q & 0xFFFFFFFF" % d)
                else:
                    emit(depth, "r%d = (_dd - _q * _dv) & 0xFFFFFFFF"
                         % d)
            elif opcode is Opcode.ADDI:
                emit(depth, "r%d = (r%d + %d) & 0xFFFFFFFF"
                     % (ops[0], ops[0], _signed(ops[1])))
            elif opcode is Opcode.CMP:
                a, b = ops
                emit(depth, "_a = r%d - 0x100000000 "
                            "if r%d >= 0x80000000 else r%d" % (a, a, a))
                emit(depth, "_b = r%d - 0x100000000 "
                            "if r%d >= 0x80000000 else r%d" % (b, b, b))
                emit(depth, "zf = _a == _b")
                emit(depth, "sf = _a < _b")
            elif opcode is Opcode.CMPI:
                a, imm = ops[0], _signed(ops[1])
                emit(depth, "_a = r%d - 0x100000000 "
                            "if r%d >= 0x80000000 else r%d" % (a, a, a))
                emit(depth, "zf = _a == %d" % imm)
                emit(depth, "sf = _a < %d" % imm)
            elif opcode is Opcode.NEG:
                emit(depth, "r%d = (-(r%d - 0x100000000 "
                            "if r%d >= 0x80000000 else r%d)) "
                            "& 0xFFFFFFFF"
                     % (ops[0], ops[0], ops[0], ops[0]))
            elif opcode is Opcode.NOT:
                emit(depth, "r%d = (~r%d) & 0xFFFFFFFF"
                     % (ops[0], ops[0]))
            elif insn.spec.canonical in _COND:
                taken_target = nxt + ops[0]
                if succ == nxt:
                    # recorded not-taken: side exit if the branch fires
                    emit(depth, "if %s:" % _COND[insn.spec.canonical])
                    emit_exit(depth + 1, "0x%08X" % taken_target, done)
                elif succ == entry:
                    # recorded taken, closing the loop
                    if close:
                        emit(depth, "if %s:"
                             % _COND[insn.spec.canonical])
                        emit(depth + 1, "n += %d" % done)
                        emit(depth + 1, "continue")
                        emit_exit(depth, "0x%08X" % nxt, done)
                    else:
                        emit(depth, "if %s:"
                             % _COND_NOT[insn.spec.canonical])
                        emit_exit(depth + 1, "0x%08X" % nxt, done)
                        emit(depth, "n += %d" % done)
                    closed = True
                else:
                    # recorded taken mid-path: side exit on
                    # fall-through
                    emit(depth, "if %s:"
                         % _COND_NOT[insn.spec.canonical])
                    emit_exit(depth + 1, "0x%08X" % nxt, done)
            elif opcode in (Opcode.JMP, Opcode.JMPS):
                # control simply continues at the target, which is
                # the next recorded step (or the entry, handled by
                # the generic close)
                pass
            elif opcode is Opcode.CALL:
                # Static target: the recorded successor IS where the
                # call goes, so control simply falls through into the
                # callee's recorded instructions.
                emit(depth, "_sp = (r6 - 4) & 0xFFFFFFFF")
                emit_store("_sp", "0x%08X" % nxt, post=("r6 = _sp",),
                           target="0x%08X" % succ)
                sp_depth -= 4
                kill_other_class()
                pending = (("sp", sp_epoch, sp_depth), "0x%08X" % nxt)
            elif opcode is Opcode.CALLR:
                # Dynamic target: side-exit unless it goes where the
                # recording went.  The register is read *after* the
                # push updates r6, matching the interpreter (CALLR
                # through r6 targets the new stack pointer).
                emit(depth, "_sp = (r6 - 4) & 0xFFFFFFFF")
                emit_store("_sp", "0x%08X" % nxt, post=("r6 = _sp",),
                           target="r%d" % ops[0])
                sp_depth -= 4
                kill_other_class()
                pending = (("sp", sp_epoch, sp_depth), "0x%08X" % nxt)
                if succ != entry or kind != "loop":
                    emit(depth, "if r%d != 0x%08X:" % (ops[0], succ))
                    emit_exit(depth + 1, "r%d" % ops[0], done)
                elif close:
                    emit(depth, "if r%d == 0x%08X:" % (ops[0], succ))
                    emit(depth + 1, "n += %d" % done)
                    emit(depth + 1, "continue")
                    emit_exit(depth, "r%d" % ops[0], done)
                    closed = True
                else:
                    emit(depth, "if r%d != 0x%08X:" % (ops[0], succ))
                    emit_exit(depth + 1, "r%d" % ops[0], done)
                    emit(depth, "n += %d" % done)
                    closed = True
            elif opcode is Opcode.RET:
                # Dynamic target: guard on the recorded return site.
                # When the return slot's value is known (forwarded
                # from the matching CALL's pushed literal — any
                # aliasing store would have killed the entry), the
                # guard resolves at compile time and the whole
                # load-and-check disappears.
                key = ("sp", sp_epoch, sp_depth)
                fwd = avail.get(key)
                sp_depth += 4
                if (fwd is not None and fwd.startswith("0x")
                        and int(fwd, 16) != succ):
                    fwd = None  # defensive: recording says otherwise
                if fwd is None:
                    emit(depth, "_a = r6")
                    emit_load("_ra", "_a")
                    emit(depth, "r6 = (_a + 4) & 0xFFFFFFFF")
                else:
                    emit(depth, "r6 = (r6 + 4) & 0xFFFFFFFF")
                if fwd is not None and fwd.startswith("0x"):
                    # statically matches the recorded return site
                    if succ == entry and kind == "loop":
                        emit(depth, "n += %d" % done)
                        if close:
                            emit(depth, "continue")
                        closed = True
                elif succ != entry or kind != "loop":
                    if fwd is not None:
                        emit(depth, "_ra = %s" % fwd)
                    emit(depth, "if _ra != 0x%08X:" % succ)
                    emit_exit(depth + 1, "_ra", done)
                elif close:
                    if fwd is not None:
                        emit(depth, "_ra = %s" % fwd)
                    emit(depth, "if _ra == 0x%08X:" % succ)
                    emit(depth + 1, "n += %d" % done)
                    emit(depth + 1, "continue")
                    emit_exit(depth, "_ra", done)
                    closed = True
                else:
                    if fwd is not None:
                        emit(depth, "_ra = %s" % fwd)
                    emit(depth, "if _ra != 0x%08X:" % succ)
                    emit_exit(depth + 1, "_ra", done)
                    emit(depth, "n += %d" % done)
                    closed = True
            elif opcode is Opcode.PUSH:
                tmp = new_tmp()
                emit(depth, "%s = r%d" % (tmp, ops[0]))
                emit(depth, "_sp = (r6 - 4) & 0xFFFFFFFF")
                emit_store("_sp", "r%d" % ops[0], post=("r6 = _sp",))
                sp_depth -= 4
                kill_other_class()
                pending = (("sp", sp_epoch, sp_depth), tmp)
            elif opcode is Opcode.POP:
                key = ("sp", sp_epoch, sp_depth)
                fwd = None if ops[0] == 6 else avail.get(key)
                if fwd is None:
                    emit(depth, "_a = r6")
                    emit_load("r%d" % ops[0], "_a")
                    emit(depth, "r6 = (_a + 4) & 0xFFFFFFFF")
                else:
                    if fwd != "r%d" % ops[0]:
                        emit(depth, "r%d = %s" % (ops[0], fwd))
                    emit(depth, "r6 = (r6 + 4) & 0xFFFFFFFF")
                sp_depth += 4
            elif opcode is Opcode.SYSCALL:
                emit_exit(depth, "0x%08X" % nxt, done, "_SY")
            elif opcode is Opcode.SCHED:
                emit_exit(depth, "0x%08X" % nxt, done, "_SC")
            elif opcode is Opcode.HLT:
                emit_exit(depth, "0x%08X" % addr, done, "_H")
            elif opcode is Opcode.CLI:
                emit(depth, "state.preempt_disable_depth += 1")
            elif opcode is Opcode.STI:
                emit(depth, "if state.preempt_disable_depth > 0:")
                emit(depth + 1, "state.preempt_disable_depth -= 1")
            else:  # pragma: no cover - table is exhaustive
                raise MachineError(
                    "untraceable opcode %s" % insn.mnemonic)
            if opcode is Opcode.ADDI and ops[0] == 6:
                # constant stack adjustment (frame setup/teardown):
                # stack-slot depths stay tracked
                sp_depth += _signed(ops[1])
            elif opcode in _WRITES_OP0 and ops[0] == 6:
                # r6 rewritten by an untracked amount: every known
                # stack depth is relative to a stale r6
                sp_epoch += 1
                sp_depth = 0
                for akey in list(avail):
                    if akey[0] == "sp":
                        del avail[akey]
            if opcode in _WRITES_OP0:
                kill_reg(ops[0])
            if opcode in _WRITES_SP:
                kill_reg(6)
            if pending is not None:
                avail[pending[0]] = pending[1]

        if kind == "cap":
            emit_exit(depth, "0x%08X" % exit_target, length)
        elif kind == "loop" and not closed:
            # last step falls (or jumps) straight back to the entry
            emit(depth, "n += %d" % length)
            if not careful and close:
                emit(depth, "continue")

    emit(0, "def _make(_t, _r, _w, _S, _CW, _N, _SY, _SC, _H, _ME):")
    emit(1, "def _trace(state, memory, budget,")
    emit(1, "           _t=_t, _r=_r, _w=_w, _S=_S, _CW=_CW,")
    emit(1, "           _N=_N, _SY=_SY, _SC=_SC, _H=_H, _ME=_ME):")
    has_careful = kind == "loop" or length <= CAREFUL_MAX
    if not has_careful:
        # A long non-looping trace executes its path at most once, so
        # instead of compiling a second per-step budget-checked body
        # for the quantum's final partial pass, it *refuses* a budget
        # that cannot cover a whole pass: ``run_slice`` interprets the
        # short tail instruction by instruction (bit-identical by
        # construction).  This halves the generated source — and
        # compiling trace variants is the JIT's dominant one-time
        # cost on syscall-heavy workloads.
        emit(2, "if budget < %d:" % length)
        emit(3, "return 0, _N, None")
    if used:
        emit(2, "regs = state.regs")
    for i in used:
        emit(2, "r%d = regs[%d]" % (i, i))
    if flags_read or flags_written:
        emit(2, "zf = state.zf")
        emit(2, "sf = state.sf")
    if has_mem:
        emit(2, _RELOAD)
    emit(2, "n = 0")
    emit(2, "_f = 0")
    emit(2, "_d = 0")
    if needs_event:
        emit(2, "_e = _N")
    emit(2, "try:")
    emit(3, "while 1:")
    # Short loop bodies are dominated by per-pass mechanics (the budget
    # check and the while-restart), so their fast body is unrolled:
    # copies fall through into each other, and only the last restarts
    # the while.  Exit accounting is unchanged — ``n`` accrues per
    # copy, so a side exit anywhere reports the exact boundary.
    unroll = 4 if kind == "loop" and length <= 32 else 1
    if has_careful:
        # Fast body: a whole pass of budget remains, so no per-step
        # budget checks.  Every exit breaks to the shared epilogue.
        emit(4, "if budget - n >= %d:" % (length * unroll))
        for j in range(unroll):
            emit_body(5, careful=False, close=j == unroll - 1)
        # Careful body: the final partial pass.  ``lim`` is how many
        # more instructions may retire; it only changes when the loop
        # closes (n += pass length, falling back to the top), so it
        # is hoisted out of the per-step checks.
        emit(4, "lim = budget - n")
        emit_body(4, careful=True)
    else:
        # Entry guard above proved the budget covers the whole pass;
        # every exit breaks to the shared epilogue.
        emit_body(4, careful=False)
    emit(2, "except _ME as exc:")
    emit_sync(3)
    emit(3, "return n + _f, _N, str(exc)")
    emit_sync(2)
    emit(2, "state.ip = _x")
    emit(2, "return n + _d, %s, None" % ("_e" if needs_event else "_N"))
    emit(1, "return _trace")
    return "\n".join(lines) + "\n"


def compile_recorded(recorder: TraceRecorder, memory,
                     events) -> Optional[CompiledTrace]:
    """Compile a completed recording against ``memory``.

    ``events`` supplies the interpreter's StepEvent singletons so
    generated code returns the very same objects ``run_slice``
    compares against.  Returns None when the path cannot be compiled.
    """
    steps = recorder.steps
    if not steps:
        return None
    kind = recorder.kind()
    lo = min(addr for addr, _, _ in steps)
    hi = max(addr + insn.length for addr, insn, _ in steps)
    trace = CompiledTrace(entry=recorder.entry, lo=lo, hi=hi,
                          length=len(steps), looping=kind == "loop")

    try:
        raw = memory.read_bytes(lo, hi - lo)
    except MachineError:
        # The path crossed between segments (e.g. a patched function's
        # redirection jump from kernel text into the module area), so
        # its byte span covers an unmapped gap.  Such a trace would
        # also be evicted by every write in between; decline instead.
        return None
    path = tuple(addr for addr, _, _ in steps)
    key = (recorder.entry, path, raw)
    code = _CODE_CACHE.get(key)
    if code is None:
        try:
            source = _generate_source(recorder.entry, steps, kind,
                                      recorder.exit_target)
        except MachineError:
            return None
        code = compile(source, "<k86-trace-0x%08x>" % recorder.entry,
                       "exec")
        if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
            _CODE_CACHE.pop(next(iter(_CODE_CACHE)))
        _CODE_CACHE[key] = code

    namespace: Dict[str, object] = {}
    exec(code, namespace)  # noqa: S102 - generated from decoded insns
    read, write, holder = memory.jit_accessors()
    cache = memory._decode_cache
    code_words = cache.code_words if cache is not None else frozenset()
    trace.fn = namespace["_make"](
        trace, read, write, holder, code_words,
        events.NORMAL, events.SYSCALL, events.SCHED,
        events.HALT, MachineError)
    return trace


def clear_code_cache() -> None:
    """Drop the shared generated-code objects (test isolation)."""
    _CODE_CACHE.clear()

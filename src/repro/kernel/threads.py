"""Threads: execution contexts with kernel stacks."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.kernel.cpu import CPUState


class ThreadStatus(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    #: asleep in the kernel: never scheduled, but its stack is live —
    #: the Ksplice stack check must still scan it (§5.2: a thread
    #: sleeping inside a patched function blocks the update forever)
    BLOCKED = "blocked"
    EXITED = "exited"
    FAULTED = "faulted"


@dataclass
class Thread:
    """One schedulable execution context.

    ``stack_base``/``stack_size`` delimit the thread's stack segment so
    the Ksplice stack check can scan every word the thread may return
    through.
    """

    tid: int
    name: str
    cpu: CPUState
    stack_base: int
    stack_size: int
    status: ThreadStatus = ThreadStatus.READY
    exit_value: Optional[int] = None
    fault: Optional[str] = None
    is_user: bool = False
    instructions_executed: int = 0

    @property
    def stack_top(self) -> int:
        return self.stack_base + self.stack_size

    @property
    def alive(self) -> bool:
        return self.status in (ThreadStatus.READY, ThreadStatus.RUNNING,
                               ThreadStatus.BLOCKED)

    @property
    def runnable(self) -> bool:
        return self.status in (ThreadStatus.READY, ThreadStatus.RUNNING)

    def live_stack_words(self) -> List[int]:
        """Addresses of every word between sp and the stack top."""
        sp = self.cpu.reg(6)
        if not self.stack_base <= sp <= self.stack_top:
            return []
        return list(range(sp, self.stack_top, 4))

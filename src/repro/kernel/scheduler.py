"""Preemptive round-robin scheduler.

Threads run in quanta of ``quantum`` instructions (the timer tick).  A
SCHED event ends the quantum early (voluntary yield); SYSCALL events are
turned into calls through the kernel's syscall entry point; machine
faults (bad memory access, divide by zero, invalid opcode) mark the
thread FAULTED — a kernel oops — without taking the machine down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.kernel.cpu import TRACE_STATS, StepEvent, run_slice
from repro.kernel.memory import Memory
from repro.kernel.threads import Thread, ThreadStatus


@dataclass
class Scheduler:
    memory: Memory
    syscall_entry: Callable[[Thread], None]
    quantum: int = 50
    threads: List[Thread] = field(default_factory=list)
    total_instructions: int = 0
    #: set by stop_machine while it holds all CPUs
    frozen: bool = False
    #: NMI-watchdog analog: a thread holding preemption off (CLI) for
    #: this many instructions beyond its quantum is declared stuck
    preempt_watchdog: int = 10_000

    def add(self, thread: Thread) -> None:
        self.threads.append(thread)

    def runnable(self) -> List[Thread]:
        return [t for t in self.threads if t.runnable]

    def run_quantum(self, thread: Thread) -> None:
        """Run one thread for up to ``quantum`` instructions.

        A thread inside a CLI critical section is not preempted at the
        quantum boundary; the watchdog bounds how long it may keep the
        CPU that way.
        """
        thread.status = ThreadStatus.RUNNING
        cpu = thread.cpu
        executed = 0
        limit = self.quantum
        hard_limit = self.quantum + self.preempt_watchdog
        syscall_entry = self.syscall_entry

        def syscall_hook() -> None:
            syscall_entry(thread)

        while executed < limit:
            # Fast path: run the rest of the quantum as one
            # uninterrupted slice.  NORMAL events never re-enter the
            # scheduler, and SYSCALL is serviced inside the slice via
            # the hook; only quantum exhaustion, a yield/halt, or a
            # fault unwind to here.
            ran, event, fault = run_slice(cpu, self.memory,
                                          limit - executed,
                                          syscall_hook)
            executed += ran
            thread.instructions_executed += ran
            self.total_instructions += ran
            TRACE_STATS.total_insns += ran
            if fault is not None:
                thread.status = ThreadStatus.FAULTED
                thread.fault = fault
                return
            if event is StepEvent.HALT:
                thread.status = ThreadStatus.EXITED
                thread.exit_value = cpu.reg(0)
                return
            if event is StepEvent.SYSCALL:
                self.syscall_entry(thread)
                continue
            if event is StepEvent.SCHED:
                break
            if executed >= limit and cpu.preempt_disable_depth > 0:
                if executed >= hard_limit:
                    thread.status = ThreadStatus.FAULTED
                    thread.fault = ("watchdog: preemption disabled for "
                                    "%d instructions" % executed)
                    return
                limit = min(executed + self.quantum, hard_limit)
        thread.status = ThreadStatus.READY

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Round-robin until every thread exits or the budget runs out.

        Returns the number of instructions executed by this call.
        """
        start = self.total_instructions
        budget_end = start + max_instructions
        while self.total_instructions < budget_end:
            if self.frozen:
                break
            runnable = self.runnable()
            if not runnable:
                break
            for thread in runnable:
                if self.frozen or self.total_instructions >= budget_end:
                    break
                if thread.runnable:
                    self.run_quantum(thread)
        return self.total_instructions - start

    def run_until(self, predicate: Callable[[], bool],
                  max_instructions: int = 1_000_000) -> bool:
        """Run until ``predicate()`` is true; False if the budget ran out."""
        start = self.total_instructions
        while not predicate():
            if not self.runnable():
                return predicate()
            before = self.total_instructions
            for thread in self.runnable():
                self.run_quantum(thread)
                if predicate():
                    return True
                if self.total_instructions - start >= max_instructions:
                    return False
            if self.total_instructions == before:
                return False
        return True

    def find_thread(self, name: str) -> Optional[Thread]:
        for thread in self.threads:
            if thread.name == name:
                return thread
        return None

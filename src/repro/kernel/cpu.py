"""The k86 CPU interpreter.

``step`` executes exactly one instruction against a :class:`CPUState`
and a :class:`~repro.kernel.memory.Memory` and reports what happened via
:class:`StepEvent`.  The scheduler turns SYSCALL events into calls
through the kernel's syscall entry point and SCHED events into yields.

For speed, every decoded instruction is *compiled to a closure* the
first time it is fetched; the closure is cached per address and
invalidated whenever an executable segment is written (so self-modifying
code — Ksplice's jump insertion — is observed immediately; see
:class:`_DecodeCache`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.arch.isa import (
    Instruction,
    Opcode,
    decode_instruction,
    instruction_length,
)
from repro.errors import DisassemblyError, MachineError
from repro.kernel.memory import Memory

_MASK = 0xFFFFFFFF


def _signed(value: int) -> int:
    value &= _MASK
    return value - (1 << 32) if value >= (1 << 31) else value


class StepEvent(enum.Enum):
    NORMAL = "normal"
    SYSCALL = "syscall"
    SCHED = "sched"
    HALT = "halt"


_NORMAL = StepEvent.NORMAL


@dataclass
class CPUState:
    """Per-thread architectural state."""

    regs: List[int] = field(default_factory=lambda: [0] * 8)
    ip: int = 0
    zf: bool = False
    sf: bool = False
    #: CLI/STI nesting depth; >0 means the scheduler must not preempt
    preempt_disable_depth: int = 0

    def reg(self, index: int) -> int:
        return self.regs[index] & _MASK

    def set_reg(self, index: int, value: int) -> None:
        self.regs[index] = value & _MASK


_Op = Callable[[CPUState, Memory], StepEvent]


def _compile_insn(insn: Instruction) -> _Op:
    """Translate one decoded instruction into an executable closure."""
    opcode = insn.spec.opcode
    length = insn.spec.length
    ops = insn.operands

    if opcode is Opcode.HLT:
        def op_hlt(state: CPUState, memory: Memory) -> StepEvent:
            return StepEvent.HALT
        return op_hlt

    if insn.spec.is_nop:
        def op_nop(state: CPUState, memory: Memory) -> StepEvent:
            state.ip += length
            return _NORMAL
        return op_nop

    if opcode is Opcode.MOVI:
        rd, imm = ops[0], ops[1] & _MASK

        def op_movi(state, memory):
            state.regs[rd] = imm
            state.ip += length
            return _NORMAL
        return op_movi

    if opcode is Opcode.MOVR:
        rd, rs = ops

        def op_movr(state, memory):
            state.regs[rd] = state.regs[rs]
            state.ip += length
            return _NORMAL
        return op_movr

    if opcode is Opcode.LOAD:
        rd, address = ops

        def op_load(state, memory):
            state.regs[rd] = memory.read_u32(address)
            state.ip += length
            return _NORMAL
        return op_load

    if opcode is Opcode.STORE:
        address, rs = ops

        def op_store(state, memory):
            memory.write_u32(address, state.regs[rs])
            state.ip += length
            return _NORMAL
        return op_store

    if opcode is Opcode.LOADR:
        rd, rb, offset = ops

        def op_loadr(state, memory):
            state.regs[rd] = memory.read_u32(
                (state.regs[rb] + offset) & _MASK)
            state.ip += length
            return _NORMAL
        return op_loadr

    if opcode is Opcode.STORER:
        rb, offset, rs = ops

        def op_storer(state, memory):
            memory.write_u32((state.regs[rb] + offset) & _MASK,
                             state.regs[rs])
            state.ip += length
            return _NORMAL
        return op_storer

    if opcode is Opcode.LEA:
        rd, address = ops

        def op_lea(state, memory):
            state.regs[rd] = address
            state.ip += length
            return _NORMAL
        return op_lea

    if opcode in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
                  Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.MUL):
        rd, rs = ops
        if opcode is Opcode.ADD:
            def op_alu(state, memory):
                state.regs[rd] = (state.regs[rd] + state.regs[rs]) & _MASK
                state.ip += length
                return _NORMAL
        elif opcode is Opcode.SUB:
            def op_alu(state, memory):
                state.regs[rd] = (state.regs[rd] - state.regs[rs]) & _MASK
                state.ip += length
                return _NORMAL
        elif opcode is Opcode.AND:
            def op_alu(state, memory):
                state.regs[rd] &= state.regs[rs]
                state.ip += length
                return _NORMAL
        elif opcode is Opcode.OR:
            def op_alu(state, memory):
                state.regs[rd] |= state.regs[rs]
                state.ip += length
                return _NORMAL
        elif opcode is Opcode.XOR:
            def op_alu(state, memory):
                state.regs[rd] ^= state.regs[rs]
                state.ip += length
                return _NORMAL
        elif opcode is Opcode.SHL:
            def op_alu(state, memory):
                state.regs[rd] = (state.regs[rd]
                                  << (state.regs[rs] & 31)) & _MASK
                state.ip += length
                return _NORMAL
        elif opcode is Opcode.SHR:
            def op_alu(state, memory):
                state.regs[rd] = state.regs[rd] >> (state.regs[rs] & 31)
                state.ip += length
                return _NORMAL
        else:  # MUL: signed multiply, truncated to 32 bits
            def op_alu(state, memory):
                state.regs[rd] = (_signed(state.regs[rd])
                                  * _signed(state.regs[rs])) & _MASK
                state.ip += length
                return _NORMAL
        return op_alu

    if opcode in (Opcode.DIV, Opcode.MOD):
        rd, rs = ops
        want_div = opcode is Opcode.DIV

        def op_divmod(state, memory):
            divisor = _signed(state.regs[rs])
            if divisor == 0:
                raise MachineError("divide by zero at 0x%08x" % state.ip)
            dividend = _signed(state.regs[rd])
            quotient = int(dividend / divisor)  # C truncation
            if want_div:
                state.regs[rd] = quotient & _MASK
            else:
                state.regs[rd] = (dividend - quotient * divisor) & _MASK
            state.ip += length
            return _NORMAL
        return op_divmod

    if opcode is Opcode.ADDI:
        rd, imm = ops[0], _signed(ops[1])

        def op_addi(state, memory):
            state.regs[rd] = (state.regs[rd] + imm) & _MASK
            state.ip += length
            return _NORMAL
        return op_addi

    if opcode is Opcode.CMP:
        ra, rb = ops

        def op_cmp(state, memory):
            left, right = _signed(state.regs[ra]), _signed(state.regs[rb])
            state.zf, state.sf = left == right, left < right
            state.ip += length
            return _NORMAL
        return op_cmp

    if opcode is Opcode.CMPI:
        ra, imm = ops[0], _signed(ops[1])

        def op_cmpi(state, memory):
            left = _signed(state.regs[ra])
            state.zf, state.sf = left == imm, left < imm
            state.ip += length
            return _NORMAL
        return op_cmpi

    if opcode is Opcode.NEG:
        rd = ops[0]

        def op_neg(state, memory):
            state.regs[rd] = (-_signed(state.regs[rd])) & _MASK
            state.ip += length
            return _NORMAL
        return op_neg

    if opcode is Opcode.NOT:
        rd = ops[0]

        def op_not(state, memory):
            state.regs[rd] = (~state.regs[rd]) & _MASK
            state.ip += length
            return _NORMAL
        return op_not

    if insn.spec.is_pc_relative and opcode not in (Opcode.CALL,):
        displacement = ops[0]

        if opcode in (Opcode.JMP, Opcode.JMPS):
            def op_jump(state, memory):
                state.ip += length + displacement
                return _NORMAL
            return op_jump

        def taken(state) -> bool:  # pragma: no cover - replaced below
            return False

        if opcode in (Opcode.JZ, Opcode.JZS):
            def taken(state):
                return state.zf
        elif opcode in (Opcode.JNZ, Opcode.JNZS):
            def taken(state):
                return not state.zf
        elif opcode in (Opcode.JL, Opcode.JLS):
            def taken(state):
                return state.sf
        elif opcode in (Opcode.JG, Opcode.JGS):
            def taken(state):
                return not state.sf and not state.zf
        elif opcode in (Opcode.JLE, Opcode.JLES):
            def taken(state):
                return state.sf or state.zf
        elif opcode in (Opcode.JGE, Opcode.JGES):
            def taken(state):
                return not state.sf

        def op_condjump(state, memory):
            if taken(state):
                state.ip += length + displacement
            else:
                state.ip += length
            return _NORMAL
        return op_condjump

    if opcode is Opcode.CALL:
        displacement = ops[0]

        def op_call(state, memory):
            next_ip = state.ip + length
            sp = (state.regs[6] - 4) & _MASK
            memory.write_u32(sp, next_ip)
            state.regs[6] = sp
            state.ip = next_ip + displacement
            return _NORMAL
        return op_call

    if opcode is Opcode.CALLR:
        rs = ops[0]

        def op_callr(state, memory):
            next_ip = state.ip + length
            sp = (state.regs[6] - 4) & _MASK
            memory.write_u32(sp, next_ip)
            state.regs[6] = sp
            state.ip = state.regs[rs]
            return _NORMAL
        return op_callr

    if opcode is Opcode.RET:
        def op_ret(state, memory):
            sp = state.regs[6]
            state.ip = memory.read_u32(sp)
            state.regs[6] = (sp + 4) & _MASK
            return _NORMAL
        return op_ret

    if opcode is Opcode.PUSH:
        rs = ops[0]

        def op_push(state, memory):
            sp = (state.regs[6] - 4) & _MASK
            memory.write_u32(sp, state.regs[rs])
            state.regs[6] = sp
            state.ip += length
            return _NORMAL
        return op_push

    if opcode is Opcode.POP:
        rd = ops[0]

        def op_pop(state, memory):
            sp = state.regs[6]
            state.regs[rd] = memory.read_u32(sp)
            state.regs[6] = (sp + 4) & _MASK
            state.ip += length
            return _NORMAL
        return op_pop

    if opcode is Opcode.SYSCALL:
        def op_syscall(state, memory):
            state.ip += length
            return StepEvent.SYSCALL
        return op_syscall

    if opcode is Opcode.SCHED:
        def op_sched(state, memory):
            state.ip += length
            return StepEvent.SCHED
        return op_sched

    if opcode is Opcode.CLI:
        def op_cli(state, memory):
            state.preempt_disable_depth += 1
            state.ip += length
            return _NORMAL
        return op_cli

    if opcode is Opcode.STI:
        def op_sti(state, memory):
            if state.preempt_disable_depth > 0:
                state.preempt_disable_depth -= 1
            state.ip += length
            return _NORMAL
        return op_sti

    raise MachineError(  # pragma: no cover - table is exhaustive
        "unimplemented opcode %s" % insn.mnemonic)


class _DecodeCache:
    """Caches compiled instructions per address.

    Invalidated wholesale whenever an executable segment is written —
    rare (module loads, Ksplice jump insertion), so the common case is a
    dictionary hit per step.  The cache lives on the Memory instance
    itself: a global registry keyed by ``id()`` would leak stale
    instructions into a new Memory reusing a collected one's address.
    Memory clears ``entries`` *in place* on executable writes (push
    invalidation), so the hot loop in :func:`run_slice` can alias the
    dict without a per-instruction version check; ``version`` remains as
    a pull-based fallback for a cache attached after writes happened.
    """

    __slots__ = ("version", "entries")

    def __init__(self) -> None:
        self.version = -1
        self.entries: dict = {}


def _cache_for(memory: Memory) -> _DecodeCache:
    cache = memory._decode_cache
    if cache is None:
        cache = _DecodeCache()
        memory._decode_cache = cache
    if cache.version != memory.write_version:
        cache.version = memory.write_version
        cache.entries.clear()
    return cache


#: Compiled closures keyed by raw instruction bytes.  An op is a pure
#: function of its encoding (operands, length — never its address), so
#: one compile serves every machine that ever executes those bytes:
#: rebooting a version's kernel for the next CVE re-fetches but never
#: re-decodes.  Process-global and unbounded in principle; the soft cap
#: guards against pathological byte churn.
_OP_CACHE: dict = {}
_OP_CACHE_MAX = 200_000


def _decode_at(state: CPUState, memory: Memory) -> _Op:
    try:
        opcode_byte = memory.read_u8(state.ip)
        raw = memory.read_bytes(state.ip,
                                instruction_length(opcode_byte))
    except DisassemblyError as exc:
        # Executing garbage is a machine fault (kernel oops), not a
        # toolchain error.
        raise MachineError("illegal instruction at 0x%08x: %s"
                           % (state.ip, exc)) from None
    op = _OP_CACHE.get(raw)
    if op is None:
        try:
            insn = decode_instruction(raw)
        except DisassemblyError as exc:
            raise MachineError("illegal instruction at 0x%08x: %s"
                               % (state.ip, exc)) from None
        op = _compile_insn(insn)
        if len(_OP_CACHE) >= _OP_CACHE_MAX:
            _OP_CACHE.clear()
        _OP_CACHE[raw] = op
    return op


def step(state: CPUState, memory: Memory) -> StepEvent:
    """Execute one instruction; ``state.ip`` advances appropriately."""
    cache = _cache_for(memory)
    op = cache.entries.get(state.ip)
    if op is None:
        op = _decode_at(state, memory)
        cache.entries[state.ip] = op
    return op(state, memory)


def run_slice(state: CPUState, memory: Memory,
              max_steps: int) -> "Tuple[int, StepEvent, Optional[str]]":
    """Execute up to ``max_steps`` instructions in one tight loop.

    The scheduler's per-quantum fast path: cache and dict lookups are
    hoisted out of the loop and NORMAL events never leave it, so
    straight-line runs pay one Python-level dispatch per instruction
    instead of a ``step()`` call plus scheduler bookkeeping.

    Returns ``(executed, event, fault)``:

    * ``executed`` — instructions that completed (a faulting instruction
      does not count, matching ``step()``'s raise semantics);
    * ``event`` — the event that ended the slice (NORMAL when the step
      budget ran out);
    * ``fault`` — oops message if a machine fault ended the slice.

    Self-modifying code stays observable without a per-instruction
    version check because Memory clears the entries dict *in place*
    whenever an executable segment is written.
    """
    entries = _cache_for(memory).entries
    entries_get = entries.get
    normal = _NORMAL
    executed = 0
    event = normal
    while executed < max_steps:
        op = entries_get(state.ip)
        if op is None:
            try:
                op = _decode_at(state, memory)
            except MachineError as exc:
                return executed, normal, str(exc)
            entries[state.ip] = op
        try:
            event = op(state, memory)
        except MachineError as exc:
            return executed, normal, str(exc)
        executed += 1
        if event is not normal:
            return executed, event, None
    return executed, normal, None

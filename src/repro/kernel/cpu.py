"""The k86 CPU interpreter.

``step`` executes exactly one instruction against a :class:`CPUState`
and a :class:`~repro.kernel.memory.Memory` and reports what happened via
:class:`StepEvent`.  The scheduler turns SYSCALL events into calls
through the kernel's syscall entry point and SCHED events into yields.

For speed, every decoded instruction is *compiled to a closure* the
first time it is fetched; the closure is cached per address and
invalidated whenever an executable segment is written (so self-modifying
code — Ksplice's jump insertion — is observed immediately; see
:class:`_DecodeCache`).
"""

from __future__ import annotations

import enum
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.arch.isa import (
    MAX_INSTRUCTION_LENGTH,
    Instruction,
    Opcode,
    decode_instruction,
    instruction_length,
)
from repro.errors import DisassemblyError, MachineError
from repro.kernel.jit import HOT_THRESHOLD, TraceRecorder, compile_recorded
from repro.kernel.memory import Memory

_MASK = 0xFFFFFFFF


def _signed(value: int) -> int:
    value &= _MASK
    return value - (1 << 32) if value >= (1 << 31) else value


class StepEvent(enum.Enum):
    NORMAL = "normal"
    SYSCALL = "syscall"
    SCHED = "sched"
    HALT = "halt"


_NORMAL = StepEvent.NORMAL
_SYSCALL = StepEvent.SYSCALL


@dataclass
class CPUState:
    """Per-thread architectural state."""

    regs: List[int] = field(default_factory=lambda: [0] * 8)
    ip: int = 0
    zf: bool = False
    sf: bool = False
    #: CLI/STI nesting depth; >0 means the scheduler must not preempt
    preempt_disable_depth: int = 0

    def reg(self, index: int) -> int:
        return self.regs[index] & _MASK

    def set_reg(self, index: int, value: int) -> None:
        self.regs[index] = value & _MASK


_Op = Callable[[CPUState, Memory], StepEvent]


def _compile_insn(insn: Instruction) -> _Op:
    """Translate one decoded instruction into an executable closure."""
    opcode = insn.spec.opcode
    length = insn.spec.length
    ops = insn.operands

    if opcode is Opcode.HLT:
        def op_hlt(state: CPUState, memory: Memory) -> StepEvent:
            return StepEvent.HALT
        return op_hlt

    if insn.spec.is_nop:
        def op_nop(state: CPUState, memory: Memory) -> StepEvent:
            state.ip += length
            return _NORMAL
        return op_nop

    if opcode is Opcode.MOVI:
        rd, imm = ops[0], ops[1] & _MASK

        def op_movi(state, memory):
            state.regs[rd] = imm
            state.ip += length
            return _NORMAL
        return op_movi

    if opcode is Opcode.MOVR:
        rd, rs = ops

        def op_movr(state, memory):
            state.regs[rd] = state.regs[rs]
            state.ip += length
            return _NORMAL
        return op_movr

    if opcode is Opcode.LOAD:
        rd, address = ops

        def op_load(state, memory):
            state.regs[rd] = memory.read_u32(address)
            state.ip += length
            return _NORMAL
        return op_load

    if opcode is Opcode.STORE:
        address, rs = ops

        def op_store(state, memory):
            memory.write_u32(address, state.regs[rs])
            state.ip += length
            return _NORMAL
        return op_store

    if opcode is Opcode.LOADR:
        rd, rb, offset = ops

        def op_loadr(state, memory):
            state.regs[rd] = memory.read_u32(
                (state.regs[rb] + offset) & _MASK)
            state.ip += length
            return _NORMAL
        return op_loadr

    if opcode is Opcode.STORER:
        rb, offset, rs = ops

        def op_storer(state, memory):
            memory.write_u32((state.regs[rb] + offset) & _MASK,
                             state.regs[rs])
            state.ip += length
            return _NORMAL
        return op_storer

    if opcode is Opcode.LEA:
        rd, address = ops

        def op_lea(state, memory):
            state.regs[rd] = address
            state.ip += length
            return _NORMAL
        return op_lea

    if opcode in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
                  Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.MUL):
        rd, rs = ops
        if opcode is Opcode.ADD:
            def op_alu(state, memory):
                state.regs[rd] = (state.regs[rd] + state.regs[rs]) & _MASK
                state.ip += length
                return _NORMAL
        elif opcode is Opcode.SUB:
            def op_alu(state, memory):
                state.regs[rd] = (state.regs[rd] - state.regs[rs]) & _MASK
                state.ip += length
                return _NORMAL
        elif opcode is Opcode.AND:
            def op_alu(state, memory):
                state.regs[rd] &= state.regs[rs]
                state.ip += length
                return _NORMAL
        elif opcode is Opcode.OR:
            def op_alu(state, memory):
                state.regs[rd] |= state.regs[rs]
                state.ip += length
                return _NORMAL
        elif opcode is Opcode.XOR:
            def op_alu(state, memory):
                state.regs[rd] ^= state.regs[rs]
                state.ip += length
                return _NORMAL
        elif opcode is Opcode.SHL:
            def op_alu(state, memory):
                state.regs[rd] = (state.regs[rd]
                                  << (state.regs[rs] & 31)) & _MASK
                state.ip += length
                return _NORMAL
        elif opcode is Opcode.SHR:
            def op_alu(state, memory):
                state.regs[rd] = state.regs[rd] >> (state.regs[rs] & 31)
                state.ip += length
                return _NORMAL
        else:  # MUL: signed multiply, truncated to 32 bits
            def op_alu(state, memory):
                state.regs[rd] = (_signed(state.regs[rd])
                                  * _signed(state.regs[rs])) & _MASK
                state.ip += length
                return _NORMAL
        return op_alu

    if opcode in (Opcode.DIV, Opcode.MOD):
        rd, rs = ops
        want_div = opcode is Opcode.DIV

        def op_divmod(state, memory):
            divisor = _signed(state.regs[rs])
            if divisor == 0:
                raise MachineError("divide by zero at 0x%08x" % state.ip)
            dividend = _signed(state.regs[rd])
            quotient = int(dividend / divisor)  # C truncation
            if want_div:
                state.regs[rd] = quotient & _MASK
            else:
                state.regs[rd] = (dividend - quotient * divisor) & _MASK
            state.ip += length
            return _NORMAL
        return op_divmod

    if opcode is Opcode.ADDI:
        rd, imm = ops[0], _signed(ops[1])

        def op_addi(state, memory):
            state.regs[rd] = (state.regs[rd] + imm) & _MASK
            state.ip += length
            return _NORMAL
        return op_addi

    if opcode is Opcode.CMP:
        ra, rb = ops

        def op_cmp(state, memory):
            left, right = _signed(state.regs[ra]), _signed(state.regs[rb])
            state.zf, state.sf = left == right, left < right
            state.ip += length
            return _NORMAL
        return op_cmp

    if opcode is Opcode.CMPI:
        ra, imm = ops[0], _signed(ops[1])

        def op_cmpi(state, memory):
            left = _signed(state.regs[ra])
            state.zf, state.sf = left == imm, left < imm
            state.ip += length
            return _NORMAL
        return op_cmpi

    if opcode is Opcode.NEG:
        rd = ops[0]

        def op_neg(state, memory):
            state.regs[rd] = (-_signed(state.regs[rd])) & _MASK
            state.ip += length
            return _NORMAL
        return op_neg

    if opcode is Opcode.NOT:
        rd = ops[0]

        def op_not(state, memory):
            state.regs[rd] = (~state.regs[rd]) & _MASK
            state.ip += length
            return _NORMAL
        return op_not

    if insn.spec.is_pc_relative and opcode not in (Opcode.CALL,):
        displacement = ops[0]

        if opcode in (Opcode.JMP, Opcode.JMPS):
            def op_jump(state, memory):
                state.ip += length + displacement
                return _NORMAL
            return op_jump

        def taken(state) -> bool:  # pragma: no cover - replaced below
            return False

        if opcode in (Opcode.JZ, Opcode.JZS):
            def taken(state):
                return state.zf
        elif opcode in (Opcode.JNZ, Opcode.JNZS):
            def taken(state):
                return not state.zf
        elif opcode in (Opcode.JL, Opcode.JLS):
            def taken(state):
                return state.sf
        elif opcode in (Opcode.JG, Opcode.JGS):
            def taken(state):
                return not state.sf and not state.zf
        elif opcode in (Opcode.JLE, Opcode.JLES):
            def taken(state):
                return state.sf or state.zf
        elif opcode in (Opcode.JGE, Opcode.JGES):
            def taken(state):
                return not state.sf

        def op_condjump(state, memory):
            if taken(state):
                state.ip += length + displacement
            else:
                state.ip += length
            return _NORMAL
        return op_condjump

    if opcode is Opcode.CALL:
        displacement = ops[0]

        def op_call(state, memory):
            next_ip = state.ip + length
            sp = (state.regs[6] - 4) & _MASK
            memory.write_u32(sp, next_ip)
            state.regs[6] = sp
            state.ip = next_ip + displacement
            return _NORMAL
        return op_call

    if opcode is Opcode.CALLR:
        rs = ops[0]

        def op_callr(state, memory):
            next_ip = state.ip + length
            sp = (state.regs[6] - 4) & _MASK
            memory.write_u32(sp, next_ip)
            state.regs[6] = sp
            state.ip = state.regs[rs]
            return _NORMAL
        return op_callr

    if opcode is Opcode.RET:
        def op_ret(state, memory):
            sp = state.regs[6]
            state.ip = memory.read_u32(sp)
            state.regs[6] = (sp + 4) & _MASK
            return _NORMAL
        return op_ret

    if opcode is Opcode.PUSH:
        rs = ops[0]

        def op_push(state, memory):
            sp = (state.regs[6] - 4) & _MASK
            memory.write_u32(sp, state.regs[rs])
            state.regs[6] = sp
            state.ip += length
            return _NORMAL
        return op_push

    if opcode is Opcode.POP:
        rd = ops[0]

        def op_pop(state, memory):
            sp = state.regs[6]
            state.regs[rd] = memory.read_u32(sp)
            state.regs[6] = (sp + 4) & _MASK
            state.ip += length
            return _NORMAL
        return op_pop

    if opcode is Opcode.SYSCALL:
        def op_syscall(state, memory):
            state.ip += length
            return StepEvent.SYSCALL
        return op_syscall

    if opcode is Opcode.SCHED:
        def op_sched(state, memory):
            state.ip += length
            return StepEvent.SCHED
        return op_sched

    if opcode is Opcode.CLI:
        def op_cli(state, memory):
            state.preempt_disable_depth += 1
            state.ip += length
            return _NORMAL
        return op_cli

    if opcode is Opcode.STI:
        def op_sti(state, memory):
            if state.preempt_disable_depth > 0:
                state.preempt_disable_depth -= 1
            state.ip += length
            return _NORMAL
        return op_sti

    raise MachineError(  # pragma: no cover - table is exhaustive
        "unimplemented opcode %s" % insn.mnemonic)


class TraceStats:
    """Process-wide JIT counters, aggregated across every machine.

    Per-machine numbers live on that machine's :class:`_DecodeCache`;
    this global mirror lets the evaluation engine report corpus-wide
    interpreted/traced splits without walking hundreds of discarded
    machines.  ``total_insns`` is bumped by the scheduler (one add per
    quantum), the rest by the trace dispatch and eviction paths.
    """

    __slots__ = ("total_insns", "traced_insns", "trace_hits",
                 "compiled", "evicted")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.total_insns = 0
        self.traced_insns = 0
        self.trace_hits = 0
        self.compiled = 0
        self.evicted = 0

    def snapshot(self) -> dict:
        return {
            "total_insns": self.total_insns,
            "traced_insns": self.traced_insns,
            "trace_hits": self.trace_hits,
            "compiled": self.compiled,
            "evicted": self.evicted,
        }


TRACE_STATS = TraceStats()

#: JIT kill switch: REPRO_JIT=0 runs the pure interpreter (the bench
#: uses set_jit_enabled to measure both sides of the same workload).
_JIT_ENABLED = os.environ.get("REPRO_JIT", "1") != "0"


def set_jit_enabled(enabled: bool) -> bool:
    """Toggle trace compilation; returns the previous setting."""
    global _JIT_ENABLED
    previous = _JIT_ENABLED
    _JIT_ENABLED = bool(enabled)
    return previous


def jit_enabled() -> bool:
    return _JIT_ENABLED


class _DecodeCache:
    """Caches compiled instructions and JIT traces per address.

    Invalidated by range whenever an executable segment is written —
    rare (module loads, Ksplice jump insertion), so the common case is a
    dictionary hit per step.  The cache lives on the Memory instance
    itself: a global registry keyed by ``id()`` would leak stale
    instructions into a new Memory reusing a collected one's address.
    Memory invalidates *in place* on executable writes (push
    invalidation), so the hot loop in :func:`run_slice` can alias the
    dicts without a per-instruction version check; ``version`` remains
    as a pull-based fallback for a cache attached after writes happened.

    ``traces`` maps entry PC -> :class:`~repro.kernel.jit.CompiledTrace`
    and ``counters`` holds per-PC back-edge hotness counts; both ride
    the same invalidation as ``entries`` so patched code never executes
    a stale trace.  The stat fields feed ``MachineHealth``.
    """

    __slots__ = ("version", "entries", "traces", "counters", "recording",
                 "traced_insns", "trace_hits", "compiled", "evicted",
                 "code_words")

    def __init__(self) -> None:
        self.version = -1
        self.entries: dict = {}
        self.traces: dict = {}
        self.counters: dict = {}
        self.recording = None
        self.traced_insns = 0
        self.trace_hits = 0
        self.compiled = 0
        self.evicted = 0
        #: 4-byte-word keys (address >> 2) covering every byte of every
        #: instruction ever cached — entries, traces, and any in-flight
        #: recording all decode through :func:`_decode_at`, which
        #: registers them here.  A write whose words all miss this set
        #: cannot overlap cached code, so ``invalidate_range`` returns
        #: without scanning anything.  Grows monotonically (cleared
        #: only with the whole cache); staying large after evictions
        #: is merely conservative.
        self.code_words: set = set()

    def invalidate_range(self, address: int, count: int) -> None:
        """Executable bytes in [address, address+count) changed.

        Drops cached instructions that could overlap the write (an
        instruction can start up to max-length minus one bytes before
        it) and evicts any trace whose compiled byte range overlaps.
        Evicted traces are flagged invalid so generated code that is
        *currently executing* the trace side-exits after the store.

        The kernel image maps text and data in one executable segment,
        so every store to a kernel global lands here; the code-word
        filter keeps those data stores O(1).
        """
        words = self.code_words
        word = address >> 2
        last = (address + count - 1) >> 2
        while word not in words:
            if word >= last:
                return
            word += 1
        entries = self.entries
        if entries:
            lo = address - (MAX_INSTRUCTION_LENGTH - 1)
            span = count + MAX_INSTRUCTION_LENGTH - 1
            if span > 4 * len(entries) + 64:
                entries.clear()
            else:
                for ip in range(lo, lo + span):
                    entries.pop(ip, None)
        traces = self.traces
        if traces:
            hi = address + count
            dead = [entry for entry, trace in traces.items()
                    if trace.lo < hi and address < trace.hi]
            for entry in dead:
                traces.pop(entry).valid = False
                self.counters.pop(entry, None)
                self.evicted += 1
                TRACE_STATS.evicted += 1
        # A write over bytes the in-flight recording already decoded
        # would make the eventual compile stale.  Writes elsewhere in
        # the segment (the kernel image maps text and data together, so
        # every store to a global lands here) leave the recording alone.
        rec = self.recording
        if rec is not None and rec.overlaps(address, address + count):
            self.recording = None

    def invalidate_all(self) -> None:
        self.entries.clear()
        if self.traces:
            self.evicted += len(self.traces)
            TRACE_STATS.evicted += len(self.traces)
            for trace in self.traces.values():
                trace.valid = False
            self.traces.clear()
        self.counters.clear()
        self.recording = None
        self.code_words.clear()


def _cache_for(memory: Memory) -> _DecodeCache:
    cache = memory._decode_cache
    if cache is None:
        cache = _DecodeCache()
        memory._decode_cache = cache
    if cache.version != memory.write_version:
        cache.version = memory.write_version
        cache.invalidate_all()
    return cache


#: Compiled closures keyed by raw instruction bytes.  An op is a pure
#: function of its encoding (operands, length — never its address), so
#: one compile serves every machine that ever executes those bytes:
#: rebooting a version's kernel for the next CVE re-fetches but never
#: re-decodes.  Process-global; the cap is enforced by LRU eviction
#: (hits refresh recency, overflow drops the coldest entry) so a
#: long-running fleet member never suffers the re-decode storm a
#: wholesale clear would cause.  Touched only on decode-cache misses,
#: so the OrderedDict bookkeeping is off the per-instruction path.
_OP_CACHE: "OrderedDict[bytes, _Op]" = OrderedDict()
_OP_CACHE_MAX = 200_000


def _decode_at(state: CPUState, memory: Memory,
               cache: "_DecodeCache") -> _Op:
    try:
        opcode_byte = memory.read_u8(state.ip)
        raw = memory.read_bytes(state.ip,
                                instruction_length(opcode_byte))
    except DisassemblyError as exc:
        # Executing garbage is a machine fault (kernel oops), not a
        # toolchain error.
        raise MachineError("illegal instruction at 0x%08x: %s"
                           % (state.ip, exc)) from None
    word = state.ip >> 2
    last = (state.ip + len(raw) - 1) >> 2
    words = cache.code_words
    while word <= last:
        words.add(word)
        word += 1
    op = _OP_CACHE.get(raw)
    if op is None:
        try:
            insn = decode_instruction(raw)
        except DisassemblyError as exc:
            raise MachineError("illegal instruction at 0x%08x: %s"
                               % (state.ip, exc)) from None
        op = _compile_insn(insn)
        while len(_OP_CACHE) >= _OP_CACHE_MAX:
            _OP_CACHE.popitem(last=False)
        _OP_CACHE[raw] = op
    else:
        _OP_CACHE.move_to_end(raw)
    return op


def step(state: CPUState, memory: Memory) -> StepEvent:
    """Execute one instruction; ``state.ip`` advances appropriately."""
    cache = _cache_for(memory)
    op = cache.entries.get(state.ip)
    if op is None:
        op = _decode_at(state, memory, cache)
        cache.entries[state.ip] = op
    return op(state, memory)


def run_slice(state: CPUState, memory: Memory, max_steps: int,
              syscall_hook: "Optional[Callable[[], None]]" = None,
              ) -> "Tuple[int, StepEvent, Optional[str]]":
    """Execute up to ``max_steps`` instructions in one tight loop.

    The scheduler's per-quantum fast path: cache and dict lookups are
    hoisted out of the loop and NORMAL events never leave it, so
    straight-line runs pay one Python-level dispatch per instruction
    instead of a ``step()`` call plus scheduler bookkeeping.

    ``syscall_hook`` (the scheduler's syscall trampoline, bound to the
    current thread) lets SYSCALL events be serviced *inside* the
    slice: the hook redirects ``state.ip`` to the kernel entry point
    and the loop keeps going, instead of unwinding to the scheduler
    and re-entering for the remaining budget.  Syscall-heavy
    workloads enter the kernel several times per quantum, and each
    unwind/re-enter costs more than a short trace body.  Without a
    hook every non-NORMAL event still returns, and the scheduler
    services it exactly as before.

    Returns ``(executed, event, fault)``:

    * ``executed`` — instructions that completed (a faulting instruction
      does not count, matching ``step()``'s raise semantics);
    * ``event`` — the event that ended the slice (NORMAL when the step
      budget ran out; SYSCALL is consumed when a hook is supplied);
    * ``fault`` — oops message if a machine fault ended the slice.

    Self-modifying code stays observable without a per-instruction
    version check because Memory invalidates the caches *in place*
    whenever an executable segment is written.

    With the JIT enabled, the loop additionally counts back-edge
    targets (``state.ip <= ip`` after an instruction means control
    moved backwards: a loop head or hot return site), compiles a
    target crossing :data:`~repro.kernel.jit.HOT_THRESHOLD` into a
    superinstruction, and dispatches to compiled traces at slice entry
    and after every backward transfer.  A trace only runs when the
    remaining step budget covers a worst-case pass, so quantum
    boundaries — and therefore scheduler interleavings — are
    bit-identical to the pure interpreter.
    """
    cache = _cache_for(memory)
    normal = _NORMAL
    executed = 0
    event = normal
    if not _JIT_ENABLED:
        entries = cache.entries
        entries_get = entries.get
        while executed < max_steps:
            op = entries_get(state.ip)
            if op is None:
                try:
                    op = _decode_at(state, memory, cache)
                except MachineError as exc:
                    return executed, normal, str(exc)
                entries[state.ip] = op
            try:
                event = op(state, memory)
            except MachineError as exc:
                return executed, normal, str(exc)
            executed += 1
            if event is not normal:
                if event is _SYSCALL and syscall_hook is not None:
                    syscall_hook()
                    continue
                return executed, event, None
        return executed, normal, None

    # Trace-hit accounting accumulates in locals and flushes once per
    # slice on the way out: a syscall-heavy quantum dispatches dozens
    # of chained traces, and four attribute updates per dispatch were
    # measurable against trace bodies this small.
    t_ran = 0
    t_hits = 0
    try:
        check = True
        if cache.recording is None:
            # Dispatch-first: the common steady state is a compiled
            # trace at the slice-entry PC consuming the whole budget,
            # so try it before building the interpreter loop's locals.
            trace = cache.traces.get(state.ip)
            if trace is not None:
                ran, tevent, fault = trace.fn(state, memory, max_steps)
                if ran:
                    t_ran = ran
                    t_hits = 1
                    if fault is not None:
                        return ran, normal, fault
                    if tevent is not normal:
                        if (tevent is _SYSCALL
                                and syscall_hook is not None):
                            syscall_hook()
                        else:
                            return ran, tevent, None
                    if ran >= max_steps:
                        return ran, normal, None
                    # side exit, budget left: fall into the full loop
                    executed = ran
                else:
                    # refused the budget: interpret, don't redispatch
                    check = False
        entries = cache.entries
        entries_get = entries.get
        traces = cache.traces
        traces_get = traces.get
        counters = cache.counters
        counters_get = counters.get
        rec = cache.recording
        while executed < max_steps:
            ip = state.ip
            if check and rec is None:
                check = False
                trace = traces_get(ip)
                if trace is not None:
                    ran, tevent, fault = trace.fn(state, memory,
                                                  max_steps - executed)
                    if ran:
                        executed += ran
                        t_ran += ran
                        t_hits += 1
                        if fault is not None:
                            return executed, normal, fault
                        if tevent is not normal:
                            if (tevent is _SYSCALL
                                    and syscall_hook is not None):
                                syscall_hook()
                            else:
                                return executed, tevent, None
                        check = True
                        continue
                    # non-positive budget (can't happen): interpret
                else:
                    # Hotness is counted at dispatch points: loop
                    # heads (every back edge re-arms the check),
                    # slice-start PCs (where the previous quantum's
                    # trace stopped — these become rotated loop
                    # traces), and trace side-exit continuations.
                    count = counters_get(ip, 0) + 1
                    counters[ip] = count
                    if count >= HOT_THRESHOLD:
                        rec = cache.recording = TraceRecorder(ip)
            op = entries_get(ip)
            if op is None:
                try:
                    op = _decode_at(state, memory, cache)
                except MachineError as exc:
                    return executed, normal, str(exc)
                entries[ip] = op
            try:
                event = op(state, memory)
            except MachineError as exc:
                return executed, normal, str(exc)
            executed += 1
            nip = state.ip
            if rec is not None:
                if cache.recording is not rec:
                    # exec write invalidated the region being recorded
                    rec = None
                else:
                    status = rec.record(memory, ip, nip)
                    if (status is None and rec.steps
                            and traces_get(nip) is not None):
                        # The path reached a PC that already has a
                        # compiled trace: stop here and chain into it
                        # at dispatch time instead of duplicating its
                        # body.  Quantum boundaries rotate through a
                        # hot loop's phases, so without this every
                        # phase would compile its own full-length
                        # variant; with it, rotations become short
                        # bridge traces.
                        rec.exit_target = nip
                        status = "ok"
                    if status is not None:
                        if status == "ok" and cache.recording is rec:
                            new_trace = compile_recorded(rec, memory,
                                                         StepEvent)
                            if new_trace is not None:
                                traces[rec.entry] = new_trace
                                cache.compiled += 1
                                TRACE_STATS.compiled += 1
                            else:
                                # uncompilable path (e.g. spans
                                # segments): back the counter off so
                                # it isn't re-recorded every pass.  A
                                # later patch to the region clears
                                # counters wholesale, re-enabling it.
                                counters[rec.entry] = -(1 << 30)
                        rec = cache.recording = None
            elif event is normal and nip <= ip:
                check = True
            if event is not normal:
                if event is _SYSCALL and syscall_hook is not None:
                    syscall_hook()
                    check = True
                    continue
                return executed, event, None
        return executed, normal, None
    finally:
        if t_hits:
            cache.traced_insns += t_ran
            cache.trace_hits += t_hits
            stats = TRACE_STATS
            stats.traced_insns += t_ran
            stats.trace_hits += t_hits

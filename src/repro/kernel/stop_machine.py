"""The stop_machine facility (§5.2).

``stop_machine`` captures every CPU — in the simulation, freezes the
scheduler so no thread executes — runs a function on one CPU, and
releases.  The report records both the wall-clock time of the stopped
window (the paper measures ~0.7 ms) and the simulated-instruction count
(always 0: nothing else runs while stopped).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List

from repro.kernel.scheduler import Scheduler


@dataclass
class StopMachineReport:
    """Timing of one stop_machine window."""

    wall_seconds: float
    instructions_during_stop: int

    @property
    def wall_milliseconds(self) -> float:
        return self.wall_seconds * 1000.0


@dataclass
class StopMachine:
    scheduler: Scheduler
    reports: List[StopMachineReport] = field(default_factory=list)

    def run(self, fn: Callable[[], Any]) -> Any:
        """Capture all CPUs, run ``fn`` on one, release, return its result."""
        before = self.scheduler.total_instructions
        self.scheduler.frozen = True
        start = time.perf_counter()
        try:
            result = fn()
        finally:
            elapsed = time.perf_counter() - start
            self.scheduler.frozen = False
            self.reports.append(StopMachineReport(
                wall_seconds=elapsed,
                instructions_during_stop=(
                    self.scheduler.total_instructions - before),
            ))
        return result

    @property
    def last_report(self) -> StopMachineReport:
        if not self.reports:
            raise RuntimeError("stop_machine has not run")
        return self.reports[-1]
